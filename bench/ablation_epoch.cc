/**
 * @file
 * Ablation — epoch length of the adaptive thresholding scheme. Short
 * epochs react faster to phase changes but estimate accuracy on
 * fewer resolved prefetches; long epochs the reverse.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const auto roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Ablation: adaptive-scheme epoch length "
                "(Berti+DRIPPER) ==\n\n");

    TablePrinter table({"epoch insts", "geomean"});
    table.print_header();
    for (std::uint64_t epoch : {8'192ull, 32'768ull, 65'536ull,
                                262'144ull}) {
        SuiteAggregator agg;
        for (const WorkloadSpec &spec : roster) {
            MachineConfig base_cfg = make_config(k, scheme_discard());
            const RunMetrics base = run_single(base_cfg, spec, args.run);
            MachineConfig cfg = make_config(k, scheme_dripper(k));
            cfg.epoch_insts = epoch;
            cfg.interval_insts = std::min<std::uint64_t>(
                cfg.interval_insts, epoch / 2);
            const RunMetrics m = run_single(cfg, spec, args.run);
            agg.add(spec.suite, speedup(m, base));
        }
        char e[32], g[32];
        std::snprintf(e, sizeof(e), "%llu",
                      static_cast<unsigned long long>(epoch));
        std::snprintf(g, sizeof(g), "%+.2f%%",
                      (agg.overall_geomean() - 1.0) * 100.0);
        table.print_row({e, g});
    }
    return 0;
}
