/**
 * @file
 * Ablation — cache replacement policy. The paper evaluates LRU
 * (Table IV); this checks that DRIPPER's ordering over the static
 * schemes is robust to the L1D/L2/LLC replacement policy.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    BenchArgs args = parse_bench_args(argc, argv);
    if (!args.full && args.workloads > 12) {
        args.workloads = 12;  // 3 policies x 3 schemes: keep it quick
    }
    const auto roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Ablation: replacement policy (Berti) ==\n\n");

    const ReplacementKind kinds[] = {ReplacementKind::kLru,
                                     ReplacementKind::kSrrip,
                                     ReplacementKind::kRandom};
    const char *names[] = {"LRU", "SRRIP", "Random"};

    TablePrinter table({"replacement", "Permit PGC", "DRIPPER"});
    table.print_header();
    for (std::size_t i = 0; i < 3; ++i) {
        auto with_repl = [&](const SchemeConfig &scheme) {
            MachineConfig cfg = make_config(k, scheme);
            cfg.l1d.replacement = kinds[i];
            cfg.l2.replacement = kinds[i];
            cfg.llc.replacement = kinds[i];
            return cfg;
        };
        SuiteAggregator agg_permit, agg_dripper;
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics base =
                run_single(with_repl(scheme_discard()), spec, args.run);
            const RunMetrics mp =
                run_single(with_repl(scheme_permit()), spec, args.run);
            const RunMetrics md =
                run_single(with_repl(scheme_dripper(k)), spec, args.run);
            agg_permit.add(spec.suite, speedup(mp, base));
            agg_dripper.add(spec.suite, speedup(md, base));
        }
        char a[32], b[32];
        std::snprintf(a, sizeof(a), "%+.2f%%",
                      (agg_permit.overall_geomean() - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%",
                      (agg_dripper.overall_geomean() - 1.0) * 100.0);
        table.print_row({names[i], a, b});
    }
    std::printf("\nExpected: DRIPPER above Permit PGC in every row.\n");
    return 0;
}
