/**
 * @file
 * Ablation — DRIPPER structure sizing (paper §III-E1 notes the
 * weight-table/vUB/pUB sizes were selected empirically). Sweeps each
 * structure independently around the shipped configuration.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

SchemeConfig
sized(const char *label, unsigned wt, unsigned vub, unsigned pub)
{
    SchemeConfig s;
    s.name = label;
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [wt, vub, pub] {
        MokaConfig cfg = dripper_config(L1dPrefetcherKind::kBerti);
        cfg.wt_entries = wt;
        cfg.vub_entries = vub;
        cfg.pub_entries = pub;
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

}  // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const auto roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Ablation: DRIPPER structure sizes (Berti) ==\n\n");

    const SchemeConfig schemes[] = {
        sized("WT=128", 128, 4, 128),
        sized("WT=1024 (paper)", 1024, 4, 128),
        sized("WT=4096", 4096, 4, 128),
        sized("vUB=1", 1024, 1, 128),
        sized("vUB=16", 1024, 16, 128),
        sized("pUB=32", 1024, 4, 32),
        sized("pUB=512", 1024, 4, 512),
    };

    TablePrinter table({"config", "geomean", "storage KB"});
    table.print_header();
    for (const SchemeConfig &scheme : schemes) {
        SuiteAggregator agg;
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics base = run_single(
                make_config(k, scheme_discard()), spec, args.run);
            const RunMetrics m =
                run_single(make_config(k, scheme), spec, args.run);
            agg.add(spec.suite, speedup(m, base));
        }
        const FilterPtr f = scheme.make_filter();
        char g[32], kb[32];
        std::snprintf(g, sizeof(g), "%+.2f%%",
                      (agg.overall_geomean() - 1.0) * 100.0);
        std::snprintf(kb, sizeof(kb), "%.3f",
                      double(f->storage_bits()) / 8000.0);
        table.print_row({scheme.name, g, kb});
    }
    return 0;
}
