/**
 * @file
 * Ablation — the adaptive thresholding scheme (paper §III-C3). Runs
 * DRIPPER with several static activation thresholds against the
 * full adaptive scheme.
 *
 * Expected: no single static T_a matches the adaptive scheme across
 * the roster (the paper's argument for epoch-based adaptation).
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

SchemeConfig
dripper_static(int t_static)
{
    SchemeConfig s;
    s.name = "DRIPPER@T=" + std::to_string(t_static);
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [t_static] {
        MokaConfig cfg = dripper_config(L1dPrefetcherKind::kBerti);
        cfg.name = "static";
        cfg.threshold.adaptive = false;
        cfg.threshold.t_static = t_static;
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

}  // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const auto roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Ablation: static T_a vs adaptive thresholding "
                "(Berti+DRIPPER) ==\n\n");

    std::vector<SchemeConfig> schemes;
    for (int t : {-4, -2, 0, 3, 6, 10}) {
        schemes.push_back(dripper_static(t));
    }
    schemes.push_back(scheme_dripper(k));

    TablePrinter table({"scheme", "geomean", "min", "max"});
    table.print_header();
    for (const SchemeConfig &scheme : schemes) {
        SuiteAggregator agg;
        double lo = 1e9, hi = -1e9;
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics base = run_single(
                make_config(k, scheme_discard()), spec, args.run);
            const RunMetrics m =
                run_single(make_config(k, scheme), spec, args.run);
            const double s = speedup(m, base);
            agg.add(spec.suite, s);
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        char g[32], a[32], b[32];
        std::snprintf(g, sizeof(g), "%+.2f%%",
                      (agg.overall_geomean() - 1.0) * 100.0);
        std::snprintf(a, sizeof(a), "%+.2f%%", (lo - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%", (hi - 1.0) * 100.0);
        table.print_row({scheme.name, g, a, b});
    }
    return 0;
}
