/**
 * @file
 * Energy study — quantifies the paper's dynamic-energy claim: each
 * useless page-cross prefetch spends up to 4 page-walk references
 * plus one fill's worth of cache/DRAM energy for nothing. Compares
 * memory-side energy per kilo-instruction of Discard PGC, Permit PGC
 * and DRIPPER (Berti).
 *
 * Expected: Permit PGC pays an energy premium on PGC-hostile
 * workloads; DRIPPER stays near the cheaper of the two statics.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/energy.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const auto roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Energy: memory-side nJ per kilo-instruction "
                "(Berti) ==\n\n");

    TablePrinter table({"workload", "Discard", "Permit", "DRIPPER",
                        "Permit ov%", "DRIPPER ov%"});
    table.print_header();
    double sum_p = 0.0, sum_d = 0.0;
    std::size_t n = 0;
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics mb =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        const RunMetrics mp =
            run_single(make_config(k, scheme_permit()), spec, args.run);
        const RunMetrics md =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        const double eb = estimate_energy(mb).nj_per_kilo_inst;
        const double ep = estimate_energy(mp).nj_per_kilo_inst;
        const double ed = estimate_energy(md).nj_per_kilo_inst;
        if (eb <= 0.0) {
            continue;
        }
        sum_p += ep / eb;
        sum_d += ed / eb;
        ++n;
        char b[24], p[24], d[24], po[24], dd[24];
        std::snprintf(b, sizeof(b), "%.1f", eb);
        std::snprintf(p, sizeof(p), "%.1f", ep);
        std::snprintf(d, sizeof(d), "%.1f", ed);
        std::snprintf(po, sizeof(po), "%+.2f%%", (ep / eb - 1.0) * 100.0);
        std::snprintf(dd, sizeof(dd), "%+.2f%%", (ed / eb - 1.0) * 100.0);
        table.print_row({spec.name, b, p, d, po, dd});
    }
    if (n > 0) {
        std::printf("\nmean energy overhead vs Discard PGC: Permit "
                    "%+.2f%%  DRIPPER %+.2f%%\n",
                    (sum_p / double(n) - 1.0) * 100.0,
                    (sum_d / double(n) - 1.0) * 100.0);
    }
    std::printf("Expected: DRIPPER's overhead well below Permit PGC's "
                "(useless walks + fills filtered).\n");
    return 0;
}
