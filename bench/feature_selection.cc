/**
 * @file
 * §III-D3 — Offline feature selection methodology: evaluate every
 * program and system feature as a single-feature Page-Cross Filter,
 * rank by geomean IPC speedup, then greedily add features that
 * improve geomean by more than 0.3%.
 *
 * This regenerates the process that produced Table II. Default
 * settings use a small workload sample (the full 61-feature sweep
 * over the whole roster is expensive); pass --workloads / --full to
 * widen it.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

double
geomean_speedup(const SchemeConfig &scheme,
                const std::vector<WorkloadSpec> &roster,
                const std::vector<RunMetrics> &base, const RunConfig &run)
{
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;
    std::vector<double> ratios;
    for (std::size_t i = 0; i < roster.size(); ++i) {
        const RunMetrics m =
            run_single(make_config(k, scheme), roster[i], run);
        ratios.push_back(speedup(m, base[i]));
    }
    return geomean(ratios);
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parse_bench_args(argc, argv);
    if (!args.full && args.workloads > 8) {
        args.workloads = 8;  // 61-feature sweep: keep the default cheap
    }
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Feature selection (Berti, %zu workloads, %zu program "
                "+ %zu system features) ==\n\n",
                roster.size(), all_program_features().size(),
                all_system_features().size());

    std::vector<RunMetrics> base;
    for (const WorkloadSpec &spec : roster) {
        base.push_back(run_single(make_config(k, scheme_discard()), spec,
                                  args.run));
    }

    struct Ranked
    {
        std::string name;
        bool is_system;
        ProgramFeatureId pf;
        SystemFeatureId sf;
        double geo;
    };
    std::vector<Ranked> ranked;

    for (ProgramFeatureId id : all_program_features()) {
        const double g = geomean_speedup(scheme_single_program(id), roster,
                                         base, args.run);
        ranked.push_back({feature_name(id), false, id,
                          SystemFeatureId::kStlbMpki, g});
    }
    for (SystemFeatureId id : all_system_features()) {
        const double g = geomean_speedup(scheme_single_system(id), roster,
                                         base, args.run);
        ranked.push_back({system_feature_name(id), true,
                          ProgramFeatureId::kVa, id, g});
    }

    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) { return a.geo > b.geo; });
    std::printf("single-feature ranking (top 15):\n");
    for (std::size_t i = 0; i < ranked.size() && i < 15; ++i) {
        std::printf("  %2zu. %-34s %+.2f%%%s\n", i + 1,
                    ranked[i].name.c_str(), (ranked[i].geo - 1.0) * 100.0,
                    ranked[i].is_system ? "  [system]" : "");
    }

    // Greedy combination: start from the best; add features improving
    // geomean by > 0.3% (paper's rule).
    MokaConfig cfg = dripper_config(k);
    cfg.program_features.clear();
    cfg.system_features.clear();
    auto apply = [&](const Ranked &r) {
        if (r.is_system) {
            cfg.system_features.push_back(default_system_feature(r.sf));
        } else {
            cfg.program_features.push_back(r.pf);
        }
    };
    apply(ranked[0]);
    SchemeConfig scheme;
    scheme.policy = PgcPolicy::kFilter;
    scheme.name = "greedy";
    scheme.make_filter = [&cfg] {
        return std::make_unique<MokaFilter>(cfg);
    };
    double best = geomean_speedup(scheme, roster, base, args.run);
    std::printf("\ngreedy selection: start with %s (%+.2f%%)\n",
                ranked[0].name.c_str(), (best - 1.0) * 100.0);

    for (std::size_t i = 1; i < ranked.size(); ++i) {
        if (cfg.program_features.size() >= VirtDecisionRecord::kMaxFeatures ||
            ranked[i].geo <= 1.0) {
            continue;
        }
        const MokaConfig saved = cfg;
        apply(ranked[i]);
        const double g = geomean_speedup(scheme, roster, base, args.run);
        if (g > best * 1.003) {
            best = g;
            std::printf("  + %-34s -> %+.2f%% (kept)\n",
                        ranked[i].name.c_str(), (g - 1.0) * 100.0);
        } else {
            cfg = saved;
        }
    }
    std::printf("\nfinal set (%zu program + %zu system features), geomean "
                "%+.2f%%\n",
                cfg.program_features.size(), cfg.system_features.size(),
                (best - 1.0) * 100.0);
    std::printf("paper's Table II pick for Berti: Delta + sTLB MPKI + "
                "sTLB Miss Rate\n");
    return 0;
}
