/**
 * @file
 * Fig. 2 — Per-workload IPC gain of always permitting page-cross
 * prefetching (Permit PGC) over always discarding it (Discard PGC)
 * for Berti, BOP and IPCP.
 *
 * Paper shape: strongly bimodal — some workloads gain a lot (astar,
 * cc.road, MIS, vips, ...), others lose a lot (sphinx3, fotonik3d_s,
 * bc.web, ...); no static policy wins everywhere.
 *
 * Flags: --full --workloads N --insts N --warmup N --seed N
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    std::printf("== Fig. 2: IPC gain of Permit PGC over Discard PGC ==\n");
    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kBop,
                                       L1dPrefetcherKind::kIpcp};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    for (std::size_t k = 0; k < 3; ++k) {
        std::printf("\n--- %s ---\n", names[k]);
        TablePrinter table({"workload", "IPC gain", "pgc useful",
                            "pgc useless"});
        table.print_header();
        SuiteAggregator agg;
        unsigned gainers = 0, losers = 0;
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics base = run_single(
                make_config(kinds[k], scheme_discard()), spec, args.run);
            const RunMetrics permit = run_single(
                make_config(kinds[k], scheme_permit()), spec, args.run);
            const double s = speedup(permit, base);
            agg.add(spec.suite, s);
            if (s > 1.005) ++gainers;
            if (s < 0.995) ++losers;
            char gain[32], useful[32], useless[32];
            std::snprintf(gain, sizeof(gain), "%+.2f%%", (s - 1.0) * 100.0);
            std::snprintf(useful, sizeof(useful), "%llu",
                          (unsigned long long)permit.pgc_useful);
            std::snprintf(useless, sizeof(useless), "%llu",
                          (unsigned long long)permit.pgc_useless);
            table.print_row({spec.name, gain, useful, useless});
        }
        std::printf("%s geomean Permit/Discard: %+.2f%%  "
                    "(gainers: %u, losers: %u of %zu)\n",
                    names[k], (agg.overall_geomean() - 1.0) * 100.0,
                    gainers, losers, roster.size());
    }
    std::printf("\nTakeaway check (paper): both gainers and losers exist "
                "for every prefetcher;\nno static policy dominates.\n");
    return 0;
}
