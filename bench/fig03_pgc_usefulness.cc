/**
 * @file
 * Fig. 3 — Distribution (left) and average (right) of useful vs
 * useless page-cross prefetches under Permit PGC, for Berti, BOP and
 * IPCP.
 *
 * Paper shape: the full spectrum exists (workloads at ~100% useful,
 * ~100% useless, and mixtures); on average roughly half of the issued
 * page-cross prefetches are useful for every prefetcher.
 */
#include <cstdio>

#include "common/histogram.h"
#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    std::printf("== Fig. 3: usefulness of page-cross prefetches "
                "(Permit PGC) ==\n");

    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kBop,
                                       L1dPrefetcherKind::kIpcp};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    for (std::size_t k = 0; k < 3; ++k) {
        Histogram dist(0.0, 100.0, 10);  // % useful buckets
        double sum_useful_pct = 0.0;
        std::size_t counted = 0;
        std::printf("\n--- %s: %% useful page-cross prefetches per "
                    "workload ---\n", names[k]);
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics m = run_single(
                make_config(kinds[k], scheme_permit()), spec, args.run);
            const std::uint64_t resolved = m.pgc_useful + m.pgc_useless;
            if (resolved < 50) {
                continue;  // too few PGC prefetches to classify
            }
            const double pct = 100.0 * m.pgc_accuracy();
            dist.add(pct);
            sum_useful_pct += pct;
            ++counted;
            std::printf("  %-24s useful %6.1f%%  useless %6.1f%%  "
                        "(%llu resolved)\n",
                        spec.name.c_str(), pct, 100.0 - pct,
                        (unsigned long long)resolved);
        }
        std::printf("distribution (10%% bins): ");
        for (std::size_t b = 0; b < dist.bins(); ++b) {
            std::printf("%llu ", (unsigned long long)dist.count(b));
        }
        std::printf("\n%s average useful: %.1f%% (paper: ~50%%)\n",
                    names[k],
                    counted ? sum_useful_pct / double(counted) : 0.0);
    }
    return 0;
}
