/**
 * @file
 * Fig. 4 — Impact of Permit PGC on dTLB/sTLB/L1D/LLC MPKI over
 * Discard PGC (Berti), with workloads split by which static policy
 * wins.
 *
 * Paper shape: (a) where Permit wins, dTLB and L1D MPKI drop
 * substantially (dTLB more than sTLB, L1D feeding into LLC);
 * (b) where Discard wins, all four MPKIs increase.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    std::printf("== Fig. 4: MPKI impact of Permit PGC over Discard PGC "
                "(Berti), split by winner ==\n");

    struct Row
    {
        std::string name;
        double speedup;
        double d_dtlb, d_stlb, d_l1d, d_llc;  // MPKI deltas (permit-base)
    };
    std::vector<Row> wins, losses;

    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base = run_single(
            make_config(L1dPrefetcherKind::kBerti, scheme_discard()), spec,
            args.run);
        const RunMetrics permit = run_single(
            make_config(L1dPrefetcherKind::kBerti, scheme_permit()), spec,
            args.run);
        Row r;
        r.name = spec.name;
        r.speedup = speedup(permit, base);
        r.d_dtlb = permit.dtlb_mpki() - base.dtlb_mpki();
        r.d_stlb = permit.stlb_mpki() - base.stlb_mpki();
        r.d_l1d = permit.l1d_mpki() - base.l1d_mpki();
        r.d_llc = permit.llc_mpki() - base.llc_mpki();
        (r.speedup >= 1.0 ? wins : losses).push_back(r);
    }

    auto print_group = [](const char *title, const std::vector<Row> &rows) {
        std::printf("\n--- %s (%zu workloads) ---\n", title, rows.size());
        TablePrinter table({"workload", "speedup", "dDTLB", "dSTLB",
                            "dL1D", "dLLC"});
        table.print_header();
        double s_dtlb = 0, s_stlb = 0, s_l1d = 0, s_llc = 0;
        for (const Row &r : rows) {
            char spd[32], a[32], b[32], c[32], d[32];
            std::snprintf(spd, sizeof(spd), "%+.2f%%",
                          (r.speedup - 1.0) * 100.0);
            std::snprintf(a, sizeof(a), "%+.2f", r.d_dtlb);
            std::snprintf(b, sizeof(b), "%+.2f", r.d_stlb);
            std::snprintf(c, sizeof(c), "%+.2f", r.d_l1d);
            std::snprintf(d, sizeof(d), "%+.2f", r.d_llc);
            table.print_row({r.name, spd, a, b, c, d});
            s_dtlb += r.d_dtlb;
            s_stlb += r.d_stlb;
            s_l1d += r.d_l1d;
            s_llc += r.d_llc;
        }
        const double n = rows.empty() ? 1.0 : double(rows.size());
        std::printf("mean MPKI delta: dTLB %+.2f  sTLB %+.2f  L1D %+.2f  "
                    "LLC %+.2f\n",
                    s_dtlb / n, s_stlb / n, s_l1d / n, s_llc / n);
    };

    print_group("Fig. 4a: Permit PGC wins", wins);
    print_group("Fig. 4b: Discard PGC wins", losses);
    std::printf("\nExpected: group (a) shows MPKI reductions "
                "(dTLB > sTLB, L1D -> LLC);\ngroup (b) shows MPKI "
                "increases across the board.\n");
    return 0;
}
