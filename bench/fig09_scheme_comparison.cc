/**
 * @file
 * Fig. 9 — Geomean IPC speedup over Discard PGC of every page-cross
 * scheme (Permit PGC, Discard PTW, ISO Storage, PPF, PPF+Dthr,
 * DRIPPER) for Berti, BOP and IPCP.
 *
 * Paper shape: Discard PGC > Permit PGC in geomean; Discard PTW sits
 * between them; ISO Storage ~ Permit PGC; PPF/PPF+Dthr do not beat
 * the Discard baseline; DRIPPER is the best for every prefetcher
 * (e.g. +1.7% over Permit... see Fig. 10 for Berti detail), beating
 * PPF by 2.4%/1.4%/1.6% on Berti/BOP/IPCP.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    std::printf("== Fig. 9: scheme comparison, geomean speedup over "
                "Discard PGC ==\n\n");

    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kBop,
                                       L1dPrefetcherKind::kIpcp};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    TablePrinter table({"scheme", "Berti", "BOP", "IPCP"});
    table.print_header();

    struct SchemeEntry
    {
        const char *label;
        SchemeConfig (*make)(L1dPrefetcherKind);
    };
    const SchemeEntry schemes[] = {
        {"Permit PGC", [](L1dPrefetcherKind) { return scheme_permit(); }},
        {"Discard PTW",
         [](L1dPrefetcherKind) { return scheme_discard_ptw(); }},
        {"ISO Storage",
         [](L1dPrefetcherKind) { return scheme_iso_storage(); }},
        {"PPF", [](L1dPrefetcherKind) { return scheme_ppf(false); }},
        {"PPF+Dthr", [](L1dPrefetcherKind) { return scheme_ppf(true); }},
        {"DRIPPER",
         [](L1dPrefetcherKind k) { return scheme_dripper(k); }},
    };

    // Baselines first (one per prefetcher, reused for all schemes).
    std::vector<std::vector<RunMetrics>> base(3);
    for (std::size_t k = 0; k < 3; ++k) {
        for (const WorkloadSpec &spec : roster) {
            base[k].push_back(run_single(
                make_config(kinds[k], scheme_discard()), spec, args.run));
        }
    }

    double dripper_geo[3] = {0, 0, 0};
    double ppf_geo[3] = {0, 0, 0};
    for (const SchemeEntry &entry : schemes) {
        std::vector<std::string> cells = {entry.label};
        for (std::size_t k = 0; k < 3; ++k) {
            SuiteAggregator agg;
            for (std::size_t w = 0; w < roster.size(); ++w) {
                const RunMetrics m = run_single(
                    make_config(kinds[k], entry.make(kinds[k])), roster[w],
                    args.run);
                agg.add(roster[w].suite, speedup(m, base[k][w]));
            }
            const double g = agg.overall_geomean();
            if (std::string(entry.label) == "DRIPPER") {
                dripper_geo[k] = g;
            }
            if (std::string(entry.label) == "PPF") {
                ppf_geo[k] = g;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.2f%%", (g - 1.0) * 100.0);
            cells.push_back(buf);
        }
        table.print_row(cells);
    }

    std::printf("\nDRIPPER over PPF: ");
    for (std::size_t k = 0; k < 3; ++k) {
        std::printf("%s %+.2f%%  ", names[k],
                    (dripper_geo[k] / ppf_geo[k] - 1.0) * 100.0);
    }
    std::printf("(paper: +2.4%% / +1.4%% / +1.6%%)\n");
    return 0;
}
