/**
 * @file
 * Fig. 9 — Geomean IPC speedup over Discard PGC of every page-cross
 * scheme (Permit PGC, Discard PTW, ISO Storage, PPF, PPF+Dthr,
 * DRIPPER) for Berti, BOP and IPCP.
 *
 * Paper shape: Discard PGC > Permit PGC in geomean; Discard PTW sits
 * between them; ISO Storage ~ Permit PGC; PPF/PPF+Dthr do not beat
 * the Discard baseline; DRIPPER is the best for every prefetcher
 * (e.g. +1.7% over Permit... see Fig. 10 for Berti detail), beating
 * PPF by 2.4%/1.4%/1.6% on Berti/BOP/IPCP.
 *
 * Runs the full (workload, scheme, prefetcher) matrix through the job
 * engine; accepts --jobs/--journal/--resume/--fail-fast and the
 * sharded-sweep flags --shard-dir/--shard-name/--lease-ttl/--merge.
 * Failed jobs are dropped from the aggregates and reported on stderr.
 */
#include <cmath>
#include <cstdio>

#include "sim/experiment.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    // Scheme 0 is the Discard PGC baseline every column normalizes to.
    const std::vector<std::string> schemes = {
        "discard", "permit", "discard-ptw", "iso",
        "ppf",     "ppf-dthr", "dripper"};
    const char *labels[] = {"Discard PGC", "Permit PGC", "Discard PTW",
                            "ISO Storage", "PPF",        "PPF+Dthr",
                            "DRIPPER"};
    const std::vector<std::string> pfs = {"berti", "bop", "ipcp"};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    const std::vector<JobSpec> matrix =
        make_matrix(roster, schemes, pfs, args.run);
    const EngineReport report = run_matrix(matrix, args);
    if (!report.all_completed()) {
        std::fputs(report.summary().c_str(), stderr);
    }

    std::printf("== Fig. 9: scheme comparison, geomean speedup over "
                "Discard PGC ==\n\n");

    TablePrinter table({"scheme", "Berti", "BOP", "IPCP"});
    table.print_header();

    const std::size_t S = schemes.size();
    const std::size_t R = roster.size();
    double dripper_geo[3] = {0, 0, 0};
    double ppf_geo[3] = {0, 0, 0};
    for (std::size_t s = 1; s < S; ++s) {
        std::vector<std::string> cells = {labels[s]};
        for (std::size_t p = 0; p < pfs.size(); ++p) {
            SuiteAggregator agg;
            for (std::size_t w = 0; w < R; ++w) {
                const double base = matrix_ipc(report, S, R, p, 0, w);
                const double ipc = matrix_ipc(report, S, R, p, s, w);
                if (std::isnan(base) || std::isnan(ipc) || base <= 0.0) {
                    continue;  // failed job: degrade to partial geomean
                }
                agg.add(roster[w].suite, ipc / base);
            }
            const double g = agg.overall_geomean();
            if (schemes[s] == "dripper") {
                dripper_geo[p] = g;
            }
            if (schemes[s] == "ppf") {
                ppf_geo[p] = g;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.2f%%", (g - 1.0) * 100.0);
            cells.push_back(buf);
        }
        table.print_row(cells);
    }

    std::printf("\nDRIPPER over PPF: ");
    for (std::size_t p = 0; p < pfs.size(); ++p) {
        if (ppf_geo[p] > 0.0) {
            std::printf("%s %+.2f%%  ", names[p],
                        (dripper_geo[p] / ppf_geo[p] - 1.0) * 100.0);
        }
    }
    std::printf("(paper: +2.4%% / +1.4%% / +1.6%%)\n");
    return report.all_completed() ? 0 : 1;
}
