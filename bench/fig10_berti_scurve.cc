/**
 * @file
 * Fig. 10 — Berti case study: per-workload speedups of Permit PGC and
 * DRIPPER over Discard PGC (top, printed as sorted S-curves) and the
 * per-suite geomean breakdown (bottom).
 *
 * Paper shape: DRIPPER above both statics for the vast majority of
 * workloads; geomean +2.5% over Permit and +1.7% over Discard; GAP
 * shows the largest suite gains; a short negative tail exists for
 * QMM workloads.
 *
 * Runs through the job engine (--jobs/--journal/--resume, plus the
 * sharded-sweep flags --shard-dir/--shard-name/--lease-ttl/--merge);
 * workloads whose jobs failed are dropped from the curves and
 * reported on stderr.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/experiment.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());

    const std::vector<std::string> schemes = {"discard", "permit",
                                              "dripper"};
    const std::vector<JobSpec> matrix =
        make_matrix(roster, schemes, {"berti"}, args.run);
    const EngineReport report = run_matrix(matrix, args);
    if (!report.all_completed()) {
        std::fputs(report.summary().c_str(), stderr);
    }

    std::printf("== Fig. 10: Berti + {Permit PGC, DRIPPER} over "
                "Berti + Discard PGC ==\n");

    const std::size_t S = schemes.size();
    const std::size_t R = roster.size();
    std::vector<double> permit_s, dripper_s;
    SuiteAggregator agg_permit, agg_dripper;
    for (std::size_t w = 0; w < R; ++w) {
        const double base = matrix_ipc(report, S, R, 0, 0, w);
        const double permit = matrix_ipc(report, S, R, 0, 1, w);
        const double dripper = matrix_ipc(report, S, R, 0, 2, w);
        if (std::isnan(base) || std::isnan(permit) ||
            std::isnan(dripper) || base <= 0.0) {
            continue;  // failed job: drop the workload, keep the curve
        }
        permit_s.push_back(permit / base);
        dripper_s.push_back(dripper / base);
        agg_permit.add(roster[w].suite, permit_s.back());
        agg_dripper.add(roster[w].suite, dripper_s.back());
    }

    auto print_curve = [](const char *label, std::vector<double> s) {
        std::sort(s.begin(), s.end());
        std::printf("%-10s S-curve:", label);
        for (double v : s) {
            std::printf(" %+.1f", (v - 1.0) * 100.0);
        }
        std::printf("\n");
    };
    std::printf("\n(top) sorted per-workload speedups [%%]:\n");
    print_curve("Permit", permit_s);
    print_curve("DRIPPER", dripper_s);

    std::printf("\n(bottom) per-suite geomean speedups over Discard "
                "PGC:\n");
    TablePrinter table({"suite", "Permit PGC", "DRIPPER"});
    table.print_header();
    for (const std::string &suite : agg_permit.suites()) {
        char p[32], d[32];
        std::snprintf(p, sizeof(p), "%+.2f%%",
                      (agg_permit.suite_geomean(suite) - 1.0) * 100.0);
        std::snprintf(d, sizeof(d), "%+.2f%%",
                      (agg_dripper.suite_geomean(suite) - 1.0) * 100.0);
        table.print_row({suite, p, d});
    }
    const double gp = agg_permit.overall_geomean();
    const double gd = agg_dripper.overall_geomean();
    std::printf("\nGEOMEAN  Permit %+.2f%%  DRIPPER %+.2f%%  "
                "(DRIPPER over Permit: %+.2f%%)\n",
                (gp - 1.0) * 100.0, (gd - 1.0) * 100.0,
                (gd / gp - 1.0) * 100.0);
    std::printf("paper: DRIPPER +1.7%% over Discard, +2.5%% over "
                "Permit\n");
    return report.all_completed() ? 0 : 1;
}
