/**
 * @file
 * Fig. 11 — Miss coverage (top) and prefetch accuracy (bottom) of
 * Berti with Permit PGC vs DRIPPER, relative to Discard PGC, per
 * suite. Coverage/accuracy consider all prefetches (in-page +
 * page-cross).
 *
 * Paper shape: DRIPPER matches Permit PGC's coverage gains (avg
 * +4.1% vs +4.2%) while *increasing* accuracy (+1.2%) where Permit
 * PGC loses accuracy (-2.6%).
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 11: coverage (top) and accuracy (bottom), "
                "Berti ==\n\n");

    struct SuiteAcc
    {
        double cov_permit = 0, cov_dripper = 0;
        double acc_base = 0, acc_permit = 0, acc_dripper = 0;
        unsigned n = 0;
    };
    std::map<std::string, SuiteAcc> by_suite;
    std::vector<std::string> order;

    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        const RunMetrics permit =
            run_single(make_config(k, scheme_permit()), spec, args.run);
        const RunMetrics dripper =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        auto [it, inserted] = by_suite.try_emplace(spec.suite);
        if (inserted) {
            order.push_back(spec.suite);
        }
        SuiteAcc &a = it->second;
        a.cov_permit += coverage_gain(permit, base);
        a.cov_dripper += coverage_gain(dripper, base);
        a.acc_base += base.pf_accuracy();
        a.acc_permit += permit.pf_accuracy();
        a.acc_dripper += dripper.pf_accuracy();
        ++a.n;
    }

    TablePrinter table({"suite", "cov Permit", "cov DRIPPER",
                        "acc Discard", "acc Permit", "acc DRIPPER"});
    table.print_header();
    SuiteAcc total;
    for (const std::string &suite : order) {
        const SuiteAcc &a = by_suite[suite];
        const double n = a.n;
        char c1[32], c2[32], a0[32], a1[32], a2[32];
        std::snprintf(c1, sizeof(c1), "%+.2f%%", 100.0 * a.cov_permit / n);
        std::snprintf(c2, sizeof(c2), "%+.2f%%", 100.0 * a.cov_dripper / n);
        std::snprintf(a0, sizeof(a0), "%.1f%%", 100.0 * a.acc_base / n);
        std::snprintf(a1, sizeof(a1), "%.1f%%", 100.0 * a.acc_permit / n);
        std::snprintf(a2, sizeof(a2), "%.1f%%", 100.0 * a.acc_dripper / n);
        table.print_row({suite, c1, c2, a0, a1, a2});
        total.cov_permit += a.cov_permit;
        total.cov_dripper += a.cov_dripper;
        total.acc_base += a.acc_base;
        total.acc_permit += a.acc_permit;
        total.acc_dripper += a.acc_dripper;
        total.n += a.n;
    }
    const double n = total.n;
    std::printf("\nAVERAGE coverage gain: Permit %+.2f%%  DRIPPER %+.2f%% "
                "(paper: +4.2%% / +4.1%%)\n",
                100.0 * total.cov_permit / n, 100.0 * total.cov_dripper / n);
    std::printf("AVERAGE accuracy delta vs Discard: Permit %+.2f%%  "
                "DRIPPER %+.2f%% (paper: -2.6%% / +1.2%%)\n",
                100.0 * (total.acc_permit - total.acc_base) / n,
                100.0 * (total.acc_dripper - total.acc_base) / n);
    return 0;
}
