/**
 * @file
 * Fig. 12 — dTLB/sTLB/L1D/LLC MPKI impact of Permit PGC and DRIPPER
 * over Discard PGC (Berti), printed as sorted per-workload delta
 * curves plus the average absolute reductions.
 *
 * Paper shape: DRIPPER reduces all four MPKIs for most workloads
 * (avg absolute reductions ~0.6 dTLB / 0.1 sTLB / 2.1 L1D / 0.2
 * LLC); Permit PGC reduces them for some workloads and inflates them
 * for others.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 12: MPKI deltas over Discard PGC (Berti) ==\n");

    struct Deltas
    {
        std::vector<double> dtlb, stlb, l1d, llc;
    };
    Deltas permit, dripper;

    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        const RunMetrics mp =
            run_single(make_config(k, scheme_permit()), spec, args.run);
        const RunMetrics md =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        permit.dtlb.push_back(mp.dtlb_mpki() - base.dtlb_mpki());
        permit.stlb.push_back(mp.stlb_mpki() - base.stlb_mpki());
        permit.l1d.push_back(mp.l1d_mpki() - base.l1d_mpki());
        permit.llc.push_back(mp.llc_mpki() - base.llc_mpki());
        dripper.dtlb.push_back(md.dtlb_mpki() - base.dtlb_mpki());
        dripper.stlb.push_back(md.stlb_mpki() - base.stlb_mpki());
        dripper.l1d.push_back(md.l1d_mpki() - base.l1d_mpki());
        dripper.llc.push_back(md.llc_mpki() - base.llc_mpki());
    }

    auto curve = [](const char *label, std::vector<double> v) {
        std::sort(v.begin(), v.end());
        std::printf("  %-16s:", label);
        for (double x : v) {
            std::printf(" %+.2f", x);
        }
        std::printf("   (mean %+.3f)\n", mean(v));
    };
    std::printf("\nPermit PGC (sorted per-workload MPKI delta; lower is "
                "better):\n");
    curve("dTLB", permit.dtlb);
    curve("sTLB", permit.stlb);
    curve("L1D", permit.l1d);
    curve("LLC", permit.llc);
    std::printf("\nDRIPPER:\n");
    curve("dTLB", dripper.dtlb);
    curve("sTLB", dripper.stlb);
    curve("L1D", dripper.l1d);
    curve("LLC", dripper.llc);
    std::printf("\npaper average DRIPPER reductions: dTLB 0.6, sTLB 0.1, "
                "L1D 2.1, LLC 0.2 (absolute MPKI)\n");
    return 0;
}
