/**
 * @file
 * Fig. 13 — Distribution of useful and useless page-cross prefetches
 * per kilo-instruction for Permit PGC vs DRIPPER (Berti).
 *
 * Paper shape: the useful-PGC distributions of Permit and DRIPPER
 * nearly coincide (same hits), while DRIPPER's useless-PGC
 * distribution is concentrated at ~0 and Permit's reaches large
 * values.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 13: useful/useless page-cross prefetches per "
                "kilo-instruction (Berti) ==\n");

    std::vector<double> up, ud, wp, wd;  // useful/useless, permit/dripper
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics mp =
            run_single(make_config(k, scheme_permit()), spec, args.run);
        const RunMetrics md =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        const double ki_p = double(mp.instructions) / 1000.0;
        const double ki_d = double(md.instructions) / 1000.0;
        up.push_back(double(mp.pgc_useful) / ki_p);
        wp.push_back(double(mp.pgc_useless) / ki_p);
        ud.push_back(double(md.pgc_useful) / ki_d);
        wd.push_back(double(md.pgc_useless) / ki_d);
    }

    auto curve = [](const char *label, std::vector<double> v) {
        std::sort(v.begin(), v.end());
        std::printf("  %-22s:", label);
        for (double x : v) {
            std::printf(" %.2f", x);
        }
        std::printf("   (mean %.3f, p90 %.3f)\n", mean(v),
                    percentile(v, 90));
    };
    std::printf("\nsorted per-workload PKI values:\n");
    curve("useful PGC (Permit)", up);
    curve("useful PGC (DRIPPER)", ud);
    curve("useless PGC (Permit)", wp);
    curve("useless PGC (DRIPPER)", wd);
    std::printf("\nExpected: useful distributions nearly identical; "
                "DRIPPER's useless PKI concentrated near zero.\n");
    return 0;
}
