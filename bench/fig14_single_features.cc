/**
 * @file
 * Fig. 14 — DRIPPER vs the three single-feature page-cross filters
 * built from its constituents (Delta, sTLB MPKI, sTLB Miss Rate),
 * over Discard PGC (Berti).
 *
 * Paper shape: DRIPPER above each single-feature filter for the vast
 * majority of workloads — it combines their benefits.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 14: DRIPPER vs its constituent single-feature "
                "filters (Berti) ==\n\n");

    const SchemeConfig schemes[] = {
        scheme_single_program(ProgramFeatureId::kDelta),
        scheme_single_system(SystemFeatureId::kStlbMpki),
        scheme_single_system(SystemFeatureId::kStlbMissRate),
        scheme_dripper(k),
    };

    std::vector<std::vector<double>> curves(4);
    std::vector<SuiteAggregator> aggs(4);
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        for (std::size_t s = 0; s < 4; ++s) {
            const RunMetrics m =
                run_single(make_config(k, schemes[s]), spec, args.run);
            const double sp = speedup(m, base);
            curves[s].push_back(sp);
            aggs[s].add(spec.suite, sp);
        }
    }

    for (std::size_t s = 0; s < 4; ++s) {
        std::vector<double> v = curves[s];
        std::sort(v.begin(), v.end());
        std::printf("%-22s geomean %+.2f%%  S-curve:",
                    schemes[s].name.c_str(),
                    (aggs[s].overall_geomean() - 1.0) * 100.0);
        for (double x : v) {
            std::printf(" %+.1f", (x - 1.0) * 100.0);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: DRIPPER's geomean above every "
                "single-feature filter.\n");
    return 0;
}
