/**
 * @file
 * Fig. 15 — DRIPPER vs DRIPPER-SF (system features only), over
 * Discard PGC (Berti). Shows the contribution of the program
 * feature.
 *
 * Paper shape: DRIPPER above DRIPPER-SF for most workloads, +0.9%
 * geomean.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 15: DRIPPER vs DRIPPER-SF (Berti) ==\n\n");

    SuiteAggregator agg_full, agg_sf, agg_rel;
    std::vector<double> rel;
    TablePrinter table({"workload", "DRIPPER", "DRIPPER-SF", "full/SF"});
    table.print_header();
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        const RunMetrics mf =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        const RunMetrics ms =
            run_single(make_config(k, scheme_dripper_sf(k)), spec,
                       args.run);
        const double sf = speedup(mf, base);
        const double ss = speedup(ms, base);
        agg_full.add(spec.suite, sf);
        agg_sf.add(spec.suite, ss);
        agg_rel.add(spec.suite, sf / ss);
        rel.push_back(sf / ss);
        char a[32], b[32], c[32];
        std::snprintf(a, sizeof(a), "%+.2f%%", (sf - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%", (ss - 1.0) * 100.0);
        std::snprintf(c, sizeof(c), "%+.2f%%", (sf / ss - 1.0) * 100.0);
        table.print_row({spec.name, a, b, c});
    }
    std::printf("\nGEOMEAN: DRIPPER %+.2f%%  DRIPPER-SF %+.2f%%  "
                "DRIPPER over DRIPPER-SF %+.2f%% (paper: +0.9%%)\n",
                (agg_full.overall_geomean() - 1.0) * 100.0,
                (agg_sf.overall_geomean() - 1.0) * 100.0,
                (agg_rel.overall_geomean() - 1.0) * 100.0);
    return 0;
}
