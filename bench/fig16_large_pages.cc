/**
 * @file
 * Fig. 16 — Evaluation with 4KB + 2MB pages (half the 2MB VA regions
 * are backed by large pages): Permit PGC, DRIPPER(filter@2MB) and
 * DRIPPER over Discard PGC (Berti).
 *
 * Paper shape: DRIPPER best (+2.2% over Permit... +1.3% over
 * Discard); DRIPPER beats DRIPPER(filter@2MB) by ~0.5% because
 * filtering at 4KB granularity still removes cache pollution inside
 * 2MB pages while 2MB-boundary crossings are too rare to filter.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 16: 4KB + 2MB pages (50%% large-page regions), "
                "Berti ==\n\n");

    auto with_lp = [&](const SchemeConfig &scheme) {
        MachineConfig cfg = make_config(k, scheme);
        cfg.vmem.large_page_fraction = 0.5;
        return cfg;
    };

    SuiteAggregator agg_permit, agg_d2m, agg_dripper;
    TablePrinter table({"workload", "Permit PGC", "DRIPPER@2MB",
                        "DRIPPER"});
    table.print_header();
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(with_lp(scheme_discard()), spec, args.run);
        const RunMetrics mp =
            run_single(with_lp(scheme_permit()), spec, args.run);
        const RunMetrics m2 = run_single(
            with_lp(scheme_dripper_filter_2mb(k)), spec, args.run);
        const RunMetrics md =
            run_single(with_lp(scheme_dripper(k)), spec, args.run);
        const double sp = speedup(mp, base);
        const double s2 = speedup(m2, base);
        const double sd = speedup(md, base);
        agg_permit.add(spec.suite, sp);
        agg_d2m.add(spec.suite, s2);
        agg_dripper.add(spec.suite, sd);
        char a[32], b[32], c[32];
        std::snprintf(a, sizeof(a), "%+.2f%%", (sp - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%", (s2 - 1.0) * 100.0);
        std::snprintf(c, sizeof(c), "%+.2f%%", (sd - 1.0) * 100.0);
        table.print_row({spec.name, a, b, c});
    }
    std::printf("\nGEOMEAN: Permit %+.2f%%  DRIPPER@2MB %+.2f%%  "
                "DRIPPER %+.2f%%\n",
                (agg_permit.overall_geomean() - 1.0) * 100.0,
                (agg_d2m.overall_geomean() - 1.0) * 100.0,
                (agg_dripper.overall_geomean() - 1.0) * 100.0);
    std::printf("paper: DRIPPER +1.3%% over Discard, +2.2%% over Permit, "
                "+0.5%% over DRIPPER@2MB\n");
    return 0;
}
