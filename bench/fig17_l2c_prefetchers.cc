/**
 * @file
 * Fig. 17 — Impact of L2C prefetching: geomean speedups of Berti +
 * {Permit PGC, DRIPPER} over Berti + Discard PGC when the baseline
 * uses different L2C prefetchers (none, SPP, IPCP, BOP).
 *
 * Paper shape: trends unchanged — Permit PGC below the baseline,
 * DRIPPER best regardless of L2C prefetcher; DRIPPER's margin is
 * slightly larger with no L2C prefetcher.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = args.select(seen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 17: L2C prefetcher sweep (Berti at L1D) ==\n\n");

    const L2PrefetcherKind l2s[] = {L2PrefetcherKind::kNone,
                                    L2PrefetcherKind::kSpp,
                                    L2PrefetcherKind::kIpcp,
                                    L2PrefetcherKind::kBop};
    const char *l2names[] = {"NoL2Pref", "SPP", "IPCP", "BOP"};

    TablePrinter table({"L2C prefetcher", "Permit PGC", "DRIPPER"});
    table.print_header();
    for (std::size_t i = 0; i < 4; ++i) {
        SuiteAggregator agg_permit, agg_dripper;
        for (const WorkloadSpec &spec : roster) {
            auto with_l2 = [&](const SchemeConfig &scheme) {
                MachineConfig cfg = make_config(k, scheme);
                cfg.l2_prefetcher = l2s[i];
                return cfg;
            };
            const RunMetrics base =
                run_single(with_l2(scheme_discard()), spec, args.run);
            const RunMetrics mp =
                run_single(with_l2(scheme_permit()), spec, args.run);
            const RunMetrics md =
                run_single(with_l2(scheme_dripper(k)), spec, args.run);
            agg_permit.add(spec.suite, speedup(mp, base));
            agg_dripper.add(spec.suite, speedup(md, base));
        }
        char a[32], b[32];
        std::snprintf(a, sizeof(a), "%+.2f%%",
                      (agg_permit.overall_geomean() - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%",
                      (agg_dripper.overall_geomean() - 1.0) * 100.0);
        table.print_row({l2names[i], a, b});
    }
    std::printf("\nExpected: DRIPPER positive and best in every column; "
                "Permit PGC negative.\n");
    return 0;
}
