/**
 * @file
 * Fig. 18 — Unseen workloads: per-workload speedups of Berti +
 * {Permit PGC, DRIPPER} over Berti + Discard PGC across the roster
 * that was *not* used to design DRIPPER.
 *
 * Paper shape: same trends as the seen set — DRIPPER +1.2% over
 * Discard and +2.1% over Permit in geomean.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster =
        args.select(unseen_workloads());
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    std::printf("== Fig. 18: unseen workloads (Berti) ==\n\n");

    SuiteAggregator agg_permit, agg_dripper;
    std::vector<double> sp, sd;
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, args.run);
        const RunMetrics mp =
            run_single(make_config(k, scheme_permit()), spec, args.run);
        const RunMetrics md =
            run_single(make_config(k, scheme_dripper(k)), spec, args.run);
        sp.push_back(speedup(mp, base));
        sd.push_back(speedup(md, base));
        agg_permit.add(spec.suite, sp.back());
        agg_dripper.add(spec.suite, sd.back());
    }
    auto curve = [](const char *label, std::vector<double> v) {
        std::sort(v.begin(), v.end());
        std::printf("%-10s S-curve:", label);
        for (double x : v) {
            std::printf(" %+.1f", (x - 1.0) * 100.0);
        }
        std::printf("\n");
    };
    curve("Permit", sp);
    curve("DRIPPER", sd);
    const double gp = agg_permit.overall_geomean();
    const double gd = agg_dripper.overall_geomean();
    std::printf("\nGEOMEAN (unseen): Permit %+.2f%%  DRIPPER %+.2f%%  "
                "DRIPPER over Permit %+.2f%%\n",
                (gp - 1.0) * 100.0, (gd - 1.0) * 100.0,
                (gd / gp - 1.0) * 100.0);
    std::printf("paper: DRIPPER +1.2%% over Discard, +2.1%% over "
                "Permit\n");
    return 0;
}
