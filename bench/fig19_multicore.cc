/**
 * @file
 * Fig. 19 — 8-core evaluation: distribution of weighted speedups of
 * Berti + {Permit PGC, DRIPPER} over Berti + Discard PGC across
 * randomly generated 8-core mixes.
 *
 * Paper shape: DRIPPER positive for the vast majority of mixes
 * (+2.0% geomean over Discard, +3.3% over Permit); Permit PGC
 * mostly negative.
 *
 * Default runs 24 mixes; --full runs the paper's 300. One engine job
 * per mix (--jobs N parallelizes across mixes); the isolation-IPC
 * cache is shared across workers. Failed mixes are dropped from the
 * distribution and reported on stderr.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/multicore.h"
#include "telemetry/telemetry.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = seen_workloads();
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    MulticoreConfig mc;
    mc.cores = 8;
    mc.warmup_insts = args.run.warmup_insts / 2;
    mc.measure_insts = args.run.measure_insts / 2;

    std::printf("== Fig. 19: 8-core mixes, weighted speedup over "
                "Discard PGC (%zu mixes) ==\n\n", args.mixes);

    const auto mixes = make_mixes(roster, args.mixes, mc.cores, args.seed);
    IsolationCache iso;

    // One job per mix; aux = {Permit speedup, DRIPPER speedup}. The
    // isolation cache is shared: get_or_compute is thread-safe and
    // isolation runs are deterministic, so worker count never changes
    // the numbers.
    std::vector<JobSpec> jobs;
    jobs.reserve(mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        JobSpec spec;
        spec.id = i;
        spec.workload.name = "mix" + std::to_string(i);
        spec.workload.suite = "mix";
        spec.scheme = "permit+dripper";
        spec.prefetcher = "berti";
        spec.run.warmup_insts = mc.warmup_insts;
        spec.run.measure_insts = mc.measure_insts;
        // Per Machine::run lifetime; a mix job runs several machines
        // (3 schemes + isolation runs), each with its own step count.
        spec.watchdog_steps =
            16 * mc.cores * (mc.warmup_insts + mc.measure_insts);
        // 3 scheme runs of `cores` workloads each, plus a share of the
        // isolation runs; mixes dominate any single-core cell.
        spec.estimated_cost = 3.0 * mc.cores *
                              double(mc.warmup_insts + mc.measure_insts);
        jobs.push_back(std::move(spec));
    }

    const std::unique_ptr<TelemetrySession> telemetry =
        make_telemetry(args);
    // run_engine so --shard-dir/--merge work here too: a 300-mix
    // --full sweep is the natural candidate for a multi-host farm.
    const EngineReport report = run_engine(
        jobs, args,
        [&](const JobSpec &spec, JobContext &ctx) {
            const std::vector<WorkloadSpec> &mix = mixes[spec.id];
            const std::string mixname = spec.workload.name;
            const double wb =
                weighted_ipc(k, scheme_discard(), mix, mc, iso, ctx.hook,
                             ctx.telemetry, mixname + ".discard",
                             ctx.trace_pid);
            const double wp =
                weighted_ipc(k, scheme_permit(), mix, mc, iso, ctx.hook,
                             ctx.telemetry, mixname + ".permit",
                             ctx.trace_pid);
            const double wd =
                weighted_ipc(k, scheme_dripper(k), mix, mc, iso,
                             ctx.hook, ctx.telemetry,
                             mixname + ".dripper", ctx.trace_pid);
            JobOutput out;
            out.row.workload = spec.workload.name;
            out.row.suite = spec.workload.suite;
            out.row.scheme = spec.scheme;
            out.row.prefetcher = spec.prefetcher;
            out.aux = {wb > 0.0 ? wp / wb : 0.0,
                       wb > 0.0 ? wd / wb : 0.0};
            return out;
        },
        telemetry.get());
    if (!report.all_completed()) {
        std::fputs(report.summary().c_str(), stderr);
    }

    std::vector<double> sp, sd;
    for (const JobResult &res : report.results) {
        if (res.status != JobStatus::kCompleted ||
            res.output.aux.size() < 2) {
            continue;
        }
        sp.push_back(res.output.aux[0]);
        sd.push_back(res.output.aux[1]);
        std::printf("mix %3zu: Permit %+6.2f%%  DRIPPER %+6.2f%%\n",
                    res.id, (sp.back() - 1.0) * 100.0,
                    (sd.back() - 1.0) * 100.0);
    }

    auto curve = [](const char *label, std::vector<double> v) {
        std::sort(v.begin(), v.end());
        std::printf("%-10s distribution:", label);
        for (double x : v) {
            std::printf(" %+.1f", (x - 1.0) * 100.0);
        }
        std::printf("\n");
    };
    std::printf("\n");
    curve("Permit", sp);
    curve("DRIPPER", sd);
    if (!sp.empty() && !sd.empty()) {
        std::printf("\nGEOMEAN: Permit %+.2f%%  DRIPPER %+.2f%%  DRIPPER "
                    "over Permit %+.2f%%\n",
                    (geomean(sp) - 1.0) * 100.0,
                    (geomean(sd) - 1.0) * 100.0,
                    (geomean(sd) / geomean(sp) - 1.0) * 100.0);
    }
    std::printf("paper: DRIPPER +2.0%% over Discard, +3.3%% over Permit "
                "across 300 mixes\n");
    if (telemetry != nullptr) {
        const std::string trace = telemetry->flush();
        if (!trace.empty()) {
            std::printf("trace events written to %s\n", trace.c_str());
        }
        if (!telemetry->dir().empty()) {
            std::printf("epoch timeseries written to %s\n",
                        telemetry->dir().c_str());
        }
    }
    return report.all_completed() ? 0 : 1;
}
