/**
 * @file
 * Fig. 19 — 8-core evaluation: distribution of weighted speedups of
 * Berti + {Permit PGC, DRIPPER} over Berti + Discard PGC across
 * randomly generated 8-core mixes.
 *
 * Paper shape: DRIPPER positive for the vast majority of mixes
 * (+2.0% geomean over Discard, +3.3% over Permit); Permit PGC
 * mostly negative.
 *
 * Default runs 24 mixes; --full runs the paper's 300.
 */
#include <algorithm>
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/multicore.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const std::vector<WorkloadSpec> roster = seen_workloads();
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;

    MulticoreConfig mc;
    mc.cores = 8;
    mc.warmup_insts = args.run.warmup_insts / 2;
    mc.measure_insts = args.run.measure_insts / 2;

    std::printf("== Fig. 19: 8-core mixes, weighted speedup over "
                "Discard PGC (%zu mixes) ==\n\n", args.mixes);

    const auto mixes = make_mixes(roster, args.mixes, mc.cores, args.seed);
    IsolationCache iso;
    std::vector<double> sp, sd;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const double wb = weighted_ipc(k, scheme_discard(), mixes[i], mc,
                                       iso);
        const double wp = weighted_ipc(k, scheme_permit(), mixes[i], mc,
                                       iso);
        const double wd = weighted_ipc(k, scheme_dripper(k), mixes[i], mc,
                                       iso);
        sp.push_back(wp / wb);
        sd.push_back(wd / wb);
        std::printf("mix %3zu: Permit %+6.2f%%  DRIPPER %+6.2f%%\n", i,
                    (sp.back() - 1.0) * 100.0, (sd.back() - 1.0) * 100.0);
    }

    auto curve = [](const char *label, std::vector<double> v) {
        std::sort(v.begin(), v.end());
        std::printf("%-10s distribution:", label);
        for (double x : v) {
            std::printf(" %+.1f", (x - 1.0) * 100.0);
        }
        std::printf("\n");
    };
    std::printf("\n");
    curve("Permit", sp);
    curve("DRIPPER", sd);
    std::printf("\nGEOMEAN: Permit %+.2f%%  DRIPPER %+.2f%%  DRIPPER "
                "over Permit %+.2f%%\n",
                (geomean(sp) - 1.0) * 100.0, (geomean(sd) - 1.0) * 100.0,
                (geomean(sd) / geomean(sp) - 1.0) * 100.0);
    std::printf("paper: DRIPPER +2.0%% over Discard, +3.3%% over Permit "
                "across 300 mixes\n");
    return 0;
}
