/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * structures on the simulated hot path — MokaFilter prediction and
 * training, cache accesses, TLB lookups, page walks, prefetcher
 * operate calls, and end-to-end simulated instructions per second.
 */
#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "dram/dram.h"
#include "filter/policies.h"
#include "prefetch/berti.h"
#include "prefetch/bop.h"
#include "prefetch/ipcp.h"
#include "sim/runner.h"
#include "trace/suites.h"
#include "vmem/walker.h"

using namespace moka;

static void
BM_FilterPredict(benchmark::State &state)
{
    FilterPtr f = make_dripper(L1dPrefetcherKind::kBerti);
    SystemSnapshot snap;
    Addr va = 0x10000000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f->permit(0x400123, VirtAddr{va}, 5, VirtAddr{va + 5 * 64},
                      snap));
        va += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterPredict);

static void
BM_FilterTrainCycle(benchmark::State &state)
{
    FilterPtr f = make_dripper(L1dPrefetcherKind::kBerti);
    SystemSnapshot snap;
    Addr va = 0x10000000;
    for (auto _ : state) {
        const VirtAddr target{va + 5 * 64};
        if (f->permit(0x400123, VirtAddr{va}, 5, target, snap)) {
            f->on_pgc_issued(target, PhysAddr{va + 5 * 64});
            f->on_pgc_eviction(PhysAddr{va + 5 * 64}, (va & 128) != 0);
        } else {
            f->on_l1d_demand_miss(target);
        }
        va += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterTrainCycle);

static void
BM_CacheAccess(benchmark::State &state)
{
    DramConfig dcfg;
    Dram dram(dcfg);
    CacheConfig cfg;
    cfg.sets = 64;
    cfg.ways = 8;
    Cache cache(cfg, &dram);
    Addr a = 0;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(PhysAddr{a}, AccessType::kLoad, now));
        a = (a + 64) % (1 << 20);
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void
BM_TlbLookup(benchmark::State &state)
{
    TlbConfig cfg;
    cfg.sets = 16;
    cfg.ways = 4;
    Tlb tlb(cfg);
    for (Addr p = 0; p < 64; ++p) {
        tlb.fill(VirtAddr{p << kPageBits}, PhysAddr{p << kPageBits},
                 false, false);
    }
    Addr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(VirtAddr{va}, 0, true));
        va = (va + kPageSize) % (128 << kPageBits);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

static void
BM_PageWalk(benchmark::State &state)
{
    DramConfig dcfg;
    Dram dram(dcfg);
    CacheConfig l2cfg;
    l2cfg.sets = 1024;
    l2cfg.ways = 8;
    Cache l2(l2cfg, &dram);
    VmemConfig vcfg;
    PageTable pt(vcfg);
    WalkerConfig wcfg;
    PageWalker walker(wcfg, &pt, &l2);
    Addr va = 0x10000000;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.walk(VirtAddr{va}, now, false));
        va += kPageSize;
        now += 50;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageWalk);

static void
BM_PrefetcherOperate(benchmark::State &state)
{
    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kIpcp,
                                       L1dPrefetcherKind::kBop};
    PrefetcherPtr pf = make_l1d_prefetcher(kinds[state.range(0)]);
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = 0x400123;
    for (auto _ : state) {
        ctx.vaddr += 64;
        ctx.now += 20;
        out.clear();
        pf->on_access(ctx, out);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetcherOperate)->Arg(0)->Arg(1)->Arg(2);

static void
BM_SimulatedMips(benchmark::State &state)
{
    // End-to-end: simulated instructions per wall-clock second.
    const WorkloadSpec spec = seen_workloads().front();
    const MachineConfig cfg = make_config(
        L1dPrefetcherKind::kBerti,
        scheme_dripper(L1dPrefetcherKind::kBerti));
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(spec));
    Machine machine(cfg, std::move(w));
    for (auto _ : state) {
        machine.run(10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatedMips);

BENCHMARK_MAIN();
