/**
 * @file
 * Extension study (paper §III-D1): DRIPPER vs DRIPPER augmented with
 * prefetcher-specialized features over the exported metadata word
 * (Berti's timeliness count / IPCP's class / BOP's best score).
 *
 * Paper hypothesis: "crafting specialized features that exploit
 * metadata of specific prefetchers has the potential to further
 * improve the effectiveness of a Page-Cross Filter."
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);
    const auto roster = args.select(seen_workloads());

    std::printf("== Extension: prefetcher-specialized features ==\n\n");

    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kBop,
                                       L1dPrefetcherKind::kIpcp};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    TablePrinter table({"prefetcher", "DRIPPER", "DRIPPER+Meta"});
    table.print_header();
    for (std::size_t k = 0; k < 3; ++k) {
        SuiteAggregator agg_base, agg_meta;
        for (const WorkloadSpec &spec : roster) {
            const RunMetrics base = run_single(
                make_config(kinds[k], scheme_discard()), spec, args.run);
            const RunMetrics md = run_single(
                make_config(kinds[k], scheme_dripper(kinds[k])), spec,
                args.run);
            const RunMetrics mm = run_single(
                make_config(kinds[k], scheme_dripper_specialized(kinds[k])),
                spec, args.run);
            agg_base.add(spec.suite, speedup(md, base));
            agg_meta.add(spec.suite, speedup(mm, base));
        }
        char a[32], b[32];
        std::snprintf(a, sizeof(a), "%+.2f%%",
                      (agg_base.overall_geomean() - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%",
                      (agg_meta.overall_geomean() - 1.0) * 100.0);
        table.print_row({names[k], a, b});
    }
    std::printf("\nNote: the specialized variant costs two extra weight "
                "tables (~1.28KB).\n");
    return 0;
}
