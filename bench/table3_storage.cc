/**
 * @file
 * Table III — Storage audit of DRIPPER: weight table, system feature
 * counters, vUB and pUB, per core. The paper reports 1.44KB total
 * (0.625KB weights + 0.00125KB system features + 0.024KB vUB +
 * 0.768KB pUB).
 */
#include <cstdio>

#include "filter/policies.h"

using namespace moka;

int
main()
{
    std::printf("== Table III: DRIPPER storage overhead ==\n\n");

    const L1dPrefetcherKind kinds[] = {L1dPrefetcherKind::kBerti,
                                       L1dPrefetcherKind::kBop,
                                       L1dPrefetcherKind::kIpcp};
    const char *names[] = {"Berti", "BOP", "IPCP"};

    for (std::size_t k = 0; k < 3; ++k) {
        const MokaConfig cfg = dripper_config(kinds[k]);
        const FilterPtr filter = make_dripper(kinds[k]);

        const std::uint64_t wt_bits =
            std::uint64_t(cfg.program_features.size()) * cfg.wt_entries *
            cfg.weight_bits;
        const std::uint64_t sf_bits = cfg.system_features.size() * 5;
        const std::uint64_t vub_bits = std::uint64_t(cfg.vub_entries) *
                                       (36 + 12);
        const std::uint64_t pub_bits = std::uint64_t(cfg.pub_entries) *
                                       (36 + 12);
        const double kb = 1.0 / (8.0 * 1000.0);  // paper uses KB = 1000B

        std::printf("DRIPPER for %s:\n", names[k]);
        std::printf("  program features  %zux%ux%ub  = %8.5f KB\n",
                    cfg.program_features.size(), cfg.wt_entries,
                    cfg.weight_bits, double(wt_bits) * kb);
        std::printf("  system features   %zux5b       = %8.5f KB\n",
                    cfg.system_features.size(), double(sf_bits) * kb);
        std::printf("  vUB               %ux(36+12)b = %8.5f KB\n",
                    cfg.vub_entries, double(vub_bits) * kb);
        std::printf("  pUB               %ux(36+12)b = %8.5f KB\n",
                    cfg.pub_entries, double(pub_bits) * kb);
        std::printf("  TOTAL (audited via storage_bits()) = %.3f KB "
                    "(paper: 1.44KB)\n\n",
                    double(filter->storage_bits()) * kb);
    }
    return 0;
}
