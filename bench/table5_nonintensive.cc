/**
 * @file
 * Table V — Geomean speedups of Berti + {Permit PGC, DRIPPER} over
 * Berti + Discard PGC across seen, unseen, and all (seen + unseen +
 * non-intensive) workloads.
 *
 * Paper values: Permit -0.8% / -0.9% / -0.6%; DRIPPER +1.7% / +1.2%
 * / +0.4% — DRIPPER helps intensive workloads without hurting the
 * non-intensive ones.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

struct Pair
{
    double permit;
    double dripper;
    std::vector<double> sp, sd;
};

Pair
evaluate(const std::vector<WorkloadSpec> &roster, const RunConfig &run)
{
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;
    Pair out;
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(k, scheme_discard()), spec, run);
        const RunMetrics mp =
            run_single(make_config(k, scheme_permit()), spec, run);
        const RunMetrics md =
            run_single(make_config(k, scheme_dripper(k)), spec, run);
        out.sp.push_back(speedup(mp, base));
        out.sd.push_back(speedup(md, base));
    }
    out.permit = geomean(out.sp);
    out.dripper = geomean(out.sd);
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parse_bench_args(argc, argv);

    std::printf("== Table V: seen / unseen / all (incl. non-intensive), "
                "Berti ==\n\n");

    const auto seen = args.select(seen_workloads());
    const auto unseen = args.select(unseen_workloads());
    const auto nonint =
        args.full ? non_intensive_workloads()
                  : sample(non_intensive_workloads(), args.workloads / 2);

    const Pair ps = evaluate(seen, args.run);
    const Pair pu = evaluate(unseen, args.run);
    const Pair pn = evaluate(nonint, args.run);

    // "All" pools every per-workload ratio.
    std::vector<double> all_p = ps.sp, all_d = ps.sd;
    all_p.insert(all_p.end(), pu.sp.begin(), pu.sp.end());
    all_p.insert(all_p.end(), pn.sp.begin(), pn.sp.end());
    all_d.insert(all_d.end(), pu.sd.begin(), pu.sd.end());
    all_d.insert(all_d.end(), pn.sd.begin(), pn.sd.end());

    TablePrinter table({"scheme", "Seen", "Unseen", "All"});
    table.print_header();
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%+.2f%%", (ps.permit - 1.0) * 100.0);
    std::snprintf(b, sizeof(b), "%+.2f%%", (pu.permit - 1.0) * 100.0);
    std::snprintf(c, sizeof(c), "%+.2f%%", (geomean(all_p) - 1.0) * 100.0);
    table.print_row({"Berti+Permit PGC", a, b, c});
    std::snprintf(a, sizeof(a), "%+.2f%%", (ps.dripper - 1.0) * 100.0);
    std::snprintf(b, sizeof(b), "%+.2f%%", (pu.dripper - 1.0) * 100.0);
    std::snprintf(c, sizeof(c), "%+.2f%%", (geomean(all_d) - 1.0) * 100.0);
    table.print_row({"Berti+DRIPPER", a, b, c});

    std::printf("\nnon-intensive only: Permit %+.2f%%  DRIPPER %+.2f%% "
                "(expected: both ~0, DRIPPER not harmful)\n",
                (pn.permit - 1.0) * 100.0, (pn.dripper - 1.0) * 100.0);
    std::printf("paper: Permit -0.8/-0.9/-0.6%%  DRIPPER "
                "+1.7/+1.2/+0.4%%\n");
    return 0;
}
