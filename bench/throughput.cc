/**
 * @file
 * Simulator-throughput harness behind BENCH_throughput.json: wall-
 * clocks a fixed matrix of (scheme x workload) single-core cells plus
 * one fig19-class 4-core mix cell, reports simulated instructions per
 * wall-clock second for each, and emits the JSON trajectory record.
 *
 * Two numbers matter downstream:
 *   - fig19_class_inst_per_sec: the headline rate on the 4-core mix
 *     that bottlenecks real sweeps (the ROADMAP throughput target is
 *     expressed against this cell);
 *   - geomean_inst_per_sec: geometric mean over every cell, the gate
 *     value tools/ci_perf_throughput.sh compares against the
 *     committed baseline.
 *
 * With --baseline <BENCH_throughput.json>, the run exits non-zero
 * when its geomean falls more than the baseline's max_regression_pct
 * below the baseline geomean. Absolute inst/sec is machine-specific,
 * so the gate is meant to compare runs on the same machine class
 * (CI runner vs CI runner, laptop vs laptop) — the committed numbers
 * double as the reference-machine trajectory.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "filter/policies.h"
#include "sim/machine.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

struct Cell
{
    const char *scheme;
    std::vector<const char *> workloads;  //!< one per core
    InstCount warmup;
    InstCount measure;
};

// The matrix: every PGC scheme over a streaming and an irregular
// single-core workload, plus the fig19-class 4-core mix the sweeps
// are bottlenecked on. Budgets are sized so a full default run stays
// in tens of seconds on a laptop while each cell simulates enough
// instructions that process startup is noise.
const Cell kCells[] = {
    {"discard", {"parsec.stream.0"}, 100'000, 1'000'000},
    {"permit", {"parsec.stream.0"}, 100'000, 1'000'000},
    {"ppf", {"parsec.stream.0"}, 100'000, 1'000'000},
    {"dripper", {"parsec.stream.0"}, 100'000, 1'000'000},
    {"discard", {"spec06.gather.1"}, 100'000, 1'000'000},
    {"permit", {"spec06.gather.1"}, 100'000, 1'000'000},
    {"ppf", {"spec06.gather.1"}, 100'000, 1'000'000},
    {"dripper", {"spec06.gather.1"}, 100'000, 1'000'000},
    {"dripper",
     {"spec06.gather.1", "spec06.stream.3", "spec06.hash.4",
      "spec06.chase.7"},
     200'000, 2'000'000},
};
constexpr std::size_t kFig19Cell = 8;  //!< index of the 4-core mix

const WorkloadSpec &
spec_of(const std::string &name)
{
    static const std::vector<WorkloadSpec> roster = seen_workloads();
    for (const WorkloadSpec &s : roster) {
        if (s.name == name) {
            return s;
        }
    }
    std::fprintf(stderr, "throughput: unknown workload %s\n",
                 name.c_str());
    std::exit(2);
}

SchemeConfig
scheme_of(const std::string &name)
{
    if (name == "dripper") {
        return scheme_dripper(L1dPrefetcherKind::kBerti);
    }
    if (name == "permit") {
        return scheme_permit();
    }
    if (name == "ppf") {
        return scheme_ppf(false);
    }
    return scheme_discard();
}

/** One timed simulation of @p cell; returns elapsed seconds. */
double
run_cell(const Cell &cell)
{
    const unsigned cores = static_cast<unsigned>(cell.workloads.size());
    MachineConfig cfg = default_config(cores);
    cfg.scheme = scheme_of(cell.scheme);
    cfg.l1d_prefetcher = L1dPrefetcherKind::kBerti;
    std::vector<WorkloadPtr> wl;
    for (const char *name : cell.workloads) {
        wl.push_back(make_workload(spec_of(name)));
    }
    const auto begin = std::chrono::steady_clock::now();
    Machine m(cfg, std::move(wl));
    m.run(cell.warmup);
    m.start_measurement();
    m.run(cell.measure);
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

/** Extract `"key": <number>` from a JSON baseline (flat schema). */
bool
json_number(const std::string &text, const std::string &key, double &out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) {
        return false;
    }
    out = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    int reps = 3;
    std::string out_path = "BENCH_throughput.json";
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: throughput [--reps N] [--out FILE] "
                         "[--baseline BENCH_throughput.json]\n");
            return 2;
        }
    }
    if (reps < 1) {
        reps = 1;
    }

#if defined(MOKASIM_FAST_BUILD)
    const char *build = "fast";
#else
    const char *build = "default";
#endif

    std::printf("== throughput: %zu cells, best of %d, %s build ==\n",
                std::size(kCells), reps, build);

    std::ostringstream cells_json;
    double log_sum = 0.0;
    double fig19_ips = 0.0;
    for (std::size_t c = 0; c < std::size(kCells); ++c) {
        const Cell &cell = kCells[c];
        const unsigned cores =
            static_cast<unsigned>(cell.workloads.size());
        const double insts = static_cast<double>(cores) *
                             static_cast<double>(cell.warmup +
                                                 cell.measure);
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            const double secs = run_cell(cell);
            if (best == 0.0 || secs < best) {
                best = secs;
            }
        }
        const double ips = insts / best;
        log_sum += std::log(ips);
        if (c == kFig19Cell) {
            fig19_ips = ips;
        }
        std::string label = std::string(cell.scheme) + "/";
        label += cores == 1 ? cell.workloads[0] : "mix4";
        std::printf("%-28s %2u core(s)  %7.1f ms  %9.0f inst/s\n",
                    label.c_str(), cores, best * 1e3, ips);
        if (c != 0) {
            cells_json << ",\n";
        }
        cells_json << "    {\"scheme\": \"" << cell.scheme
                   << "\", \"workload\": \""
                   << (cores == 1 ? cell.workloads[0] : "mix4")
                   << "\", \"cores\": " << cores << ", \"insts\": "
                   << static_cast<long long>(insts)
                   << ", \"wall_ms\": " << best * 1e3
                   << ", \"inst_per_sec\": "
                   << static_cast<long long>(ips) << "}";
    }
    const double geomean =
        std::exp(log_sum / static_cast<double>(std::size(kCells)));
    std::printf("geomean: %.0f inst/s   fig19-class: %.0f inst/s\n",
                geomean, fig19_ips);

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"build\": \"" << build << "\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"cells\": [\n"
        << cells_json.str() << "\n  ],\n"
        << "  \"fig19_class_inst_per_sec\": "
        << static_cast<long long>(fig19_ips) << ",\n"
        << "  \"geomean_inst_per_sec\": "
        << static_cast<long long>(geomean) << ",\n"
        // Single cells wobble up to ~15% run-to-run on a shared box
        // and runner hardware varies more, so the floor is sized to
        // catch step-function regressions (a reintroduced per-access
        // allocation, a de-flattened table), not single-digit drift.
        << "  \"max_regression_pct\": 25\n"
        << "}\n";
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    if (baseline_path.empty()) {
        return 0;
    }
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr, "throughput: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    double base_geomean = 0.0;
    double max_pct = 0.0;
    if (!json_number(text, "geomean_inst_per_sec", base_geomean) ||
        !json_number(text, "max_regression_pct", max_pct)) {
        std::fprintf(stderr,
                     "throughput: baseline %s lacks "
                     "geomean_inst_per_sec / max_regression_pct\n",
                     baseline_path.c_str());
        return 2;
    }
    const double floor = base_geomean * (1.0 - max_pct / 100.0);
    std::printf("baseline geomean: %.0f inst/s, floor at -%.0f%%: %.0f\n",
                base_geomean, max_pct, floor);
    if (geomean < floor) {
        std::fprintf(stderr,
                     "throughput: geomean %.0f inst/s regressed more "
                     "than %.0f%% below the baseline %.0f\n",
                     geomean, max_pct, base_geomean);
        return 1;
    }
    std::printf("throughput gate: PASS\n");
    return 0;
}
