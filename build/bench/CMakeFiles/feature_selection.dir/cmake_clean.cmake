file(REMOVE_RECURSE
  "CMakeFiles/feature_selection.dir/feature_selection.cc.o"
  "CMakeFiles/feature_selection.dir/feature_selection.cc.o.d"
  "feature_selection"
  "feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
