file(REMOVE_RECURSE
  "CMakeFiles/fig02_permit_vs_discard.dir/fig02_permit_vs_discard.cc.o"
  "CMakeFiles/fig02_permit_vs_discard.dir/fig02_permit_vs_discard.cc.o.d"
  "fig02_permit_vs_discard"
  "fig02_permit_vs_discard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_permit_vs_discard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
