# Empty compiler generated dependencies file for fig02_permit_vs_discard.
# This may be replaced when dependencies are built.
