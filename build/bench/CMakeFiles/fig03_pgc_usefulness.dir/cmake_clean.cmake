file(REMOVE_RECURSE
  "CMakeFiles/fig03_pgc_usefulness.dir/fig03_pgc_usefulness.cc.o"
  "CMakeFiles/fig03_pgc_usefulness.dir/fig03_pgc_usefulness.cc.o.d"
  "fig03_pgc_usefulness"
  "fig03_pgc_usefulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pgc_usefulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
