# Empty compiler generated dependencies file for fig03_pgc_usefulness.
# This may be replaced when dependencies are built.
