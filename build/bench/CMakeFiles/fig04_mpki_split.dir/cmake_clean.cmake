file(REMOVE_RECURSE
  "CMakeFiles/fig04_mpki_split.dir/fig04_mpki_split.cc.o"
  "CMakeFiles/fig04_mpki_split.dir/fig04_mpki_split.cc.o.d"
  "fig04_mpki_split"
  "fig04_mpki_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mpki_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
