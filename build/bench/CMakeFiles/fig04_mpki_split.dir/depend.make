# Empty dependencies file for fig04_mpki_split.
# This may be replaced when dependencies are built.
