file(REMOVE_RECURSE
  "CMakeFiles/fig09_scheme_comparison.dir/fig09_scheme_comparison.cc.o"
  "CMakeFiles/fig09_scheme_comparison.dir/fig09_scheme_comparison.cc.o.d"
  "fig09_scheme_comparison"
  "fig09_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
