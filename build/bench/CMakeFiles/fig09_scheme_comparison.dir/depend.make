# Empty dependencies file for fig09_scheme_comparison.
# This may be replaced when dependencies are built.
