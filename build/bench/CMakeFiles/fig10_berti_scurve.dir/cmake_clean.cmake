file(REMOVE_RECURSE
  "CMakeFiles/fig10_berti_scurve.dir/fig10_berti_scurve.cc.o"
  "CMakeFiles/fig10_berti_scurve.dir/fig10_berti_scurve.cc.o.d"
  "fig10_berti_scurve"
  "fig10_berti_scurve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_berti_scurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
