# Empty dependencies file for fig10_berti_scurve.
# This may be replaced when dependencies are built.
