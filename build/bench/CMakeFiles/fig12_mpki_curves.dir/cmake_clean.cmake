file(REMOVE_RECURSE
  "CMakeFiles/fig12_mpki_curves.dir/fig12_mpki_curves.cc.o"
  "CMakeFiles/fig12_mpki_curves.dir/fig12_mpki_curves.cc.o.d"
  "fig12_mpki_curves"
  "fig12_mpki_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mpki_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
