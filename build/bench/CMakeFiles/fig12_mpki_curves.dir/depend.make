# Empty dependencies file for fig12_mpki_curves.
# This may be replaced when dependencies are built.
