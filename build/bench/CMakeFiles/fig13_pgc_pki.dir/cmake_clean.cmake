file(REMOVE_RECURSE
  "CMakeFiles/fig13_pgc_pki.dir/fig13_pgc_pki.cc.o"
  "CMakeFiles/fig13_pgc_pki.dir/fig13_pgc_pki.cc.o.d"
  "fig13_pgc_pki"
  "fig13_pgc_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pgc_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
