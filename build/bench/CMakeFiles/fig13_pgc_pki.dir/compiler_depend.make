# Empty compiler generated dependencies file for fig13_pgc_pki.
# This may be replaced when dependencies are built.
