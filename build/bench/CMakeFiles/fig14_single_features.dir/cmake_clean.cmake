file(REMOVE_RECURSE
  "CMakeFiles/fig14_single_features.dir/fig14_single_features.cc.o"
  "CMakeFiles/fig14_single_features.dir/fig14_single_features.cc.o.d"
  "fig14_single_features"
  "fig14_single_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_single_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
