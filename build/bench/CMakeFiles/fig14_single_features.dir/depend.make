# Empty dependencies file for fig14_single_features.
# This may be replaced when dependencies are built.
