file(REMOVE_RECURSE
  "CMakeFiles/fig15_dripper_sf.dir/fig15_dripper_sf.cc.o"
  "CMakeFiles/fig15_dripper_sf.dir/fig15_dripper_sf.cc.o.d"
  "fig15_dripper_sf"
  "fig15_dripper_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dripper_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
