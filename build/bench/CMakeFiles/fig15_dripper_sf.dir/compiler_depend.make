# Empty compiler generated dependencies file for fig15_dripper_sf.
# This may be replaced when dependencies are built.
