file(REMOVE_RECURSE
  "CMakeFiles/fig16_large_pages.dir/fig16_large_pages.cc.o"
  "CMakeFiles/fig16_large_pages.dir/fig16_large_pages.cc.o.d"
  "fig16_large_pages"
  "fig16_large_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_large_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
