# Empty dependencies file for fig16_large_pages.
# This may be replaced when dependencies are built.
