file(REMOVE_RECURSE
  "CMakeFiles/fig17_l2c_prefetchers.dir/fig17_l2c_prefetchers.cc.o"
  "CMakeFiles/fig17_l2c_prefetchers.dir/fig17_l2c_prefetchers.cc.o.d"
  "fig17_l2c_prefetchers"
  "fig17_l2c_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_l2c_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
