# Empty compiler generated dependencies file for fig17_l2c_prefetchers.
# This may be replaced when dependencies are built.
