file(REMOVE_RECURSE
  "CMakeFiles/fig18_unseen.dir/fig18_unseen.cc.o"
  "CMakeFiles/fig18_unseen.dir/fig18_unseen.cc.o.d"
  "fig18_unseen"
  "fig18_unseen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_unseen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
