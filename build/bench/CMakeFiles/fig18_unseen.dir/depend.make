# Empty dependencies file for fig18_unseen.
# This may be replaced when dependencies are built.
