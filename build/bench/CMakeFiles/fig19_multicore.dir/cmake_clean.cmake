file(REMOVE_RECURSE
  "CMakeFiles/fig19_multicore.dir/fig19_multicore.cc.o"
  "CMakeFiles/fig19_multicore.dir/fig19_multicore.cc.o.d"
  "fig19_multicore"
  "fig19_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
