# Empty dependencies file for fig19_multicore.
# This may be replaced when dependencies are built.
