file(REMOVE_RECURSE
  "CMakeFiles/specialized_features.dir/specialized_features.cc.o"
  "CMakeFiles/specialized_features.dir/specialized_features.cc.o.d"
  "specialized_features"
  "specialized_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialized_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
