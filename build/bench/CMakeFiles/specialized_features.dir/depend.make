# Empty dependencies file for specialized_features.
# This may be replaced when dependencies are built.
