file(REMOVE_RECURSE
  "CMakeFiles/table5_nonintensive.dir/table5_nonintensive.cc.o"
  "CMakeFiles/table5_nonintensive.dir/table5_nonintensive.cc.o.d"
  "table5_nonintensive"
  "table5_nonintensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_nonintensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
