# Empty dependencies file for table5_nonintensive.
# This may be replaced when dependencies are built.
