file(REMOVE_RECURSE
  "CMakeFiles/custom_filter.dir/custom_filter.cpp.o"
  "CMakeFiles/custom_filter.dir/custom_filter.cpp.o.d"
  "custom_filter"
  "custom_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
