
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/mokasim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/mokasim.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/cache/replacement.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/mokasim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/common/stats.cc.o.d"
  "/root/repo/src/core/branch_pred.cc" "src/CMakeFiles/mokasim.dir/core/branch_pred.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/core/branch_pred.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/mokasim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/core/core.cc.o.d"
  "/root/repo/src/core/frontend.cc" "src/CMakeFiles/mokasim.dir/core/frontend.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/core/frontend.cc.o.d"
  "/root/repo/src/dram/dram.cc" "src/CMakeFiles/mokasim.dir/dram/dram.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/dram/dram.cc.o.d"
  "/root/repo/src/filter/adaptive_threshold.cc" "src/CMakeFiles/mokasim.dir/filter/adaptive_threshold.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/adaptive_threshold.cc.o.d"
  "/root/repo/src/filter/features.cc" "src/CMakeFiles/mokasim.dir/filter/features.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/features.cc.o.d"
  "/root/repo/src/filter/moka.cc" "src/CMakeFiles/mokasim.dir/filter/moka.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/moka.cc.o.d"
  "/root/repo/src/filter/perceptron.cc" "src/CMakeFiles/mokasim.dir/filter/perceptron.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/perceptron.cc.o.d"
  "/root/repo/src/filter/policies.cc" "src/CMakeFiles/mokasim.dir/filter/policies.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/policies.cc.o.d"
  "/root/repo/src/filter/ppf.cc" "src/CMakeFiles/mokasim.dir/filter/ppf.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/ppf.cc.o.d"
  "/root/repo/src/filter/system_features.cc" "src/CMakeFiles/mokasim.dir/filter/system_features.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/filter/system_features.cc.o.d"
  "/root/repo/src/prefetch/berti.cc" "src/CMakeFiles/mokasim.dir/prefetch/berti.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/berti.cc.o.d"
  "/root/repo/src/prefetch/bop.cc" "src/CMakeFiles/mokasim.dir/prefetch/bop.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/bop.cc.o.d"
  "/root/repo/src/prefetch/ipcp.cc" "src/CMakeFiles/mokasim.dir/prefetch/ipcp.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/ipcp.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/CMakeFiles/mokasim.dir/prefetch/next_line.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/next_line.cc.o.d"
  "/root/repo/src/prefetch/spp.cc" "src/CMakeFiles/mokasim.dir/prefetch/spp.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/spp.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/CMakeFiles/mokasim.dir/prefetch/stride.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/stride.cc.o.d"
  "/root/repo/src/prefetch/throttle.cc" "src/CMakeFiles/mokasim.dir/prefetch/throttle.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/prefetch/throttle.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/mokasim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/mokasim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/mokasim.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/mokasim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/mokasim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/sim/runner.cc.o.d"
  "/root/repo/src/trace/generators.cc" "src/CMakeFiles/mokasim.dir/trace/generators.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/trace/generators.cc.o.d"
  "/root/repo/src/trace/suites.cc" "src/CMakeFiles/mokasim.dir/trace/suites.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/trace/suites.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/mokasim.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/vmem/page_table.cc" "src/CMakeFiles/mokasim.dir/vmem/page_table.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/vmem/page_table.cc.o.d"
  "/root/repo/src/vmem/tlb.cc" "src/CMakeFiles/mokasim.dir/vmem/tlb.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/vmem/tlb.cc.o.d"
  "/root/repo/src/vmem/walker.cc" "src/CMakeFiles/mokasim.dir/vmem/walker.cc.o" "gcc" "src/CMakeFiles/mokasim.dir/vmem/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
