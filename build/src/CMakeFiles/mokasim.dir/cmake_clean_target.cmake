file(REMOVE_RECURSE
  "libmokasim.a"
)
