# Empty compiler generated dependencies file for mokasim.
# This may be replaced when dependencies are built.
