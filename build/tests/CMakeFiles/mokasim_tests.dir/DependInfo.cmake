
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_threshold.cc" "tests/CMakeFiles/mokasim_tests.dir/test_adaptive_threshold.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_adaptive_threshold.cc.o.d"
  "/root/repo/tests/test_berti.cc" "tests/CMakeFiles/mokasim_tests.dir/test_berti.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_berti.cc.o.d"
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/mokasim_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_bop.cc" "tests/CMakeFiles/mokasim_tests.dir/test_bop.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_bop.cc.o.d"
  "/root/repo/tests/test_branch_pred.cc" "tests/CMakeFiles/mokasim_tests.dir/test_branch_pred.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_branch_pred.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/mokasim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_model_check.cc" "tests/CMakeFiles/mokasim_tests.dir/test_cache_model_check.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_cache_model_check.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/mokasim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/mokasim_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/mokasim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/mokasim_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/mokasim_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_frontend.cc" "tests/CMakeFiles/mokasim_tests.dir/test_frontend.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_frontend.cc.o.d"
  "/root/repo/tests/test_generators.cc" "tests/CMakeFiles/mokasim_tests.dir/test_generators.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_generators.cc.o.d"
  "/root/repo/tests/test_hashing.cc" "tests/CMakeFiles/mokasim_tests.dir/test_hashing.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_hashing.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/mokasim_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_ipcp.cc" "tests/CMakeFiles/mokasim_tests.dir/test_ipcp.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_ipcp.cc.o.d"
  "/root/repo/tests/test_kernels_extra.cc" "tests/CMakeFiles/mokasim_tests.dir/test_kernels_extra.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_kernels_extra.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/mokasim_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_moka.cc" "tests/CMakeFiles/mokasim_tests.dir/test_moka.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_moka.cc.o.d"
  "/root/repo/tests/test_multicore.cc" "tests/CMakeFiles/mokasim_tests.dir/test_multicore.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_multicore.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/mokasim_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_perceptron.cc" "tests/CMakeFiles/mokasim_tests.dir/test_perceptron.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_perceptron.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/mokasim_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_replacement.cc" "tests/CMakeFiles/mokasim_tests.dir/test_replacement.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_replacement.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/mokasim_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/mokasim_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/mokasim_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_sat_counter.cc" "tests/CMakeFiles/mokasim_tests.dir/test_sat_counter.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_sat_counter.cc.o.d"
  "/root/repo/tests/test_schemes_property.cc" "tests/CMakeFiles/mokasim_tests.dir/test_schemes_property.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_schemes_property.cc.o.d"
  "/root/repo/tests/test_specialized.cc" "tests/CMakeFiles/mokasim_tests.dir/test_specialized.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_specialized.cc.o.d"
  "/root/repo/tests/test_spp.cc" "tests/CMakeFiles/mokasim_tests.dir/test_spp.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_spp.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/mokasim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stride.cc" "tests/CMakeFiles/mokasim_tests.dir/test_stride.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_stride.cc.o.d"
  "/root/repo/tests/test_suites.cc" "tests/CMakeFiles/mokasim_tests.dir/test_suites.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_suites.cc.o.d"
  "/root/repo/tests/test_system_features.cc" "tests/CMakeFiles/mokasim_tests.dir/test_system_features.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_system_features.cc.o.d"
  "/root/repo/tests/test_throttle.cc" "tests/CMakeFiles/mokasim_tests.dir/test_throttle.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_throttle.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/mokasim_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/mokasim_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_update_buffer.cc" "tests/CMakeFiles/mokasim_tests.dir/test_update_buffer.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_update_buffer.cc.o.d"
  "/root/repo/tests/test_walker.cc" "tests/CMakeFiles/mokasim_tests.dir/test_walker.cc.o" "gcc" "tests/CMakeFiles/mokasim_tests.dir/test_walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mokasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
