# Empty compiler generated dependencies file for mokasim_tests.
# This may be replaced when dependencies are built.
