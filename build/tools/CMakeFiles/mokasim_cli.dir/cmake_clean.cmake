file(REMOVE_RECURSE
  "CMakeFiles/mokasim_cli.dir/mokasim_cli.cc.o"
  "CMakeFiles/mokasim_cli.dir/mokasim_cli.cc.o.d"
  "mokasim_cli"
  "mokasim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mokasim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
