# Empty dependencies file for mokasim_cli.
# This may be replaced when dependencies are built.
