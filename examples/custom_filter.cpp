/**
 * @file
 * Designing a custom Page-Cross Filter with the MOKA framework: pick
 * any program features from the 55-feature bouquet and any system
 * features, choose static or adaptive thresholding, and measure the
 * result against DRIPPER — the workflow §III of the paper describes
 * for architects targeting their own prefetcher.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

/** A hand-rolled filter: PC^Delta + VA>>12 + LLC Miss Rate. */
SchemeConfig
my_filter()
{
    SchemeConfig s;
    s.name = "MyFilter";
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [] {
        MokaConfig cfg;
        cfg.name = "MyFilter";
        cfg.program_features = {ProgramFeatureId::kPcXorDelta,
                                ProgramFeatureId::kVaP12};
        cfg.system_features = {
            default_system_feature(SystemFeatureId::kLlcMissRate)};
        cfg.wt_entries = 512;   // halve the table: ~0.8KB total
        cfg.vub_entries = 4;
        cfg.pub_entries = 64;
        cfg.threshold.adaptive = true;
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

}  // namespace

int
main()
{
    const RunConfig run;
    const L1dPrefetcherKind kind = L1dPrefetcherKind::kBerti;
    const auto roster = sample(seen_workloads(), 10);

    // Print the custom filter's hardware budget first.
    const FilterPtr probe = my_filter().make_filter();
    std::printf("MyFilter storage: %.3f KB (DRIPPER: %.3f KB)\n\n",
                double(probe->storage_bits()) / 8000.0,
                double(make_dripper(kind)->storage_bits()) / 8000.0);

    TablePrinter table({"workload", "Permit", "MyFilter", "DRIPPER"});
    table.print_header();
    SuiteAggregator agg_permit, agg_mine, agg_dripper;
    for (const WorkloadSpec &spec : roster) {
        const RunMetrics base =
            run_single(make_config(kind, scheme_discard()), spec, run);
        const RunMetrics mp =
            run_single(make_config(kind, scheme_permit()), spec, run);
        const RunMetrics mm =
            run_single(make_config(kind, my_filter()), spec, run);
        const RunMetrics md =
            run_single(make_config(kind, scheme_dripper(kind)), spec, run);
        agg_permit.add(spec.suite, speedup(mp, base));
        agg_mine.add(spec.suite, speedup(mm, base));
        agg_dripper.add(spec.suite, speedup(md, base));
        char a[16], b[16], c[16];
        std::snprintf(a, sizeof(a), "%+.2f%%",
                      (speedup(mp, base) - 1.0) * 100.0);
        std::snprintf(b, sizeof(b), "%+.2f%%",
                      (speedup(mm, base) - 1.0) * 100.0);
        std::snprintf(c, sizeof(c), "%+.2f%%",
                      (speedup(md, base) - 1.0) * 100.0);
        table.print_row({spec.name, a, b, c});
    }
    std::printf("\ngeomean: Permit %+.2f%%  MyFilter %+.2f%%  DRIPPER "
                "%+.2f%%\n",
                (agg_permit.overall_geomean() - 1.0) * 100.0,
                (agg_mine.overall_geomean() - 1.0) * 100.0,
                (agg_dripper.overall_geomean() - 1.0) * 100.0);
    std::printf("\nSwap the feature list in my_filter() to explore the "
                "design space;\nbench/feature_selection automates the "
                "paper's greedy search.\n");
    return 0;
}
