/**
 * @file
 * Quickstart: simulate one workload under the three canonical
 * page-cross schemes (Discard PGC, Permit PGC, DRIPPER) with the
 * Berti L1D prefetcher, and print IPC plus the TLB/cache MPKIs the
 * paper's motivation section is built around.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

int
main()
{
    using namespace moka;

    // A page-cross-friendly workload: dense sequential streams whose
    // next virtual page is always about to be touched.
    const std::vector<WorkloadSpec> roster = seen_workloads();
    const WorkloadSpec spec = filter_suite(roster, "GAP").front();

    const RunConfig run;  // default: 200K warmup + 800K measured

    std::printf("workload: %s (suite %s)\n\n", spec.name.c_str(),
                spec.suite.c_str());

    const SchemeConfig schemes[] = {
        scheme_discard(),
        scheme_permit(),
        scheme_dripper(L1dPrefetcherKind::kBerti),
    };

    RunMetrics base;
    TablePrinter table({"scheme", "IPC", "speedup", "L1D MPKI",
                        "dTLB MPKI", "sTLB MPKI", "PGC acc"});
    table.print_header();
    for (const SchemeConfig &scheme : schemes) {
        const MachineConfig cfg =
            make_config(L1dPrefetcherKind::kBerti, scheme);
        const RunMetrics m = run_single(cfg, spec, run);
        if (scheme.policy == PgcPolicy::kDiscard) {
            base = m;
        }
        char ipc[32], spd[32], l1d[32], dtlb[32], stlb[32], acc[32];
        std::snprintf(ipc, sizeof(ipc), "%.3f", m.ipc());
        std::snprintf(spd, sizeof(spd), "%+.2f%%",
                      (speedup(m, base) - 1.0) * 100.0);
        std::snprintf(l1d, sizeof(l1d), "%.2f", m.l1d_mpki());
        std::snprintf(dtlb, sizeof(dtlb), "%.2f", m.dtlb_mpki());
        std::snprintf(stlb, sizeof(stlb), "%.2f", m.stlb_mpki());
        std::snprintf(acc, sizeof(acc), "%.2f", m.pgc_accuracy());
        table.print_row({scheme.name, ipc, spd, l1d, dtlb, stlb, acc});
    }
    std::printf("\nDRIPPER issues only the page-cross prefetches it "
                "predicts useful;\nsee bench/ for the full paper "
                "reproduction.\n");
    return 0;
}
