/**
 * @file
 * Scheme explorer: run any roster workload under every page-cross
 * scheme with a chosen L1D prefetcher, and print the full metric
 * panel (IPC, MPKIs, page-cross usefulness, walks). This is the
 * "which policy should my core use for this workload?" workflow.
 *
 * Usage:
 *   scheme_explorer [workload-name] [berti|ipcp|bop] [insts]
 *   scheme_explorer --list        # show roster names
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

int
main(int argc, char **argv)
{
    const std::vector<WorkloadSpec> roster = seen_workloads();

    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const WorkloadSpec &s : roster) {
            std::printf("%-28s %s\n", s.name.c_str(), s.suite.c_str());
        }
        return 0;
    }

    const std::string name = argc > 1 ? argv[1] : "parsec.stream.0";
    const L1dPrefetcherKind kind =
        parse_l1d_kind(argc > 2 ? argv[2] : "berti");
    RunConfig run;
    if (argc > 3) {
        run.measure_insts = std::strtoull(argv[3], nullptr, 10);
        run.warmup_insts = run.measure_insts / 4;
    }

    const WorkloadSpec *spec = nullptr;
    for (const WorkloadSpec &s : roster) {
        if (s.name == name) {
            spec = &s;
        }
    }
    if (spec == nullptr) {
        std::fprintf(stderr,
                     "unknown workload '%s' (try --list)\n", name.c_str());
        return 1;
    }

    std::printf("workload %s, prefetcher %s, %llu measured "
                "instructions\n\n",
                spec->name.c_str(), argc > 2 ? argv[2] : "berti",
                static_cast<unsigned long long>(run.measure_insts));

    const SchemeConfig schemes[] = {
        scheme_discard(),      scheme_permit(),
        scheme_discard_ptw(),  scheme_iso_storage(),
        scheme_ppf(false),     scheme_ppf(true),
        scheme_dripper(kind),  scheme_dripper_sf(kind),
    };

    TablePrinter table({"scheme", "IPC", "speedup", "L1D", "LLC", "dTLB",
                        "sTLB", "pgc+", "pgc-", "walks d/s"});
    table.print_header();
    RunMetrics base;
    for (const SchemeConfig &scheme : schemes) {
        const RunMetrics m =
            run_single(make_config(kind, scheme), *spec, run);
        if (scheme.policy == PgcPolicy::kDiscard) {
            base = m;
        }
        char ipc[16], spd[16], l1d[16], llc[16], dtlb[16], stlb[16],
            pu[16], pl[16], walks[32];
        std::snprintf(ipc, sizeof(ipc), "%.3f", m.ipc());
        std::snprintf(spd, sizeof(spd), "%+.2f%%",
                      (speedup(m, base) - 1.0) * 100.0);
        std::snprintf(l1d, sizeof(l1d), "%.1f", m.l1d_mpki());
        std::snprintf(llc, sizeof(llc), "%.1f", m.llc_mpki());
        std::snprintf(dtlb, sizeof(dtlb), "%.1f", m.dtlb_mpki());
        std::snprintf(stlb, sizeof(stlb), "%.1f", m.stlb_mpki());
        std::snprintf(pu, sizeof(pu), "%llu",
                      static_cast<unsigned long long>(m.pgc_useful));
        std::snprintf(pl, sizeof(pl), "%llu",
                      static_cast<unsigned long long>(m.pgc_useless));
        std::snprintf(walks, sizeof(walks), "%llu/%llu",
                      static_cast<unsigned long long>(m.demand_walks),
                      static_cast<unsigned long long>(m.spec_walks));
        table.print_row({scheme.name, ipc, spd, l1d, llc, dtlb, stlb, pu,
                         pl, walks});
    }
    return 0;
}
