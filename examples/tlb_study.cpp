/**
 * @file
 * Virtual-memory study: how footprint drives TLB pressure and what
 * page-cross prefetching does about it. Sweeps a streaming kernel
 * from dTLB-resident to sTLB-busting footprints and reports dTLB and
 * sTLB MPKI, demand/speculative walks, and IPC under Discard vs
 * Permit vs DRIPPER — the microarchitectural story behind the
 * paper's Fig. 4.
 */
#include <cstdio>

#include "filter/policies.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/generators.h"

using namespace moka;

namespace {

/** Build an on-the-fly stream workload of a given footprint. */
WorkloadPtr
stream_of(Addr footprint, std::uint64_t seed)
{
    StreamParams p;
    p.footprint = footprint;
    p.streams = 2;
    p.stride = 256;  // 4 lines: frequent page crossings
    InterleaveParams ip;
    ip.mem_ratio = 0.25;
    return make_synthetic("sweep", make_stream_kernel(p), ip, seed);
}

RunMetrics
measure(Addr footprint, const SchemeConfig &scheme)
{
    MachineConfig cfg = make_config(L1dPrefetcherKind::kBerti, scheme);
    std::vector<WorkloadPtr> w;
    w.push_back(stream_of(footprint, 123));
    Machine machine(cfg, std::move(w));
    machine.run(150'000);
    machine.start_measurement();
    machine.run(500'000);
    return machine.measured(0);
}

}  // namespace

int
main()
{
    std::printf("dTLB reach = 64 x 4KB = 256KB; sTLB reach = 1536 x 4KB "
                "= 6MB\n\n");
    TablePrinter table({"footprint", "scheme", "IPC", "dTLB MPKI",
                        "sTLB MPKI", "walks d", "walks s", "pgc acc"});
    table.print_header();

    const Addr footprints[] = {Addr{128} << 10, Addr{1} << 20,
                               Addr{4} << 20, Addr{16} << 20,
                               Addr{64} << 20};
    for (Addr fp : footprints) {
        const SchemeConfig schemes[] = {
            scheme_discard(), scheme_permit(),
            scheme_dripper(L1dPrefetcherKind::kBerti)};
        for (const SchemeConfig &scheme : schemes) {
            const RunMetrics m = measure(fp, scheme);
            char fps[32], ipc[32], d[32], s[32], wd[32], ws[32], acc[32];
            std::snprintf(fps, sizeof(fps), "%lluKB",
                          static_cast<unsigned long long>(fp >> 10));
            std::snprintf(ipc, sizeof(ipc), "%.3f", m.ipc());
            std::snprintf(d, sizeof(d), "%.2f", m.dtlb_mpki());
            std::snprintf(s, sizeof(s), "%.2f", m.stlb_mpki());
            std::snprintf(wd, sizeof(wd), "%llu",
                          static_cast<unsigned long long>(m.demand_walks));
            std::snprintf(ws, sizeof(ws), "%llu",
                          static_cast<unsigned long long>(m.spec_walks));
            std::snprintf(acc, sizeof(acc), "%.2f", m.pgc_accuracy());
            table.print_row({fps, scheme.name, ipc, d, s, wd, ws, acc});
        }
    }
    std::printf("\nExpected: page-cross prefetching turns demand walks "
                "into speculative ones\nand erases dTLB misses once the "
                "footprint exceeds each TLB's reach.\n");
    return 0;
}
