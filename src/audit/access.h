/**
 * @file
 * AuditAccess: the one befriended window into private simulator
 * state. The auditors use it to *inspect* internals without widening
 * any public API, and tests/test_audit.cc uses its corrupt_* helpers
 * to *inject* the exact metadata drift the auditors must detect.
 * Nothing outside src/audit/ and the audit tests should include this.
 */
#ifndef MOKASIM_AUDIT_ACCESS_H
#define MOKASIM_AUDIT_ACCESS_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "cache/replacement.h"
#include "common/sat_counter.h"
#include "common/types.h"
#include "dram/dram.h"
#include "filter/adaptive_threshold.h"
#include "filter/moka.h"
#include "filter/perceptron.h"
#include "filter/system_features.h"
#include "filter/update_buffer.h"
#include "sim/machine.h"
#include "vmem/page_table.h"
#include "vmem/tlb.h"
#include "vmem/walker.h"

namespace moka {

/** See file comment. */
struct AuditAccess
{
    // ----------------------------------------------------------------
    // Cache
    // ----------------------------------------------------------------

    /** Value snapshot of one cache block (private Cache::Block). */
    struct BlockView
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool pgc = false;
        bool used = false;
    };

    static BlockView
    cache_block(const Cache &c, std::uint32_t set, std::uint32_t way)
    {
        const std::size_t i =
            static_cast<std::size_t>(set) * c.cfg_.ways + way;
        const std::uint8_t f = c.flags_[i];
        return {c.tags_[i] & ~Cache::kValidTagBit,
                (c.tags_[i] & Cache::kValidTagBit) != 0,
                (f & Cache::kFlagDirty) != 0,
                (f & Cache::kFlagPrefetched) != 0,
                (f & Cache::kFlagPgc) != 0,
                (f & Cache::kFlagUsed) != 0};
    }

    static std::size_t
    cache_inflight_count(const Cache &c)
    {
        return c.inflight_.size();
    }

    static const ReplacementPolicy &
    cache_replacement(const Cache &c)
    {
        return *c.repl_;
    }

    /** Corruption: flip the PCB of block (set, way). */
    static void
    corrupt_cache_pcb(Cache &c, std::uint32_t set, std::uint32_t way,
                      bool pgc)
    {
        const std::size_t i =
            static_cast<std::size_t>(set) * c.cfg_.ways + way;
        if (pgc) {
            c.flags_[i] |= Cache::kFlagPgc;
        } else {
            c.flags_[i] &= static_cast<std::uint8_t>(~Cache::kFlagPgc);
        }
    }

    /** Corruption: clone way 0's tag into way 1 of @p set. */
    static void
    corrupt_cache_duplicate_tag(Cache &c, std::uint32_t set)
    {
        const std::size_t base =
            static_cast<std::size_t>(set) * c.cfg_.ways;
        c.tags_[base] |= Cache::kValidTagBit;
        c.tags_[base + 1] = c.tags_[base];
        c.flags_[base + 1] = c.flags_[base];
        c.fill_done_[base + 1] = c.fill_done_[base];
    }

    /** Locate the first valid block; false when the cache is empty. */
    static bool
    find_valid_block(const Cache &c, std::uint32_t &set,
                     std::uint32_t &way)
    {
        for (std::uint32_t s = 0; s < c.cfg_.sets; ++s) {
            for (std::uint32_t w = 0; w < c.cfg_.ways; ++w) {
                if (cache_block(c, s, w).valid) {
                    set = s;
                    way = w;
                    return true;
                }
            }
        }
        return false;
    }

    // ----------------------------------------------------------------
    // TLB
    // ----------------------------------------------------------------

    /** Value snapshot of one TLB entry (private Tlb::Entry). */
    struct TlbEntryView
    {
        Addr vpn = 0;
        Addr page_base = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    static std::size_t tlb_small_slots(const Tlb &t)
    {
        return t.small_.vpn.size();
    }
    static std::size_t tlb_large_slots(const Tlb &t)
    {
        return t.large_.vpn.size();
    }
    static std::uint64_t tlb_lru_stamp(const Tlb &t) { return t.lru_stamp_; }

    static TlbEntryView
    tlb_entry(const Tlb::EntryArray &arr, std::size_t slot)
    {
        return {arr.vpn[slot] & ~Tlb::kValidVpnBit, arr.page_base[slot],
                (arr.vpn[slot] & Tlb::kValidVpnBit) != 0, arr.lru[slot]};
    }

    static TlbEntryView
    tlb_small_entry(const Tlb &t, std::size_t slot)
    {
        return tlb_entry(t.small_, slot);
    }

    static TlbEntryView
    tlb_large_entry(const Tlb &t, std::size_t slot)
    {
        return tlb_entry(t.large_, slot);
    }

    /**
     * Corruption: shift the page base of the first valid small-page
     * entry by @p delta_bytes. Returns false when the TLB is empty.
     */
    static bool
    corrupt_tlb_page_base(Tlb &t, Addr delta_bytes)
    {
        for (std::size_t i = 0; i < t.small_.vpn.size(); ++i) {
            if ((t.small_.vpn[i] & Tlb::kValidVpnBit) != 0) {
                t.small_.page_base[i] += delta_bytes;
                return true;
            }
        }
        return false;
    }

    // ----------------------------------------------------------------
    // Page table
    // ----------------------------------------------------------------

    static const FlatAddrMap &
    page_map(const PageTable &pt)
    {
        return pt.page_map_;
    }

    static const FlatAddrMap &
    large_page_map(const PageTable &pt)
    {
        return pt.large_page_map_;
    }

    static const FrameBitmap &
    used_frames(const PageTable &pt)
    {
        return pt.used_frames_;
    }

    static const FrameBitmap &
    used_large_frames(const PageTable &pt)
    {
        return pt.used_large_frames_;
    }

    static Addr phys_bytes(const PageTable &pt) { return pt.cfg_.phys_bytes; }

    // ----------------------------------------------------------------
    // Walker / page-structure caches
    // ----------------------------------------------------------------

    struct PscView
    {
        std::vector<std::pair<Addr, std::uint64_t>> entries;  //!< prefix, lru
        unsigned capacity = 0;
        std::uint64_t lru_stamp = 0;
        std::uint64_t hits = 0;
        std::uint64_t lookups = 0;
    };

    static PscView
    psc(const StructureCache &s)
    {
        PscView v;
        v.capacity = s.entries_;
        v.lru_stamp = s.lru_stamp_;
        v.hits = s.hits_;
        v.lookups = s.lookups_;
        for (const StructureCache::Entry &e : s.data_) {
            v.entries.emplace_back(e.prefix, e.lru);
        }
        return v;
    }

    static const StructureCache &walker_pde(const PageWalker &w) { return w.psc_pde_; }
    static const StructureCache &walker_pdpte(const PageWalker &w) { return w.psc_pdpte_; }
    static const StructureCache &walker_pml4(const PageWalker &w) { return w.psc_pml4_; }
    static const StructureCache &walker_pml5(const PageWalker &w) { return w.psc_pml5_; }
    static std::size_t walker_slots(const PageWalker &w) { return w.walker_free_.size(); }
    static unsigned walker_configured_slots(const PageWalker &w)
    {
        return w.cfg_.concurrent_walks;
    }

    /** Corruption: duplicate the PSC's first entry (PDE PSC). */
    static void
    corrupt_psc_duplicate(PageWalker &w)
    {
        StructureCache &s = w.psc_pde_;
        if (!s.data_.empty()) {
            s.data_.push_back(s.data_.front());
        }
    }

    // ----------------------------------------------------------------
    // Update buffers
    // ----------------------------------------------------------------

    template <class AddrT>
    static std::size_t ub_fifo_size(const UpdateBuffer<AddrT> &b)
    {
        return b.count_;
    }

    template <class AddrT>
    static std::uint64_t ub_stale(const UpdateBuffer<AddrT> &b)
    {
        return b.stale_;
    }

    /** Occupied FIFO ring slots (live and stale) as (key, seq). */
    template <class AddrT>
    static std::vector<std::pair<AddrT, std::uint64_t>>
    ub_fifo(const UpdateBuffer<AddrT> &b)
    {
        std::vector<std::pair<AddrT, std::uint64_t>> out;
        out.reserve(b.count_);
        for (std::size_t i = 0, pos = b.head_; i < b.count_;
             ++i, pos = b.next(pos)) {
            out.emplace_back(b.ring_[pos].rec.block, b.ring_[pos].seq);
        }
        return out;
    }

    /** Live records with their slot sequence numbers. */
    template <class AddrT>
    static std::vector<std::pair<DecisionRecordT<AddrT>, std::uint64_t>>
    ub_records(const UpdateBuffer<AddrT> &b)
    {
        std::vector<std::pair<DecisionRecordT<AddrT>, std::uint64_t>> out;
        out.reserve(b.live_);
        // Ring order is insertion order, so seq is already ascending;
        // the sort stays as a belt against future layout changes.
        for (std::size_t i = 0, pos = b.head_; i < b.count_;
             ++i, pos = b.next(pos)) {
            if (b.ring_[pos].live) {
                out.emplace_back(b.ring_[pos].rec, b.ring_[pos].seq);
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b2) {
                      return a.second < b2.second;
                  });
        return out;
    }

    /** Corruption: append a phantom FIFO slot nothing indexed. */
    template <class AddrT>
    static void
    corrupt_ub_phantom_fifo_slot(UpdateBuffer<AddrT> &b, AddrT key)
    {
        if (b.count_ == b.ring_.size()) {
            b.compact();
        }
        const std::size_t tail = (b.head_ + b.count_) % b.ring_.size();
        b.ring_[tail].rec = DecisionRecordT<AddrT>{};
        b.ring_[tail].rec.block = key;
        b.ring_[tail].seq = ~std::uint64_t{0};
        b.ring_[tail].live = false;
        // count_ grows with neither live_ nor stale_: the FIFO
        // bookkeeping invariant is now broken, as intended.
        ++b.count_;
    }

    /** Corruption: blow the feature count of one live record. */
    template <class AddrT>
    static bool
    corrupt_ub_feature_count(UpdateBuffer<AddrT> &b)
    {
        for (std::size_t i = 0, pos = b.head_; i < b.count_;
             ++i, pos = b.next(pos)) {
            if (b.ring_[pos].live) {
                b.ring_[pos].rec.num_features = static_cast<std::uint8_t>(
                    DecisionRecordT<AddrT>::kMaxFeatures + 1);
                return true;
            }
        }
        return false;
    }

    // ----------------------------------------------------------------
    // Perceptron / thresholds / filter
    // ----------------------------------------------------------------

    /** Corruption: write @p raw into weight @p index, bypassing clamp. */
    static void
    corrupt_weight(WeightTable &t, std::uint32_t index, std::int16_t raw)
    {
        t.weights_[index].value_ = raw;
    }

    /** Corruption: force T_a to @p value, bypassing clamp. */
    static void
    corrupt_threshold(AdaptiveThreshold &t, int value)
    {
        t.ta_ = value;
    }

    static std::size_t
    filter_num_tables(const MokaFilter &f)
    {
        return f.slots_.size();
    }

    static std::size_t
    filter_table_entries(const MokaFilter &f)
    {
        return std::size_t{1} << f.index_bits_;
    }

    static int
    filter_weight(const MokaFilter &f, std::size_t table,
                  std::uint32_t index)
    {
        return f.weight_at(table, index);
    }

    static std::pair<int, int>
    filter_weight_rails(const MokaFilter &f)
    {
        return {f.wmin_, f.wmax_};
    }

    /** Corruption: write @p raw into arena weight, bypassing rails. */
    static void
    corrupt_filter_weight(MokaFilter &f, std::size_t table,
                          std::uint32_t index, std::int16_t raw)
    {
        f.weights_[(table << f.index_bits_) + index] = raw;
    }

    static const std::vector<SystemFeature> &
    filter_system(const MokaFilter &f)
    {
        return f.system_;
    }

    static const SignedSatCounter &
    system_weight(const SystemFeature &sf)
    {
        return sf.weight_;
    }

    static const VirtUpdateBuffer &filter_vub(const MokaFilter &f) { return f.vub_; }
    static const PhysUpdateBuffer &filter_pub(const MokaFilter &f) { return f.pub_; }
    static PhysUpdateBuffer &filter_pub_mut(MokaFilter &f) { return f.pub_; }
    static VirtUpdateBuffer &filter_vub_mut(MokaFilter &f) { return f.vub_; }

    static const AdaptiveThreshold &
    filter_thresholds(const MokaFilter &f)
    {
        return f.thresholds_;
    }

    static AdaptiveThreshold &
    filter_thresholds_mut(MokaFilter &f)
    {
        return f.thresholds_;
    }

    static bool filter_pending_valid(const MokaFilter &f) { return f.pending_valid_; }
    static const VirtDecisionRecord &filter_pending(const MokaFilter &f)
    {
        return f.pending_;
    }

    // ----------------------------------------------------------------
    // DRAM
    // ----------------------------------------------------------------

    struct BankView
    {
        std::uint64_t open_row = 0;
        Cycle next_free = 0;
    };

    static std::size_t dram_bank_count(const Dram &d) { return d.banks_.size(); }
    static std::size_t dram_channel_count(const Dram &d)
    {
        return d.channel_next_free_.size();
    }
    static const DramConfig &dram_config(const Dram &d) { return d.cfg_; }

    static BankView
    dram_bank(const Dram &d, std::size_t i)
    {
        const Dram::Bank &b = d.banks_[i];
        return {b.open_row, b.next_free};
    }

    /** Corruption: open a row id outside the addressable range. */
    static void
    corrupt_dram_open_row(Dram &d, std::size_t bank, std::uint64_t row)
    {
        d.banks_[bank].open_row = row;
    }

    // ----------------------------------------------------------------
    // Machine plumbing (end-to-end corruption tests)
    // ----------------------------------------------------------------

    static Cache &core_l1d(CoreComplex &core) { return *core.l1d_; }
    static Tlb &core_dtlb(CoreComplex &core) { return *core.dtlb_; }
    static PageCrossFilter *core_filter(CoreComplex &core)
    {
        return core.filter_.get();
    }
};

}  // namespace moka

#endif  // MOKASIM_AUDIT_ACCESS_H
