/**
 * @file
 * Implementation of the invariant auditors and the global audit
 * failure handler behind common/check.h.
 *
 * Audited component registry — tools/simlint (rule L4) verifies
 * that every stateful class declared in src/{cache,dram,vmem,filter}
 * headers is named in this file:
 *
 *   Cache, ReplacementPolicy (audit_state), Tlb, PageTable,
 *   PageWalker, StructureCache, UpdateBuffer, WeightTable,
 *   SignedSatCounter, SystemFeature, AdaptiveThreshold, MokaFilter,
 *   PageCrossFilter, Dram.
 *
 * LINT_AUDIT_EXEMPT: FeatureExtractor — a bounded history ring whose
 * corruption changes predictions, never legality; it has no
 * cross-structure invariants to audit.
 * LINT_AUDIT_EXEMPT: UnsignedSatCounter — clamped at both rails by
 * construction; covered indirectly wherever it is embedded.
 * LINT_AUDIT_EXEMPT: LruPolicy — covered through audit_cache, which
 * runs ReplacementPolicy::audit_state on every cache's policy; the
 * class moved to the header only to devirtualize the hot calls.
 */
#include "audit/audit.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "audit/access.h"

namespace moka {
namespace audit {
namespace {

// Atomics: audit failures can now be reported concurrently from
// job-engine worker threads (see sim/jobs/engine.h).
std::atomic<std::uint64_t> g_failures{0};
std::atomic<bool> g_fatal{MOKASIM_AUDIT_LEVEL >= 2};

void
emit_failure(const char *where, int line, const char *what)
{
    g_failures.fetch_add(1, std::memory_order_relaxed);
    if (line > 0) {
        std::fprintf(stderr, "mokasim audit failure: %s:%d: %s\n", where,  // LINT_LOG_OK: crash diagnostic
                     line, what);
    } else {
        std::fprintf(stderr, "mokasim audit failure: %s: %s\n", where,  // LINT_LOG_OK: crash diagnostic
                     what);
    }
    if (g_fatal.load(std::memory_order_relaxed)) {
        std::abort();
    }
}

}  // namespace

void
report_failure(const char *file, int line, const char *what)
{
    emit_failure(file, line, what);
}

void
require_failure(const char *file, int line, const char *what)
{
    std::fprintf(stderr, "mokasim requirement violated: %s:%d: %s\n",  // LINT_LOG_OK: crash diagnostic
                 file, line, what);
    std::abort();
}

std::uint64_t
failure_count()
{
    return g_failures.load(std::memory_order_relaxed);
}

void
reset_failures()
{
    g_failures.store(0, std::memory_order_relaxed);
}

bool
fatal()
{
    return g_fatal.load(std::memory_order_relaxed);
}

void
set_fatal(bool value)
{
    g_fatal.store(value, std::memory_order_relaxed);
}

}  // namespace audit

// ---------------------------------------------------------------------------
// AuditReport
// ---------------------------------------------------------------------------

void
AuditReport::fail(const std::string &component, const std::string &message)
{
    findings_.push_back({component, message});
    if (forward_) {
        audit::report_failure(component.c_str(), 0, message.c_str());
    }
}

std::string
AuditReport::to_string() const
{
    std::string out;
    for (const AuditFinding &f : findings_) {
        out += f.component;
        out += ": ";
        out += f.message;
        out += '\n';
    }
    return out;
}

namespace audit {

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

void
audit_cache(const Cache &cache, AuditReport &report)
{
    const CacheConfig &cfg = cache.config();
    const std::string &name = cfg.name;

    for (std::uint32_t set = 0; set < cfg.sets; ++set) {
        std::unordered_set<Addr> tags;
        for (std::uint32_t way = 0; way < cfg.ways; ++way) {
            const AuditAccess::BlockView b =
                AuditAccess::cache_block(cache, set, way);
            if (!b.valid) {
                continue;
            }
            if (!tags.insert(b.tag).second) {
                report.fail(name, "duplicate tag " +
                                      std::to_string(b.tag) + " in set " +
                                      std::to_string(set));
            }
            if ((b.tag & (cfg.sets - 1)) != set) {
                report.fail(name, "tag " + std::to_string(b.tag) +
                                      " resident in set " +
                                      std::to_string(set) +
                                      " but indexes to set " +
                                      std::to_string(b.tag &
                                                     (cfg.sets - 1)));
            }
            if (b.pgc && !b.prefetched) {
                report.fail(name, "PCB set on a non-prefetched block in "
                                  "set " +
                                      std::to_string(set));
            }
            if (b.pgc && !cfg.track_pgc) {
                report.fail(name, "PCB set but the cache does not track "
                                  "PCB bits");
            }
        }
    }

    const std::size_t inflight = AuditAccess::cache_inflight_count(cache);
    if (inflight > cfg.mshr_entries) {
        report.fail(name, "MSHR occupancy " + std::to_string(inflight) +
                              " exceeds " +
                              std::to_string(cfg.mshr_entries) +
                              " entries");
    }

    std::string why;
    if (!AuditAccess::cache_replacement(cache).audit_state(why)) {
        report.fail(name, "replacement state: " + why);
    }
}

// ---------------------------------------------------------------------------
// TLB vs page table
// ---------------------------------------------------------------------------

namespace {

void
audit_tlb_array(const Tlb &tlb, const PageTable &table, bool large,
                AuditReport &report)
{
    const TlbConfig &cfg = tlb.config();
    const std::uint32_t sets = large ? cfg.large_sets : cfg.sets;
    const std::uint32_t ways = large ? cfg.large_ways : cfg.ways;
    const std::size_t slots = large ? AuditAccess::tlb_large_slots(tlb)
                                    : AuditAccess::tlb_small_slots(tlb);
    const std::uint64_t stamp = AuditAccess::tlb_lru_stamp(tlb);
    const auto &map = large ? AuditAccess::large_page_map(table)
                            : AuditAccess::page_map(table);
    const std::string name =
        cfg.name + (large ? ".large" : ".small");

    if (slots != static_cast<std::size_t>(sets) * ways) {
        report.fail(name, "array holds " + std::to_string(slots) +
                              " slots for " + std::to_string(sets) + "x" +
                              std::to_string(ways) + " geometry");
        return;
    }

    for (std::size_t slot = 0; slot < slots; ++slot) {
        const AuditAccess::TlbEntryView e =
            large ? AuditAccess::tlb_large_entry(tlb, slot)
                  : AuditAccess::tlb_small_entry(tlb, slot);
        if (!e.valid) {
            continue;
        }
        const std::uint32_t set = static_cast<std::uint32_t>(slot / ways);
        if ((e.vpn & (sets - 1)) != set) {
            report.fail(name, "VPN " + std::to_string(e.vpn) +
                                  " resident in set " +
                                  std::to_string(set) +
                                  " but indexes to set " +
                                  std::to_string(e.vpn & (sets - 1)));
        }
        if (e.lru > stamp) {
            report.fail(name, "entry LRU stamp " + std::to_string(e.lru) +
                                  " ahead of the TLB clock " +
                                  std::to_string(stamp));
        }
        const VirtAddr vaddr{large ? (e.vpn << kLargePageBits)
                                   : (e.vpn << kPageBits)};
        if (table.is_large_region(vaddr) != large) {
            report.fail(name, "VPN " + std::to_string(e.vpn) +
                                  (large ? " cached as a 2MB entry in a "
                                           "4KB region"
                                         : " cached as a 4KB entry in a "
                                           "2MB region"));
            continue;
        }
        const auto it = map.find(e.vpn);
        if (it == map.end()) {
            report.fail(name, "VPN " + std::to_string(e.vpn) +
                                  " cached but never mapped by the page "
                                  "table");
        } else if (it->second != e.page_base) {
            report.fail(name, "VPN " + std::to_string(e.vpn) +
                                  " translates to " +
                                  std::to_string(e.page_base) +
                                  " but the page table maps it to " +
                                  std::to_string(it->second));
        }
    }
}

}  // namespace

void
audit_tlb(const Tlb &tlb, const PageTable &table, AuditReport &report)
{
    audit_tlb_array(tlb, table, /*large=*/false, report);
    audit_tlb_array(tlb, table, /*large=*/true, report);
}

// ---------------------------------------------------------------------------
// Page table
// ---------------------------------------------------------------------------

void
audit_page_table(const PageTable &table, AuditReport &report)
{
    const std::string name = "page_table";
    const Addr phys = AuditAccess::phys_bytes(table);
    const Addr half = phys / 2;

    // 4KB data frames: aligned, inside the lower-half partition,
    // tracked by the allocator, and never shared between pages.
    // Findings must not depend on libstdc++ hash order, so the
    // unordered maps are walked in sorted-VPN order (lint rule L7).
    std::unordered_set<Addr> seen;
    std::vector<std::pair<Addr, Addr>> pages(
        AuditAccess::page_map(table).begin(),
        AuditAccess::page_map(table).end());
    std::sort(pages.begin(), pages.end());
    for (const auto &[vpn, frame] : pages) {
        if (frame % kPageSize != 0) {
            report.fail(name, "VPN " + std::to_string(vpn) +
                                  " mapped to misaligned frame " +
                                  std::to_string(frame));
            continue;
        }
        if (frame >= half) {
            report.fail(name, "VPN " + std::to_string(vpn) +
                                  " mapped outside the 4KB partition");
        }
        if (AuditAccess::used_frames(table).count(frame / kPageSize) ==
            0) {
            report.fail(name, "frame " + std::to_string(frame) +
                                  " mapped but not tracked by the "
                                  "allocator");
        }
        if (!seen.insert(frame).second) {
            report.fail(name, "frame " + std::to_string(frame) +
                                  " mapped by two virtual pages");
        }
    }

    // 2MB frames: upper-half partition, aligned within it.
    std::unordered_set<Addr> seen_large;
    std::vector<std::pair<Addr, Addr>> large_pages(
        AuditAccess::large_page_map(table).begin(),
        AuditAccess::large_page_map(table).end());
    std::sort(large_pages.begin(), large_pages.end());
    for (const auto &[lvpn, frame] : large_pages) {
        if (frame < half || frame >= phys ||
            (frame - half) % kLargePageSize != 0) {
            report.fail(name, "large VPN " + std::to_string(lvpn) +
                                  " mapped to illegal frame " +
                                  std::to_string(frame));
            continue;
        }
        if (AuditAccess::used_large_frames(table).count(
                (frame - half) / kLargePageSize) == 0) {
            report.fail(name, "large frame " + std::to_string(frame) +
                                  " mapped but not tracked by the "
                                  "allocator");
        }
        if (!seen_large.insert(frame).second) {
            report.fail(name, "large frame " + std::to_string(frame) +
                                  " mapped by two virtual regions");
        }
    }
}

// ---------------------------------------------------------------------------
// Walker / PSCs
// ---------------------------------------------------------------------------

namespace {

void
audit_psc(const StructureCache &psc, const std::string &name,
          AuditReport &report)
{
    const AuditAccess::PscView v = AuditAccess::psc(psc);
    if (v.entries.size() > v.capacity) {
        report.fail(name, "holds " + std::to_string(v.entries.size()) +
                              " entries with capacity " +
                              std::to_string(v.capacity));
    }
    if (v.hits > v.lookups) {
        report.fail(name, std::to_string(v.hits) + " hits out of " +
                              std::to_string(v.lookups) + " lookups");
    }
    std::unordered_set<Addr> prefixes;
    for (const auto &[prefix, lru] : v.entries) {
        if (!prefixes.insert(prefix).second) {
            report.fail(name, "duplicate prefix " +
                                  std::to_string(prefix));
        }
        if (lru > v.lru_stamp) {
            report.fail(name, "entry LRU stamp " + std::to_string(lru) +
                                  " ahead of the PSC clock " +
                                  std::to_string(v.lru_stamp));
        }
    }
}

}  // namespace

void
audit_walker(const PageWalker &walker, AuditReport &report)
{
    audit_psc(AuditAccess::walker_pml5(walker), "walker.psc_pml5",
              report);
    audit_psc(AuditAccess::walker_pml4(walker), "walker.psc_pml4",
              report);
    audit_psc(AuditAccess::walker_pdpte(walker), "walker.psc_pdpte",
              report);
    audit_psc(AuditAccess::walker_pde(walker), "walker.psc_pde", report);

    const std::size_t slots = AuditAccess::walker_slots(walker);
    const unsigned configured =
        AuditAccess::walker_configured_slots(walker);
    if (slots != std::max(1u, configured)) {
        report.fail("walker", "has " + std::to_string(slots) +
                                  " slots configured for " +
                                  std::to_string(configured) +
                                  " concurrent walks");
    }
}

// ---------------------------------------------------------------------------
// Update buffers / perceptron / thresholds
// ---------------------------------------------------------------------------

template <class AddrT>
void
audit_update_buffer(const UpdateBuffer<AddrT> &buffer,
                    const std::string &name, AuditReport &report)
{
    if (buffer.size() > buffer.capacity()) {
        report.fail(name, "occupancy " + std::to_string(buffer.size()) +
                              " exceeds capacity " +
                              std::to_string(buffer.capacity()));
    }
    const std::size_t fifo = AuditAccess::ub_fifo_size(buffer);
    const std::uint64_t stale = AuditAccess::ub_stale(buffer);
    if (fifo != buffer.size() + stale) {
        report.fail(name, "FIFO holds " + std::to_string(fifo) +
                              " slots for " +
                              std::to_string(buffer.size()) +
                              " live records and " +
                              std::to_string(stale) + " stale slots");
    }
    if (buffer.capacity() > 0 && fifo > 2 * buffer.capacity()) {
        report.fail(name, "FIFO grew to " + std::to_string(fifo) +
                              " slots, above the 2x-capacity compaction "
                              "bound");
    }
    for (const auto &[rec, seq] : AuditAccess::ub_records(buffer)) {
        (void)seq;
        if (rec.block != block_addr(rec.block)) {
            report.fail(name, "record key " +
                                  std::to_string(rec.block.raw()) +
                                  " is not block-aligned");
        }
        if (rec.num_features > DecisionRecordT<AddrT>::kMaxFeatures) {
            report.fail(name, "record claims " +
                                  std::to_string(rec.num_features) +
                                  " features (max " +
                                  std::to_string(
                                      DecisionRecordT<AddrT>::kMaxFeatures) +
                                  ")");
        }
    }
}

template void audit_update_buffer<VirtAddr>(const VirtUpdateBuffer &,
                                            const std::string &,
                                            AuditReport &);
template void audit_update_buffer<PhysAddr>(const PhysUpdateBuffer &,
                                            const std::string &,
                                            AuditReport &);

void
audit_weight_table(const WeightTable &table, const std::string &name,
                   AuditReport &report)
{
    const unsigned bits = table.weight_bits();
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (std::size_t i = 0; i < table.entries(); ++i) {
        const int w = table.weight_at(static_cast<std::uint32_t>(i));
        if (w < lo || w > hi) {
            report.fail(name, "weight[" + std::to_string(i) + "] = " +
                                  std::to_string(w) + " outside the " +
                                  std::to_string(bits) + "-bit rails [" +
                                  std::to_string(lo) + ", " +
                                  std::to_string(hi) + "]");
        }
    }
}

void
audit_threshold(const AdaptiveThreshold &threshold, AuditReport &report)
{
    const ThresholdConfig &cfg = threshold.config();
    const std::string name = "threshold";
    if (cfg.t_min > cfg.t_max) {
        report.fail(name, "t_min " + std::to_string(cfg.t_min) +
                              " above t_max " + std::to_string(cfg.t_max));
        return;
    }
    const int ta = threshold.threshold();
    if (cfg.adaptive) {
        if (ta < cfg.t_min || ta > cfg.t_max) {
            report.fail(name, "T_a = " + std::to_string(ta) +
                                  " escaped the clamp range [" +
                                  std::to_string(cfg.t_min) + ", " +
                                  std::to_string(cfg.t_max) + "]");
        }
    } else if (ta != cfg.t_static) {
        report.fail(name, "static threshold drifted to " +
                              std::to_string(ta) + " from " +
                              std::to_string(cfg.t_static));
    }
}

// ---------------------------------------------------------------------------
// Filter (MokaFilter) and the PCB <-> pUB cross-structure invariant
// ---------------------------------------------------------------------------

void
audit_filter(const PageCrossFilter &filter, AuditReport &report)
{
    const auto *moka = dynamic_cast<const MokaFilter *>(&filter);
    if (moka == nullptr) {
        return;  // non-perceptron policies carry no audited state
    }
    const MokaConfig &cfg = moka->config();
    const std::string &name = cfg.name;

    const std::size_t expected_tables =
        cfg.program_features.size() + cfg.specialized_features.size();
    const std::size_t ntables = AuditAccess::filter_num_tables(*moka);
    if (ntables != expected_tables) {
        report.fail(name, "holds " + std::to_string(ntables) +
                              " weight tables for " +
                              std::to_string(expected_tables) +
                              " features");
    }
    const std::size_t entries = AuditAccess::filter_table_entries(*moka);
    const auto [lo, hi] = AuditAccess::filter_weight_rails(*moka);
    for (std::size_t t = 0; t < ntables; ++t) {
        const std::string tname = name + ".wt" + std::to_string(t);
        for (std::size_t i = 0; i < entries; ++i) {
            const int w = AuditAccess::filter_weight(
                *moka, t, static_cast<std::uint32_t>(i));
            if (w < lo || w > hi) {
                report.fail(tname,
                            "weight[" + std::to_string(i) + "] = " +
                                std::to_string(w) + " outside the " +
                                std::to_string(cfg.weight_bits) +
                                "-bit rails [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
            }
        }
    }

    const auto &system = AuditAccess::filter_system(*moka);
    if (system.size() != cfg.system_features.size() || system.size() > 8) {
        report.fail(name, "holds " + std::to_string(system.size()) +
                              " system features for " +
                              std::to_string(cfg.system_features.size()) +
                              " configured (max 8)");
    }
    for (std::size_t i = 0; i < system.size(); ++i) {
        const SignedSatCounter &w = AuditAccess::system_weight(system[i]);
        if (w.value() < w.min() || w.value() > w.max()) {
            report.fail(name, "system weight " + std::to_string(i) +
                                  " = " + std::to_string(w.value()) +
                                  " outside its rails [" +
                                  std::to_string(w.min()) + ", " +
                                  std::to_string(w.max()) + "]");
        }
    }

    audit_update_buffer(AuditAccess::filter_vub(*moka), name + ".vUB",
                        report);
    audit_update_buffer(AuditAccess::filter_pub(*moka), name + ".pUB",
                        report);
    audit_threshold(AuditAccess::filter_thresholds(*moka), report);

    if (AuditAccess::filter_pending_valid(*moka)) {
        const VirtDecisionRecord &p = AuditAccess::filter_pending(*moka);
        if (p.block != block_addr(p.block)) {
            report.fail(name, "pending record key " +
                                  std::to_string(p.block.raw()) +
                                  " is not block-aligned");
        }
        if (p.num_features != ntables) {
            report.fail(name, "pending record carries " +
                                  std::to_string(p.num_features) +
                                  " feature indexes for " +
                                  std::to_string(ntables) +
                                  " weight tables");
        }
    }
}

void
audit_pcb_pub(const Cache &l1d, const PageCrossFilter &filter,
              AuditReport &report)
{
    const auto *moka = dynamic_cast<const MokaFilter *>(&filter);
    if (moka == nullptr || !l1d.config().track_pgc) {
        return;
    }
    const CacheConfig &cfg = l1d.config();
    const PhysUpdateBuffer &pub = AuditAccess::filter_pub(*moka);
    const std::string name = moka->config().name + ".pUB<->" + cfg.name;

    // Direction 1: every pUB record must describe a resident L1D block
    // that is a still-unused page-cross prefetch. The record is
    // inserted when the prefetch fills and removed on first use and on
    // eviction, so anything else is bookkeeping drift. Because the L1D
    // is physically tagged, matching a record against resident tags is
    // also the runtime cross-check that pUB keys live in the physical
    // address space (their virtual counterparts would be orphans).
    std::unordered_set<Addr> record_tags;
    for (const auto &[rec, seq] : AuditAccess::ub_records(pub)) {
        (void)seq;
        const Addr tag = block_number(rec.block);
        record_tags.insert(tag);
        const std::uint32_t set =
            static_cast<std::uint32_t>(tag & (cfg.sets - 1));
        bool matched = false;
        for (std::uint32_t way = 0; way < cfg.ways && !matched; ++way) {
            const AuditAccess::BlockView b =
                AuditAccess::cache_block(l1d, set, way);
            if (b.valid && b.tag == tag) {
                matched = true;
                if (!b.pgc || !b.prefetched || b.used) {
                    report.fail(name,
                                "pUB record for block " +
                                    std::to_string(rec.block.raw()) +
                                    " names a block that is not an "
                                    "unused page-cross prefetch");
                }
            }
        }
        if (!matched) {
            report.fail(name, "orphan pUB record for block " +
                                  std::to_string(rec.block.raw()) +
                                  " with no resident L1D block");
        }
    }

    // Direction 2: an unused PCB block with no pUB record is only
    // legal when its record was pushed out by pUB overflow; the
    // cumulative overflow count bounds how many such blocks can exist.
    std::uint64_t unmatched = 0;
    for (std::uint32_t set = 0; set < cfg.sets; ++set) {
        for (std::uint32_t way = 0; way < cfg.ways; ++way) {
            const AuditAccess::BlockView b =
                AuditAccess::cache_block(l1d, set, way);
            if (b.valid && b.pgc && b.prefetched && !b.used &&
                record_tags.count(b.tag) == 0) {
                ++unmatched;
            }
        }
    }
    if (unmatched > pub.overflow_evictions()) {
        report.fail(name,
                    std::to_string(unmatched) +
                        " unused PCB blocks lack pUB records but only " +
                        std::to_string(pub.overflow_evictions()) +
                        " records were ever lost to overflow");
    }
}

// ---------------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------------

void
audit_dram(const Dram &dram, AuditReport &report)
{
    const DramConfig &cfg = AuditAccess::dram_config(dram);
    const std::string name = "dram";

    const std::size_t banks = AuditAccess::dram_bank_count(dram);
    if (banks != static_cast<std::size_t>(cfg.channels) * cfg.banks) {
        report.fail(name, "holds " + std::to_string(banks) +
                              " banks for " + std::to_string(cfg.channels) +
                              " channels x " + std::to_string(cfg.banks) +
                              " banks");
    }
    if (AuditAccess::dram_channel_count(dram) != cfg.channels) {
        report.fail(name, "channel bookkeeping does not match " +
                              std::to_string(cfg.channels) + " channels");
    }

    const std::uint64_t rows = std::uint64_t{1} << cfg.rows_bits;
    for (std::size_t i = 0; i < banks; ++i) {
        const AuditAccess::BankView b = AuditAccess::dram_bank(dram, i);
        if (b.open_row != Dram::kNoOpenRow && b.open_row >= rows) {
            report.fail(name, "bank " + std::to_string(i) +
                                  " holds open row " +
                                  std::to_string(b.open_row) +
                                  " outside " + std::to_string(rows) +
                                  " addressable rows");
        }
    }
}

}  // namespace audit
}  // namespace moka
