/**
 * @file
 * Runtime invariant auditors: one structural checker per stateful
 * subsystem, plus the cross-structure checks (PCB bits in the L1D
 * versus pUB records, TLB contents versus the radix page table) that
 * silent metadata drift would otherwise corrupt without failing any
 * functional test.
 *
 * Auditors are plain always-compiled functions over const references;
 * they cost nothing unless called. The machine invokes them on a
 * configurable instruction cadence when the build enables auditing
 * (see common/check.h); tests invoke them directly against healthy
 * and deliberately corrupted structures.
 */
#ifndef MOKASIM_AUDIT_AUDIT_H
#define MOKASIM_AUDIT_AUDIT_H

#include <string>
#include <vector>

#include "common/check.h"

namespace moka {

class AdaptiveThreshold;
class Cache;
class Dram;
class PageCrossFilter;
class PageTable;
class PageWalker;
class StructureCache;
class Tlb;
template <class AddrT> class UpdateBuffer;
class WeightTable;

/** One invariant violation found by an auditor. */
struct AuditFinding
{
    std::string component;  //!< e.g. "L1D", "moka.pUB", "dram"
    std::string message;    //!< which invariant broke, and how
};

/** Collects the findings of one audit sweep. */
class AuditReport
{
  public:
    /**
     * @param forward when true every finding is also routed through
     *        the global failure handler (stderr log, or abort in
     *        fatal mode) — the mode used by the machine cadence.
     */
    explicit AuditReport(bool forward = false) : forward_(forward) {}

    /** Record a violation of @p component described by @p message. */
    void fail(const std::string &component, const std::string &message);

    /** True when no violation was recorded. */
    bool ok() const { return findings_.empty(); }

    /** All recorded violations. */
    const std::vector<AuditFinding> &findings() const { return findings_; }

    /** Newline-separated rendering (diagnostics). */
    std::string to_string() const;

  private:
    bool forward_;
    std::vector<AuditFinding> findings_;
};

namespace audit {

/**
 * Cache invariants: no duplicate tags per set, tags resident in the
 * set they index to, PCB only on prefetched blocks of a PCB-tracking
 * cache, MSHR occupancy within bounds, replacement-stack sanity.
 */
void audit_cache(const Cache &cache, AuditReport &report);

/**
 * TLB coherence with the radix page table: every valid entry must sit
 * in the set its VPN indexes, carry an aligned page base equal to the
 * page table's mapping, and never cache a translation the page table
 * has not established (or cache a 4KB entry inside a 2MB region).
 */
void audit_tlb(const Tlb &tlb, const PageTable &table,
               AuditReport &report);

/**
 * Page-table allocator invariants: mapped frames unique, aligned,
 * inside their physical partition, and tracked by the frame sets.
 */
void audit_page_table(const PageTable &table, AuditReport &report);

/** Walker/PSC invariants: capacity, distinct prefixes, counters. */
void audit_walker(const PageWalker &walker, AuditReport &report);

/**
 * Update-buffer invariants: occupancy within capacity, FIFO/index
 * bookkeeping in sync, records block-aligned with legal feature
 * counts. @p name labels findings (e.g. "moka.pUB").
 */
template <class AddrT>
void audit_update_buffer(const UpdateBuffer<AddrT> &buffer,
                         const std::string &name, AuditReport &report);

/** Weight-table invariants: every weight within its n-bit rails. */
void audit_weight_table(const WeightTable &table, const std::string &name,
                        AuditReport &report);

/** Threshold invariants: T_a within [t_min, t_max], sane level order. */
void audit_threshold(const AdaptiveThreshold &threshold,
                     AuditReport &report);

/**
 * Full filter audit: weight tables, system-feature weights, vUB/pUB,
 * adaptive threshold, pending-decision sanity. Non-MOKA filters (none
 * today — PPF is built on MokaFilter) audit as trivially clean.
 */
void audit_filter(const PageCrossFilter &filter, AuditReport &report);

/**
 * The paper's central cross-structure invariant: pUB records and L1D
 * Page-Cross Bits must tell the same story. Every pUB record must
 * name a resident, unused, prefetched PCB block; every unused PCB
 * block lacking a pUB record must be explained by pUB overflow.
 * No-op unless @p filter is a MokaFilter.
 */
void audit_pcb_pub(const Cache &l1d, const PageCrossFilter &filter,
                   AuditReport &report);

/** DRAM bank-state legality: geometry and open-row validity. */
void audit_dram(const Dram &dram, AuditReport &report);

}  // namespace audit
}  // namespace moka

#endif  // MOKASIM_AUDIT_AUDIT_H
