#include "cache/cache.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/check.h"
#include "snapshot/snapshot.h"

namespace moka {

Cache::Cache(const CacheConfig &config, MemoryLevel *lower)
    : cfg_(config), lower_(lower),
      blocks_(static_cast<std::size_t>(config.sets) * config.ways),
      repl_(make_replacement(config.replacement, config.sets,
                             config.ways))
{
    SIM_REQUIRE(is_pow2(cfg_.sets), "cache sets must be a power of two");
    SIM_REQUIRE(cfg_.ways > 0, "cache must have at least one way");
    // MSHR occupancy is bounded at mshr_entries by the eviction in
    // access(); reserving here keeps the per-access path allocation
    // free (rule L10).
    inflight_.reserve(cfg_.mshr_entries);
}

std::uint32_t
Cache::set_index(PhysAddr paddr) const
{
    return static_cast<std::uint32_t>(block_number(paddr) &
                                      (cfg_.sets - 1));
}

Cache::Block *
Cache::find(PhysAddr paddr, std::uint32_t &way)
{
    const Addr tag = block_number(paddr);
    Block *row = &blocks_[static_cast<std::size_t>(set_index(paddr)) *
                          cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            way = w;
            return &row[w];
        }
    }
    return nullptr;
}

const Cache::Block *
Cache::find(PhysAddr paddr) const
{
    std::uint32_t way;
    return const_cast<Cache *>(this)->find(paddr, way);
}

bool
Cache::probe(PhysAddr paddr) const
{
    return find(paddr) != nullptr;
}

unsigned
Cache::inflight_misses(Cycle now) const
{
    unsigned n = 0;
    for (Cycle c : inflight_) {
        if (c > now) {
            ++n;
        }
    }
    return n;
}

void
Cache::mark_used(Block &b)
{
    if (b.prefetched && !b.used) {
        ++stats_.pf.useful;
        if (b.pgc) {
            ++stats_.pf.pgc_useful;
            if (listener_ != nullptr) {
                // Tags store raw block numbers; reconstruct the typed
                // physical address on the way out.
                listener_->on_pgc_first_use(PhysAddr{b.tag << kBlockBits});
            }
        }
    }
    b.used = true;
}

std::uint32_t
Cache::pick_victim(std::uint32_t set, Cycle now)
{
    Block *row = &blocks_[static_cast<std::size_t>(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!row[w].valid) {
            return w;
        }
    }
    const std::uint32_t way = repl_->victim(set);
    SIM_AUDIT(way < cfg_.ways,
              "replacement policy chose a way outside the set");
    Block *victim = &row[way];

    // Evict: resolve prefetch usefulness and write back dirt.
    if (victim->prefetched && !victim->used) {
        ++stats_.pf.useless;
        if (victim->pgc) {
            ++stats_.pf.pgc_useless;
        }
    }
    if (listener_ != nullptr) {
        listener_->on_eviction(PhysAddr{victim->tag << kBlockBits},
                               victim->prefetched, victim->pgc,
                               victim->used);
    }
    if (victim->dirty) {
        ++stats_.writebacks;
        if (lower_ != nullptr) {
            lower_->access(PhysAddr{victim->tag << kBlockBits},
                           AccessType::kWriteback, now);
        }
    }
    victim->valid = false;
    return way;
}

AccessResult
Cache::access(PhysAddr paddr, AccessType type, Cycle now, bool pgc_prefetch)
{
    // Port contention: one request per cycle enters the pipeline.
    const Cycle start = std::max(now, next_port_free_);
    next_port_free_ = start + 1;
    Cycle t = start + cfg_.latency;

    const bool demand = is_demand(type);
    if (demand) {
        ++stats_.demand.accesses;
    } else if (type == AccessType::kPageWalk) {
        ++stats_.walk.accesses;
    } else if (type == AccessType::kPrefetch) {
        ++stats_.prefetch_lookups;
    }

    std::uint32_t way = 0;
    Block *b = find(paddr, way);
    if (b != nullptr) {
        repl_->on_hit(set_index(paddr), way);
        AccessResult r;
        if (b->fill_done > t && type != AccessType::kWriteback) {
            // In-flight fill: merge (counts as a miss, pays residual).
            r.done = b->fill_done;
            r.merged = true;
            if (demand) {
                ++stats_.demand.misses;
                mark_used(*b);
            } else if (type == AccessType::kPageWalk) {
                ++stats_.walk.misses;
            }
        } else {
            r.done = t;
            r.hit = true;
            if (demand) {
                mark_used(*b);
            }
        }
        if (type == AccessType::kStore || type == AccessType::kWriteback) {
            b->dirty = true;
        }
        return r;
    }

    // Miss.
    if (demand) {
        ++stats_.demand.misses;
    } else if (type == AccessType::kPageWalk) {
        ++stats_.walk.misses;
    }

    if (type == AccessType::kWriteback) {
        // No allocation on writeback miss; forward the dirt downwards.
        AccessResult r;
        if (lower_ != nullptr) {
            r = lower_->access(paddr, AccessType::kWriteback, t);
        } else {
            r.done = t;
        }
        return r;
    }

    // MSHR occupancy: when all entries are in flight the request
    // stalls until the oldest completes.
    std::erase_if(inflight_, [t](Cycle c) { return c <= t; });
    if (inflight_.size() >= cfg_.mshr_entries) {
        const Cycle oldest = *std::min_element(inflight_.begin(),
                                               inflight_.end());
        t = oldest;
        std::erase_if(inflight_, [t](Cycle c) { return c <= t; });
    }

    Cycle fill_done = t;
    if (lower_ != nullptr) {
        fill_done = lower_->access(paddr, type, t, pgc_prefetch).done +
                    cfg_.latency;
    }
    inflight_.push_back(fill_done);
    SIM_AUDIT(inflight_.size() <= cfg_.mshr_entries,
              "MSHR occupancy exceeded its configured entries");

    const std::uint32_t set = set_index(paddr);
    const std::uint32_t victim_way = pick_victim(set, t);
    Block &nb = blocks_[static_cast<std::size_t>(set) * cfg_.ways +
                        victim_way];
    nb.valid = true;
    nb.tag = block_number(paddr);
    nb.dirty = (type == AccessType::kStore);
    nb.prefetched = (type == AccessType::kPrefetch);
    nb.pgc = cfg_.track_pgc && pgc_prefetch &&
             type == AccessType::kPrefetch;
    nb.used = false;
    nb.fill_done = fill_done;
    repl_->on_fill(set, victim_way);

    if (type == AccessType::kPrefetch) {
        ++stats_.pf.issued;
        if (nb.pgc || (pgc_prefetch && !cfg_.track_pgc)) {
            ++stats_.pf.pgc_issued;
        }
    } else if (demand) {
        // A demand miss fills a demand block; mark used on arrival.
        nb.used = true;
    }

    AccessResult r;
    r.done = fill_done;
    return r;
}

void
Cache::save_state(SnapshotWriter &w) const
{
    for (const Block &b : blocks_) {
        w.put_u64(b.tag);
        w.put_bool(b.valid);
        w.put_bool(b.dirty);
        w.put_bool(b.prefetched);
        w.put_bool(b.pgc);
        w.put_bool(b.used);
        w.put_u64(b.fill_done);
    }
    put_vec(w, inflight_);
    w.put_u64(next_port_free_);
    repl_->save_state(w);
    put_stats(w, stats_.demand);
    put_stats(w, stats_.walk);
    w.put_u64(stats_.writebacks);
    w.put_u64(stats_.prefetch_lookups);
    put_stats(w, stats_.pf);
}

void
Cache::restore_state(SnapshotReader &r)
{
    for (Block &b : blocks_) {
        b.tag = r.get_u64();
        b.valid = r.get_bool();
        b.dirty = r.get_bool();
        b.prefetched = r.get_bool();
        b.pgc = r.get_bool();
        b.used = r.get_bool();
        b.fill_done = r.get_u64();
    }
    // The MSHR list length is runtime state (outstanding fills at
    // snapshot time), not configuration — accept the saved length.
    get_vec(r, inflight_, /*fixed_size=*/false);
    next_port_free_ = r.get_u64();
    repl_->restore_state(r);
    get_stats(r, stats_.demand);
    get_stats(r, stats_.walk);
    stats_.writebacks = r.get_u64();
    stats_.prefetch_lookups = r.get_u64();
    get_stats(r, stats_.pf);
}

}  // namespace moka
