#include "cache/cache.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/check.h"
#include "snapshot/snapshot.h"

namespace moka {

Cache::Cache(const CacheConfig &config, MemoryLevel *lower)
    : cfg_(config), lower_(lower),
      tags_(static_cast<std::size_t>(config.sets) * config.ways, 0),
      flags_(static_cast<std::size_t>(config.sets) * config.ways, 0),
      fill_done_(static_cast<std::size_t>(config.sets) * config.ways, 0),
      repl_(make_replacement(config.replacement, config.sets,
                             config.ways))
{
    SIM_REQUIRE(is_pow2(cfg_.sets), "cache sets must be a power of two");
    SIM_REQUIRE(cfg_.ways > 0, "cache must have at least one way");
    if (cfg_.replacement == ReplacementKind::kLru) {
        lru_ = static_cast<LruPolicy *>(repl_.get());
    }
    // MSHR occupancy is bounded at mshr_entries by the eviction in
    // access(); reserving here keeps the per-access path allocation
    // free (rule L10).
    inflight_.reserve(cfg_.mshr_entries);
}

std::uint32_t
Cache::set_index(PhysAddr paddr) const
{
    return static_cast<std::uint32_t>(block_number(paddr) &
                                      (cfg_.sets - 1));
}

Cache::SetRef
Cache::set_ref(PhysAddr paddr) const
{
    const std::uint32_t set = set_index(paddr);
    return {set, static_cast<std::size_t>(set) * cfg_.ways};
}

std::uint32_t
Cache::find(const SetRef &ref, Addr tag) const
{
    const Addr key = tag | kValidTagBit;
    const Addr *row = &tags_[ref.base];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (row[w] == key) {
            return w;
        }
    }
    return kNoWay;
}

bool
Cache::probe(PhysAddr paddr) const
{
    return find(set_ref(paddr), block_number(paddr)) != kNoWay;
}

unsigned
Cache::inflight_misses(Cycle now) const
{
    unsigned n = 0;
    for (Cycle c : inflight_) {
        if (c > now) {
            ++n;
        }
    }
    return n;
}

void
Cache::mark_used(std::size_t idx)
{
    const std::uint8_t f = flags_[idx];
    if ((f & kFlagPrefetched) != 0 && (f & kFlagUsed) == 0) {
        ++stats_.pf.useful;
        if ((f & kFlagPgc) != 0) {
            ++stats_.pf.pgc_useful;
            if (listener_ != nullptr) {
                // Tags store raw block numbers; reconstruct the typed
                // physical address on the way out.
                listener_->on_pgc_first_use(
                    PhysAddr{(tags_[idx] & ~kValidTagBit) << kBlockBits});
            }
        }
    }
    flags_[idx] = f | kFlagUsed;
}

std::uint32_t
Cache::pick_victim(const SetRef &ref, Cycle now)
{
    const Addr *row = &tags_[ref.base];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if ((row[w] & kValidTagBit) == 0) {
            return w;
        }
    }
    const std::uint32_t way =
        lru_ != nullptr ? lru_->victim(ref.set) : repl_->victim(ref.set);
    SIM_AUDIT(way < cfg_.ways,
              "replacement policy chose a way outside the set");
    const std::size_t idx = ref.base + way;
    const std::uint8_t f = flags_[idx];
    const Addr tag = tags_[idx] & ~kValidTagBit;

    // Evict: resolve prefetch usefulness and write back dirt.
    if ((f & kFlagPrefetched) != 0 && (f & kFlagUsed) == 0) {
        ++stats_.pf.useless;
        if ((f & kFlagPgc) != 0) {
            ++stats_.pf.pgc_useless;
        }
    }
    if (listener_ != nullptr) {
        listener_->on_eviction(PhysAddr{tag << kBlockBits},
                               (f & kFlagPrefetched) != 0,
                               (f & kFlagPgc) != 0, (f & kFlagUsed) != 0);
    }
    if ((f & kFlagDirty) != 0) {
        ++stats_.writebacks;
        if (lower_ != nullptr) {
            lower_->access(PhysAddr{tag << kBlockBits},
                           AccessType::kWriteback, now);
        }
    }
    tags_[idx] = tag;  // drop the valid bit, keep the stale tag bits
    return way;
}

AccessResult
Cache::access(PhysAddr paddr, AccessType type, Cycle now, bool pgc_prefetch)
{
    // Port contention: one request per cycle enters the pipeline.
    const Cycle start = std::max(now, next_port_free_);
    next_port_free_ = start + 1;
    Cycle t = start + cfg_.latency;

    const bool demand = is_demand(type);
    if (demand) {
        ++stats_.demand.accesses;
    } else if (type == AccessType::kPageWalk) {
        ++stats_.walk.accesses;
    } else if (type == AccessType::kPrefetch) {
        ++stats_.prefetch_lookups;
    }

    const Addr tag = block_number(paddr);
    const SetRef ref = set_ref(paddr);
    const std::uint32_t way = find(ref, tag);
    if (way != kNoWay) {
        const std::size_t idx = ref.base + way;
        if (lru_ != nullptr) {
            lru_->on_hit(ref.set, way);
        } else {
            repl_->on_hit(ref.set, way);
        }
        AccessResult r;
        if (fill_done_[idx] > t && type != AccessType::kWriteback) {
            // In-flight fill: merge (counts as a miss, pays residual).
            r.done = fill_done_[idx];
            r.merged = true;
            if (demand) {
                ++stats_.demand.misses;
                mark_used(idx);
            } else if (type == AccessType::kPageWalk) {
                ++stats_.walk.misses;
            }
        } else {
            r.done = t;
            r.hit = true;
            if (demand) {
                mark_used(idx);
            }
        }
        if (type == AccessType::kStore || type == AccessType::kWriteback) {
            flags_[idx] |= kFlagDirty;
        }
        return r;
    }

    // Miss.
    if (demand) {
        ++stats_.demand.misses;
    } else if (type == AccessType::kPageWalk) {
        ++stats_.walk.misses;
    }

    if (type == AccessType::kWriteback) {
        // No allocation on writeback miss; forward the dirt downwards.
        AccessResult r;
        if (lower_ != nullptr) {
            r = lower_->access(paddr, AccessType::kWriteback, t);
        } else {
            r.done = t;
        }
        return r;
    }

    // MSHR occupancy: when all entries are in flight the request
    // stalls until the oldest completes.
    std::erase_if(inflight_, [t](Cycle c) { return c <= t; });
    if (inflight_.size() >= cfg_.mshr_entries) {
        const Cycle oldest = *std::min_element(inflight_.begin(),
                                               inflight_.end());
        t = oldest;
        std::erase_if(inflight_, [t](Cycle c) { return c <= t; });
    }

    Cycle fill_done = t;
    if (lower_ != nullptr) {
        fill_done = lower_->access(paddr, type, t, pgc_prefetch).done +
                    cfg_.latency;
    }
    inflight_.push_back(fill_done);
    SIM_AUDIT(inflight_.size() <= cfg_.mshr_entries,
              "MSHR occupancy exceeded its configured entries");

    const std::uint32_t victim_way = pick_victim(ref, t);
    const std::size_t idx = ref.base + victim_way;
    tags_[idx] = tag | kValidTagBit;
    std::uint8_t f = 0;
    if (type == AccessType::kStore) {
        f |= kFlagDirty;
    }
    const bool pgc = cfg_.track_pgc && pgc_prefetch &&
                     type == AccessType::kPrefetch;
    if (type == AccessType::kPrefetch) {
        f |= kFlagPrefetched;
        if (pgc) {
            f |= kFlagPgc;
        }
        ++stats_.pf.issued;
        if (pgc || (pgc_prefetch && !cfg_.track_pgc)) {
            ++stats_.pf.pgc_issued;
        }
    } else if (demand) {
        // A demand miss fills a demand block; mark used on arrival.
        f |= kFlagUsed;
    }
    flags_[idx] = f;
    fill_done_[idx] = fill_done;
    if (lru_ != nullptr) {
        lru_->on_fill(ref.set, victim_way);
    } else {
        repl_->on_fill(ref.set, victim_way);
    }

    AccessResult r;
    r.done = fill_done;
    return r;
}

void
Cache::save_state(SnapshotWriter &w) const
{
    // Byte format is unchanged from the array-of-structs layout: the
    // embedded valid bit decomposes back into the (tag, valid) pair.
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        w.put_u64(tags_[i] & ~kValidTagBit);
        w.put_bool((tags_[i] & kValidTagBit) != 0);
        w.put_bool((flags_[i] & kFlagDirty) != 0);
        w.put_bool((flags_[i] & kFlagPrefetched) != 0);
        w.put_bool((flags_[i] & kFlagPgc) != 0);
        w.put_bool((flags_[i] & kFlagUsed) != 0);
        w.put_u64(fill_done_[i]);
    }
    put_vec(w, inflight_);
    w.put_u64(next_port_free_);
    repl_->save_state(w);
    put_stats(w, stats_.demand);
    put_stats(w, stats_.walk);
    w.put_u64(stats_.writebacks);
    w.put_u64(stats_.prefetch_lookups);
    put_stats(w, stats_.pf);
}

void
Cache::restore_state(SnapshotReader &r)
{
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        const Addr tag = r.get_u64();
        const bool valid = r.get_bool();
        tags_[i] = valid ? (tag | kValidTagBit) : tag;
        std::uint8_t f = 0;
        if (r.get_bool()) {
            f |= kFlagDirty;
        }
        if (r.get_bool()) {
            f |= kFlagPrefetched;
        }
        if (r.get_bool()) {
            f |= kFlagPgc;
        }
        if (r.get_bool()) {
            f |= kFlagUsed;
        }
        flags_[i] = f;
        fill_done_[i] = r.get_u64();
    }
    // The MSHR list length is runtime state (outstanding fills at
    // snapshot time), not configuration — accept the saved length.
    get_vec(r, inflight_, /*fixed_size=*/false);
    next_port_free_ = r.get_u64();
    repl_->restore_state(r);
    get_stats(r, stats_.demand);
    get_stats(r, stats_.walk);
    stats_.writebacks = r.get_u64();
    stats_.prefetch_lookups = r.get_u64();
    get_stats(r, stats_.pf);
}

}  // namespace moka
