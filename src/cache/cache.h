/**
 * @file
 * Set-associative write-back cache with LRU replacement, MSHR-style
 * in-flight merging, port contention, and per-block prefetch
 * metadata. The L1D instance additionally carries the paper's PCB
 * (Page-Cross Bit) per block and reports page-cross prefetch
 * usefulness through a listener, which is what drives MOKA training.
 */
#ifndef MOKASIM_CACHE_CACHE_H
#define MOKASIM_CACHE_CACHE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_level.h"
#include "cache/replacement.h"
#include "common/hot_path.h"
#include "common/stats.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sets = 64;      //!< power of two
    std::uint32_t ways = 8;
    Cycle latency = 4;            //!< lookup + fill latency
    std::uint32_t mshr_entries = 8;
    bool track_pgc = false;       //!< maintain PCB bits (L1D only)
    ReplacementKind replacement = ReplacementKind::kLru;
};

/**
 * Observer of L1D block lifetime events needed by a Page-Cross
 * Filter: first demand use of a PGC-prefetched block (positive
 * training through pUB) and evictions (negative training for unused
 * PCB blocks).
 */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /** A block with PCB set served its first demand access. */
    virtual void on_pgc_first_use(PhysAddr block_paddr) = 0;

    /**
     * A valid block was evicted.
     *
     * @param block_paddr block-aligned physical address
     * @param prefetched  block was filled by a prefetch
     * @param pgc         block's PCB was set
     * @param used        block served at least one demand access
     */
    virtual void on_eviction(PhysAddr block_paddr, bool prefetched,
                             bool pgc, bool used) = 0;
};

/** Aggregate statistics of one cache level. */
struct CacheStats
{
    AccessStats demand;          //!< loads, stores, instruction fetches
    AccessStats walk;            //!< page-table walker references
    std::uint64_t writebacks = 0;
    std::uint64_t prefetch_lookups = 0;  //!< prefetch requests observed
    PrefetchStats pf;            //!< prefetch effectiveness

    /** Memberwise delta for measured-region snapshots. */
    CacheStats operator-(const CacheStats &o) const
    {
        return {demand - o.demand, walk - o.walk,
                writebacks - o.writebacks,
                prefetch_lookups - o.prefetch_lookups, pf - o.pf};
    }
};

/**
 * One cache level; lower level wired at construction. `final` so
 * that call sites typed `Cache*` (the private-hierarchy members of
 * CoreComplex, the shared LLC) devirtualize: access() is the single
 * hottest function in the simulator (rule L12).
 */
class Cache final : public MemoryLevel
{
  public:
    /**
     * @param config geometry/timing
     * @param lower  next level (cache or DRAM); may be nullptr for
     *               tests, in which case misses complete locally
     */
    Cache(const CacheConfig &config, MemoryLevel *lower);

    SIM_HOT AccessResult access(PhysAddr paddr, AccessType type, Cycle now,
                                bool pgc_prefetch = false) override;

    /** Install an L1D lifetime listener (used by Page-Cross Filters). */
    void set_listener(CacheListener *listener) { listener_ = listener; }

    /** True when @p paddr's block is resident (no state change). */
    bool probe(PhysAddr paddr) const;

    /** Counters. */
    const CacheStats &stats() const { return stats_; }

    /** In-flight demand misses younger than @p now (ROB-pressure cue). */
    unsigned inflight_misses(Cycle now) const;

    /** Config echo. */
    const CacheConfig &config() const { return cfg_; }

    /** Serialize tags, MSHRs, port state, replacement and stats. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    // Structure-of-arrays block store. The lookup scan touches ONE
    // contiguous Addr array: the valid bit lives in bit 63 of the tag
    // word (tags are block numbers, < 2^58, so the top bit is free),
    // which turns the per-way "valid && tag ==" into a single
    // compare against tag|kValidTagBit. Flags pack into a byte;
    // fill cycles sit in a parallel array only the merge check reads.
    static constexpr Addr kValidTagBit = Addr{1} << 63;
    static constexpr std::uint8_t kFlagDirty = 1u << 0;
    static constexpr std::uint8_t kFlagPrefetched = 1u << 1;
    static constexpr std::uint8_t kFlagPgc = 1u << 2;  //!< paper's PCB
    static constexpr std::uint8_t kFlagUsed = 1u << 3; //!< >=1 demand use
    static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

    /** One set resolved to its row base; computed once per access. */
    struct SetRef
    {
        std::uint32_t set = 0;
        std::size_t base = 0;  //!< set * ways, index into the arrays
    };

    std::uint32_t set_index(PhysAddr paddr) const;
    SetRef set_ref(PhysAddr paddr) const;
    std::uint32_t find(const SetRef &ref, Addr tag) const;
    std::uint32_t pick_victim(const SetRef &ref, Cycle now);
    void mark_used(std::size_t idx);

    CacheConfig cfg_;       // LINT_SNAPSHOT_OK: config
    MemoryLevel *lower_;    // LINT_SNAPSHOT_OK: collaborator, owned by machine
    // LINT_SNAPSHOT_OK: collaborator, re-wired by the machine builder
    CacheListener *listener_ = nullptr;
    std::vector<Addr> tags_;           //!< sets * ways; bit 63 = valid
    std::vector<std::uint8_t> flags_;  //!< kFlag* bits, parallel to tags_
    std::vector<Cycle> fill_done_;     //!< data arrival, parallel to tags_
    std::vector<Cycle> inflight_;      //!< outstanding fill completions
    Cycle next_port_free_ = 0;
    std::unique_ptr<ReplacementPolicy> repl_;
    // Devirtualizes the three per-access policy calls (rule L12).
    LruPolicy *lru_ = nullptr;  // LINT_SNAPSHOT_OK: alias of repl_
    CacheStats stats_;
};

}  // namespace moka

#endif  // MOKASIM_CACHE_CACHE_H
