/**
 * @file
 * The MemoryLevel interface: anything a cache can forward a request
 * to (a lower cache or the DRAM model). mokasim composes latencies:
 * an access call returns its completion cycle, and contention is
 * carried by per-level port/bank availability plus MSHR occupancy.
 */
#ifndef MOKASIM_CACHE_MEMORY_LEVEL_H
#define MOKASIM_CACHE_MEMORY_LEVEL_H

#include "common/types.h"

namespace moka {

/** Outcome of a memory-level access. */
struct AccessResult
{
    Cycle done = 0;      //!< cycle at which the data is available
    bool hit = false;    //!< true for a plain hit (excludes merges)
    bool merged = false; //!< matched an in-flight fill (partial miss)
};

/** One level of the memory hierarchy (cache or DRAM). */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /**
     * Perform an access.
     *
     * @param paddr        physical byte address
     * @param type         demand/prefetch/walk/writeback
     * @param now          cycle the request arrives at this level
     * @param pgc_prefetch true when this is a page-cross prefetch fill
     *                     (tracked only by levels configured to care)
     * @return completion information
     */
    virtual AccessResult access(PhysAddr paddr, AccessType type, Cycle now,
                                bool pgc_prefetch = false) = 0;
};

}  // namespace moka

#endif  // MOKASIM_CACHE_MEMORY_LEVEL_H
