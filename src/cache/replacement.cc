#include "cache/replacement.h"

#include "snapshot/snapshot.h"

namespace moka {

bool
LruPolicy::audit_state(std::string &why) const
{
    for (std::size_t i = 0; i < stamps_.size(); ++i) {
        if (stamps_[i] > clock_) {
            why = "lru stamp ahead of the policy clock at slot " +
                  std::to_string(i);
            return false;
        }
    }
    return true;
}

void
LruPolicy::save_state(SnapshotWriter &w) const
{
    put_vec(w, stamps_);
    w.put_u64(clock_);
}

void
LruPolicy::restore_state(SnapshotReader &r)
{
    get_vec(r, stamps_);
    clock_ = r.get_u64();
}

namespace {

/** 2-bit SRRIP (Jaleel et al., ISCA 2010). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    SrripPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), rrpv_(std::size_t(sets) * ways, kMaxRrpv)
    {
    }

    void
    on_hit(std::uint32_t set, std::uint32_t way) override
    {
        rrpv_[std::size_t(set) * ways_ + way] = 0;
    }

    void
    on_fill(std::uint32_t set, std::uint32_t way) override
    {
        // Long re-reference prediction on insertion.
        rrpv_[std::size_t(set) * ways_ + way] = kMaxRrpv - 1;
    }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        std::uint8_t *row = &rrpv_[std::size_t(set) * ways_];
        for (;;) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (row[w] == kMaxRrpv) {
                    return w;
                }
            }
            for (std::uint32_t w = 0; w < ways_; ++w) {
                ++row[w];
            }
        }
    }

    const char *name() const override { return "srrip"; }

    bool
    audit_state(std::string &why) const override
    {
        for (std::size_t i = 0; i < rrpv_.size(); ++i) {
            if (rrpv_[i] > kMaxRrpv) {
                why = "srrip rrpv above the 2-bit rail at slot " +
                      std::to_string(i);
                return false;
            }
        }
        return true;
    }

    void
    save_state(SnapshotWriter &w) const override
    {
        put_vec(w, rrpv_);
    }

    void
    restore_state(SnapshotReader &r) override
    {
        get_vec(r, rrpv_);
    }

  private:
    std::uint32_t ways_;  // LINT_SNAPSHOT_OK: geometry, not state
    std::vector<std::uint8_t> rrpv_;
};

/** Pseudo-random victim. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t ways, std::uint64_t seed)
        : ways_(ways), rng_(seed)
    {
    }

    void on_hit(std::uint32_t, std::uint32_t) override {}
    void on_fill(std::uint32_t, std::uint32_t) override {}

    std::uint32_t
    victim(std::uint32_t) override
    {
        return static_cast<std::uint32_t>(rng_.below(ways_));
    }

    const char *name() const override { return "random"; }

    void
    save_state(SnapshotWriter &w) const override
    {
        SnapshotAccess::save(w, rng_);
    }

    void
    restore_state(SnapshotReader &r) override
    {
        SnapshotAccess::restore(r, rng_);
    }

  private:
    std::uint32_t ways_;  // LINT_SNAPSHOT_OK: geometry, not state
    Rng rng_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy>
make_replacement(ReplacementKind kind, std::uint32_t sets,
                 std::uint32_t ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::kSrrip:
        return std::make_unique<SrripPolicy>(sets, ways);
      case ReplacementKind::kRandom:
        return std::make_unique<RandomPolicy>(ways, seed);
      case ReplacementKind::kLru:
      default:
        return std::make_unique<LruPolicy>(sets, ways);
    }
}

}  // namespace moka
