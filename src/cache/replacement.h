/**
 * @file
 * Replacement policies for the set-associative structures. The paper
 * evaluates LRU everywhere (Table IV); SRRIP and Random are provided
 * for ablations (bench/ablation_replacement) and for downstream users
 * whose baselines differ.
 */
#ifndef MOKASIM_CACHE_REPLACEMENT_H
#define MOKASIM_CACHE_REPLACEMENT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/** Replacement policy selector. */
enum class ReplacementKind : std::uint8_t {
    kLru,    //!< least-recently-used (paper's Table IV)
    kSrrip,  //!< static re-reference interval prediction (2-bit)
    kRandom, //!< pseudo-random victim
};

/**
 * Per-set replacement state machine. One instance serves a whole
 * cache; way state is stored per (set, way) slot.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A block at (set, way) was touched by a hit. */
    virtual void on_hit(std::uint32_t set, std::uint32_t way) = 0;

    /** A block was filled into (set, way). */
    virtual void on_fill(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose the victim way within @p set (all ways valid). */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** Identifier for reports. */
    virtual const char *name() const = 0;

    /**
     * Check internal-state invariants (replacement-stack sanity).
     *
     * @param why filled with a description of the first violation
     * @return true when the policy state is consistent
     */
    virtual bool audit_state(std::string &why) const
    {
        (void)why;
        return true;
    }

    /** Serialize replacement metadata (stamps / RRPVs / RNG). */
    virtual void save_state(SnapshotWriter &w) const = 0;

    /** Inverse of save_state on a same-geometry instance. */
    virtual void restore_state(SnapshotReader &r) = 0;
};

/**
 * Timestamp LRU. Defined in the header and `final` so that the cache
 * can keep a typed pointer for the paper's default policy and the
 * per-access on_hit/on_fill/victim calls inline instead of going
 * through the vtable — these are among the hottest calls in the
 * simulator (rule L12).
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stamps_(std::size_t(sets) * ways, 0)
    {
    }

    void
    on_hit(std::uint32_t set, std::uint32_t way) override
    {
        stamps_[std::size_t(set) * ways_ + way] = ++clock_;
    }

    void
    on_fill(std::uint32_t set, std::uint32_t way) override
    {
        stamps_[std::size_t(set) * ways_ + way] = ++clock_;
    }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::uint64_t *row = &stamps_[std::size_t(set) * ways_];
        std::uint32_t v = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (row[w] < row[v]) {
                v = w;
            }
        }
        return v;
    }

    const char *name() const override { return "lru"; }

    bool audit_state(std::string &why) const override;
    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    std::uint32_t ways_;  // LINT_SNAPSHOT_OK: geometry, not state
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/**
 * Build a policy instance.
 *
 * @param kind which policy
 * @param sets cache sets
 * @param ways cache ways
 * @param seed randomization seed (kRandom only)
 */
std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint32_t sets,
                                                    std::uint32_t ways,
                                                    std::uint64_t seed = 1);

}  // namespace moka

#endif  // MOKASIM_CACHE_REPLACEMENT_H
