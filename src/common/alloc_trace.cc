/**
 * @file
 * Global operator new/delete interposer (see alloc_trace.h).
 *
 * The replacement operators exist only under MOKASIM_ALLOC_TRACE so
 * a normal build keeps the libstdc++ allocator (and its malloc
 * fast paths) untouched.  The accounting API below always compiles,
 * which also guarantees this translation unit — and with it the
 * replacement operators — is pulled out of the static library
 * whenever a test calls arm()/disarm().
 */
#include "common/alloc_trace.h"

#include <atomic>

namespace moka::alloc_trace {
namespace {

std::atomic<std::uint64_t> g_total{0};
std::atomic<std::uint64_t> g_window{0};
std::atomic<bool> g_armed{false};
std::atomic<const char *> g_label{""};

}  // namespace

bool
enabled()
{
#ifdef MOKASIM_ALLOC_TRACE
    return true;
#else
    return false;
#endif
}

std::uint64_t
total()
{
    return g_total.load(std::memory_order_relaxed);
}

void
arm(const char *label)
{
    g_label.store(label != nullptr ? label : "",
                  std::memory_order_relaxed);
    g_window.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_release);
}

namespace detail {
// Defined at the bottom of this file; no-ops without the interposer.
void capture_site();
void dump_sites();
}  // namespace detail

std::uint64_t
disarm()
{
    g_armed.store(false, std::memory_order_release);
    detail::dump_sites();
    return g_window.load(std::memory_order_relaxed);
}

const char *
window_label()
{
    return g_label.load(std::memory_order_relaxed);
}

namespace detail {

/**
 * Debugger seam: called once per allocation that lands inside an
 * armed window.  Empty on purpose — `break
 * moka::alloc_trace::detail::on_armed_alloc` plus `bt` locates every
 * L10 offender without rebuilding.
 */
__attribute__((noinline)) void
on_armed_alloc()
{
    asm volatile("");  // keep the call from being optimised away
}

/** Called by every replacement operator new. */
inline void
note_alloc()
{
    g_total.fetch_add(1, std::memory_order_relaxed);
    if (g_armed.load(std::memory_order_acquire)) {
        g_window.fetch_add(1, std::memory_order_relaxed);
        on_armed_alloc();
        capture_site();
    }
}

}  // namespace detail
}  // namespace moka::alloc_trace

#ifdef MOKASIM_ALLOC_TRACE

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/thread_annotations.h"

namespace moka::alloc_trace {
namespace detail {
namespace {

// Armed-window offender capture, enabled by MOKASIM_ALLOC_TRACE_BT=1
// in the environment: every allocation inside an armed window records
// a deduplicated backtrace; disarm() dumps them to stderr for
// addr2line.  Fixed-size storage so the capture itself never
// allocates; backtrace() is re-entrancy-guarded because its first
// call can dlopen libgcc (which allocates).
constexpr int kMaxSites = 32;
constexpr int kDepth = 16;
SimMutex g_site_mutex;
void *g_site_frames[kMaxSites][kDepth] SIM_GUARDED_BY(g_site_mutex);
int g_site_depth[kMaxSites] SIM_GUARDED_BY(g_site_mutex);
std::uint64_t g_site_hits[kMaxSites] SIM_GUARDED_BY(g_site_mutex);
int g_site_count SIM_GUARDED_BY(g_site_mutex) = 0;
thread_local bool t_in_capture = false;

bool
capture_enabled()
{
    static const bool on =
        std::getenv("MOKASIM_ALLOC_TRACE_BT") != nullptr;
    return on;
}

}  // namespace

void
capture_site()
{
    if (!capture_enabled() || t_in_capture) {
        return;
    }
    t_in_capture = true;
    void *frames[kDepth];
    const int n = backtrace(frames, kDepth);
    SimMutexLock lock(&g_site_mutex);
    for (int i = 0; i < g_site_count; ++i) {
        if (g_site_depth[i] == n &&
            std::memcmp(g_site_frames[i], frames,
                        sizeof(void *) * static_cast<std::size_t>(n)) ==
                0) {
            ++g_site_hits[i];
            t_in_capture = false;
            return;
        }
    }
    if (g_site_count < kMaxSites) {
        std::memcpy(g_site_frames[g_site_count], frames,
                    sizeof(void *) * static_cast<std::size_t>(n));
        g_site_depth[g_site_count] = n;
        g_site_hits[g_site_count] = 1;
        ++g_site_count;
    }
    t_in_capture = false;
}

void
dump_sites()
{
    if (!capture_enabled()) {
        return;
    }
    SimMutexLock lock(&g_site_mutex);
    if (g_site_count == 0) {
        return;
    }
    // stderr is the only sane sink in an allocator (telemetry
    // allocates).  LINT_LOG_OK: MOKASIM_ALLOC_TRACE_BT diagnostics.
    std::fprintf(stderr,
                 "alloc_trace: %d unique armed-window allocation "
                 "site(s):\n",
                 g_site_count);
    for (int i = 0; i < g_site_count; ++i) {
        // LINT_LOG_OK: as above, same diagnostic report.
        std::fprintf(stderr, "-- site %d: %llu hit(s)\n", i,
                     static_cast<unsigned long long>(g_site_hits[i]));
        backtrace_symbols_fd(g_site_frames[i], g_site_depth[i], 2);
    }
    g_site_count = 0;
}

}  // namespace detail
}  // namespace moka::alloc_trace

namespace {

void *
traced_alloc(std::size_t n)
{
    moka::alloc_trace::detail::note_alloc();
    if (n == 0) {
        n = 1;
    }
    return std::malloc(n);
}

void *
traced_alloc_aligned(std::size_t n, std::size_t align)
{
    moka::alloc_trace::detail::note_alloc();
    if (n == 0) {
        n = 1;
    }
    // aligned_alloc requires the size to be a multiple of alignment.
    n = (n + align - 1) / align * align;
    return std::aligned_alloc(align, n);
}

}  // namespace

void *
operator new(std::size_t n)
{
    if (void *p = traced_alloc(n)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    if (void *p = traced_alloc(n)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return traced_alloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return traced_alloc(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    if (void *p =
            traced_alloc_aligned(n, static_cast<std::size_t>(align))) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    if (void *p =
            traced_alloc_aligned(n, static_cast<std::size_t>(align))) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return traced_alloc_aligned(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return traced_alloc_aligned(n, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#else  // !MOKASIM_ALLOC_TRACE

namespace moka::alloc_trace::detail {

void
capture_site()
{
}

void
dump_sites()
{
}

}  // namespace moka::alloc_trace::detail

#endif  // MOKASIM_ALLOC_TRACE
