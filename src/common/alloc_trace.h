/**
 * @file
 * Heap-allocation tracing for the hot-path contract (rule L10).
 *
 * When the build is configured with -DMOKASIM_ALLOC_TRACE=ON the
 * global `operator new` / `operator delete` family is interposed and
 * every allocation bumps a process-wide counter.  A measurement
 * window (arm() .. disarm(), or the RAII Window) attributes the
 * allocations that happen inside it, so a test can assert that a
 * warmed-up measured region performs ZERO heap allocations:
 *
 *     machine.run(warmup, nullptr);        // populate pools/tables
 *     alloc_trace::arm("measure");
 *     machine.run(measure, nullptr);       // steady state
 *     EXPECT_EQ(alloc_trace::disarm(), 0u);
 *
 * Attribution is by window, not by call site: wrap the subsystem
 * phase you care about (warmup, measure, report, ...) and compare
 * counts.  In a normal build (option OFF) the interposer is compiled
 * out, enabled() returns false, and every counter reads zero; tests
 * must GTEST_SKIP() in that case rather than assert.
 *
 * The counters are relaxed atomics: safe under the job engine's
 * worker threads, but a window counts allocations from *all* threads
 * while armed — arm windows only around single-threaded regions when
 * asserting exact counts.
 */
#ifndef MOKASIM_COMMON_ALLOC_TRACE_H
#define MOKASIM_COMMON_ALLOC_TRACE_H

#include <cstdint>

namespace moka::alloc_trace {

/** True when this build interposes the global allocator. */
bool enabled();

/** Process-lifetime allocation count (0 when !enabled()). */
std::uint64_t total();

/**
 * Open a measurement window labelled @p label (kept for failure
 * messages; may be null).  Re-arming resets the window count.
 */
void arm(const char *label);

/** Close the window; returns allocations observed while armed. */
std::uint64_t disarm();

/** Label passed to the last arm(), or "" (for diagnostics). */
const char *window_label();

/**
 * RAII measurement window: arms on construction, writes the window
 * count into @p out on destruction (disarm() early to read it live).
 */
class Window
{
  public:
    Window(const char *label, std::uint64_t *out) : out_(out)
    {
        arm(label);
    }
    ~Window() { *out_ = disarm(); }
    Window(const Window &) = delete;
    Window &operator=(const Window &) = delete;

  private:
    std::uint64_t *out_;
};

}  // namespace moka::alloc_trace

#endif  // MOKASIM_COMMON_ALLOC_TRACE_H
