/**
 * @file
 * Small bit-manipulation helpers used by caches, TLBs and the
 * perceptron hashing layer.
 */
#ifndef MOKASIM_COMMON_BITOPS_H
#define MOKASIM_COMMON_BITOPS_H

#include <bit>
#include <cstdint>

namespace moka {

/** True when @p v is a power of two (0 is not). */
constexpr bool is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned log2_exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/**
 * @p n - 1 when @p n is a power of two, else 0.  The idiom behind
 * rule L19: precompute at construction, then index hot tables with
 * `mask != 0 ? x & mask : x % n` — the shipped (pow2) configurations
 * take the mask path, exotic ones keep the exact division.
 */
constexpr std::uint64_t pow2_mask(std::uint64_t n)
{
    return is_pow2(n) ? n - 1 : 0;
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & ((width >= 64) ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << width) - 1));
}

/**
 * Fold @p v down to @p width bits by repeated XOR of @p width-bit
 * chunks. Used to index perceptron weight tables and TLB sets from
 * full 64-bit features without throwing away high bits.
 */
constexpr std::uint64_t fold_xor(std::uint64_t v, unsigned width)
{
    if (width == 0 || width >= 64) {
        return v;
    }
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & ((std::uint64_t{1} << width) - 1);
        v >>= width;
    }
    return r;
}

/** Sign-extend the low @p width bits of @p v. */
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned width)
{
    const std::uint64_t m = std::uint64_t{1} << (width - 1);
    v &= (std::uint64_t{1} << width) - 1;
    return static_cast<std::int64_t>((v ^ m)) - static_cast<std::int64_t>(m);
}

}  // namespace moka

#endif  // MOKASIM_COMMON_BITOPS_H
