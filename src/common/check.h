/**
 * @file
 * Invariant-checking macro family. Two tiers:
 *
 *  - SIM_REQUIRE(cond, what): construction/configuration precondition,
 *    checked in every build. Replaces raw `assert` in src/ (which
 *    vanishes in NDEBUG builds and aborts without context otherwise).
 *
 *  - SIM_AUDIT(cond, what) / SIM_AUDIT_FAIL(what): hot-path invariant
 *    tripwires, compiled in only when MOKASIM_AUDIT_LEVEL > 0 (the
 *    `MOKASIM_AUDIT` CMake option: OFF=0, LOG=1, FATAL=2). In LOG
 *    mode failures are counted and printed to stderr; in FATAL mode
 *    the first failure aborts. The level picked at configure time is
 *    only a default: audit::set_fatal() can override it at runtime.
 *
 * The structural auditors in src/audit/ are always compiled (they are
 * plain functions invoked on demand); this header only controls the
 * inline tripwires and the cadence hooks in the machine loop.
 */
#ifndef MOKASIM_COMMON_CHECK_H
#define MOKASIM_COMMON_CHECK_H

#include <cstdint>

#include "common/hot_path.h"

#ifndef MOKASIM_AUDIT_LEVEL
#define MOKASIM_AUDIT_LEVEL 0
#endif

/** True in builds whose hot-path audits are compiled in. */
#define SIM_AUDIT_ENABLED (MOKASIM_AUDIT_LEVEL > 0)

namespace moka::audit {

/**
 * Record one audit failure: increments the global failure counter,
 * prints to stderr, and aborts when in fatal mode. Implemented in
 * src/audit/audit.cc; always available regardless of audit level.
 */
SIM_COLD void report_failure(const char *file, int line, const char *what);

/** Unrecoverable precondition violation: print and abort. */
[[noreturn]] SIM_COLD void require_failure(const char *file, int line,
                                           const char *what);

/** Number of audit failures reported since start/reset. */
std::uint64_t failure_count();

/** Reset the failure counter (tests). */
void reset_failures();

/** True when audit failures abort (default: MOKASIM_AUDIT=FATAL). */
bool fatal();

/** Override abort-on-failure at runtime. */
void set_fatal(bool value);

}  // namespace moka::audit

#define SIM_REQUIRE(cond, what)                                         \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::moka::audit::require_failure(__FILE__, __LINE__, what);   \
        }                                                               \
    } while (0)

#if SIM_AUDIT_ENABLED

#define SIM_AUDIT(cond, what)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::moka::audit::report_failure(__FILE__, __LINE__, what);    \
        }                                                               \
    } while (0)

#define SIM_AUDIT_FAIL(what)                                            \
    ::moka::audit::report_failure(__FILE__, __LINE__, what)

#else

// Off builds: the condition still has to compile (so audits cannot
// rot), but it is never evaluated and folds away entirely.
#define SIM_AUDIT(cond, what)                                           \
    do {                                                                \
        if (false) {                                                    \
            (void)(cond);                                               \
        }                                                               \
    } while (0)

#define SIM_AUDIT_FAIL(what)                                            \
    do {                                                                \
    } while (0)

#endif  // SIM_AUDIT_ENABLED

#endif  // MOKASIM_COMMON_CHECK_H
