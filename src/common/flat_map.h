/**
 * @file
 * Flat open-addressing containers for hot-reachable subsystems
 * (hot-path rules L10/L11).
 *
 * std::unordered_map allocates one node per insertion, which makes
 * every first-touch insert on a per-access path a heap allocation.
 * FlatAddrMap stores keys and values in two parallel arrays sized at
 * construction; inserts never allocate until the table crosses a 50%
 * load factor, at which point it doubles.  Size the reservation so
 * doubling never happens in a measured region (the alloc-trace ctest
 * enforces this) and growth remains a cold, amortized event on runs
 * that outlive the reservation.
 *
 * Iteration order is deterministic for a fixed insertion sequence
 * (rule L7): slots are probed from mix64(key) and scanned in index
 * order, with no dependence on libstdc++ hash ordering.
 */
#ifndef MOKASIM_COMMON_FLAT_MAP_H
#define MOKASIM_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "common/types.h"

namespace moka {

/**
 * Open-addressing Addr -> Addr map with linear probing.  The key
 * ~0 is reserved as the empty-slot sentinel (never a valid VPN,
 * prefix, or frame id in a 48-bit address space).  No erase: the
 * page table only ever accretes mappings.
 */
class FlatAddrMap
{
  public:
    static constexpr Addr kEmptyKey = ~Addr{0};

    /**
     * @param reserve_entries entries the map holds before its first
     *        (allocating) doubling; rounded up to a power of two of
     *        slots at 50% max load.
     */
    explicit FlatAddrMap(std::size_t reserve_entries)
    {
        std::size_t slots = 64;
        while (slots < reserve_entries * 2) {
            slots *= 2;
        }
        keys_.assign(slots, kEmptyKey);
        vals_.assign(slots, 0);
    }

    /**
     * Find-or-insert @p key (value-initialised to 0 on insert).
     * Returns the value slot and whether it was inserted.  The
     * pointer is invalidated by the next try_emplace (growth).
     */
    std::pair<Addr *, bool> try_emplace(Addr key)
    {
        SIM_AUDIT(key != kEmptyKey, "flat map key collides with the "
                                    "empty sentinel");
        std::size_t i = probe(key);
        if (keys_[i] == key) {
            return {&vals_[i], false};
        }
        if ((size_ + 1) * 2 > keys_.size()) {
            grow();
            i = probe(key);
        }
        keys_[i] = key;
        vals_[i] = 0;
        ++size_;
        return {&vals_[i], true};
    }

    /** Stashing const iterator yielding std::pair<Addr, Addr>. */
    class const_iterator
    {
      public:
        // Stashing iterator: dereference materialises the pair, so
        // this is an input iterator (enough for range-constructing a
        // vector in the audits and for range-for).
        using iterator_category = std::input_iterator_tag;
        using value_type = std::pair<Addr, Addr>;
        using difference_type = std::ptrdiff_t;
        using pointer = const value_type *;
        using reference = const value_type &;

        const_iterator(const FlatAddrMap *m, std::size_t i)
            : m_(m), i_(i)
        {
            settle();
        }

        const value_type &operator*() const
        {
            cur_ = {m_->keys_[i_], m_->vals_[i_]};
            return cur_;
        }

        const value_type *operator->() const { return &**this; }

        const_iterator &operator++()
        {
            ++i_;
            settle();
            return *this;
        }

        bool operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

        bool operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        void settle()
        {
            while (i_ < m_->keys_.size() &&
                   m_->keys_[i_] == kEmptyKey) {
                ++i_;
            }
        }

        const FlatAddrMap *m_;
        std::size_t i_;
        mutable value_type cur_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, keys_.size()}; }

    const_iterator find(Addr key) const
    {
        const std::size_t i = probe(key);
        return keys_[i] == key ? const_iterator{this, i} : end();
    }

    std::size_t size() const { return size_; }
    std::size_t capacity_slots() const { return keys_.size(); }

  private:
    /** First slot holding @p key, or the empty slot to claim. */
    std::size_t probe(Addr key) const
    {
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
        while (keys_[i] != kEmptyKey && keys_[i] != key) {
            i = (i + 1) & mask;
        }
        return i;
    }

    void grow()
    {
        // LINT_HOT_OK: amortized doubling, reached only when a run
        // outlives the construction-time reservation; the alloc-trace
        // ctest pins it out of measured regions (rule L10).
        std::vector<Addr> old_keys(keys_.size() * 2, kEmptyKey);
        std::vector<Addr> old_vals(keys_.size() * 2, 0);
        old_keys.swap(keys_);
        old_vals.swap(vals_);
        size_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey) {
                continue;
            }
            const std::size_t j = probe(old_keys[i]);
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
            ++size_;
        }
    }

    //! snapshot save/restore copies the slot arrays verbatim: probe
    //! placement depends on insertion order, so rebuilding from pairs
    //! would not reproduce the saved layout byte-for-byte
    friend struct SnapshotAccess;

    std::vector<Addr> keys_;
    std::vector<Addr> vals_;
    std::size_t size_ = 0;
};

/**
 * Dense membership set over frame ids [0, frames): one bit per
 * frame, allocated once at construction.  Mirrors the shape of the
 * std::unordered_set API the audits consume (insert/count/size).
 */
class FrameBitmap
{
  public:
    explicit FrameBitmap(std::size_t frames) : bits_(frames, 0) {}

    /** True if @p id was newly inserted. */
    bool insert(std::size_t id)
    {
        SIM_AUDIT(id < bits_.size(), "frame id outside the partition");
        if (bits_[id] != 0) {
            return false;
        }
        bits_[id] = 1;
        ++count_;
        return true;
    }

    std::size_t count(std::size_t id) const
    {
        return id < bits_.size() && bits_[id] != 0 ? 1 : 0;
    }

    std::size_t size() const { return count_; }

  private:
    friend struct SnapshotAccess;

    // One byte per frame, not vector<bool>: membership is probed per
    // allocation and the bit-proxy indirection is not worth 8x less
    // footprint on a bounded partition (rule L19).  Snapshot-format
    // compatible: put_bool and put_int<u8> both write one 0/1 byte.
    std::vector<std::uint8_t> bits_;
    std::size_t count_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_COMMON_FLAT_MAP_H
