/**
 * @file
 * Hash functions used to index perceptron weight tables, prefetcher
 * metadata tables, and set-index scrambles.
 */
#ifndef MOKASIM_COMMON_HASHING_H
#define MOKASIM_COMMON_HASHING_H

#include <cstddef>
#include <cstdint>

#include "common/bitops.h"
#include "common/types.h"

namespace moka {

//! FNV-1a 64-bit offset basis / prime (shared by the journal record
//! checksums and the snapshot section checksums).
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/**
 * FNV-1a over @p n bytes, continuing from @p h (pass the default to
 * start a fresh sum; feed chunks by threading the return value back
 * in).
 */
inline std::uint64_t
fnv1a_64(const void *data, std::size_t n, std::uint64_t h = kFnv1aOffset)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnv1aPrime;
    }
    return h;
}

/** 64-bit finalizer (splitmix64 mix), good avalanche, cheap. */
constexpr std::uint64_t mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Combine two values into one hash (order-sensitive). */
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/*
 * Hash consumption is one of the whitelisted exits from the strong
 * address types (see types.h / ARCHITECTURE.md): a hash index is
 * space-agnostic by construction, so typed addresses and page
 * numbers feed the mixer here without scattering `.raw()` through
 * callers.
 */

/** Hash a typed address (virtual or physical). */
template <class Tag>
constexpr std::uint64_t mix64(StrongAddr<Tag> a)
{
    return mix64(a.raw());
}

/** Hash a typed page number (VPN or PPN). */
template <class Tag>
constexpr std::uint64_t mix64(StrongPageNum<Tag> p)
{
    return mix64(p.raw());
}

/**
 * Index into a table of @p table_bits entries from a raw feature
 * value: mix then fold, as in hashed perceptron predictors
 * (Tarjan & Skadron).
 */
constexpr std::uint32_t table_index(std::uint64_t feature,
                                    unsigned table_bits)
{
    return static_cast<std::uint32_t>(fold_xor(mix64(feature), table_bits));
}

}  // namespace moka

#endif  // MOKASIM_COMMON_HASHING_H
