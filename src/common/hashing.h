/**
 * @file
 * Hash functions used to index perceptron weight tables, prefetcher
 * metadata tables, and set-index scrambles.
 */
#ifndef MOKASIM_COMMON_HASHING_H
#define MOKASIM_COMMON_HASHING_H

#include <cstdint>

#include "common/bitops.h"

namespace moka {

/** 64-bit finalizer (splitmix64 mix), good avalanche, cheap. */
constexpr std::uint64_t mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Combine two values into one hash (order-sensitive). */
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/**
 * Index into a table of @p table_bits entries from a raw feature
 * value: mix then fold, as in hashed perceptron predictors
 * (Tarjan & Skadron).
 */
constexpr std::uint32_t table_index(std::uint64_t feature,
                                    unsigned table_bits)
{
    return static_cast<std::uint32_t>(fold_xor(mix64(feature), table_bits));
}

}  // namespace moka

#endif  // MOKASIM_COMMON_HASHING_H
