/**
 * @file
 * Fixed-bin histogram used by the figure harnesses to print the
 * distributions the paper plots (e.g. useful/useless PGC prefetches).
 */
#ifndef MOKASIM_COMMON_HISTOGRAM_H
#define MOKASIM_COMMON_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace moka {

/** Linear-bin histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    /** @param bins number of bins (>=1). */
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    /** Record one sample. */
    void add(double v)
    {
        double t = (v - lo_) / (hi_ - lo_);
        if (t < 0.0) t = 0.0;
        if (t >= 1.0) t = 1.0 - 1e-12;
        ++counts_[static_cast<std::size_t>(
            t * static_cast<double>(counts_.size()))];
        ++total_;
    }

    /** Count in bin @p i. */
    std::uint64_t count(std::size_t i) const { return counts_[i]; }

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin @p i. */
    double bin_lo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                         static_cast<double>(counts_.size());
    }

    /** Upper edge of bin @p i. */
    double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_COMMON_HISTOGRAM_H
