/**
 * @file
 * Hot-path contract annotations. The simulator's throughput is set by
 * a handful of per-access functions (the access pipeline in
 * Machine::run, cache lookup/fill, prefetcher operate, the MOKA
 * filter decision, UpdateBuffer traffic). Marking them lets both the
 * compiler and the repo's static analyzer treat them specially:
 *
 *  - SIM_HOT marks a per-access root. Under GCC/Clang it expands to
 *    __attribute__((hot)) (optimize harder, cluster text); elsewhere
 *    it is inert. tools/simlint computes call-reachability from every
 *    SIM_HOT declaration over the whole tree and enforces the
 *    hot-path contract (rules L10-L14: no per-access heap
 *    allocation, no hash-map lookups where a flat structure fits, no
 *    non-devirtualizable virtual dispatch, no by-value passing of
 *    large structs, no formatting/IO) on everything reachable.
 *
 *  - SIM_COLD marks an amortized, cadence, or failure path that a hot
 *    function may call without dragging it into the contract
 *    (interval/epoch ticks, audit sweeps, error reporting). Under
 *    GCC/Clang it expands to __attribute__((cold)), which also moves
 *    the code out of the hot text; simlint stops its reachability
 *    traversal at any SIM_COLD declaration.
 *
 * Escape hatch: a justified violation inside hot-reachable code
 * carries a `LINT_HOT_OK: <why>` comment on or just above the line,
 * exactly like the LINT_NONDET_OK / LINT_ORDER_OK escapes of L7.
 * The justification should say why the cost is acceptable (amortized
 * by a cadence, bounded by a tiny structure, intrinsic to the model).
 *
 * See "Hot-path contract" in docs/ARCHITECTURE.md for how the
 * contract, the MOKASIM_ALLOC_TRACE interposer and the optreport
 * worklist (tools/optreport_tool.py) fit together.
 */
#ifndef MOKASIM_COMMON_HOT_PATH_H
#define MOKASIM_COMMON_HOT_PATH_H

#if defined(__GNUC__) || defined(__clang__)
#define SIM_HOT __attribute__((hot))
#define SIM_COLD __attribute__((cold))
#else
#define SIM_HOT
#define SIM_COLD
#endif

#endif  // MOKASIM_COMMON_HOT_PATH_H
