/**
 * @file
 * Deterministic, seedable pseudo-random number generator
 * (xoshiro256**). Every stochastic component in mokasim (workload
 * generators, frame allocator, mix selection) draws from an explicit
 * Rng instance so whole experiments replay bit-identically.
 */
#ifndef MOKASIM_COMMON_RNG_H
#define MOKASIM_COMMON_RNG_H

#include <cstdint>

namespace moka {

/** xoshiro256** by Blackman & Vigna (public domain reference code). */
class Rng
{
  public:
    /** Seeds the four lanes via splitmix64 of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t x = seed;
        for (auto &lane : s_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            lane = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    //! snapshot save/restore copies the four lanes verbatim so a
    //! restored stream continues exactly where the saved one stopped
    friend struct SnapshotAccess;

    std::uint64_t s_[4];
};

}  // namespace moka

#endif  // MOKASIM_COMMON_RNG_H
