/**
 * @file
 * Saturating counters: the storage primitive behind perceptron weights
 * (signed) and confidence counters (unsigned) throughout mokasim.
 */
#ifndef MOKASIM_COMMON_SAT_COUNTER_H
#define MOKASIM_COMMON_SAT_COUNTER_H

#include <cstdint>

namespace moka {

struct AuditAccess;

/**
 * Signed saturating counter of a configurable bit width.
 *
 * An n-bit signed counter saturates at [-2^(n-1), 2^(n-1)-1], e.g. the
 * paper's 5-bit perceptron weights live in [-16, 15].
 */
class SignedSatCounter
{
  public:
    /** @param bit_width counter width in bits (2..16). */
    explicit constexpr SignedSatCounter(unsigned bit_width = 5,
                                        std::int16_t initial = 0)
        : min_(static_cast<std::int16_t>(-(1 << (bit_width - 1)))),
          max_(static_cast<std::int16_t>((1 << (bit_width - 1)) - 1)),
          value_(clamp(initial))
    {
    }

    /** Current value. */
    constexpr std::int16_t value() const { return value_; }

    /** Saturating increment by @p by (default 1). */
    constexpr void increment(std::int16_t by = 1)
    {
        value_ = clamp(static_cast<std::int16_t>(value_ + by));
    }

    /** Saturating decrement by @p by (default 1). */
    constexpr void decrement(std::int16_t by = 1)
    {
        value_ = clamp(static_cast<std::int16_t>(value_ - by));
    }

    /** Reset to zero. */
    constexpr void reset() { value_ = 0; }

    /** True when the counter sits at either rail. */
    constexpr bool saturated() const
    {
        return value_ == min_ || value_ == max_;
    }

    /** Lower rail. */
    constexpr std::int16_t min() const { return min_; }
    /** Upper rail. */
    constexpr std::int16_t max() const { return max_; }

  private:
    friend struct AuditAccess;
    friend struct SnapshotAccess;

    constexpr std::int16_t clamp(std::int16_t v) const
    {
        if (v < min_) return min_;
        if (v > max_) return max_;
        return v;
    }

    std::int16_t min_;
    std::int16_t max_;
    std::int16_t value_;
};

/**
 * Unsigned saturating counter in [0, 2^n - 1]; used for confidence
 * and replacement bookkeeping.
 */
class UnsignedSatCounter
{
  public:
    explicit constexpr UnsignedSatCounter(unsigned bit_width = 2,
                                          std::uint16_t initial = 0)
        : max_(static_cast<std::uint16_t>((1u << bit_width) - 1)),
          value_(initial > max_ ? max_ : initial)
    {
    }

    /** Current value. */
    constexpr std::uint16_t value() const { return value_; }

    /** Saturating increment. */
    constexpr void increment()
    {
        if (value_ < max_) ++value_;
    }

    /** Saturating decrement. */
    constexpr void decrement()
    {
        if (value_ > 0) --value_;
    }

    /** Reset to zero. */
    constexpr void reset() { value_ = 0; }

    /** Upper rail. */
    constexpr std::uint16_t max() const { return max_; }

  private:
    friend struct SnapshotAccess;

    std::uint16_t max_;
    std::uint16_t value_;
};

}  // namespace moka

#endif  // MOKASIM_COMMON_SAT_COUNTER_H
