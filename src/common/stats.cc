#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace moka {

double
geomean(const std::vector<double> &ratios)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double r : ratios) {
        if (r > 0.0) {
            log_sum += std::log(r);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (double v : values) {
        s += v;
    }
    return s / static_cast<double>(values.size());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string
format_pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", v * 100.0);
    return buf;
}

}  // namespace moka
