/**
 * @file
 * Lightweight statistics: named counters, MPKI/rate helpers, running
 * windows for epoch deltas, and geometric-mean summaries used by the
 * benchmark harnesses.
 */
#ifndef MOKASIM_COMMON_STATS_H
#define MOKASIM_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace moka {

/**
 * Access/miss counter pair for a cache-like structure, convertible to
 * MPKI and miss-rate given an instruction count.
 */
struct AccessStats
{
    std::uint64_t accesses = 0;  //!< total lookups
    std::uint64_t misses = 0;    //!< lookups that missed

    /** Misses per kilo-instruction. */
    double mpki(InstCount instructions) const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(misses) /
                         static_cast<double>(instructions);
    }

    /** Miss ratio in [0,1]. */
    double miss_rate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }

    AccessStats operator-(const AccessStats &o) const
    {
        return {accesses - o.accesses, misses - o.misses};
    }
};

/**
 * Prefetch effectiveness counters for one cache level.
 *
 * A prefetch is "useful" when the block it filled serves at least one
 * demand access before eviction; page-cross (PGC) prefetches are
 * tracked separately because they are the object of study.
 */
struct PrefetchStats
{
    std::uint64_t issued = 0;       //!< prefetch fills requested
    std::uint64_t useful = 0;       //!< blocks that served >=1 demand hit
    std::uint64_t useless = 0;      //!< prefetched blocks evicted unused
    std::uint64_t pgc_issued = 0;   //!< page-cross prefetch fills
    std::uint64_t pgc_useful = 0;   //!< page-cross blocks with >=1 hit
    std::uint64_t pgc_useless = 0;  //!< page-cross blocks evicted unused
    std::uint64_t pgc_dropped = 0;  //!< PGC candidates discarded by policy

    /** Overall prefetch accuracy in [0,1] over resolved prefetches. */
    double accuracy() const
    {
        const std::uint64_t resolved = useful + useless;
        return resolved == 0 ? 0.0
                             : static_cast<double>(useful) /
                                   static_cast<double>(resolved);
    }

    /** Page-cross prefetch accuracy in [0,1]. */
    double pgc_accuracy() const
    {
        const std::uint64_t resolved = pgc_useful + pgc_useless;
        return resolved == 0 ? 0.0
                             : static_cast<double>(pgc_useful) /
                                   static_cast<double>(resolved);
    }

    /** Memberwise delta for measured-region snapshots. */
    PrefetchStats operator-(const PrefetchStats &o) const
    {
        return {issued - o.issued,
                useful - o.useful,
                useless - o.useless,
                pgc_issued - o.pgc_issued,
                pgc_useful - o.pgc_useful,
                pgc_useless - o.pgc_useless,
                pgc_dropped - o.pgc_dropped};
    }
};

class MetricRegistry;

/**
 * Register read-on-snapshot probes for @p stats under
 * `<prefix>.accesses` / `<prefix>.misses` / `<prefix>.miss_rate`.
 * @p stats must outlive the registry's snapshotting (the probes read
 * it live). Implemented in telemetry/registry.cc so stats.h stays
 * header-light for the hot path.
 */
void register_access_stats(MetricRegistry &registry,
                           const std::string &prefix,
                           const AccessStats *stats);

/**
 * Probe registration for @p stats under `<prefix>.{issued, useful,
 * useless, pgc_issued, pgc_useful, pgc_useless, pgc_dropped,
 * accuracy, pgc_accuracy}`.
 */
void register_prefetch_stats(MetricRegistry &registry,
                             const std::string &prefix,
                             const PrefetchStats *stats);

/** Geometric mean of speedup ratios; ignores non-positive entries. */
double geomean(const std::vector<double> &ratios);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** p-th percentile (0..100) by linear interpolation. */
double percentile(std::vector<double> values, double p);

/** Formats @p v as a signed percentage string like "+1.73%". */
std::string format_pct(double v);

}  // namespace moka

#endif  // MOKASIM_COMMON_STATS_H
