/**
 * @file
 * Clang Thread Safety Analysis annotations and the annotated mutex
 * types every concurrent structure in src/ must use.
 *
 * The analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
 * turns the repo's locking discipline into compile-time errors: a
 * member declared SIM_GUARDED_BY(mu_) cannot be touched without
 * holding mu_, a helper declared SIM_REQUIRES(mu_) cannot be called
 * from an unlocked context, and a public entry point declared
 * SIM_EXCLUDES(mu_) cannot be re-entered while the lock is held
 * (self-deadlock). TSan validates the interleavings a run happens to
 * exercise; these annotations reject the bug in *every* interleaving
 * before the binary exists — which is what keeps `--jobs N` provably
 * byte-identical to serial (docs/ARCHITECTURE.md, "Static analysis").
 *
 * The attributes only exist under Clang; everywhere else the macros
 * expand to nothing, so GCC builds are unaffected. The analysis is
 * armed by configuring with -DMOKASIM_THREAD_SAFETY=ON (the
 * `thread-safety` preset), which adds -Wthread-safety
 * -Wthread-safety-beta promoted to errors.
 *
 * Conventions (enforced by simlint rule L9):
 *  - no bare `std::mutex` member in src/ — declare a `SimMutex`;
 *  - every SimMutex member must guard something: at least one
 *    SIM_GUARDED_BY(that_member) / SIM_REQUIRES(that_member) in the
 *    same file;
 *  - lock with `SimMutexLock lock(&mu_);`, never std::lock_guard —
 *    std::lock_guard is not annotated, so the analyzer cannot see the
 *    acquisition through it.
 */
#ifndef MOKASIM_COMMON_THREAD_ANNOTATIONS_H
#define MOKASIM_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SIM_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

//! Marks a class as a lockable capability (e.g. "mutex").
#define SIM_CAPABILITY(x) SIM_THREAD_ANNOTATION_(capability(x))

//! Marks an RAII class whose lifetime holds a capability.
#define SIM_SCOPED_CAPABILITY SIM_THREAD_ANNOTATION_(scoped_lockable)

//! Data member readable/writable only while holding the capability.
#define SIM_GUARDED_BY(x) SIM_THREAD_ANNOTATION_(guarded_by(x))

//! Pointee (not the pointer) protected by the capability.
#define SIM_PT_GUARDED_BY(x) SIM_THREAD_ANNOTATION_(pt_guarded_by(x))

//! Function callable only while holding the capabilities.
#define SIM_REQUIRES(...) \
    SIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

//! Function acquiring the capabilities (held on return).
#define SIM_ACQUIRE(...) \
    SIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

//! Function releasing the capabilities (must be held on entry).
#define SIM_RELEASE(...) \
    SIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

//! Function acquiring the capability only when it returns @p ret.
#define SIM_TRY_ACQUIRE(ret, ...) \
    SIM_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

//! Function that must NOT be entered holding the capabilities
//! (deadlock guard on public entry points that lock internally).
#define SIM_EXCLUDES(...) \
    SIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

//! Declares that the capability is held (runtime-checked elsewhere).
#define SIM_ASSERT_CAPABILITY(x) \
    SIM_THREAD_ANNOTATION_(assert_capability(x))

//! Function returning a reference to the given capability.
#define SIM_RETURN_CAPABILITY(x) SIM_THREAD_ANNOTATION_(lock_returned(x))

//! Escape hatch: disables the analysis for one function. Every use
//! must carry a comment explaining why the lock discipline cannot be
//! expressed.
#define SIM_NO_THREAD_SAFETY_ANALYSIS \
    SIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace moka {

/**
 * std::mutex annotated as a Clang capability. libstdc++'s std::mutex
 * carries no thread-safety attributes, so guarding data with it keeps
 * the analyzer blind; this thin wrapper (zero overhead — the methods
 * inline to the std::mutex calls) is what SIM_GUARDED_BY members name.
 */
class SIM_CAPABILITY("mutex") SimMutex
{
  public:
    SimMutex() = default;
    SimMutex(const SimMutex &) = delete;
    SimMutex &operator=(const SimMutex &) = delete;

    void lock() SIM_ACQUIRE() { mu_.lock(); }
    void unlock() SIM_RELEASE() { mu_.unlock(); }
    bool try_lock() SIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII guard for SimMutex — the annotated replacement for
 * std::lock_guard (which the analyzer cannot see through). Takes a
 * pointer so the acquisition reads as `SimMutexLock lock(&mu_);`.
 */
class SIM_SCOPED_CAPABILITY SimMutexLock
{
  public:
    explicit SimMutexLock(SimMutex *mu) SIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_->lock();
    }

    ~SimMutexLock() SIM_RELEASE() { mu_->unlock(); }

    SimMutexLock(const SimMutexLock &) = delete;
    SimMutexLock &operator=(const SimMutexLock &) = delete;

  private:
    SimMutex *mu_;
};

}  // namespace moka

#endif  // MOKASIM_COMMON_THREAD_ANNOTATIONS_H
