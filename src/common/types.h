/**
 * @file
 * Fundamental address/time types and page/block geometry constants
 * shared by every mokasim subsystem.
 *
 * Address-space type safety (see ARCHITECTURE.md): the simulator's
 * whole subject is the virtual/physical split — the VIPT L1D and all
 * L1D prefetchers operate on *virtual* addresses, the PTW/L2/LLC/DRAM
 * on *physical* ones, and the TLB/page table is the only legal
 * bridge.  `VirtAddr`/`PhysAddr` (and `VirtPageNum`/`PhysPageNum`)
 * are zero-overhead strong wrappers over the raw 64-bit `Addr`
 * storage type that make crossing the two spaces a compile error:
 * there is no implicit conversion in either direction, no mixed
 * comparison, and no raw-integer arithmetic on a typed address.
 * Entering a space is an explicit, greppable construction
 * (`VirtAddr{bits}` at trace synthesis, `PhysAddr{frame}` inside the
 * page table); leaving it is the `.raw()` escape hatch, which simlint
 * rule L18 confines to the whitelisted translation seams.  Page/block
 * geometry on typed addresses goes through the typed helpers below —
 * raw `>> 12`-style arithmetic outside this header and `src/vmem/` is
 * flagged by simlint rule L17.
 */
#ifndef MOKASIM_COMMON_TYPES_H
#define MOKASIM_COMMON_TYPES_H

#include <compare>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace moka {

/**
 * Raw 64-bit address storage. Used directly only at the synthesis
 * and translation seams (and for space-agnostic scalars like block
 * numbers and table keys); everywhere else addresses travel as
 * VirtAddr/PhysAddr.
 */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Count of retired instructions. */
using InstCount = std::uint64_t;

/** Cache-block geometry (64B blocks everywhere, as in ChampSim). */
inline constexpr unsigned kBlockBits = 6;
inline constexpr Addr kBlockSize = Addr{1} << kBlockBits;

/** Base (small) page: 4KB. */
inline constexpr unsigned kPageBits = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageBits;

/** Large page: 2MB. */
inline constexpr unsigned kLargePageBits = 21;
inline constexpr Addr kLargePageSize = Addr{1} << kLargePageBits;

/** Cache blocks per 4KB page. */
inline constexpr Addr kBlocksPerPage = kPageSize / kBlockSize;

/*
 * Raw-scalar geometry. Legal on `Addr` only at the seams where
 * addresses genuinely are raw bit patterns (vmem internals walking
 * radix levels, trace synthesis building a footprint); typed code
 * uses the StrongAddr overloads further down.
 */

/** Strip the block offset. */
constexpr Addr block_addr(Addr a) { return a & ~(kBlockSize - 1); }

/** Block number (address >> 6). */
constexpr Addr block_number(Addr a) { return a >> kBlockBits; }

/** 4KB virtual/physical page number. */
constexpr Addr page_number(Addr a) { return a >> kPageBits; }

/** Base address of the enclosing 4KB page. */
constexpr Addr page_addr(Addr a) { return a & ~(kPageSize - 1); }

/** 2MB page number. */
constexpr Addr large_page_number(Addr a) { return a >> kLargePageBits; }

/** Byte offset within the 4KB page. */
constexpr Addr page_offset(Addr a) { return a & (kPageSize - 1); }

/** Byte offset within the 2MB page. */
constexpr Addr large_page_offset(Addr a) { return a & (kLargePageSize - 1); }

/** Cache-line index within the 4KB page (0..63). */
constexpr Addr line_in_page(Addr a) { return page_offset(a) >> kBlockBits; }

/** True when @p a and @p b fall in different 4KB pages. */
constexpr bool crosses_page(Addr a, Addr b)
{
    return page_number(a) != page_number(b);
}

/** True when @p a and @p b fall in different 2MB pages. */
constexpr bool crosses_large_page(Addr a, Addr b)
{
    return large_page_number(a) != large_page_number(b);
}

/** Address-space tag of every virtual-side strong type. */
struct VirtTag
{
};

/** Address-space tag of every physical-side strong type. */
struct PhysTag
{
};

/**
 * A byte address confined to one address space. Same size, layout
 * and codegen as the raw `Addr` it wraps (the perf gates in
 * BENCH_hotpath.json hold it to that); the only things it removes
 * are the accidents: implicit raw conversion, cross-space mixing,
 * and untyped shift/mask geometry.
 *
 * Byte-offset arithmetic (`addr + bytes`, `addr - bytes`) stays in
 * the space; subtracting two same-space addresses yields the signed
 * byte distance. Everything else goes through the typed geometry
 * helpers or the `.raw()` escape hatch that simlint L18 polices.
 */
template <class Tag>
class StrongAddr
{
  public:
    constexpr StrongAddr() = default;

    /** Entering the space is always explicit (and thus greppable). */
    constexpr explicit StrongAddr(Addr raw) : raw_(raw) {}

    /** Escape hatch to the raw bits; call sites are policed by L18. */
    constexpr Addr raw() const { return raw_; }

    friend constexpr bool operator==(StrongAddr, StrongAddr) = default;
    friend constexpr auto operator<=>(StrongAddr, StrongAddr) = default;

    /** Advance by a (possibly negative) byte offset. */
    template <class Int, std::enable_if_t<std::is_integral_v<Int>, int> = 0>
    friend constexpr StrongAddr operator+(StrongAddr a, Int bytes)
    {
        return StrongAddr{a.raw_ + static_cast<Addr>(bytes)};
    }

    /** Step back by a byte offset. */
    template <class Int, std::enable_if_t<std::is_integral_v<Int>, int> = 0>
    friend constexpr StrongAddr operator-(StrongAddr a, Int bytes)
    {
        return StrongAddr{a.raw_ - static_cast<Addr>(bytes)};
    }

    /** Signed byte distance between two same-space addresses. */
    friend constexpr std::int64_t operator-(StrongAddr a, StrongAddr b)
    {
        return static_cast<std::int64_t>(a.raw_ - b.raw_);
    }

    template <class Int, std::enable_if_t<std::is_integral_v<Int>, int> = 0>
    constexpr StrongAddr &operator+=(Int bytes)
    {
        raw_ += static_cast<Addr>(bytes);
        return *this;
    }

  private:
    Addr raw_ = 0;
};

/** A virtual byte address (trace, L1D, L1D prefetchers, vUB). */
using VirtAddr = StrongAddr<VirtTag>;

/** A physical byte address (L2/LLC/DRAM, page walker, pUB). */
using PhysAddr = StrongAddr<PhysTag>;

/**
 * A 4KB page number confined to one address space (a VPN or PPN).
 * Produced by page_number()/large_page_number() on the matching
 * StrongAddr; compared and hashed, never mixed across spaces.
 */
template <class Tag>
class StrongPageNum
{
  public:
    constexpr StrongPageNum() = default;
    constexpr explicit StrongPageNum(Addr raw) : raw_(raw) {}

    /** Escape hatch to the raw page number; policed by L18. */
    constexpr Addr raw() const { return raw_; }

    friend constexpr bool operator==(StrongPageNum, StrongPageNum) = default;
    friend constexpr auto operator<=>(StrongPageNum,
                                      StrongPageNum) = default;

    /** Advance by a (possibly negative) page count. */
    template <class Int, std::enable_if_t<std::is_integral_v<Int>, int> = 0>
    friend constexpr StrongPageNum operator+(StrongPageNum p, Int pages)
    {
        return StrongPageNum{p.raw_ + static_cast<Addr>(pages)};
    }

  private:
    Addr raw_ = 0;
};

/** A virtual page number. */
using VirtPageNum = StrongPageNum<VirtTag>;

/** A physical page number (frame number). */
using PhysPageNum = StrongPageNum<PhysTag>;

/*
 * Typed geometry. Helpers that stay within one address space return
 * typed values; helpers that project onto space-agnostic scalars
 * (block numbers, page-relative offsets, hashing indexes) return raw
 * integers — a block number indexes a set array identically in both
 * spaces, and offsets are invariant under translation.
 */

/** Strip the block offset. */
template <class Tag>
constexpr StrongAddr<Tag> block_addr(StrongAddr<Tag> a)
{
    return StrongAddr<Tag>{block_addr(a.raw())};
}

/** Scalar block number (address >> 6), for set/table indexing. */
template <class Tag>
constexpr Addr block_number(StrongAddr<Tag> a)
{
    return a.raw() >> kBlockBits;
}

/** Typed 4KB page number (VPN/PPN). */
template <class Tag>
constexpr StrongPageNum<Tag> page_number(StrongAddr<Tag> a)
{
    return StrongPageNum<Tag>{a.raw() >> kPageBits};
}

/** Scalar 4KB page number, for hash/index math on typed addresses. */
template <class Tag>
constexpr Addr page_index(StrongAddr<Tag> a)
{
    return a.raw() >> kPageBits;
}

/** Base address of the enclosing 4KB page. */
template <class Tag>
constexpr StrongAddr<Tag> page_addr(StrongAddr<Tag> a)
{
    return StrongAddr<Tag>{page_addr(a.raw())};
}

/** Base address of a 4KB page given its typed page number. */
template <class Tag>
constexpr StrongAddr<Tag> page_base_addr(StrongPageNum<Tag> p)
{
    return StrongAddr<Tag>{p.raw() << kPageBits};
}

/** Typed 2MB page number. */
template <class Tag>
constexpr StrongPageNum<Tag> large_page_number(StrongAddr<Tag> a)
{
    return StrongPageNum<Tag>{a.raw() >> kLargePageBits};
}

/** Scalar 2MB page number, for hash/index math on typed addresses. */
template <class Tag>
constexpr Addr large_page_index(StrongAddr<Tag> a)
{
    return a.raw() >> kLargePageBits;
}

/** Byte offset within the 4KB page (invariant under translation). */
template <class Tag>
constexpr Addr page_offset(StrongAddr<Tag> a)
{
    return a.raw() & (kPageSize - 1);
}

/** Byte offset within the 2MB page (invariant under translation). */
template <class Tag>
constexpr Addr large_page_offset(StrongAddr<Tag> a)
{
    return a.raw() & (kLargePageSize - 1);
}

/** Cache-line index within the 4KB page (0..63). */
template <class Tag>
constexpr Addr line_in_page(StrongAddr<Tag> a)
{
    return page_offset(a) >> kBlockBits;
}

/** True when @p a and @p b fall in different 4KB pages. */
template <class Tag>
constexpr bool crosses_page(StrongAddr<Tag> a, StrongAddr<Tag> b)
{
    return page_index(a) != page_index(b);
}

/** True when @p a and @p b fall in different 2MB pages. */
template <class Tag>
constexpr bool crosses_large_page(StrongAddr<Tag> a, StrongAddr<Tag> b)
{
    return large_page_index(a) != large_page_index(b);
}

/*
 * The wrappers must be free: same size and passing convention as the
 * raw integer, trivially copyable so snapshots and vectors of them
 * cost what the raw type costs.
 */
static_assert(sizeof(VirtAddr) == sizeof(Addr) &&
              sizeof(PhysAddr) == sizeof(Addr));
static_assert(std::is_trivially_copyable_v<VirtAddr> &&
              std::is_trivially_copyable_v<PhysAddr>);
static_assert(sizeof(VirtPageNum) == sizeof(Addr) &&
              std::is_trivially_copyable_v<PhysPageNum>);

/** Kind of a memory reference flowing through the hierarchy. */
enum class AccessType : std::uint8_t {
    kLoad,          //!< demand data load
    kStore,         //!< demand data store (write-allocate)
    kInstFetch,     //!< demand instruction fetch
    kPrefetch,      //!< cache prefetch (data or instruction)
    kPageWalk,      //!< page-table walker reference
    kWriteback,     //!< dirty-victim writeback
};

/** Returns true for demand (non-speculative) access types. */
constexpr bool is_demand(AccessType t)
{
    return t == AccessType::kLoad || t == AccessType::kStore ||
           t == AccessType::kInstFetch;
}

}  // namespace moka

#endif  // MOKASIM_COMMON_TYPES_H
