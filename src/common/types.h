/**
 * @file
 * Fundamental address/time types and page/block geometry constants
 * shared by every mokasim subsystem.
 */
#ifndef MOKASIM_COMMON_TYPES_H
#define MOKASIM_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace moka {

/** Virtual or physical byte address. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Count of retired instructions. */
using InstCount = std::uint64_t;

/** Cache-block geometry (64B blocks everywhere, as in ChampSim). */
inline constexpr unsigned kBlockBits = 6;
inline constexpr Addr kBlockSize = Addr{1} << kBlockBits;

/** Base (small) page: 4KB. */
inline constexpr unsigned kPageBits = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageBits;

/** Large page: 2MB. */
inline constexpr unsigned kLargePageBits = 21;
inline constexpr Addr kLargePageSize = Addr{1} << kLargePageBits;

/** Cache blocks per 4KB page. */
inline constexpr Addr kBlocksPerPage = kPageSize / kBlockSize;

/** Strip the block offset. */
constexpr Addr block_addr(Addr a) { return a & ~(kBlockSize - 1); }

/** Block number (address >> 6). */
constexpr Addr block_number(Addr a) { return a >> kBlockBits; }

/** 4KB virtual/physical page number. */
constexpr Addr page_number(Addr a) { return a >> kPageBits; }

/** Base address of the enclosing 4KB page. */
constexpr Addr page_addr(Addr a) { return a & ~(kPageSize - 1); }

/** 2MB page number. */
constexpr Addr large_page_number(Addr a) { return a >> kLargePageBits; }

/** Byte offset within the 4KB page. */
constexpr Addr page_offset(Addr a) { return a & (kPageSize - 1); }

/** Cache-line index within the 4KB page (0..63). */
constexpr Addr line_in_page(Addr a) { return page_offset(a) >> kBlockBits; }

/** True when @p a and @p b fall in different 4KB pages. */
constexpr bool crosses_page(Addr a, Addr b)
{
    return page_number(a) != page_number(b);
}

/** True when @p a and @p b fall in different 2MB pages. */
constexpr bool crosses_large_page(Addr a, Addr b)
{
    return large_page_number(a) != large_page_number(b);
}

/** Kind of a memory reference flowing through the hierarchy. */
enum class AccessType : std::uint8_t {
    kLoad,          //!< demand data load
    kStore,         //!< demand data store (write-allocate)
    kInstFetch,     //!< demand instruction fetch
    kPrefetch,      //!< cache prefetch (data or instruction)
    kPageWalk,      //!< page-table walker reference
    kWriteback,     //!< dirty-victim writeback
};

/** Returns true for demand (non-speculative) access types. */
constexpr bool is_demand(AccessType t)
{
    return t == AccessType::kLoad || t == AccessType::kStore ||
           t == AccessType::kInstFetch;
}

}  // namespace moka

#endif  // MOKASIM_COMMON_TYPES_H
