#include "core/branch_pred.h"

#include <cstdlib>

#include "common/bitops.h"
#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {

BranchPredictor::BranchPredictor(const BranchPredConfig &config)
    : cfg_(config),
      weights_(std::size_t(config.tables) * config.entries, 0),
      wmin_(static_cast<std::int16_t>(-(1 << (config.weight_bits - 1)))),
      wmax_(static_cast<std::int16_t>((1 << (config.weight_bits - 1)) - 1)),
      entries_mask_(is_pow2(config.entries) ? config.entries - 1 : 0)
{
}

int
BranchPredictor::sum_for(Addr pc, IndexArray &indexes) const
{
    const std::int16_t *arena = weights_.data();
    int sum = 0;
    for (unsigned t = 0; t < cfg_.tables; ++t) {
        // Table t sees the PC hashed with an 8-bit history segment.
        const std::uint64_t seg = (history_ >> (8 * t)) & 0xFF;
        const std::uint64_t h =
            mix64(pc ^ (seg << 17) ^ (static_cast<std::uint64_t>(t) << 40));
        // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
        const std::uint32_t idx = static_cast<std::uint32_t>(
            entries_mask_ != 0 ? h & entries_mask_ : h % cfg_.entries);
        indexes[t] = idx;
        sum += arena[std::size_t(t) * cfg_.entries + idx];
    }
    return sum;
}

bool
BranchPredictor::predict(Addr pc) const
{
    ++lookups_;
    memo_sum_ = sum_for(pc, memo_indexes_);
    memo_pc_ = pc;
    memo_valid_ = true;
    return memo_sum_ >= 0;
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    IndexArray indexes;
    int sum;
    if (memo_valid_ && memo_pc_ == pc) {
        indexes = memo_indexes_;
        sum = memo_sum_;
    } else {
        sum = sum_for(pc, indexes);
    }
    // Training and the history shift below invalidate the memo.
    memo_valid_ = false;
    const bool predicted = sum >= 0;
    if (predicted != taken) {
        ++mispredicts_;
    }
    // Perceptron rule: train on mispredict or weak margin.
    if (predicted != taken || std::abs(sum) < cfg_.train_threshold) {
        std::int16_t *arena = weights_.data();
        for (unsigned t = 0; t < cfg_.tables; ++t) {
            std::int16_t &w = arena[std::size_t(t) * cfg_.entries +
                                    indexes[t]];
            if (taken) {
                if (w < wmax_) {
                    ++w;
                }
            } else {
                if (w > wmin_) {
                    --w;
                }
            }
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
BranchPredictor::save_state(SnapshotWriter &w) const
{
    for (const std::int16_t v : weights_) {
        w.put_u16(static_cast<std::uint16_t>(v));
    }
    w.put_u64(history_);
    w.put_u64(lookups_);
    w.put_u64(mispredicts_);
}

void
BranchPredictor::restore_state(SnapshotReader &r)
{
    for (std::int16_t &v : weights_) {
        const auto got = static_cast<std::int16_t>(r.get_u16());
        if (got < wmin_ || got > wmax_) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "signed counter outside its rails");
        }
        v = got;
    }
    history_ = r.get_u64();
    lookups_ = r.get_u64();
    mispredicts_ = r.get_u64();
    memo_valid_ = false;
}

}  // namespace moka
