#include "core/branch_pred.h"

#include <cstdlib>

#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {

BranchPredictor::BranchPredictor(const BranchPredConfig &config)
    : cfg_(config),
      tables_(config.tables,
              std::vector<SignedSatCounter>(
                  config.entries, SignedSatCounter(config.weight_bits)))
{
}

int
BranchPredictor::sum_for(Addr pc, IndexArray &indexes) const
{
    int sum = 0;
    for (unsigned t = 0; t < cfg_.tables; ++t) {
        // Table t sees the PC hashed with an 8-bit history segment.
        const std::uint64_t seg = (history_ >> (8 * t)) & 0xFF;
        const std::uint32_t idx = static_cast<std::uint32_t>(
            mix64(pc ^ (seg << 17) ^ (static_cast<std::uint64_t>(t) << 40)) %
            cfg_.entries);
        indexes[t] = idx;
        sum += tables_[t][idx].value();
    }
    return sum;
}

bool
BranchPredictor::predict(Addr pc) const
{
    ++lookups_;
    IndexArray indexes;
    return sum_for(pc, indexes) >= 0;
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    IndexArray indexes;
    const int sum = sum_for(pc, indexes);
    const bool predicted = sum >= 0;
    if (predicted != taken) {
        ++mispredicts_;
    }
    // Perceptron rule: train on mispredict or weak margin.
    if (predicted != taken || std::abs(sum) < cfg_.train_threshold) {
        for (unsigned t = 0; t < cfg_.tables; ++t) {
            if (taken) {
                tables_[t][indexes[t]].increment();
            } else {
                tables_[t][indexes[t]].decrement();
            }
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
BranchPredictor::save_state(SnapshotWriter &w) const
{
    for (const std::vector<SignedSatCounter> &table : tables_) {
        for (const SignedSatCounter &weight : table) {
            SnapshotAccess::save(w, weight);
        }
    }
    w.put_u64(history_);
    w.put_u64(lookups_);
    w.put_u64(mispredicts_);
}

void
BranchPredictor::restore_state(SnapshotReader &r)
{
    for (std::vector<SignedSatCounter> &table : tables_) {
        for (SignedSatCounter &weight : table) {
            SnapshotAccess::restore(r, weight);
        }
    }
    history_ = r.get_u64();
    lookups_ = r.get_u64();
    mispredicts_ = r.get_u64();
}

}  // namespace moka
