/**
 * @file
 * Hashed-perceptron branch predictor (Tarjan & Skadron), as listed in
 * the paper's Table IV core configuration. Several weight tables are
 * indexed by PC hashed with different global-history segments; the
 * signed sum decides the direction.
 */
#ifndef MOKASIM_CORE_BRANCH_PRED_H
#define MOKASIM_CORE_BRANCH_PRED_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/** Predictor geometry. */
struct BranchPredConfig
{
    unsigned tables = 8;        //!< feature tables
    unsigned entries = 256;     //!< entries per table
    unsigned weight_bits = 6;
    int train_threshold = 16;   //!< retrain below this |sum| margin
};

/** See file comment. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredConfig &config);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Commit the outcome: trains and shifts the global history. */
    void update(Addr pc, bool taken);

    /** Branches predicted. */
    std::uint64_t lookups() const { return lookups_; }
    /** Mispredicted branches. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Serialize weight tables, history and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    static constexpr unsigned kMaxTables = 16;
    using IndexArray = std::array<std::uint32_t, kMaxTables>;

    int sum_for(Addr pc, IndexArray &indexes) const;

    // LINT_SNAPSHOT_OK: config, rebuilt from MachineConfig
    BranchPredConfig cfg_;
    // One flat table-major arena instead of a vector-of-vectors of
    // SignedSatCounter: the per-branch sum is a gather over one
    // contiguous array, and the rails (identical for every weight)
    // live once in wmin_/wmax_. The snapshot byte format (u16 per
    // weight, table-major) is unchanged.
    std::vector<std::int16_t> weights_;
    std::int16_t wmin_ = 0;            // LINT_SNAPSHOT_OK: config rail
    std::int16_t wmax_ = 0;            // LINT_SNAPSHOT_OK: config rail
    //! entries - 1 when entries is a power of two, else 0 (use %)
    std::uint32_t entries_mask_ = 0;   // LINT_SNAPSHOT_OK: config
    std::uint64_t history_ = 0;
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
    // predict()/update() run back-to-back for the same branch and
    // nothing mutates the weights or history in between, so update()
    // reuses the sum and indexes predict() just computed instead of
    // re-hashing all tables. Pure memoization of a deterministic
    // function — not architectural state.
    mutable IndexArray memo_indexes_{};  // LINT_SNAPSHOT_OK: memo
    mutable Addr memo_pc_ = 0;           // LINT_SNAPSHOT_OK: memo
    mutable int memo_sum_ = 0;           // LINT_SNAPSHOT_OK: memo
    mutable bool memo_valid_ = false;    // LINT_SNAPSHOT_OK: memo
};

}  // namespace moka

#endif  // MOKASIM_CORE_BRANCH_PRED_H
