#include "core/core.h"

#include <algorithm>

#include "snapshot/snapshot.h"

namespace moka {

Core::Core(const CoreConfig &config)
    : cfg_(config), retire_ring_(config.rob_entries, 0)
{
}

Cycle
Core::dispatch(Cycle fetch_ready)
{
    // The slot about to be reused holds the retire cycle of the
    // instruction rob_entries older; we cannot dispatch before it
    // has left the ROB.
    const Cycle rob_ready = retire_ring_[ring_head_];
    ++window_dispatches_;
    if (rob_ready > fetch_ready) {
        ++window_rob_stalls_;
    }
    return std::max(fetch_ready, rob_ready);
}

Cycle
Core::retire(Cycle complete)
{
    Cycle r = std::max(complete + 1, last_retire_);
    if (r == last_retire_) {
        if (++retire_slot_used_ > cfg_.width) {
            r += 1;
            retire_slot_used_ = 1;
        }
    } else {
        retire_slot_used_ = 1;
    }
    last_retire_ = r;
    retire_ring_[ring_head_] = r;
    // Wrap with a compare, not %: rob_entries is not a power of two,
    // so the modulo is an integer division on the per-instruction
    // retire path (rule L19).
    if (++ring_head_ == retire_ring_.size()) {
        ring_head_ = 0;
    }
    ++retired_;
    return r;
}

double
Core::rob_pressure() const
{
    return window_dispatches_ == 0
               ? 0.0
               : static_cast<double>(window_rob_stalls_) /
                     static_cast<double>(window_dispatches_);
}

void
Core::reset_pressure_window()
{
    window_dispatches_ = 0;
    window_rob_stalls_ = 0;
}

void
Core::save_state(SnapshotWriter &w) const
{
    put_vec(w, retire_ring_);
    w.put_u64(ring_head_);
    w.put_u64(last_retire_);
    w.put_u32(retire_slot_used_);
    w.put_u64(retired_);
    w.put_u64(window_dispatches_);
    w.put_u64(window_rob_stalls_);
}

void
Core::restore_state(SnapshotReader &r)
{
    get_vec(r, retire_ring_);
    ring_head_ = r.get_u64();
    last_retire_ = r.get_u64();
    retire_slot_used_ = r.get_u32();
    retired_ = r.get_u64();
    window_dispatches_ = r.get_u64();
    window_rob_stalls_ = r.get_u64();
}

}  // namespace moka
