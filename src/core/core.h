/**
 * @file
 * ROB timing model of an out-of-order core. mokasim is trace-driven:
 * instead of stepping pipeline stages cycle by cycle, each
 * instruction's dispatch/complete/retire cycles are composed from its
 * predecessors' (instruction-driven interval model). The ROB bound,
 * in-order retirement with a width limit, and dependent-load
 * serialization reproduce the stall behaviour page-cross prefetching
 * interacts with.
 */
#ifndef MOKASIM_CORE_CORE_H
#define MOKASIM_CORE_CORE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/** Core parameters (paper Table IV: 352-entry ROB, 6-wide). */
struct CoreConfig
{
    unsigned rob_entries = 352;
    unsigned width = 6;                //!< issue/retire width
    Cycle mispredict_penalty = 12;     //!< frontend refill bubble
};

/** See file comment. */
class Core
{
  public:
    explicit Core(const CoreConfig &config);

    /**
     * Dispatch one instruction whose fetch completes at
     * @p fetch_ready. Blocks on ROB space: the instruction cannot
     * enter until the instruction rob_entries older has retired.
     *
     * @return the dispatch cycle
     */
    Cycle dispatch(Cycle fetch_ready);

    /**
     * Retire the dispatched instruction once it completes at
     * @p complete. Retirement is in-order and width-limited.
     *
     * @return the retire cycle
     */
    Cycle retire(Cycle complete);

    /** Retire cycle of the youngest retired instruction. */
    Cycle last_retire() const { return last_retire_; }

    /** Instructions retired. */
    InstCount retired() const { return retired_; }

    /**
     * Fraction of dispatches in the last window that were limited by
     * ROB space rather than fetch — the model's "ROB pressure" cue
     * for the adaptive thresholding scheme.
     */
    double rob_pressure() const;

    /** Reset the windowed pressure counters (per epoch interval). */
    void reset_pressure_window();

    /** Serialize the retire ring and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    CoreConfig cfg_;  // LINT_SNAPSHOT_OK: config, rebuilt from MachineConfig
    std::vector<Cycle> retire_ring_;  //!< retire cycles, ROB-size deep
    std::size_t ring_head_ = 0;
    Cycle last_retire_ = 0;
    unsigned retire_slot_used_ = 0;
    InstCount retired_ = 0;
    std::uint64_t window_dispatches_ = 0;
    std::uint64_t window_rob_stalls_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_CORE_CORE_H
