#include "core/frontend.h"

#include <algorithm>

#include "snapshot/snapshot.h"

namespace moka {

Frontend::Frontend(const FrontendConfig &config, Cache *l1i, Tlb *itlb,
                   Tlb *stlb, PageWalker *walker, BranchPredictor *bp)
    : cfg_(config), l1i_(l1i), itlb_(itlb), stlb_(stlb), walker_(walker),
      bp_(bp)
{
}

std::pair<PhysAddr, Cycle>
Frontend::translate(VirtAddr vaddr, Cycle now)
{
    Tlb::Result r = itlb_->lookup(vaddr, now, /*demand=*/true);
    if (r.hit) {
        return {r.page_base + (r.large ? large_page_offset(vaddr)
                                       : page_offset(vaddr)),
                r.done};
    }
    Tlb::Result s = stlb_->lookup(vaddr, r.done, /*demand=*/true);
    if (s.hit) {
        itlb_->fill(vaddr, s.page_base, s.large, /*from_prefetch=*/false);
        return {s.page_base + (s.large ? large_page_offset(vaddr)
                                       : page_offset(vaddr)),
                s.done};
    }
    const PageWalker::WalkResult w =
        walker_->walk(vaddr, s.done, /*speculative=*/false);
    stlb_->fill(vaddr, w.page_base, w.large, false);
    itlb_->fill(vaddr, w.page_base, w.large, false);
    return {w.page_base + (w.large ? large_page_offset(vaddr)
                                   : page_offset(vaddr)),
            w.done};
}

Frontend::FetchResult
Frontend::fetch(const TraceInst &inst)
{
    // Width-limited fetch grouping.
    if (++group_used_ > cfg_.fetch_width) {
        fetch_cycle_ += 1;
        group_used_ = 1;
    }

    // New cache block: translate and access L1I. The PC is a virtual
    // address on the fetch path.
    const VirtAddr vpc{inst.pc};
    const Addr block = block_number(vpc);
    if (block != cur_block_) {
        cur_block_ = block;
        auto [paddr, tdone] = translate(vpc, fetch_cycle_);
        const AccessResult r =
            l1i_->access(paddr, AccessType::kInstFetch, tdone);
        fetch_cycle_ = std::max(fetch_cycle_, r.done);

        // Next-line instruction prefetch (fnl-lite): stay within the
        // page so no speculative instruction-side walks are added.
        for (unsigned d = 1; d <= cfg_.l1i_prefetch_degree; ++d) {
            const VirtAddr tv = vpc + d * kBlockSize;
            if (crosses_page(vpc, tv)) {
                break;
            }
            const PhysAddr tp = page_addr(paddr) + page_offset(tv);
            if (!l1i_->probe(tp)) {
                l1i_->access(tp, AccessType::kPrefetch, tdone);
            }
        }
    }

    FetchResult out;
    out.ready = fetch_cycle_;
    if (inst.op == OpClass::kBranch) {
        const bool predicted = bp_->predict(inst.pc);
        bp_->update(inst.pc, inst.taken);
        out.mispredict = predicted != inst.taken;
        if (out.mispredict) {
            // The block after a redirect restarts fetch grouping.
            cur_block_ = ~Addr{0};
        }
    }
    return out;
}

void
Frontend::redirect(Cycle resolve_cycle)
{
    fetch_cycle_ =
        std::max(fetch_cycle_, resolve_cycle + cfg_.mispredict_penalty);
    group_used_ = 0;
}

void
Frontend::save_state(SnapshotWriter &w) const
{
    w.put_u64(fetch_cycle_);
    w.put_u32(group_used_);
    w.put_u64(cur_block_);
}

void
Frontend::restore_state(SnapshotReader &r)
{
    fetch_cycle_ = r.get_u64();
    group_used_ = r.get_u32();
    cur_block_ = r.get_u64();
}

}  // namespace moka
