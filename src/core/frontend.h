/**
 * @file
 * Decoupled frontend: instruction fetch through iTLB + L1I (with a
 * next-line instruction prefetcher standing in for fnl+mma — see
 * DESIGN.md), width-limited fetch grouping, and mispredict redirect
 * bubbles. Produces, per instruction, the cycle at which it becomes
 * available for dispatch.
 */
#ifndef MOKASIM_CORE_FRONTEND_H
#define MOKASIM_CORE_FRONTEND_H

#include "cache/cache.h"
#include "common/types.h"
#include "core/branch_pred.h"
#include "trace/workload.h"
#include "vmem/tlb.h"
#include "vmem/walker.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/** Frontend parameters. */
struct FrontendConfig
{
    unsigned fetch_width = 6;
    unsigned l1i_prefetch_degree = 2;  //!< next-line degree (fnl-lite)
    Cycle mispredict_penalty = 12;
};

/** See file comment. */
class Frontend
{
  public:
    /** Outcome of fetching one instruction. */
    struct FetchResult
    {
        Cycle ready = 0;        //!< available-for-dispatch cycle
        bool mispredict = false; //!< direction mispredicted
    };

    /** All collaborators are owned by the machine. */
    Frontend(const FrontendConfig &config, Cache *l1i, Tlb *itlb,
             Tlb *stlb, PageWalker *walker, BranchPredictor *bp);

    /** Fetch @p inst; see FetchResult. */
    FetchResult fetch(const TraceInst &inst);

    /**
     * A mispredicted branch resolved at @p resolve_cycle: fetch
     * resumes after the refill bubble.
     */
    void redirect(Cycle resolve_cycle);

    /** Serialize fetch-stream state (collaborators snapshot separately). */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    /** iTLB -> sTLB -> walk; returns {paddr, done}. */
    std::pair<PhysAddr, Cycle> translate(VirtAddr vaddr, Cycle now);

    FrontendConfig cfg_;       // LINT_SNAPSHOT_OK: config
    Cache *l1i_;               // LINT_SNAPSHOT_OK: collaborator, owned by core
    Tlb *itlb_;                // LINT_SNAPSHOT_OK: collaborator, owned by core
    Tlb *stlb_;                // LINT_SNAPSHOT_OK: collaborator, owned by core
    PageWalker *walker_;       // LINT_SNAPSHOT_OK: collaborator, owned by core
    BranchPredictor *bp_;      // LINT_SNAPSHOT_OK: collaborator, owned by core
    Cycle fetch_cycle_ = 0;
    unsigned group_used_ = 0;
    Addr cur_block_ = ~Addr{0};
};

}  // namespace moka

#endif  // MOKASIM_CORE_FRONTEND_H
