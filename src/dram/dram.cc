#include "dram/dram.h"

#include <algorithm>

#include "common/bitops.h"
#include "snapshot/snapshot.h"

namespace moka {

Dram::Dram(const DramConfig &config)
    : cfg_(config), banks_(config.channels * config.banks),
      channel_next_free_(config.channels, 0)
{
    if (is_pow2(cfg_.channels)) {
        chan_bits_ = static_cast<int>(log2_exact(cfg_.channels));
    }
    if (is_pow2(cfg_.banks)) {
        bank_bits_ = static_cast<int>(log2_exact(cfg_.banks));
    }
}

AccessResult
Dram::access(PhysAddr paddr, AccessType type, Cycle now,
             bool /*pgc_prefetch*/)
{
    ++accesses_;
    if (type == AccessType::kPrefetch) {
        ++prefetch_accesses_;
    } else if (type == AccessType::kPageWalk) {
        ++walk_accesses_;
    }

    const std::uint64_t block = block_number(paddr);
    // Pow-2 geometry slices with shifts/masks; the division fallback
    // covers exotic user configurations (rule L19).
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    const unsigned channel = static_cast<unsigned>(
        chan_bits_ >= 0 ? block & (cfg_.channels - 1)
                        : block % cfg_.channels);
    const std::uint64_t above_chan =
        chan_bits_ >= 0 ? block >> chan_bits_ : block / cfg_.channels;
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    const unsigned bank = static_cast<unsigned>(
        bank_bits_ >= 0 ? above_chan & (cfg_.banks - 1)
                        : above_chan % cfg_.banks);
    const std::uint64_t above_bank =
        bank_bits_ >= 0 ? above_chan >> bank_bits_
                        : above_chan / cfg_.banks;
    Bank &b = banks_[channel * cfg_.banks + bank];

    // Row id: the address bits above bank/channel interleaving and
    // the column bits (a row holds 2^column_bits blocks per bank).
    const std::uint64_t row =
        bits(above_bank >> cfg_.column_bits, 0, cfg_.rows_bits);

    const Cycle start =
        std::max({now, b.next_free, channel_next_free_[channel]});
    Cycle latency;
    if (b.open_row == row) {
        latency = cfg_.row_hit_latency;
        ++row_hits_;
    } else {
        latency = cfg_.row_miss_latency;
        b.open_row = row;
    }

    const Cycle done = start + latency;
    b.next_free = start + latency / 4;  // bank busy window
    channel_next_free_[channel] = start + cfg_.burst_cycles;

    AccessResult r;
    r.done = done;
    r.hit = false;
    r.merged = false;
    return r;
}

void
Dram::save_state(SnapshotWriter &w) const
{
    for (const Bank &bank : banks_) {
        w.put_u64(bank.open_row);
        w.put_u64(bank.next_free);
    }
    put_vec(w, channel_next_free_);
    w.put_u64(accesses_);
    w.put_u64(row_hits_);
    w.put_u64(prefetch_accesses_);
    w.put_u64(walk_accesses_);
}

void
Dram::restore_state(SnapshotReader &r)
{
    for (Bank &bank : banks_) {
        bank.open_row = r.get_u64();
        bank.next_free = r.get_u64();
    }
    get_vec(r, channel_next_free_);
    accesses_ = r.get_u64();
    row_hits_ = r.get_u64();
    prefetch_accesses_ = r.get_u64();
    walk_accesses_ = r.get_u64();
}

}  // namespace moka
