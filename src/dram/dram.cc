#include "dram/dram.h"

#include <algorithm>

#include "common/bitops.h"

namespace moka {

Dram::Dram(const DramConfig &config)
    : cfg_(config), banks_(config.channels * config.banks),
      channel_next_free_(config.channels, 0)
{
}

AccessResult
Dram::access(Addr paddr, AccessType type, Cycle now, bool /*pgc_prefetch*/)
{
    ++accesses_;
    if (type == AccessType::kPrefetch) {
        ++prefetch_accesses_;
    } else if (type == AccessType::kPageWalk) {
        ++walk_accesses_;
    }

    const std::uint64_t block = block_number(paddr);
    const unsigned channel =
        static_cast<unsigned>(block % cfg_.channels);
    const unsigned bank = static_cast<unsigned>(
        (block / cfg_.channels) % cfg_.banks);
    Bank &b = banks_[channel * cfg_.banks + bank];

    // Row id: the address bits above bank/channel interleaving and
    // the column bits (a row holds 2^column_bits blocks per bank).
    const std::uint64_t row =
        bits((block / (cfg_.channels * cfg_.banks)) >> cfg_.column_bits,
             0, cfg_.rows_bits);

    const Cycle start =
        std::max({now, b.next_free, channel_next_free_[channel]});
    Cycle latency;
    if (b.open_row == row) {
        latency = cfg_.row_hit_latency;
        ++row_hits_;
    } else {
        latency = cfg_.row_miss_latency;
        b.open_row = row;
    }

    const Cycle done = start + latency;
    b.next_free = start + latency / 4;  // bank busy window
    channel_next_free_[channel] = start + cfg_.burst_cycles;

    AccessResult r;
    r.done = done;
    r.hit = false;
    r.merged = false;
    return r;
}

}  // namespace moka
