/**
 * @file
 * DRAM model: channels, banks, open-row policy, and bandwidth
 * contention through per-bank and per-channel availability. Useless
 * page-cross prefetches consume real DRAM slots here, which is one of
 * the two costs the paper charges them with.
 */
#ifndef MOKASIM_DRAM_DRAM_H
#define MOKASIM_DRAM_DRAM_H

#include <cstdint>
#include <vector>

#include "cache/memory_level.h"
#include "common/stats.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** DRAM geometry and timing (core-clock cycles). */
struct DramConfig
{
    unsigned channels = 1;      //!< independent channels
    unsigned banks = 16;        //!< banks per channel
    unsigned rows_bits = 16;    //!< row id width
    unsigned column_bits = 5;   //!< blocks per row per bank (2^n)
    Cycle row_hit_latency = 90;   //!< CAS-only access
    Cycle row_miss_latency = 180; //!< precharge+activate+CAS
    Cycle burst_cycles = 3;     //!< data-bus occupancy per 64B transfer
};

/** Open-row DRAM with per-bank and per-channel availability. */
class Dram : public MemoryLevel
{
  public:
    explicit Dram(const DramConfig &config);

    /** Perform one 64B transfer; @p type only affects statistics. */
    AccessResult access(PhysAddr paddr, AccessType type, Cycle now,
                        bool pgc_prefetch = false) override;

    /** Total accesses served. */
    std::uint64_t accesses() const { return accesses_; }
    /** Row-buffer hits. */
    std::uint64_t row_hits() const { return row_hits_; }
    /** Accesses attributable to prefetch fills. */
    std::uint64_t prefetch_accesses() const { return prefetch_accesses_; }
    /** Accesses attributable to page walks. */
    std::uint64_t walk_accesses() const { return walk_accesses_; }

    /** Sentinel for a bank with no open row. */
    static constexpr std::uint64_t kNoOpenRow = ~std::uint64_t{0};

    /** Serialize open rows, availabilities and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    struct Bank
    {
        std::uint64_t open_row = kNoOpenRow;
        Cycle next_free = 0;
    };

    DramConfig cfg_;  // LINT_SNAPSHOT_OK: config, rebuilt from MachineConfig
    // Address-slicing plan, precomputed at construction: when the
    // channel/bank counts are powers of two (they are in every
    // shipped configuration) the per-access divisions strength-reduce
    // to shifts and masks (rule L19). -1 marks a non-pow2 count that
    // must keep the division.
    int chan_bits_ = -1;   // LINT_SNAPSHOT_OK: config
    int bank_bits_ = -1;   // LINT_SNAPSHOT_OK: config
    std::vector<Bank> banks_;               //!< channels*banks flat
    std::vector<Cycle> channel_next_free_;  //!< data-bus availability
    std::uint64_t accesses_ = 0;
    std::uint64_t row_hits_ = 0;
    std::uint64_t prefetch_accesses_ = 0;
    std::uint64_t walk_accesses_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_DRAM_DRAM_H
