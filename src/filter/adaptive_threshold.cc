#include "filter/adaptive_threshold.h"

#include "snapshot/snapshot.h"

#include <algorithm>

#include "telemetry/gate.h"

namespace moka {

AdaptiveThreshold::AdaptiveThreshold(const ThresholdConfig &config)
    : cfg_(config), ta_(config.adaptive ? config.t_low : config.t_static)
{
    // Adaptive filters start at the aggressive level so the weights
    // get training exposure; the intra-epoch rules clamp T_a to
    // t_high within one interval if that exploration goes badly.
}

void
AdaptiveThreshold::clamp()
{
    ta_ = std::clamp(ta_, cfg_.t_min, cfg_.t_max);
}

void
AdaptiveThreshold::on_interval(const SystemSnapshot &snap)
{
    if (!cfg_.adaptive) {
        return;
    }

    // Extreme LLC pressure: disable page-cross prefetching entirely.
    // vUB keeps observing false negatives, so the filter can re-arm
    // itself once pressure subsides (paper: "page-cross prefetching
    // might be activated again thanks to vUB's operation").
    pgc_disabled_ = snap.llc_miss_rate > cfg_.llc_missrate_extreme &&
                    snap.llc_mpki > cfg_.llc_mpki_extreme;

    // (1) High ROB pressure with many in-flight L1D misses: only
    // very-high-confidence page-cross prefetches may pass.
    const bool rob_clamp =
        snap.rob_occupancy > cfg_.rob_pressure_threshold &&
        snap.inflight_l1d_misses > cfg_.inflight_threshold;
    if (rob_clamp) {
        ta_ = std::max(ta_, cfg_.t_high);
    }
    // (2) Running PGC accuracy collapsed below T1.
    const bool acc_clamp =
        snap.pgc_accuracy_valid && snap.pgc_accuracy < cfg_.acc_low;
    if (acc_clamp) {
        ta_ = std::max(ta_, cfg_.t_high);
    }
    // (3) L1I pressure: avoid contending with demand instruction
    // accesses in the L2C.
    const bool l1i_clamp = snap.l1i_mpki > cfg_.l1i_mpki_threshold;
    if (l1i_clamp) {
        ta_ = std::max(ta_, cfg_.t_mid);
    }
    clamp();

    if (telemetry_enabled()) {
        tel_.rob_clamps += rob_clamp ? 1 : 0;
        tel_.acc_clamps += acc_clamp ? 1 : 0;
        tel_.l1i_clamps += l1i_clamp ? 1 : 0;
        tel_.disable_intervals += pgc_disabled_ ? 1 : 0;
    }
}

void
AdaptiveThreshold::on_epoch(const EpochInfo &info)
{
    if (!cfg_.adaptive) {
        return;
    }

    if (info.accuracy_valid) {
        // Force conservative levels below the accuracy trip points.
        if (info.pgc_accuracy < cfg_.acc_low) {
            ta_ = std::max(ta_, cfg_.t_high);
            if (telemetry_enabled()) {
                ++tel_.epoch_acc_clamps;
            }
        } else if (info.pgc_accuracy < cfg_.acc_mid) {
            ta_ = std::max(ta_, cfg_.t_mid);
            if (telemetry_enabled()) {
                ++tel_.epoch_acc_clamps;
            }
        }
        // Accuracy trend between consecutive epochs nudges T_a by one.
        // NOTE: the paper's text says "increase (decrease) in accuracy
        // increases (decreases) Ta"; taken literally that starves
        // perfectly accurate filters (Ta ratchets up to t_max) and
        // rewards collapsing accuracy, contradicting the same
        // figure's low-accuracy clamps. We implement the consistent
        // feedback direction: improving accuracy relaxes Ta,
        // degrading accuracy tightens it (see DESIGN.md).
        if (have_prev_ && prev_.accuracy_valid) {
            if (info.pgc_accuracy > prev_.pgc_accuracy) {
                --ta_;
                if (telemetry_enabled()) {
                    ++tel_.nudges_down;
                }
            } else if (info.pgc_accuracy < prev_.pgc_accuracy) {
                ++ta_;
                if (telemetry_enabled()) {
                    ++tel_.nudges_up;
                }
            }
        }
    }
    // IPC drop between consecutive epochs forces at least t_mid
    // (paper step 5).
    if (have_prev_ && info.ipc < prev_.ipc && ta_ < cfg_.t_mid) {
        ta_ = cfg_.t_mid;
        if (telemetry_enabled()) {
            ++tel_.ipc_drop_clamps;
        }
    }
    clamp();
    prev_ = info;
    have_prev_ = true;
}

void AdaptiveThreshold::save_state(SnapshotWriter &w) const
{
    w.begin_section("filter.threshold");
    w.put_i64(ta_);
    w.put_bool(pgc_disabled_);
    w.put_bool(have_prev_);
    w.put_f64(prev_.pgc_accuracy);
    w.put_bool(prev_.accuracy_valid);
    w.put_f64(prev_.ipc);
    w.put_u64(tel_.rob_clamps);
    w.put_u64(tel_.acc_clamps);
    w.put_u64(tel_.l1i_clamps);
    w.put_u64(tel_.disable_intervals);
    w.put_u64(tel_.epoch_acc_clamps);
    w.put_u64(tel_.nudges_up);
    w.put_u64(tel_.nudges_down);
    w.put_u64(tel_.ipc_drop_clamps);
}

void AdaptiveThreshold::restore_state(SnapshotReader &r)
{
    r.begin_section("filter.threshold");
    ta_ = static_cast<int>(r.get_i64());
    pgc_disabled_ = r.get_bool();
    have_prev_ = r.get_bool();
    prev_.pgc_accuracy = r.get_f64();
    prev_.accuracy_valid = r.get_bool();
    prev_.ipc = r.get_f64();
    tel_.rob_clamps = r.get_u64();
    tel_.acc_clamps = r.get_u64();
    tel_.l1i_clamps = r.get_u64();
    tel_.disable_intervals = r.get_u64();
    tel_.epoch_acc_clamps = r.get_u64();
    tel_.nudges_up = r.get_u64();
    tel_.nudges_down = r.get_u64();
    tel_.ipc_drop_clamps = r.get_u64();
}

}  // namespace moka
