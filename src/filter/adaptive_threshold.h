/**
 * @file
 * MOKA's epoch-based adaptive thresholding scheme (paper §III-C3,
 * Fig. 8). Intra-epoch, extreme cache/ROB pressure snaps the
 * activation threshold T_a to medium or high values (or disables
 * page-cross prefetching outright); at epoch boundaries, page-cross
 * accuracy and IPC trends nudge T_a.
 */
#ifndef MOKASIM_FILTER_ADAPTIVE_THRESHOLD_H
#define MOKASIM_FILTER_ADAPTIVE_THRESHOLD_H

#include <cstdint>

#include "filter/system_features.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Threshold levels and trip points. */
struct ThresholdConfig
{
    bool adaptive = true;  //!< false: hold t_static forever
    int t_static = 2;      //!< static threshold (PPF-style designs)

    int t_low = -2;        //!< aggressive level
    int t_mid = 3;         //!< medium level t_m
    int t_high = 10;       //!< conservative level t_h
    int t_min = -8;        //!< clamp range of T_a
    int t_max = 14;

    double acc_low = 0.30;   //!< T1: force t_high below this accuracy
    double acc_mid = 0.55;   //!< T2: force t_mid below this accuracy
    double l1i_mpki_threshold = 4.0;     //!< T_L1i (L1I pressure)
    double rob_pressure_threshold = 0.85; //!< ROB occupancy fraction
    unsigned inflight_threshold = 10;    //!< in-flight L1D misses
    double llc_missrate_extreme = 0.93;  //!< disable PGC above these...
    double llc_mpki_extreme = 160.0;     //!< ...two together
};

/** Epoch summary handed to the scheme at epoch boundaries. */
struct EpochInfo
{
    double pgc_accuracy = 0.0;  //!< useful/(useful+useless) this epoch
    bool accuracy_valid = false; //!< enough resolved PGC prefetches
    double ipc = 0.0;
};

/**
 * Cumulative counts of the adaptive-threshold control actions, for
 * the telemetry sampler (counts only move while telemetry is armed;
 * see telemetry/gate.h). Public fields without trailing underscores:
 * this is a passive snapshot surface, not a stateful class.
 */
struct ThresholdTelemetry
{
    std::uint64_t rob_clamps = 0;      //!< intra-epoch ROB-pressure clamps
    std::uint64_t acc_clamps = 0;      //!< intra-epoch accuracy clamps
    std::uint64_t l1i_clamps = 0;      //!< intra-epoch L1I-pressure clamps
    std::uint64_t disable_intervals = 0;  //!< intervals with PGC disabled
    std::uint64_t epoch_acc_clamps = 0;   //!< epoch accuracy trip points
    std::uint64_t nudges_up = 0;       //!< epoch trend: T_a tightened
    std::uint64_t nudges_down = 0;     //!< epoch trend: T_a relaxed
    std::uint64_t ipc_drop_clamps = 0; //!< epoch IPC-drop forcing t_mid
};

/** See file comment. */
class AdaptiveThreshold
{
  public:
    explicit AdaptiveThreshold(const ThresholdConfig &config);

    /** Current activation threshold T_a. */
    int threshold() const { return ta_; }

    /** True while extreme LLC pressure disables page-cross prefetching. */
    bool pgc_disabled() const { return pgc_disabled_; }

    /**
     * Discretized T_a level for timeseries plots: 0 while T_a sits at
     * or below t_low, 1 below t_high, 2 at or above t_high.
     */
    int level() const
    {
        if (ta_ >= cfg_.t_high) {
            return 2;
        }
        return ta_ <= cfg_.t_low ? 0 : 1;
    }

    /** Control-action counters (moves only while telemetry is armed). */
    const ThresholdTelemetry &telemetry_counters() const { return tel_; }

    /** Intra-epoch check against extreme behaviours (paper step 2). */
    void on_interval(const SystemSnapshot &snap);

    /** Epoch-boundary update (paper steps 3-5). */
    void on_epoch(const EpochInfo &info);

    /** Config echo. */
    const ThresholdConfig &config() const { return cfg_; }

    /** Serialize T_a, the disable latch and epoch memory. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    void clamp();

    ThresholdConfig cfg_;  // LINT_SNAPSHOT_OK: config
    int ta_;
    bool pgc_disabled_ = false;
    bool have_prev_ = false;
    EpochInfo prev_;
    ThresholdTelemetry tel_;
};

}  // namespace moka

#endif  // MOKASIM_FILTER_ADAPTIVE_THRESHOLD_H
