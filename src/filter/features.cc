#include "filter/features.h"

#include "snapshot/snapshot.h"

#include <cstdlib>

#include "common/hashing.h"

namespace moka {

std::uint64_t
eval_feature(ProgramFeatureId id, const FeatureInput &in)
{
    // Deltas participate as unsigned two's-complement values; `d` and
    // `ad` (absolute) plus the prefetch target `tva` are precomputed
    // for the expression table.
    const std::uint64_t d = static_cast<std::uint64_t>(in.delta);
    const std::uint64_t ad =
        static_cast<std::uint64_t>(std::llabs(in.delta));
    const VirtAddr tva = in.vaddr + in.delta * 64;
    (void)ad;
    switch (id) {
#define MOKA_EVAL(id_, name_, expr_)                                         \
      case ProgramFeatureId::id_:                                            \
        return static_cast<std::uint64_t>(expr_);
        MOKA_PROGRAM_FEATURES(MOKA_EVAL)
#undef MOKA_EVAL
    }
    return 0;
}

const char *
feature_name(ProgramFeatureId id)
{
    switch (id) {
#define MOKA_NAME(id_, name_, expr_)                                         \
      case ProgramFeatureId::id_:                                            \
        return name_;
        MOKA_PROGRAM_FEATURES(MOKA_NAME)
#undef MOKA_NAME
    }
    return "?";
}

const std::vector<ProgramFeatureId> &
all_program_features()
{
    static const std::vector<ProgramFeatureId> kAll = {
#define MOKA_LIST(id_, name_, expr_) ProgramFeatureId::id_,
        MOKA_PROGRAM_FEATURES(MOKA_LIST)
#undef MOKA_LIST
    };
    return kAll;
}

std::size_t
program_feature_count()
{
    return all_program_features().size();
}

const std::vector<ProgramFeatureId> &
table1_program_features()
{
    static const std::vector<ProgramFeatureId> kTable1 = {
        ProgramFeatureId::kVa,          ProgramFeatureId::kVaP12,
        ProgramFeatureId::kVaP21,       ProgramFeatureId::kLineOffset,
        ProgramFeatureId::kPc,          ProgramFeatureId::kPcPlusOffset,
        ProgramFeatureId::kVaHist3,     ProgramFeatureId::kVpnHist3,
        ProgramFeatureId::kPcHist3,     ProgramFeatureId::kPcXorVa,
        ProgramFeatureId::kPcXorVpn,    ProgramFeatureId::kVaXorDelta,
        ProgramFeatureId::kPcXorDelta,  ProgramFeatureId::kVpnXorDelta,
        ProgramFeatureId::kPcXorFpa,    ProgramFeatureId::kVaXorFpa,
        ProgramFeatureId::kVpnXorFpa,   ProgramFeatureId::kOffsetPlusFpa,
        ProgramFeatureId::kDeltaPlusFpa,
    };
    return kTable1;
}

void
FeatureExtractor::on_demand_access(Addr pc, VirtAddr vaddr)
{
    const Addr page = page_index(vaddr);
    FpaEntry &e = fpa_[mix64(page) % kFpaEntries];
    if (e.page != page) {
        e.page = page;
        e.first_line = line_in_page(vaddr);
    }
    va_hist_[1] = va_hist_[0];
    va_hist_[0] = vaddr;
    pc_hist_[1] = pc_hist_[0];
    pc_hist_[0] = pc;
}

std::uint64_t
eval_specialized(SpecializedFeatureId id, const FeatureInput &in)
{
    switch (id) {
      case SpecializedFeatureId::kMeta:
        return in.meta;
      case SpecializedFeatureId::kMetaXorDelta:
        return in.meta ^ static_cast<std::uint64_t>(in.delta);
      case SpecializedFeatureId::kMetaXorPc:
        return in.meta ^ in.pc;
    }
    return 0;
}

const char *
specialized_feature_name(SpecializedFeatureId id)
{
    switch (id) {
      case SpecializedFeatureId::kMeta:         return "Meta";
      case SpecializedFeatureId::kMetaXorDelta: return "Meta^Delta";
      case SpecializedFeatureId::kMetaXorPc:    return "Meta^PC";
    }
    return "?";
}

FeatureInput
FeatureExtractor::make_input(Addr trigger_pc, VirtAddr trigger_vaddr,
                             std::int64_t delta, std::uint64_t meta) const
{
    FeatureInput in;
    in.pc = trigger_pc;
    in.vaddr = trigger_vaddr;
    in.va1 = va_hist_[0];
    in.va2 = va_hist_[1];
    in.pc1 = pc_hist_[0];
    in.pc2 = pc_hist_[1];
    in.delta = delta;
    in.meta = meta;
    const Addr page = page_index(trigger_vaddr);
    const FpaEntry &e = fpa_[mix64(page) % kFpaEntries];
    in.first_page_access = (e.page == page) ? e.first_line : 0;
    return in;
}

void FeatureExtractor::save_state(SnapshotWriter &w) const
{
    w.begin_section("filter.extractor");
    put_addr(w, va_hist_[0]);
    put_addr(w, va_hist_[1]);
    w.put_u64(pc_hist_[0]);
    w.put_u64(pc_hist_[1]);
    for (const FpaEntry &e : fpa_) {
        w.put_u64(e.page);
        w.put_u64(e.first_line);
    }
}

void FeatureExtractor::restore_state(SnapshotReader &r)
{
    r.begin_section("filter.extractor");
    get_addr(r, va_hist_[0]);
    get_addr(r, va_hist_[1]);
    pc_hist_[0] = r.get_u64();
    pc_hist_[1] = r.get_u64();
    for (FpaEntry &e : fpa_) {
        e.page = r.get_u64();
        e.first_line = r.get_u64();
    }
}

}  // namespace moka
