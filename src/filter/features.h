/**
 * @file
 * MOKA's bouquet of prefetcher-independent program features
 * (paper §III-D1). The framework ships 55 features over the trigger
 * access (PC, VA), short access history, the prefetcher's delta, and
 * the first access made to the trigger's page; Table I lists the 19
 * that correlate best, all of which are included here verbatim.
 */
#ifndef MOKASIM_FILTER_FEATURES_H
#define MOKASIM_FILTER_FEATURES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/**
 * Raw inputs a feature is computed from, assembled by the feature
 * extractor at prediction time.
 */
struct FeatureInput
{
    Addr pc = 0;       //!< PC of the trigger load/store
    VirtAddr vaddr{};  //!< VA of the trigger access
    VirtAddr va1{};    //!< previous load VA (VA_{i-1})
    VirtAddr va2{};    //!< VA before that (VA_{i-2})
    Addr pc1 = 0;      //!< previous load PC
    Addr pc2 = 0;      //!< PC before that
    std::int64_t delta = 0;          //!< prefetcher's block delta
    std::uint64_t first_page_access = 0; //!< line offset of the first
                                         //!< access to the trigger page
    std::uint64_t meta = 0;          //!< prefetcher-specific metadata
                                     //!< (specialized features only)
};

/**
 * Whole-VA feature material. Feature hashing consumes every bit of
 * the trigger VA, which no geometry helper exposes; this is the one
 * sanctioned full-width exit, so the X-macro below stays free of
 * scattered escapes. Page-granular features use page_index()/
 * large_page_index()/block_number()/line_in_page() instead.
 */
constexpr std::uint64_t
va_bits(VirtAddr va)
{
    return va.raw();  // LINT_ADDR_OK: feature-hashing material
}

/**
 * X-macro: id, printable name, value expression over FeatureInput in.
 * Page-granular terms go through the typed geometry helpers
 * (page_index == VA>>12, large_page_index == VA>>21, block_number ==
 * VA>>6); feature-specific sub-page shifts (>>15/18/24) operate on the
 * va_bits() scalar. tests/test_feature_pinning.cc pins the evaluated
 * values so any drift from the original raw expressions is caught.
 */
#define MOKA_PROGRAM_FEATURES(X)                                             \
    /* --- Table I features --------------------------------------- */      \
    X(kVa, "VA", va_bits(in.vaddr))                                          \
    X(kVaP12, "VA>>12", page_index(in.vaddr))                                \
    X(kVaP21, "VA>>21", large_page_index(in.vaddr))                          \
    X(kLineOffset, "CacheLineOffset", line_in_page(in.vaddr))                \
    X(kPc, "PC", in.pc)                                                      \
    X(kPcPlusOffset, "PC+CacheLineOffset", in.pc + line_in_page(in.vaddr))   \
    X(kVaHist3, "VA_2^VA_1^VA",                                              \
      va_bits(in.va2) ^ va_bits(in.va1) ^ va_bits(in.vaddr))                 \
    X(kVpnHist3, "(VA_2>>12)^(VA_1>>12)^(VA>>12)",                           \
      page_index(in.va2) ^ page_index(in.va1) ^ page_index(in.vaddr))        \
    X(kPcHist3, "PC_2^PC_1^PC", in.pc2 ^ in.pc1 ^ in.pc)                     \
    X(kPcXorVa, "PC^VA", in.pc ^ va_bits(in.vaddr))                          \
    X(kPcXorVpn, "PC^(VA>>12)", in.pc ^ page_index(in.vaddr))                \
    X(kVaXorDelta, "VA^Delta", va_bits(in.vaddr) ^ d)                        \
    X(kPcXorDelta, "PC^Delta", in.pc ^ d)                                    \
    X(kVpnXorDelta, "(VA>>12)^Delta", page_index(in.vaddr) ^ d)              \
    X(kPcXorFpa, "PC^FirstPageAccess", in.pc ^ in.first_page_access)         \
    X(kVaXorFpa, "VA^FirstPageAccess",                                       \
      va_bits(in.vaddr) ^ in.first_page_access)                              \
    X(kVpnXorFpa, "(VA>>12)^FirstPageAccess",                                \
      page_index(in.vaddr) ^ in.first_page_access)                           \
    X(kOffsetPlusFpa, "CacheLineOffset+FirstPageAccess",                     \
      line_in_page(in.vaddr) + in.first_page_access)                         \
    X(kDeltaPlusFpa, "Delta+FirstPageAccess", d + in.first_page_access)      \
    /* --- Bouquet extensions -------------------------------------- */     \
    X(kVaP6, "VA>>6", block_number(in.vaddr))                                \
    X(kVaP15, "VA>>15", va_bits(in.vaddr) >> 15)                             \
    X(kVaP18, "VA>>18", va_bits(in.vaddr) >> 18)                             \
    X(kVaP24, "VA>>24", va_bits(in.vaddr) >> 24)                             \
    X(kPcP2, "PC>>2", in.pc >> 2)                                            \
    X(kPcP4, "PC>>4", in.pc >> 4)                                            \
    X(kDelta, "Delta", d)                                                    \
    X(kAbsDelta, "|Delta|", ad)                                              \
    X(kPcPlusDelta, "PC+Delta", in.pc + d)                                   \
    X(kVaPlusDelta, "VA+Delta", va_bits(in.vaddr) + d)                       \
    X(kVaP21XorDelta, "(VA>>21)^Delta", large_page_index(in.vaddr) ^ d)      \
    X(kOffsetXorDelta, "CacheLineOffset^Delta",                              \
      line_in_page(in.vaddr) ^ d)                                            \
    X(kOffsetPlusDelta, "CacheLineOffset+Delta",                             \
      line_in_page(in.vaddr) + d)                                            \
    X(kPcXorOffset, "PC^CacheLineOffset",                                    \
      in.pc ^ line_in_page(in.vaddr))                                        \
    X(kVaHist2, "VA_1^VA", va_bits(in.va1) ^ va_bits(in.vaddr))              \
    X(kVpnHist2, "(VA_1>>12)^(VA>>12)",                                      \
      page_index(in.va1) ^ page_index(in.vaddr))                             \
    X(kPcHist2, "PC_1^PC", in.pc1 ^ in.pc)                                   \
    X(kPcXorVaP21, "PC^(VA>>21)", in.pc ^ large_page_index(in.vaddr))        \
    X(kPcPlusVpn, "PC+(VA>>12)", in.pc + page_index(in.vaddr))               \
    X(kPcXorVaXorDelta, "PC^VA^Delta", in.pc ^ va_bits(in.vaddr) ^ d)        \
    X(kPcXorVpnXorDelta, "PC^(VA>>12)^Delta",                                \
      in.pc ^ page_index(in.vaddr) ^ d)                                      \
    X(kDeltaXorFpa, "Delta^FirstPageAccess", d ^ in.first_page_access)       \
    X(kPcPlusFpa, "PC+FirstPageAccess", in.pc + in.first_page_access)        \
    X(kVaHist3XorDelta, "(VA_2^VA_1^VA)^Delta",                              \
      (va_bits(in.va2) ^ va_bits(in.va1) ^ va_bits(in.vaddr)) ^ d)           \
    X(kPcHist2XorDelta, "(PC_1^PC)^Delta", (in.pc1 ^ in.pc) ^ d)             \
    X(kVpnHist2XorDelta, "((VA_1>>12)^(VA>>12))^Delta",                      \
      (page_index(in.va1) ^ page_index(in.vaddr)) ^ d)                       \
    X(kTargetVa, "TargetVA", va_bits(tva))                                   \
    X(kTargetVpn, "TargetVA>>12", page_index(tva))                           \
    X(kTargetOffset, "TargetCacheLineOffset", line_in_page(tva))             \
    X(kPcXorTargetVpn, "PC^(TargetVA>>12)", in.pc ^ page_index(tva))         \
    X(kVpnPlusDelta, "(VA>>12)+Delta", page_index(in.vaddr) + d)             \
    X(kPcP2XorVa, "(PC>>2)^VA", (in.pc >> 2) ^ va_bits(in.vaddr))            \
    X(kOffsetHist2, "Off_1^Off", line_in_page(in.va1) ^                      \
      line_in_page(in.vaddr))                                                \
    X(kVaXorPcHist2, "(PC_1^PC)^VA", (in.pc1 ^ in.pc) ^ va_bits(in.vaddr))   \
    X(kOffsetDeltaXorPc, "(CacheLineOffset+Delta)^PC",                       \
      (line_in_page(in.vaddr) + d) ^ in.pc)                                  \
    X(kFpa, "FirstPageAccess", in.first_page_access)

/** Program feature identifiers (55 features). */
enum class ProgramFeatureId : std::uint8_t {
#define MOKA_ENUM(id, name, expr) id,
    MOKA_PROGRAM_FEATURES(MOKA_ENUM)
#undef MOKA_ENUM
};

/** Number of program features in the bouquet. */
std::size_t program_feature_count();

/** Compute the raw (unhashed) value of @p id over @p in. */
std::uint64_t eval_feature(ProgramFeatureId id, const FeatureInput &in);

/** Printable name of @p id. */
const char *feature_name(ProgramFeatureId id);

/** All 55 feature ids, in declaration order. */
const std::vector<ProgramFeatureId> &all_program_features();

/** The Table I subset (best-correlating 19 features). */
const std::vector<ProgramFeatureId> &table1_program_features();

/**
 * Prefetcher-specialized features (the paper's SIII-D1 extension
 * hypothesis: "crafting specialized features that exploit metadata of
 * specific prefetchers has the potential to further improve the
 * effectiveness of a Page-Cross Filter"). They consume the `meta`
 * word each prefetcher exports with its candidates — Berti's
 * timeliness count, IPCP's class, BOP's best score.
 */
enum class SpecializedFeatureId : std::uint8_t {
    kMeta,          //!< raw metadata word
    kMetaXorDelta,  //!< metadata ^ delta
    kMetaXorPc,     //!< metadata ^ trigger PC
};

/** Compute the raw value of specialized feature @p id over @p in. */
std::uint64_t eval_specialized(SpecializedFeatureId id,
                               const FeatureInput &in);

/** Printable name of @p id. */
const char *specialized_feature_name(SpecializedFeatureId id);

/**
 * Trigger-side history tracker: feeds FeatureInput with the previous
 * load VAs/PCs and the first-access line offset of recently touched
 * pages. One instance lives in front of each Page-Cross Filter.
 */
class FeatureExtractor
{
  public:
    /** Record a demand data access (program order). */
    void on_demand_access(Addr pc, VirtAddr vaddr);

    /** Assemble the FeatureInput for a prefetch with @p delta. */
    FeatureInput make_input(Addr trigger_pc, VirtAddr trigger_vaddr,
                            std::int64_t delta,
                            std::uint64_t meta = 0) const;

    /** Serialize the VA/PC history and the first-page-access table. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state. */
    void restore_state(SnapshotReader &r);

  private:
    static constexpr std::size_t kFpaEntries = 64;

    struct FpaEntry
    {
        Addr page = ~Addr{0};  //!< scalar VPN (page_index) or ~0 sentinel
        std::uint64_t first_line = 0;
    };

    VirtAddr va_hist_[2]{};  //!< [0] = VA_{i-1}, [1] = VA_{i-2}
    Addr pc_hist_[2] = {0, 0};
    FpaEntry fpa_[kFpaEntries];
};

}  // namespace moka

#endif  // MOKASIM_FILTER_FEATURES_H
