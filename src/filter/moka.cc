#include "filter/moka.h"

#include <cstdlib>

#include "common/bitops.h"
#include "common/check.h"
#include "common/hashing.h"
#include "snapshot/snapshot.h"
#include "telemetry/gate.h"

namespace moka {

MokaFilter::MokaFilter(const MokaConfig &config)
    : cfg_(config), vub_(config.vub_entries), pub_(config.pub_entries),
      thresholds_(config.threshold)
{
    SIM_REQUIRE(cfg_.program_features.size() +
                        cfg_.specialized_features.size() <=
                    VirtDecisionRecord::kMaxFeatures,
                "MOKA configured with more features than a "
                "DecisionRecord can hold");
    SIM_REQUIRE(cfg_.system_features.size() <= 8,
                "MOKA supports at most 8 system features (8-bit mask)");
    SIM_REQUIRE(is_pow2(cfg_.wt_entries),
                "weight-table entries must be a power of two");
    SIM_REQUIRE(cfg_.weight_bits >= 2 && cfg_.weight_bits <= 16,
                "weight width must be 2..16 bits");
    index_bits_ = log2_exact(cfg_.wt_entries);
    wmin_ = static_cast<std::int16_t>(-(1 << (cfg_.weight_bits - 1)));
    wmax_ = static_cast<std::int16_t>((1 << (cfg_.weight_bits - 1)) - 1);
    for (ProgramFeatureId id : cfg_.program_features) {
        slots_.push_back({false, static_cast<std::uint16_t>(id)});
    }
    for (SpecializedFeatureId id : cfg_.specialized_features) {
        slots_.push_back({true, static_cast<std::uint16_t>(id)});
    }
    weights_.assign(slots_.size() << index_bits_, 0);
    for (const SystemFeatureConfig &sf : cfg_.system_features) {
        system_.emplace_back(sf);
    }
}

VirtDecisionRecord
MokaFilter::make_record(VirtAddr block, const FeatureInput &in,
                        const SystemSnapshot &snap) const
{
    VirtDecisionRecord rec;
    rec.block = block;
    rec.num_features = static_cast<std::uint8_t>(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const FeatureSlot s = slots_[i];
        const std::uint64_t value =
            s.specialized
                ? eval_specialized(static_cast<SpecializedFeatureId>(s.id),
                                   in)
                : eval_feature(static_cast<ProgramFeatureId>(s.id), in);
        rec.indexes[i] = table_index(value, index_bits_);
    }
    for (std::size_t i = 0; i < system_.size(); ++i) {
        if (system_[i].active(snap)) {
            rec.system_mask |= static_cast<std::uint8_t>(1u << i);
        }
    }
    return rec;
}

bool
MokaFilter::permit(Addr trigger_pc, VirtAddr trigger_vaddr,
                   std::int64_t delta, VirtAddr target_vaddr,
                   const SystemSnapshot &snap, std::uint64_t meta)
{
    // Stage 1-2: gather program weights and active system weights.
    const FeatureInput in =
        extractor_.make_input(trigger_pc, trigger_vaddr, delta, meta);
    const VirtDecisionRecord rec =
        make_record(block_addr(target_vaddr), in, snap);

    if (thresholds_.pgc_disabled()) {
        // Extreme LLC pressure: discard, but let vUB keep learning so
        // page-cross prefetching can re-arm later.
        vub_.insert(rec);
        pending_valid_ = false;
        return false;
    }

    // Stage 3: cumulative weight — a gather-and-sum over the flat
    // arena; slot i's table starts at i << index_bits_.
    int w_final = 0;
    const std::int16_t *arena = weights_.data();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        w_final += arena[(i << index_bits_) + rec.indexes[i]];
    }
    for (std::size_t i = 0; i < system_.size(); ++i) {
        if (rec.system_mask & (1u << i)) {
            w_final += system_[i].weight();
        }
    }

    // Stage 4: compare against the activation threshold.
    const bool permitted = w_final > thresholds_.threshold();

    if (telemetry_enabled()) {
        ++tel_.decisions;
        tel_.permits += permitted ? 1 : 0;
        tel_.sum_total += w_final;
        ++tel_.sum_hist[FilterTelemetry::sum_bucket(w_final)];
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            tel_.feature_abs[i] += static_cast<std::uint64_t>(
                std::abs(weight_at(i, rec.indexes[i])));
        }
    }

    if (permitted) {
        pending_ = rec;
        pending_valid_ = true;
        return true;
    }
    vub_.insert(rec);
    pending_valid_ = false;
    return false;
}

void
MokaFilter::on_demand_access(Addr pc, VirtAddr vaddr)
{
    extractor_.on_demand_access(pc, vaddr);
}

template <class AddrT>
void
MokaFilter::train(const DecisionRecordT<AddrT> &rec, bool positive)
{
    for (std::uint8_t i = 0; i < rec.num_features; ++i) {
        std::int16_t &w = weights_[(static_cast<std::size_t>(i)
                                    << index_bits_) +
                                   rec.indexes[i]];
        if (positive) {
            if (w < wmax_) {
                ++w;
            }
        } else if (w > wmin_) {
            --w;
        }
    }
    for (std::size_t i = 0; i < system_.size(); ++i) {
        if (rec.system_mask & (1u << i)) {
            if (positive) {
                system_[i].increment();
            } else {
                system_[i].decrement();
            }
        }
    }
}

void
MokaFilter::on_l1d_demand_miss(VirtAddr vaddr)
{
    // vUB hit: we discarded a page-cross prefetch that would have
    // covered this miss — a false negative. Positive training.
    VirtDecisionRecord rec;
    if (vub_.take(block_addr(vaddr), rec)) {
        train(rec, true);
        if (telemetry_enabled()) {
            ++tel_.vub_rewards;
        }
    }
}

void
MokaFilter::on_pgc_issued(VirtAddr target_vaddr, PhysAddr target_paddr)
{
    if (!pending_valid_) {
        return;
    }
    SIM_AUDIT(pending_.block == block_addr(target_vaddr),
              "issued page-cross prefetch does not match the pending "
              "decision record");
    (void)target_vaddr;
    // The VA->PA hand-off: the pending record crosses the translation
    // seam here and nowhere else.
    pub_.insert(rekey_to_physical(pending_, block_addr(target_paddr)));
    pending_valid_ = false;
}

void
MokaFilter::on_pgc_first_use(PhysAddr block_paddr)
{
    // The issued page-cross prefetch proved useful: reward.
    PhysDecisionRecord rec;
    if (pub_.take(block_addr(block_paddr), rec)) {
        train(rec, true);
        if (telemetry_enabled()) {
            ++tel_.pub_rewards;
        }
    }
}

void
MokaFilter::on_pgc_eviction(PhysAddr block_paddr, bool used)
{
    PhysDecisionRecord rec;
    if (!pub_.take(block_addr(block_paddr), rec)) {
        return;
    }
    if (!used) {
        // Evicted without serving a demand access: the filter should
        // have classified this page-cross prefetch as useless.
        train(rec, false);
        if (telemetry_enabled()) {
            ++tel_.pub_punishes;
        }
    }
}

void
MokaFilter::on_interval(const SystemSnapshot &snap)
{
    thresholds_.on_interval(snap);
}

void
MokaFilter::on_epoch(const EpochInfo &info)
{
    thresholds_.on_epoch(info);
}

FilterTelemetry
MokaFilter::telemetry() const
{
    FilterTelemetry t = tel_;
    t.valid = true;
    t.t_a = thresholds_.threshold();
    t.level = thresholds_.level();
    t.pgc_disabled = thresholds_.pgc_disabled();
    t.num_features = slots_.size();
    t.threshold = thresholds_.telemetry_counters();
    return t;
}

std::uint64_t
MokaFilter::storage_bits() const
{
    std::uint64_t bits = static_cast<std::uint64_t>(weights_.size()) *
                         cfg_.weight_bits;
    for (const SystemFeature &sf : system_) {
        bits += sf.storage_bits();
    }
    bits += vub_.storage_bits();
    bits += pub_.storage_bits();
    return bits;
}

namespace {

void
put_record(SnapshotWriter &w, const VirtDecisionRecord &rec)
{
    put_addr(w, rec.block);
    w.put_u8(rec.num_features);
    for (std::uint32_t idx : rec.indexes) {
        w.put_u32(idx);
    }
    w.put_u8(rec.system_mask);
}

void
get_record(SnapshotReader &r, VirtDecisionRecord &rec)
{
    get_addr(r, rec.block);
    rec.num_features = r.get_u8();
    for (std::uint32_t &idx : rec.indexes) {
        idx = r.get_u32();
    }
    rec.system_mask = r.get_u8();
}

void
put_threshold_tel(SnapshotWriter &w, const ThresholdTelemetry &t)
{
    w.put_u64(t.rob_clamps);
    w.put_u64(t.acc_clamps);
    w.put_u64(t.l1i_clamps);
    w.put_u64(t.disable_intervals);
    w.put_u64(t.epoch_acc_clamps);
    w.put_u64(t.nudges_up);
    w.put_u64(t.nudges_down);
    w.put_u64(t.ipc_drop_clamps);
}

void
get_threshold_tel(SnapshotReader &r, ThresholdTelemetry &t)
{
    t.rob_clamps = r.get_u64();
    t.acc_clamps = r.get_u64();
    t.l1i_clamps = r.get_u64();
    t.disable_intervals = r.get_u64();
    t.epoch_acc_clamps = r.get_u64();
    t.nudges_up = r.get_u64();
    t.nudges_down = r.get_u64();
    t.ipc_drop_clamps = r.get_u64();
}

}  // namespace

void
MokaFilter::save_state(SnapshotWriter &w) const
{
    extractor_.save_state(w);
    w.begin_section("filter.moka");
    // Same byte stream as the per-table layout: one u16 per weight,
    // table-major — exactly the arena's storage order.
    for (std::int16_t v : weights_) {
        w.put_u16(static_cast<std::uint16_t>(v));
    }
    for (const SystemFeature &f : system_) {
        f.save_state(w);
    }
    vub_.save_state(w);
    pub_.save_state(w);
    put_record(w, pending_);
    w.put_bool(pending_valid_);
    w.put_bool(tel_.valid);
    w.put_i64(tel_.t_a);
    w.put_i64(tel_.level);
    w.put_bool(tel_.pgc_disabled);
    w.put_u64(tel_.decisions);
    w.put_u64(tel_.permits);
    w.put_u64(tel_.vub_rewards);
    w.put_u64(tel_.pub_rewards);
    w.put_u64(tel_.pub_punishes);
    w.put_i64(tel_.sum_total);
    for (std::uint64_t v : tel_.sum_hist) {
        w.put_u64(v);
    }
    w.put_u64(tel_.num_features);
    for (std::uint64_t v : tel_.feature_abs) {
        w.put_u64(v);
    }
    put_threshold_tel(w, tel_.threshold);
    thresholds_.save_state(w);
}

void
MokaFilter::restore_state(SnapshotReader &r)
{
    extractor_.restore_state(r);
    r.begin_section("filter.moka");
    for (std::int16_t &v : weights_) {
        const auto x = static_cast<std::int16_t>(r.get_u16());
        if (x < wmin_ || x > wmax_) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "signed counter outside its rails");
        }
        v = x;
    }
    for (SystemFeature &f : system_) {
        f.restore_state(r);
    }
    vub_.restore_state(r);
    pub_.restore_state(r);
    get_record(r, pending_);
    pending_valid_ = r.get_bool();
    tel_.valid = r.get_bool();
    tel_.t_a = static_cast<int>(r.get_i64());
    tel_.level = static_cast<int>(r.get_i64());
    tel_.pgc_disabled = r.get_bool();
    tel_.decisions = r.get_u64();
    tel_.permits = r.get_u64();
    tel_.vub_rewards = r.get_u64();
    tel_.pub_rewards = r.get_u64();
    tel_.pub_punishes = r.get_u64();
    tel_.sum_total = r.get_i64();
    for (std::uint64_t &v : tel_.sum_hist) {
        v = r.get_u64();
    }
    tel_.num_features = r.get_u64();
    for (std::uint64_t &v : tel_.feature_abs) {
        v = r.get_u64();
    }
    get_threshold_tel(r, tel_.threshold);
    thresholds_.restore_state(r);
}

}  // namespace moka
