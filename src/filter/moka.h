/**
 * @file
 * The MOKA framework proper: the PageCrossFilter interface the
 * machine talks to, and MokaFilter — the configurable perceptron
 * page-cross filter combining program features, system features,
 * vUB/pUB training and adaptive thresholding (paper §III).
 */
#ifndef MOKASIM_FILTER_MOKA_H
#define MOKASIM_FILTER_MOKA_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "filter/adaptive_threshold.h"
#include "filter/features.h"
#include "filter/perceptron.h"
#include "filter/system_features.h"
#include "filter/update_buffer.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/**
 * Snapshot of a page-cross filter's internal state for the telemetry
 * sampler (telemetry surface (b)): current T_a, the perceptron-sum
 * distribution, vUB/pUB reward-punish counts and per-feature weight
 * contribution. Count fields are cumulative (the sampler computes
 * per-epoch deltas) and move only while telemetry is armed; `valid`
 * is false for filters with nothing to report (Permit/Discard).
 */
struct FilterTelemetry
{
    //! perceptron-sum histogram bucket upper bounds; one overflow
    //! bucket on top (covers the T_a clamp range t_min=-8..t_max=14)
    static constexpr int kSumBounds[7] = {-12, -8, -4, 0, 4, 8, 12};
    static constexpr std::size_t kSumBuckets = 8;
    static constexpr std::size_t kMaxFeatures = 8;

    bool valid = false;
    int t_a = 0;               //!< current activation threshold
    int level = 0;             //!< 0 low / 1 mid / 2 high
    bool pgc_disabled = false; //!< extreme-LLC-pressure kill switch
    std::uint64_t decisions = 0;   //!< full permit() evaluations
    std::uint64_t permits = 0;     //!< decisions above T_a
    std::uint64_t vub_rewards = 0; //!< vUB hits (false-negative fixes)
    std::uint64_t pub_rewards = 0; //!< pUB first-use rewards
    std::uint64_t pub_punishes = 0; //!< pUB unused-eviction punishes
    std::int64_t sum_total = 0;    //!< cumulative w_final over decisions
    std::uint64_t sum_hist[kSumBuckets] = {};  //!< w_final distribution
    std::size_t num_features = 0;  //!< program + specialized features
    //! cumulative |weight| contribution per feature slot
    std::uint64_t feature_abs[kMaxFeatures] = {};
    ThresholdTelemetry threshold;  //!< adaptive-threshold actions

    /** Histogram bucket index of perceptron sum @p w_final. */
    static std::size_t sum_bucket(int w_final)
    {
        for (std::size_t i = 0; i < kSumBuckets - 1; ++i) {
            if (w_final <= kSumBounds[i]) {
                return i;
            }
        }
        return kSumBuckets - 1;
    }
};

/**
 * Interface between the machine and a Page-Cross Filter. The machine
 * calls permit() for every page-cross prefetch candidate and routes
 * L1D lifetime events back for training.
 */
class PageCrossFilter
{
  public:
    virtual ~PageCrossFilter() = default;

    /**
     * Predict whether the page-cross prefetch should be issued.
     *
     * @param trigger_pc    PC of the trigger load
     * @param trigger_vaddr VA of the trigger access
     * @param delta         block delta used by the prefetcher
     * @param target_vaddr  block-aligned prefetch target VA
     * @param snap          current system state
     */
    SIM_HOT virtual bool permit(Addr trigger_pc, VirtAddr trigger_vaddr,
                                std::int64_t delta, VirtAddr target_vaddr,
                                const SystemSnapshot &snap,
                                std::uint64_t meta = 0) = 0;

    /** Demand data access in program order (feeds feature history). */
    virtual void on_demand_access(Addr pc, VirtAddr vaddr)
    {
        (void)pc; (void)vaddr;
    }

    /** L1D demand miss (vUB false-negative check). */
    virtual void on_l1d_demand_miss(VirtAddr vaddr) { (void)vaddr; }

    /**
     * The last permitted prefetch was issued and translated: hand the
     * pending (virtual-keyed) record across to the physical side.
     */
    virtual void on_pgc_issued(VirtAddr target_vaddr, PhysAddr target_paddr)
    {
        (void)target_vaddr; (void)target_paddr;
    }

    /**
     * The last permitted prefetch was dropped after the decision
     * (block already resident/in flight): forget the pending record.
     */
    virtual void on_pgc_abandoned() {}

    /** A PCB block served its first demand hit (positive training). */
    virtual void on_pgc_first_use(PhysAddr block_paddr)
    {
        (void)block_paddr;
    }

    /** A PCB block was evicted; @p used: served >=1 demand access. */
    virtual void on_pgc_eviction(PhysAddr block_paddr, bool used)
    {
        (void)block_paddr; (void)used;
    }

    /** Periodic intra-epoch check (adaptive thresholding). */
    virtual void on_interval(const SystemSnapshot &snap) { (void)snap; }

    /** Epoch boundary (adaptive thresholding). */
    virtual void on_epoch(const EpochInfo &info) { (void)info; }

    /** Identifier for reports. */
    virtual const std::string &name() const = 0;

    /** Hardware budget in bits (Table III audit). */
    virtual std::uint64_t storage_bits() const { return 0; }

    /**
     * Internal-state snapshot for the telemetry sampler; default is
     * an invalid (empty) snapshot for stateless policies.
     */
    virtual FilterTelemetry telemetry() const { return {}; }

    /**
     * Serialize learned state. The default is a no-op pair: correct
     * only for genuinely stateless policies and test doubles; every
     * learning filter overrides both.
     */
    virtual void save_state(SnapshotWriter &w) const { (void)w; }

    /** Inverse of save_state on a same-config instance. */
    virtual void restore_state(SnapshotReader &r) { (void)r; }
};

using FilterPtr = std::unique_ptr<PageCrossFilter>;

/** Full configuration of a MokaFilter instance. */
struct MokaConfig
{
    std::string name = "moka";
    std::vector<ProgramFeatureId> program_features;
    //! optional prefetcher-specialized features (SIII-D1 extension)
    std::vector<SpecializedFeatureId> specialized_features;
    std::vector<SystemFeatureConfig> system_features;
    unsigned wt_entries = 1024;  //!< entries per weight table
    unsigned weight_bits = 5;
    unsigned vub_entries = 4;
    unsigned pub_entries = 128;
    ThresholdConfig threshold;
};

/** The MOKA-built perceptron Page-Cross Filter. */
class MokaFilter : public PageCrossFilter
{
  public:
    explicit MokaFilter(const MokaConfig &config);

    bool permit(Addr trigger_pc, VirtAddr trigger_vaddr, std::int64_t delta,
                VirtAddr target_vaddr, const SystemSnapshot &snap,
                std::uint64_t meta = 0) override;

    void on_demand_access(Addr pc, VirtAddr vaddr) override;
    void on_l1d_demand_miss(VirtAddr vaddr) override;
    void on_pgc_issued(VirtAddr target_vaddr, PhysAddr target_paddr) override;
    void on_pgc_abandoned() override { pending_valid_ = false; }
    void on_pgc_first_use(PhysAddr block_paddr) override;
    void on_pgc_eviction(PhysAddr block_paddr, bool used) override;
    void on_interval(const SystemSnapshot &snap) override;
    void on_epoch(const EpochInfo &info) override;

    const std::string &name() const override { return cfg_.name; }
    std::uint64_t storage_bits() const override;

    /** Current activation threshold (tests/diagnostics). */
    int activation_threshold() const { return thresholds_.threshold(); }

    /** Config echo. */
    const MokaConfig &config() const { return cfg_; }

    FilterTelemetry telemetry() const override;

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    friend struct AuditAccess;

    /**
     * One entry of the feature-slot plan, precomputed at config time:
     * which evaluator (program vs specialized) and which feature id
     * slot i uses. make_record() walks this flat plan instead of
     * branching over two config vectors per access.
     */
    struct FeatureSlot
    {
        bool specialized = false;
        std::uint16_t id = 0;
    };

    template <class AddrT>
    void train(const DecisionRecordT<AddrT> &rec, bool positive);
    VirtDecisionRecord make_record(VirtAddr block, const FeatureInput &in,
                                   const SystemSnapshot &snap) const;

    /** Weight of table @p table at @p index (arena gather). */
    int weight_at(std::size_t table, std::uint32_t index) const
    {
        return weights_[(table << index_bits_) + index];
    }

    MokaConfig cfg_;  // LINT_SNAPSHOT_OK: config
    FeatureExtractor extractor_;
    // Flat weight arena: all per-feature tables share entries and
    // width, so they pack table-major into one contiguous int16
    // array; slot i's table spans [i << index_bits_, (i+1) <<
    // index_bits_). permit()'s sum is then a gather over one array
    // with no per-table object indirection.
    std::vector<FeatureSlot> slots_;  // LINT_SNAPSHOT_OK: config-derived
    std::vector<std::int16_t> weights_;  //!< arena, table-major
    unsigned index_bits_ = 0;  // LINT_SNAPSHOT_OK: config
    std::int16_t wmin_ = 0;    // LINT_SNAPSHOT_OK: rail from config
    std::int16_t wmax_ = 0;    // LINT_SNAPSHOT_OK: rail from config
    std::vector<SystemFeature> system_;    //!< instantiated system features
    VirtUpdateBuffer vub_;   //!< discarded candidates, virtual keys
    PhysUpdateBuffer pub_;   //!< issued candidates, physical keys
    AdaptiveThreshold thresholds_;
    //! permit()'d (virtual key), awaiting on_pgc_issued() to re-key
    VirtDecisionRecord pending_;
    bool pending_valid_ = false;
    FilterTelemetry tel_;      //!< counter part of telemetry()
};

}  // namespace moka

#endif  // MOKASIM_FILTER_MOKA_H
