#include "filter/perceptron.h"

#include "snapshot/snapshot.h"

#include "common/bitops.h"
#include "common/check.h"
#include "common/hashing.h"

namespace moka {

WeightTable::WeightTable(unsigned entries, unsigned weight_bits)
    : weights_(entries, SignedSatCounter(weight_bits)),
      weight_bits_(weight_bits)
{
    SIM_REQUIRE(is_pow2(entries),
                "weight-table entries must be a power of two");
    SIM_REQUIRE(weight_bits >= 2 && weight_bits <= 16,
                "weight width must be 2..16 bits");
    index_bits_ = log2_exact(entries);
}

std::uint32_t
WeightTable::index_of(std::uint64_t feature_value) const
{
    return table_index(feature_value, index_bits_);
}

int
WeightTable::weight_at(std::uint32_t index) const
{
    return weights_[index].value();
}

void
WeightTable::increment(std::uint32_t index)
{
    weights_[index].increment();
}

void
WeightTable::decrement(std::uint32_t index)
{
    weights_[index].decrement();
}

void WeightTable::save_state(SnapshotWriter &w) const
{
    for (const SignedSatCounter &c : weights_) {
        SnapshotAccess::save(w, c);
    }
}

void WeightTable::restore_state(SnapshotReader &r)
{
    for (SignedSatCounter &c : weights_) {
        SnapshotAccess::restore(r, c);
    }
}

}  // namespace moka
