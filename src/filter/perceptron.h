/**
 * @file
 * Hashed-perceptron weight table (Tarjan & Skadron style): one table
 * per selected program feature, 5-bit signed saturating weights,
 * indexed by a folded hash of the raw feature value.
 */
#ifndef MOKASIM_FILTER_PERCEPTRON_H
#define MOKASIM_FILTER_PERCEPTRON_H

#include <cstdint>
#include <vector>

#include "common/sat_counter.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** One feature's weight table. */
class WeightTable
{
  public:
    /**
     * @param entries     table entries (power of two recommended)
     * @param weight_bits signed weight width (paper: 5)
     */
    WeightTable(unsigned entries, unsigned weight_bits);

    /** Map a raw feature value to a table index. */
    std::uint32_t index_of(std::uint64_t feature_value) const;

    /** Weight stored at @p index. */
    int weight_at(std::uint32_t index) const;

    /** Positive training at @p index. */
    void increment(std::uint32_t index);

    /** Negative training at @p index. */
    void decrement(std::uint32_t index);

    /** Number of entries. */
    std::size_t entries() const { return weights_.size(); }

    /** Signed weight width in bits. */
    unsigned weight_bits() const { return weight_bits_; }

    /** Storage cost in bits. */
    std::uint64_t storage_bits() const
    {
        return static_cast<std::uint64_t>(weights_.size()) * weight_bits_;
    }

    /** Serialize every weight. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    std::vector<SignedSatCounter> weights_;
    unsigned weight_bits_;  // LINT_SNAPSHOT_OK: config
    unsigned index_bits_;   // LINT_SNAPSHOT_OK: config
};

}  // namespace moka

#endif  // MOKASIM_FILTER_PERCEPTRON_H
