#include "filter/policies.h"

namespace moka {

SchemeConfig
scheme_permit()
{
    SchemeConfig s;
    s.name = "Permit PGC";
    s.policy = PgcPolicy::kPermit;
    return s;
}

SchemeConfig
scheme_discard()
{
    SchemeConfig s;
    s.name = "Discard PGC";
    s.policy = PgcPolicy::kDiscard;
    return s;
}

SchemeConfig
scheme_discard_ptw()
{
    SchemeConfig s;
    s.name = "Discard PTW";
    s.policy = PgcPolicy::kDiscardPtw;
    return s;
}

SchemeConfig
scheme_iso_storage()
{
    SchemeConfig s;
    s.name = "ISO Storage";
    s.policy = PgcPolicy::kPermit;
    s.iso_storage = true;
    return s;
}

MokaConfig
dripper_config(L1dPrefetcherKind kind)
{
    MokaConfig cfg;
    cfg.name = "DRIPPER";
    // Table II: Berti pairs the raw Delta with the two sTLB system
    // features; BOP and IPCP use PC^Delta instead.
    cfg.program_features = {kind == L1dPrefetcherKind::kBerti
                                ? ProgramFeatureId::kDelta
                                : ProgramFeatureId::kPcXorDelta};
    cfg.system_features = {
        default_system_feature(SystemFeatureId::kStlbMpki),
        default_system_feature(SystemFeatureId::kStlbMissRate),
    };
    // Table III: 1 x 1024 x 5b weights, 4-entry vUB, 128-entry pUB.
    cfg.wt_entries = 1024;
    cfg.weight_bits = 5;
    cfg.vub_entries = 4;
    cfg.pub_entries = 128;
    cfg.threshold.adaptive = true;
    return cfg;
}

FilterPtr
make_dripper(L1dPrefetcherKind kind)
{
    return std::make_unique<MokaFilter>(dripper_config(kind));
}

SchemeConfig
scheme_dripper(L1dPrefetcherKind kind)
{
    SchemeConfig s;
    s.name = "DRIPPER";
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [kind] { return make_dripper(kind); };
    return s;
}

SchemeConfig
scheme_dripper_filter_2mb(L1dPrefetcherKind kind)
{
    SchemeConfig s = scheme_dripper(kind);
    s.name = "DRIPPER(filter@2MB)";
    s.filter_at_2mb = true;
    return s;
}

SchemeConfig
scheme_dripper_specialized(L1dPrefetcherKind kind)
{
    SchemeConfig s;
    s.name = "DRIPPER+Meta";
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [kind] {
        MokaConfig cfg = dripper_config(kind);
        cfg.name = "DRIPPER+Meta";
        cfg.specialized_features = {SpecializedFeatureId::kMeta,
                                    SpecializedFeatureId::kMetaXorDelta};
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

SchemeConfig
scheme_dripper_sf(L1dPrefetcherKind kind)
{
    SchemeConfig s;
    s.name = "DRIPPER-SF";
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [kind] {
        MokaConfig cfg = dripper_config(kind);
        cfg.name = "DRIPPER-SF";
        cfg.program_features.clear();
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

SchemeConfig
scheme_single_program(ProgramFeatureId id)
{
    SchemeConfig s;
    s.name = std::string("PF:") + feature_name(id);
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [id, name = s.name] {
        MokaConfig cfg;
        cfg.name = name;
        cfg.program_features = {id};
        cfg.threshold.adaptive = true;
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

SchemeConfig
scheme_single_system(SystemFeatureId id)
{
    SchemeConfig s;
    s.name = std::string("SF:") + system_feature_name(id);
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [id, name = s.name] {
        MokaConfig cfg;
        cfg.name = name;
        cfg.system_features = {default_system_feature(id)};
        cfg.threshold.adaptive = true;
        return std::make_unique<MokaFilter>(cfg);
    };
    return s;
}

SchemeConfig
scheme_ppf(bool dynamic_threshold)
{
    SchemeConfig s;
    s.name = dynamic_threshold ? "PPF+Dthr" : "PPF";
    s.policy = PgcPolicy::kFilter;
    s.make_filter = [dynamic_threshold] {
        return make_ppf(dynamic_threshold);
    };
    return s;
}

}  // namespace moka
