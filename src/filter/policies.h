/**
 * @file
 * Page-cross policy schemes: the paper's comparison points (Permit
 * PGC, Discard PGC, Discard PTW, ISO Storage, PPF, PPF+Dthr) and the
 * DRIPPER prototypes built with the MOKA framework (Table II).
 */
#ifndef MOKASIM_FILTER_POLICIES_H
#define MOKASIM_FILTER_POLICIES_H

#include <functional>
#include <string>

#include "filter/moka.h"
#include "prefetch/prefetcher.h"

namespace moka {

/** What the machine does with page-cross prefetch candidates. */
enum class PgcPolicy : std::uint8_t {
    kPermit,      //!< always issue (walks allowed)
    kDiscard,     //!< never issue
    kDiscardPtw,  //!< issue only when the translation is TLB-resident
    kFilter,      //!< delegate to a PageCrossFilter
};

/** A named page-cross scheme; one instance per experiment column. */
struct SchemeConfig
{
    std::string name = "Discard PGC";
    PgcPolicy policy = PgcPolicy::kDiscard;
    bool iso_storage = false;    //!< enlarge prefetcher by DRIPPER's budget
    bool filter_at_2mb = false;  //!< Fig. 16: filter at 2MB boundaries for
                                 //!< blocks residing in 2MB pages
    //! Per-core filter factory (kFilter only).
    std::function<FilterPtr()> make_filter;
};

/** Always-issue scheme (paper's Permit PGC). */
SchemeConfig scheme_permit();

/** Never-issue scheme (paper's Discard PGC — the baseline). */
SchemeConfig scheme_discard();

/** TLB-resident-only scheme (paper's Discard PTW). */
SchemeConfig scheme_discard_ptw();

/** Permit PGC with the prefetcher enlarged by 1.44KB (ISO Storage). */
SchemeConfig scheme_iso_storage();

/** DRIPPER for @p kind per Table II. */
SchemeConfig scheme_dripper(L1dPrefetcherKind kind);

/** DRIPPER that filters at 2MB boundaries inside 2MB pages (Fig. 16). */
SchemeConfig scheme_dripper_filter_2mb(L1dPrefetcherKind kind);

/** DRIPPER-SF: system features only (Fig. 15). */
SchemeConfig scheme_dripper_sf(L1dPrefetcherKind kind);

/**
 * DRIPPER augmented with prefetcher-specialized features (the paper's
 * SIII-D1 extension hypothesis; bench/specialized_features tests it).
 */
SchemeConfig scheme_dripper_specialized(L1dPrefetcherKind kind);

/** Single-program-feature filter (Fig. 14 / feature selection). */
SchemeConfig scheme_single_program(ProgramFeatureId id);

/** Single-system-feature filter (Fig. 14 / feature selection). */
SchemeConfig scheme_single_system(SystemFeatureId id);

/** PPF converted to a page-cross filter; @p dynamic_threshold = +Dthr. */
SchemeConfig scheme_ppf(bool dynamic_threshold);

/** The MokaConfig used by DRIPPER for @p kind (Table II + Table III). */
MokaConfig dripper_config(L1dPrefetcherKind kind);

/** Build a DRIPPER filter instance directly (tests, storage audit). */
FilterPtr make_dripper(L1dPrefetcherKind kind);

/** Build the converted-PPF filter instance directly. */
FilterPtr make_ppf(bool dynamic_threshold);

}  // namespace moka

#endif  // MOKASIM_FILTER_POLICIES_H
