/**
 * @file
 * PPF (Perceptron-based Prefetch Filtering, Bhatia et al. ISCA 2019)
 * converted into a page-cross filter, as the paper does for its
 * comparison (§V-A). The SPP-specific features (signature, depth,
 * confidence) are excluded because they do not exist outside SPP;
 * what remains is PPF's prefetcher-independent feature set. PPF has
 * no system features and, in its original form, a static activation
 * threshold; PPF+Dthr grafts MOKA's adaptive thresholding on top.
 */
#include "filter/policies.h"

namespace moka {

FilterPtr
make_ppf(bool dynamic_threshold)
{
    MokaConfig cfg;
    cfg.name = dynamic_threshold ? "PPF+Dthr" : "PPF";
    // PPF's prefetcher-independent features: PC, address forms, line
    // offset, and PC history — notably *no delta* features (PPF's
    // delta inputs came from SPP metadata) and no system features,
    // the two gaps the paper identifies.
    cfg.program_features = {
        ProgramFeatureId::kPc,        ProgramFeatureId::kVa,
        ProgramFeatureId::kLineOffset, ProgramFeatureId::kVaP12,
        ProgramFeatureId::kPcXorVa,   ProgramFeatureId::kPcHist3,
    };
    cfg.system_features.clear();
    // PPF's tables are larger than DRIPPER's (its original budget is
    // tens of KBs across ~9 tables).
    cfg.wt_entries = 4096;
    cfg.weight_bits = 5;
    // PPF's own training structures are large: a 1024-entry prefetch
    // table and a 1024-entry reject table. The vUB/pUB machinery
    // plays those roles in this conversion, at PPF's sizes.
    cfg.vub_entries = 1024;
    cfg.pub_entries = 1024;
    cfg.threshold.adaptive = dynamic_threshold;
    cfg.threshold.t_static = 2;
    return std::make_unique<MokaFilter>(cfg);
}

}  // namespace moka
