#include "filter/system_features.h"

#include "snapshot/snapshot.h"

namespace moka {

SystemFeatureConfig
default_system_feature(SystemFeatureId id)
{
    SystemFeatureConfig cfg;
    cfg.id = id;
    switch (id) {
      case SystemFeatureId::kL1dMpki:
        cfg.threshold = 20.0;
        cfg.active_when_above = false;
        break;
      case SystemFeatureId::kL1dMissRate:
        cfg.threshold = 0.30;
        cfg.active_when_above = true;
        break;
      case SystemFeatureId::kLlcMpki:
        cfg.threshold = 5.0;
        cfg.active_when_above = false;
        break;
      case SystemFeatureId::kLlcMissRate:
        cfg.threshold = 0.50;
        cfg.active_when_above = true;
        break;
      case SystemFeatureId::kStlbMpki:
        // DRIPPER: participates in phases with LOW sTLB pressure,
        // where a page-cross probe will likely hit the TLB hierarchy.
        cfg.threshold = 1.0;
        cfg.active_when_above = false;
        break;
      case SystemFeatureId::kStlbMissRate:
        // Complementary: participates in phases with HIGH sTLB
        // pressure, where prefetch-triggered walks may warm the TLB.
        cfg.threshold = 0.20;
        cfg.active_when_above = true;
        break;
    }
    return cfg;
}

const char *
system_feature_name(SystemFeatureId id)
{
    switch (id) {
      case SystemFeatureId::kL1dMpki:      return "L1D MPKI";
      case SystemFeatureId::kL1dMissRate:  return "L1D Miss Rate";
      case SystemFeatureId::kLlcMpki:      return "LLC MPKI";
      case SystemFeatureId::kLlcMissRate:  return "LLC Miss Rate";
      case SystemFeatureId::kStlbMpki:     return "sTLB MPKI";
      case SystemFeatureId::kStlbMissRate: return "sTLB Miss Rate";
    }
    return "?";
}

const std::vector<SystemFeatureId> &
all_system_features()
{
    static const std::vector<SystemFeatureId> kAll = {
        SystemFeatureId::kL1dMpki,   SystemFeatureId::kL1dMissRate,
        SystemFeatureId::kLlcMpki,   SystemFeatureId::kLlcMissRate,
        SystemFeatureId::kStlbMpki,  SystemFeatureId::kStlbMissRate,
    };
    return kAll;
}

bool
SystemFeature::active(const SystemSnapshot &snap) const
{
    double value = 0.0;
    switch (cfg_.id) {
      case SystemFeatureId::kL1dMpki:      value = snap.l1d_mpki; break;
      case SystemFeatureId::kL1dMissRate:  value = snap.l1d_miss_rate; break;
      case SystemFeatureId::kLlcMpki:      value = snap.llc_mpki; break;
      case SystemFeatureId::kLlcMissRate:  value = snap.llc_miss_rate; break;
      case SystemFeatureId::kStlbMpki:     value = snap.stlb_mpki; break;
      case SystemFeatureId::kStlbMissRate: value = snap.stlb_miss_rate; break;
    }
    return cfg_.active_when_above ? (value > cfg_.threshold)
                                  : (value < cfg_.threshold);
}

void SystemFeature::save_state(SnapshotWriter &w) const
{
    SnapshotAccess::save(w, weight_);
}

void SystemFeature::restore_state(SnapshotReader &r)
{
    SnapshotAccess::restore(r, weight_);
}

}  // namespace moka
