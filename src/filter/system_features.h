/**
 * @file
 * MOKA system features (paper §III-D2): saturating-counter weights
 * that join the perceptron sum only while the system is in the phase
 * the feature targets (e.g. sTLB Miss Rate above a threshold). They
 * let the filter learn that a delta useful in a TLB-quiet phase may
 * be harmful in a TLB-thrashing one.
 */
#ifndef MOKASIM_FILTER_SYSTEM_FEATURES_H
#define MOKASIM_FILTER_SYSTEM_FEATURES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/sat_counter.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Observable system state sampled over a recent instruction window. */
struct SystemSnapshot
{
    double l1d_mpki = 0.0;
    double l1d_miss_rate = 0.0;
    double llc_mpki = 0.0;
    double llc_miss_rate = 0.0;
    double stlb_mpki = 0.0;
    double stlb_miss_rate = 0.0;
    double l1i_mpki = 0.0;
    double ipc = 0.0;
    double rob_occupancy = 0.0;         //!< mean ROB fill fraction
    unsigned inflight_l1d_misses = 0;   //!< outstanding L1D misses
    double pgc_accuracy = 1.0;          //!< running PGC accuracy
    bool pgc_accuracy_valid = false;    //!< enough resolved samples
};

/** The six system features of Table I. */
enum class SystemFeatureId : std::uint8_t {
    kL1dMpki,
    kL1dMissRate,
    kLlcMpki,
    kLlcMissRate,
    kStlbMpki,
    kStlbMissRate,
};

/** Activation rule + weight width for one system feature. */
struct SystemFeatureConfig
{
    SystemFeatureId id = SystemFeatureId::kStlbMpki;
    double threshold = 1.0;        //!< T_sf
    bool active_when_above = false; //!< '?' direction in SF?T_sf
    unsigned weight_bits = 5;
};

/**
 * Paper-guided default activation rule: MPKI features target
 * low-pressure phases (active below threshold), miss-rate features
 * target high-pressure phases (active above threshold) — matching
 * the DRIPPER rationale in §III-E.
 */
SystemFeatureConfig default_system_feature(SystemFeatureId id);

/** Printable name of @p id. */
const char *system_feature_name(SystemFeatureId id);

/** All six ids. */
const std::vector<SystemFeatureId> &all_system_features();

/** One instantiated system feature (rule + trained weight). */
class SystemFeature
{
  public:
    explicit SystemFeature(const SystemFeatureConfig &config)
        : cfg_(config), weight_(config.weight_bits)
    {
    }

    /** True when the feature participates under @p snap. */
    bool active(const SystemSnapshot &snap) const;

    /** Current weight value. */
    int weight() const { return weight_.value(); }

    /** Positive training. */
    void increment() { weight_.increment(); }

    /** Negative training. */
    void decrement() { weight_.decrement(); }

    /** Config echo. */
    const SystemFeatureConfig &config() const { return cfg_; }

    /** Storage cost in bits. */
    std::uint64_t storage_bits() const { return cfg_.weight_bits; }

    /** Serialize the trained weight. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    SystemFeatureConfig cfg_;  // LINT_SNAPSHOT_OK: config
    SignedSatCounter weight_;
};

}  // namespace moka

#endif  // MOKASIM_FILTER_SYSTEM_FEATURES_H
