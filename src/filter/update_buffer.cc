/**
 * @file
 * UpdateBuffer serialization. Lives apart from the header because the
 * buffer itself is header-only hot-path code; snapshotting is cold.
 * The two address-space instantiations (vUB = VirtAddr keys, pUB =
 * PhysAddr keys) are emitted here.
 */
#include "filter/update_buffer.h"

#include "snapshot/snapshot.h"

namespace moka {

namespace {

template <class AddrT>
void
put_record(SnapshotWriter &w, const DecisionRecordT<AddrT> &rec)
{
    put_addr(w, rec.block);
    w.put_u8(rec.num_features);
    for (std::uint32_t idx : rec.indexes) {
        w.put_u32(idx);
    }
    w.put_u8(rec.system_mask);
}

template <class AddrT>
void
get_record(SnapshotReader &r, DecisionRecordT<AddrT> &rec)
{
    get_addr(r, rec.block);
    rec.num_features = r.get_u8();
    for (std::uint32_t &idx : rec.indexes) {
        idx = r.get_u32();
    }
    rec.system_mask = r.get_u8();
}

}  // namespace

template <class AddrT>
void
UpdateBuffer<AddrT>::save_state(SnapshotWriter &w) const
{
    for (const Slot &s : ring_) {
        put_record(w, s.rec);
        w.put_u64(s.seq);
        w.put_bool(s.live);
    }
    put_vec(w, table_);
    w.put_u64(head_);
    w.put_u64(count_);
    w.put_u64(live_);
    w.put_u64(stale_);
    w.put_u64(tombstones_);
    w.put_u64(next_seq_);
    w.put_u64(overflow_evictions_);
}

template <class AddrT>
void
UpdateBuffer<AddrT>::restore_state(SnapshotReader &r)
{
    for (Slot &s : ring_) {
        get_record(r, s.rec);
        s.seq = r.get_u64();
        s.live = r.get_bool();
    }
    get_vec(r, table_);
    head_ = r.get_u64();
    count_ = r.get_u64();
    live_ = r.get_u64();
    stale_ = r.get_u64();
    tombstones_ = r.get_u64();
    next_seq_ = r.get_u64();
    overflow_evictions_ = r.get_u64();
    if (head_ >= ring_.size() || count_ > ring_.size() ||
        live_ > capacity_) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "update buffer occupancy out of range");
    }
}

template class UpdateBuffer<VirtAddr>;
template class UpdateBuffer<PhysAddr>;

}  // namespace moka
