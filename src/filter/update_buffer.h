/**
 * @file
 * The MOKA update buffers (paper §III-B). The Virtual Update Buffer
 * (vUB) remembers recently *discarded* page-cross prefetches by
 * virtual address so a subsequent demand L1D miss on the same block
 * exposes a false negative (positive training). The Physical Update
 * Buffer (pUB) remembers *issued* page-cross prefetches by physical
 * address so L1D use/eviction events can reward or punish the
 * weights. Both store the hash indexes captured at prediction time
 * so exactly the contributing weights get updated.
 */
#ifndef MOKASIM_FILTER_UPDATE_BUFFER_H
#define MOKASIM_FILTER_UPDATE_BUFFER_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;

/** Decision context captured when the filter predicted. */
struct DecisionRecord
{
    static constexpr std::size_t kMaxFeatures = 8;

    Addr block = 0;  //!< block-aligned key (virtual in vUB, physical in pUB)
    std::uint8_t num_features = 0;              //!< valid prefix length
    std::array<std::uint32_t, kMaxFeatures> indexes{};  //!< WT hash indexes
    std::uint8_t system_mask = 0;               //!< active system features
};

/**
 * FIFO associative buffer of DecisionRecords keyed by block address.
 * Functionally a small CAM; implemented with a hash index so large
 * configurations (the converted PPF uses 1024 entries) stay fast.
 * Duplicate keys keep the newest record.
 *
 * take() removes only the hash-index entry; the FIFO slot goes stale
 * and is skipped lazily. Each slot carries the sequence number of the
 * insertion that created it, so a stale slot for a key that was later
 * re-inserted is never confused with the live slot (re-insertion gets
 * a fresh sequence number). Stale slots are purged from the front on
 * insert and compacted wholesale once they dominate, which bounds the
 * FIFO at 2x capacity while keeping take() O(1).
 */
class UpdateBuffer
{
  public:
    explicit UpdateBuffer(std::size_t entries) : capacity_(entries)
    {
        SIM_REQUIRE(entries > 0, "UpdateBuffer capacity must be positive");
    }

    /** Insert @p rec, evicting the oldest record when full. */
    void insert(const DecisionRecord &rec)
    {
        auto it = index_.find(rec.block);
        if (it != index_.end()) {
            it->second.rec = rec;  // refresh in place (FIFO age unchanged)
            return;
        }
        purge_stale_front();
        while (index_.size() >= capacity_ && !fifo_.empty()) {
            const auto [key, seq] = fifo_.front();
            fifo_.pop_front();
            auto victim = index_.find(key);
            if (victim != index_.end() && victim->second.seq == seq) {
                index_.erase(victim);
                ++overflow_evictions_;
            } else {
                --stale_;
            }
        }
        index_.emplace(rec.block, Slot{rec, next_seq_});
        fifo_.emplace_back(rec.block, next_seq_);
        ++next_seq_;
        compact_if_needed();
    }

    /**
     * Find the record for @p block, copy it to @p out and remove it.
     * @return true on hit.
     */
    bool take(Addr block, DecisionRecord &out)
    {
        auto it = index_.find(block);
        if (it == index_.end()) {
            return false;
        }
        out = it->second.rec;
        index_.erase(it);
        // The stale FIFO slot is skipped lazily at eviction time.
        ++stale_;
        return true;
    }

    /** Current occupancy. */
    std::size_t size() const { return index_.size(); }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Records dropped because the buffer was full (FIFO evictions). */
    std::uint64_t overflow_evictions() const { return overflow_evictions_; }

    /**
     * Storage cost in bits: paper charges 36 bits of address/tag plus
     * 12 bits of hash-index bookkeeping per entry.
     */
    std::uint64_t storage_bits() const
    {
        return static_cast<std::uint64_t>(capacity_) * (36 + 12);
    }

  private:
    friend struct AuditAccess;

    struct Slot
    {
        DecisionRecord rec;
        std::uint64_t seq = 0;  //!< insertion that created the slot
    };

    /** True when the FIFO slot still backs a live index entry. */
    bool live(const std::pair<Addr, std::uint64_t> &slot) const
    {
        auto it = index_.find(slot.first);
        return it != index_.end() && it->second.seq == slot.second;
    }

    void purge_stale_front()
    {
        while (!fifo_.empty() && !live(fifo_.front())) {
            fifo_.pop_front();
            --stale_;
        }
    }

    void compact_if_needed()
    {
        if (fifo_.size() < 2 * capacity_ || stale_ == 0) {
            return;
        }
        std::deque<std::pair<Addr, std::uint64_t>> kept;
        for (const auto &slot : fifo_) {
            if (live(slot)) {
                kept.push_back(slot);
            }
        }
        fifo_.swap(kept);
        stale_ = 0;
    }

    std::size_t capacity_;
    //! insertion order: (key, sequence); may hold stale slots
    std::deque<std::pair<Addr, std::uint64_t>> fifo_;
    std::unordered_map<Addr, Slot> index_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t stale_ = 0;    //!< stale slots currently in fifo_
    std::uint64_t overflow_evictions_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_FILTER_UPDATE_BUFFER_H
