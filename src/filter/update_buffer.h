/**
 * @file
 * The MOKA update buffers (paper §III-B). The Virtual Update Buffer
 * (vUB) remembers recently *discarded* page-cross prefetches by
 * virtual address so a subsequent demand L1D miss on the same block
 * exposes a false negative (positive training). The Physical Update
 * Buffer (pUB) remembers *issued* page-cross prefetches by physical
 * address so L1D use/eviction events can reward or punish the
 * weights. Both store the hash indexes captured at prediction time
 * so exactly the contributing weights get updated.
 */
#ifndef MOKASIM_FILTER_UPDATE_BUFFER_H
#define MOKASIM_FILTER_UPDATE_BUFFER_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "common/hot_path.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/**
 * Decision context captured when the filter predicted, keyed by a
 * typed block address: @p AddrT is VirtAddr for vUB records and
 * PhysAddr for pUB records, so a record can never be looked up in the
 * wrong address space.
 */
template <class AddrT>
struct DecisionRecordT
{
    static constexpr std::size_t kMaxFeatures = 8;

    AddrT block{};  //!< block-aligned key in this record's space
    std::uint8_t num_features = 0;              //!< valid prefix length
    std::array<std::uint32_t, kMaxFeatures> indexes{};  //!< WT hash indexes
    std::uint8_t system_mask = 0;               //!< active system features
};

/** vUB record: keyed by the virtual prefetch-target block. */
using VirtDecisionRecord = DecisionRecordT<VirtAddr>;

/** pUB record: keyed by the translated physical block. */
using PhysDecisionRecord = DecisionRecordT<PhysAddr>;

/**
 * Re-key a decision record across the translation seam: when a
 * permitted page-cross prefetch is actually issued, its vUB-style
 * pending record (virtual key) becomes a pUB record under the block's
 * translated physical address. The learned payload (hash indexes,
 * system mask) is space-agnostic and carries over unchanged.
 */
inline PhysDecisionRecord
rekey_to_physical(const VirtDecisionRecord &v, PhysAddr block)
{
    PhysDecisionRecord p;
    p.block = block;
    p.num_features = v.num_features;
    p.indexes = v.indexes;
    p.system_mask = v.system_mask;
    return p;
}

/**
 * FIFO associative buffer of DecisionRecordTs keyed by a typed block
 * address (@p AddrT = VirtAddr for the vUB, PhysAddr for the pUB).
 * Functionally a small CAM. Duplicate keys keep the newest record
 * (refreshed in place; FIFO age unchanged).
 *
 * Storage is flat and allocated once at construction (hot-path rule
 * L10: insert/take run on every page-cross decision and every L1D
 * demand miss, so the steady state must be allocation free):
 *
 *  - a ring of 2x capacity slots in FIFO order. take() only clears
 *    the slot's live flag; the stale slot is skipped lazily at the
 *    front and compacted in place when the ring fills, which bounds
 *    occupied slots at 2x capacity while keeping take() O(1);
 *  - an open-addressing hash table (linear probing, tombstones)
 *    mapping block -> ring slot, sized 4x capacity so the load
 *    factor stays below a half; tombstones are cleared by a rebuild
 *    once they outnumber capacity, amortized O(1) per take().
 */
template <class AddrT>
class UpdateBuffer
{
  public:
    /** The record type this buffer stores. */
    using Record = DecisionRecordT<AddrT>;

    explicit UpdateBuffer(std::size_t entries)
        : capacity_(entries), ring_(2 * entries)
    {
        SIM_REQUIRE(entries > 0, "UpdateBuffer capacity must be positive");
        SIM_REQUIRE(entries < (std::size_t{1} << 30),
                    "UpdateBuffer capacity is implausibly large");
        std::size_t table = 8;
        while (table < 4 * entries) {
            table *= 2;
        }
        table_.assign(table, kEmpty);
        tmask_ = static_cast<std::uint32_t>(table - 1);
    }

    /** Insert @p rec, evicting the oldest record when full. */
    SIM_HOT void insert(const Record &rec)
    {
        const std::uint32_t pos = find_slot(rec.block);
        if (pos != kNoSlot && table_[pos] < kTomb) {
            ring_[table_[pos]].rec = rec;  // refresh in place
            return;
        }
        purge_stale_front();
        while (live_ >= capacity_ && count_ > 0) {
            Slot &front = ring_[head_];
            if (front.live) {
                erase_key(front.rec.block);
                front.live = false;
                --live_;
                ++overflow_evictions_;
            } else {
                --stale_;
            }
            head_ = next(head_);
            --count_;
        }
        if (count_ == ring_.size()) {
            compact();  // stale slots mid-ring: squeeze them out
        }
        // head_ < size and count_ <= size, so one compare-subtract
        // wraps exactly like the modulo without the division
        // (rule L19).
        std::size_t tail_slot = head_ + count_;
        if (tail_slot >= ring_.size()) {
            tail_slot -= ring_.size();
        }
        const std::uint32_t tail = static_cast<std::uint32_t>(tail_slot);
        ring_[tail] = Slot{rec, next_seq_++, true};
        ++count_;
        ++live_;
        // Re-probe: eviction/compaction above may have rewritten the
        // table, so the position from the initial lookup is stale.
        table_[find_free(rec.block)] = tail;
    }

    /**
     * Find the record for @p block, copy it to @p out and remove it.
     * @return true on hit.
     */
    SIM_HOT bool take(AddrT block, Record &out)
    {
        const std::uint32_t pos = find_slot(block);
        if (pos == kNoSlot || table_[pos] >= kTomb) {
            return false;
        }
        Slot &slot = ring_[table_[pos]];
        out = slot.rec;
        slot.live = false;  // stale ring slot, skipped lazily
        --live_;
        ++stale_;
        table_[pos] = kTomb;
        if (++tombstones_ > capacity_) {
            rebuild_table();
        }
        return true;
    }

    /** Current occupancy. */
    std::size_t size() const { return live_; }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Records dropped because the buffer was full (FIFO evictions). */
    std::uint64_t overflow_evictions() const { return overflow_evictions_; }

    /**
     * Storage cost in bits: paper charges 36 bits of address/tag plus
     * 12 bits of hash-index bookkeeping per entry.
     */
    std::uint64_t storage_bits() const
    {
        return static_cast<std::uint64_t>(capacity_) * (36 + 12);
    }

    /**
     * Serialize the ring, hash table and bookkeeping verbatim — the
     * probe layout depends on insertion order, so rebuilding it on
     * restore would diverge from the straight-through run.
     */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    //! table_ sentinel: slot never used
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
    //! table_ sentinel: slot erased (probing continues past it)
    static constexpr std::uint32_t kTomb = 0xFFFFFFFEu;
    //! find_slot result: key absent and no reusable slot seen
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

    struct Slot
    {
        Record rec;
        std::uint64_t seq = 0;  //!< insertion that created the slot
        bool live = false;      //!< false: awaiting lazy FIFO cleanup
    };

    std::size_t next(std::size_t i) const
    {
        return i + 1 == ring_.size() ? 0 : i + 1;
    }

    /**
     * Probe for @p block. Returns the table position holding its
     * ring index, or the first reusable (tombstone, else empty)
     * position for an insert, or kNoSlot when absent with no
     * reusable slot on the probe path (cannot happen below the
     * enforced load factor, but handled anyway).
     */
    std::uint32_t find_slot(AddrT block) const
    {
        std::uint32_t pos = static_cast<std::uint32_t>(mix64(block)) & tmask_;
        std::uint32_t reuse = kNoSlot;
        for (std::uint32_t n = 0; n <= tmask_; ++n) {
            const std::uint32_t entry = table_[pos];
            if (entry == kEmpty) {
                return reuse != kNoSlot ? reuse : pos;
            }
            if (entry == kTomb) {
                if (reuse == kNoSlot) {
                    reuse = pos;
                }
            } else if (ring_[entry].rec.block == block) {
                return pos;
            }
            pos = (pos + 1) & tmask_;
        }
        return reuse;
    }

    /** First insertable position for @p block (key known absent). */
    std::uint32_t find_free(AddrT block) const
    {
        std::uint32_t pos = static_cast<std::uint32_t>(mix64(block)) & tmask_;
        while (table_[pos] < kTomb) {
            pos = (pos + 1) & tmask_;
        }
        return pos;
    }

    /** Tombstone the table entry pointing at the live slot of @p block. */
    void erase_key(AddrT block)
    {
        std::uint32_t pos = static_cast<std::uint32_t>(mix64(block)) & tmask_;
        while (table_[pos] != kEmpty) {
            if (table_[pos] != kTomb &&
                ring_[table_[pos]].rec.block == block) {
                table_[pos] = kTomb;
                ++tombstones_;
                return;
            }
            pos = (pos + 1) & tmask_;
        }
    }

    void purge_stale_front()
    {
        while (count_ > 0 && !ring_[head_].live) {
            head_ = next(head_);
            --count_;
            --stale_;
        }
    }

    /** Drop stale slots, pack live ones toward head_ in order, re-key. */
    void compact()
    {
        // The occupied span can wrap past the ring end, so packing
        // toward ring position 0 would overwrite the not-yet-read
        // wrapped tail and smear those live slots across the ring.
        // Writing in the same ring order the read cursor walks,
        // starting at head_, keeps the write cursor at or behind the
        // read cursor, so every slot is read before it can be
        // reused as a destination.
        std::size_t write = head_;
        std::size_t kept = 0;
        for (std::size_t i = 0, read = head_; i < count_;
             ++i, read = next(read)) {
            if (ring_[read].live) {
                ring_[write] = ring_[read];
                write = next(write);
                ++kept;
            }
        }
        count_ = kept;
        stale_ = 0;
        rebuild_table();
    }

    /** Re-derive table_ from the live ring slots (clears tombstones). */
    void rebuild_table()
    {
        table_.assign(table_.size(), kEmpty);
        tombstones_ = 0;
        for (std::size_t i = 0, pos = head_; i < count_;
             ++i, pos = next(pos)) {
            if (ring_[pos].live) {
                table_[find_free(ring_[pos].rec.block)] =
                    static_cast<std::uint32_t>(pos);
            }
        }
    }

    std::size_t capacity_;  // LINT_SNAPSHOT_OK: config
    //! FIFO ring of live + stale slots; occupied span starts at head_
    std::vector<Slot> ring_;
    std::vector<std::uint32_t> table_;  //!< block -> ring index
    std::uint32_t tmask_ = 0;  // LINT_SNAPSHOT_OK: config, derived
    std::size_t head_ = 0;
    std::size_t count_ = 0;      //!< occupied ring slots (live + stale)
    std::size_t live_ = 0;
    std::uint64_t stale_ = 0;    //!< stale slots currently in the ring
    std::size_t tombstones_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t overflow_evictions_ = 0;
};

/** The Virtual Update Buffer: discarded candidates, virtual keys. */
using VirtUpdateBuffer = UpdateBuffer<VirtAddr>;

/** The Physical Update Buffer: issued candidates, physical keys. */
using PhysUpdateBuffer = UpdateBuffer<PhysAddr>;

// save_state/restore_state are defined (and the two space
// instantiations emitted) in update_buffer.cc, keeping the snapshot
// machinery out of this hot-path header.
extern template class UpdateBuffer<VirtAddr>;
extern template class UpdateBuffer<PhysAddr>;

}  // namespace moka

#endif  // MOKASIM_FILTER_UPDATE_BUFFER_H
