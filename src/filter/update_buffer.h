/**
 * @file
 * The MOKA update buffers (paper §III-B). The Virtual Update Buffer
 * (vUB) remembers recently *discarded* page-cross prefetches by
 * virtual address so a subsequent demand L1D miss on the same block
 * exposes a false negative (positive training). The Physical Update
 * Buffer (pUB) remembers *issued* page-cross prefetches by physical
 * address so L1D use/eviction events can reward or punish the
 * weights. Both store the hash indexes captured at prediction time
 * so exactly the contributing weights get updated.
 */
#ifndef MOKASIM_FILTER_UPDATE_BUFFER_H
#define MOKASIM_FILTER_UPDATE_BUFFER_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/types.h"

namespace moka {

/** Decision context captured when the filter predicted. */
struct DecisionRecord
{
    static constexpr std::size_t kMaxFeatures = 8;

    Addr block = 0;  //!< block-aligned key (virtual in vUB, physical in pUB)
    std::uint8_t num_features = 0;              //!< valid prefix length
    std::array<std::uint32_t, kMaxFeatures> indexes{};  //!< WT hash indexes
    std::uint8_t system_mask = 0;               //!< active system features
};

/**
 * FIFO associative buffer of DecisionRecords keyed by block address.
 * Functionally a small CAM; implemented with a hash index so large
 * configurations (the converted PPF uses 1024 entries) stay fast.
 * Duplicate keys keep the newest record.
 */
class UpdateBuffer
{
  public:
    explicit UpdateBuffer(std::size_t entries) : capacity_(entries) {}

    /** Insert @p rec, evicting the oldest record when full. */
    void insert(const DecisionRecord &rec)
    {
        auto it = index_.find(rec.block);
        if (it != index_.end()) {
            it->second = rec;  // refresh in place (FIFO age unchanged)
            return;
        }
        while (index_.size() >= capacity_ && !fifo_.empty()) {
            index_.erase(fifo_.front());
            fifo_.pop_front();
        }
        index_.emplace(rec.block, rec);
        fifo_.push_back(rec.block);
    }

    /**
     * Find the record for @p block, copy it to @p out and remove it.
     * @return true on hit.
     */
    bool take(Addr block, DecisionRecord &out)
    {
        auto it = index_.find(block);
        if (it == index_.end()) {
            return false;
        }
        out = it->second;
        index_.erase(it);
        // The stale FIFO slot is skipped lazily at eviction time.
        return true;
    }

    /** Current occupancy. */
    std::size_t size() const { return index_.size(); }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Storage cost in bits: paper charges 36 bits of address/tag plus
     * 12 bits of hash-index bookkeeping per entry.
     */
    std::uint64_t storage_bits() const
    {
        return static_cast<std::uint64_t>(capacity_) * (36 + 12);
    }

  private:
    std::size_t capacity_;
    std::deque<Addr> fifo_;  //!< insertion order (may hold stale keys)
    std::unordered_map<Addr, DecisionRecord> index_;
};

}  // namespace moka

#endif  // MOKASIM_FILTER_UPDATE_BUFFER_H
