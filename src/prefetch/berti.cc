#include "prefetch/berti.h"

#include <algorithm>
#include <cstdlib>

#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {

Berti::Berti(const BertiConfig &config)
    : cfg_(config), ips_(config.ip_entries),
      ip_tags_(config.ip_entries, 0), ip_valid_(config.ip_entries, 0),
      ip_lru_(config.ip_entries, 0)
{
    // All per-IP vectors are bounded by configuration; reserving at
    // construction keeps train/select allocation free (rule L10).
    for (IpEntry &e : ips_) {
        e.history.resize(cfg_.history_per_ip);
        e.delta_vals.reserve(cfg_.deltas_per_ip);
        e.delta_occ.reserve(cfg_.deltas_per_ip);
        e.delta_timely.reserve(cfg_.deltas_per_ip);
        e.selected.reserve(cfg_.max_degree);
        e.selected_timely.reserve(cfg_.max_degree);
    }
    sort_scratch_.reserve(cfg_.deltas_per_ip);
}

Berti::IpEntry &
Berti::lookup_ip(Addr pc)
{
    const Addr tag = mix64(pc);
    const std::size_t n = ips_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (ip_valid_[i] != 0 && ip_tags_[i] == tag) {
            ip_lru_[i] = ++lru_stamp_;
            return ips_[i];
        }
    }
    // Allocate the first invalid slot, else the LRU victim.
    std::size_t victim = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (ip_valid_[i] == 0) {
            victim = i;
            break;
        }
        if (ip_lru_[i] < ip_lru_[victim]) {
            victim = i;
        }
    }
    ip_valid_[victim] = 1;
    ip_tags_[victim] = tag;
    ip_lru_[victim] = ++lru_stamp_;
    IpEntry &e = ips_[victim];
    e.history.assign(cfg_.history_per_ip, {});
    e.history_head = 0;
    e.delta_vals.clear();
    e.delta_occ.clear();
    e.delta_timely.clear();
    e.selected.clear();
    e.selected_timely.clear();
    e.window_count = 0;
    return e;
}

void
Berti::train(IpEntry &e, Addr line, Cycle now)
{
    constexpr std::size_t kNoSlot = ~std::size_t{0};
    // Compare against the shadow history: a delta is timely when a
    // prefetch launched at the historical access would have completed
    // by now.
    for (const HistoryItem &h : e.history) {
        if (h.cycle == 0 || h.line == line) {
            continue;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(line) - static_cast<std::int64_t>(h.line);
        if (delta == 0 || std::llabs(delta) > cfg_.max_delta) {
            continue;
        }
        const bool timely = h.cycle + cfg_.timely_latency <= now;
        const std::int64_t *vals = e.delta_vals.data();
        const std::size_t n = e.delta_vals.size();
        std::size_t slot = kNoSlot;
        for (std::size_t i = 0; i < n; ++i) {
            if (vals[i] == delta) {
                slot = i;
                break;
            }
        }
        if (slot == kNoSlot) {
            if (n < cfg_.deltas_per_ip) {
                slot = n;
                e.delta_vals.push_back(delta);
                e.delta_occ.push_back(0);
                e.delta_timely.push_back(0);
            } else {
                // Replace the weakest candidate (first strict minimum
                // of the timely counts, matching min_element).
                std::size_t weakest = 0;
                for (std::size_t i = 1; i < n; ++i) {
                    if (e.delta_timely[i] < e.delta_timely[weakest]) {
                        weakest = i;
                    }
                }
                if (e.delta_timely[weakest] <= 2) {
                    slot = weakest;
                    e.delta_vals[slot] = delta;
                    e.delta_occ[slot] = 0;
                    e.delta_timely[slot] = 0;
                }  // else keep established deltas
            }
        }
        if (slot != kNoSlot) {
            ++e.delta_occ[slot];
            if (timely) {
                ++e.delta_timely[slot];
            }
        }
    }

    e.history[e.history_head] = {line, now};
    // Compare-wrap instead of % — the depth is a runtime config value,
    // so the compiler cannot strength-reduce the modulo (rule L19).
    if (++e.history_head == cfg_.history_per_ip) {
        e.history_head = 0;
    }
}

void
Berti::select_deltas(IpEntry &e)
{
    e.selected.clear();
    e.selected_timely.clear();
    // Member scratch (reserved to deltas_per_ip in the constructor)
    // instead of a per-window local copy, which allocated every
    // window_accesses-th access (rule L10).
    std::vector<DeltaCounter> &sorted = sort_scratch_;
    sorted.clear();
    for (std::size_t i = 0; i < e.delta_vals.size(); ++i) {
        // LINT_HOT_OK: aliases sort_scratch_, reserved to
        // deltas_per_ip in the constructor -- never reallocates.
        sorted.push_back(
            {e.delta_vals[i], e.delta_occ[i], e.delta_timely[i]});
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const DeltaCounter &a, const DeltaCounter &b) {
                  if (a.timely != b.timely) {
                      return a.timely > b.timely;
                  }
                  // Tie-break towards larger deltas: more lead time,
                  // better timeliness for the issued prefetches.
                  return std::llabs(a.delta) > std::llabs(b.delta);
              });
    const double window = static_cast<double>(cfg_.window_accesses);
    for (const DeltaCounter &d : sorted) {
        if (e.selected.size() >= cfg_.max_degree) {
            break;
        }
        if (static_cast<double>(d.timely) >=
            cfg_.coverage_threshold * window) {
            e.selected.push_back(d.delta);
            e.selected_timely.push_back(d.timely);
        }
    }
    std::fill(e.delta_occ.begin(), e.delta_occ.end(),
              static_cast<std::uint16_t>(0));
    std::fill(e.delta_timely.begin(), e.delta_timely.end(),
              static_cast<std::uint16_t>(0));
}

void
Berti::on_access(const PrefetchContext &ctx,
                 std::vector<PrefetchRequest> &out)
{
    IpEntry &e = lookup_ip(ctx.pc);
    const Addr line = block_number(ctx.vaddr);

    train(e, line, ctx.now);
    if (++e.window_count >= cfg_.window_accesses) {
        e.window_count = 0;
        select_deltas(e);
    }

    for (std::size_t i = 0; i < e.selected.size(); ++i) {
        const std::int64_t delta = e.selected[i];
        const std::int64_t target =
            static_cast<std::int64_t>(line) + delta;
        if (target <= 0) {
            continue;
        }
        PrefetchRequest req;
        req.vaddr = VirtAddr{static_cast<Addr>(target) << kBlockBits};
        req.delta = delta;
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        req.meta = e.selected_timely[i];  // timeliness confidence
        out.push_back(req);
    }
}

void Berti::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.berti");
    for (std::size_t i = 0; i < ips_.size(); ++i) {
        const IpEntry &e = ips_[i];
        w.put_u64(ip_tags_[i]);
        w.put_bool(ip_valid_[i] != 0);
        w.put_u64(ip_lru_[i]);
        for (const HistoryItem &h : e.history) {
            w.put_u64(h.line);
            w.put_u64(h.cycle);
        }
        w.put_u32(e.history_head);
        w.put_u32(static_cast<std::uint32_t>(e.delta_vals.size()));
        for (std::size_t d = 0; d < e.delta_vals.size(); ++d) {
            w.put_i64(e.delta_vals[d]);
            w.put_u16(e.delta_occ[d]);
            w.put_u16(e.delta_timely[d]);
        }
        w.put_u32(static_cast<std::uint32_t>(e.selected.size()));
        for (std::size_t s = 0; s < e.selected.size(); ++s) {
            w.put_i64(e.selected[s]);
            w.put_u16(e.selected_timely[s]);
        }
        w.put_u32(e.window_count);
    }
    w.put_u64(lru_stamp_);
}

void Berti::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.berti");
    for (std::size_t i = 0; i < ips_.size(); ++i) {
        IpEntry &e = ips_[i];
        ip_tags_[i] = r.get_u64();
        ip_valid_[i] = r.get_bool() ? 1 : 0;
        ip_lru_[i] = r.get_u64();
        for (HistoryItem &h : e.history) {
            h.line = r.get_u64();
            h.cycle = r.get_u64();
        }
        e.history_head = r.get_u32();
        const std::uint32_t ndeltas = r.get_u32();
        if (ndeltas > cfg_.deltas_per_ip) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "berti delta count above capacity");
        }
        e.delta_vals.clear();
        e.delta_occ.clear();
        e.delta_timely.clear();
        for (std::uint32_t d = 0; d < ndeltas; ++d) {
            e.delta_vals.push_back(r.get_i64());
            e.delta_occ.push_back(r.get_u16());
            e.delta_timely.push_back(r.get_u16());
        }
        const std::uint32_t nsel = r.get_u32();
        if (nsel > cfg_.max_degree) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "berti selection count above capacity");
        }
        e.selected.clear();
        e.selected_timely.clear();
        for (std::uint32_t s = 0; s < nsel; ++s) {
            e.selected.push_back(r.get_i64());
            e.selected_timely.push_back(r.get_u16());
        }
        e.window_count = r.get_u32();
    }
    lru_stamp_ = r.get_u64();
}

}  // namespace moka
