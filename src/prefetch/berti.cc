#include "prefetch/berti.h"

#include <algorithm>
#include <cstdlib>

#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {

Berti::Berti(const BertiConfig &config) : cfg_(config), ips_(config.ip_entries)
{
    // All per-IP vectors are bounded by configuration; reserving at
    // construction keeps train/select allocation free (rule L10).
    for (IpEntry &e : ips_) {
        e.history.resize(cfg_.history_per_ip);
        e.deltas.reserve(cfg_.deltas_per_ip);
        e.selected.reserve(cfg_.max_degree);
        e.selected_timely.reserve(cfg_.max_degree);
    }
    sort_scratch_.reserve(cfg_.deltas_per_ip);
}

Berti::IpEntry &
Berti::lookup_ip(Addr pc)
{
    const Addr tag = mix64(pc);
    for (IpEntry &e : ips_) {
        if (e.valid && e.tag == tag) {
            e.lru = ++lru_stamp_;
            return e;
        }
    }
    // Allocate the first invalid slot, else the LRU victim.
    IpEntry *victim = &ips_[0];
    for (IpEntry &e : ips_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lru_stamp_;
    victim->history.assign(cfg_.history_per_ip, {});
    victim->history_head = 0;
    victim->deltas.clear();
    victim->selected.clear();
    victim->selected_timely.clear();
    victim->window_count = 0;
    return *victim;
}

void
Berti::train(IpEntry &e, Addr line, Cycle now)
{
    // Compare against the shadow history: a delta is timely when a
    // prefetch launched at the historical access would have completed
    // by now.
    for (const HistoryItem &h : e.history) {
        if (h.cycle == 0 || h.line == line) {
            continue;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(line) - static_cast<std::int64_t>(h.line);
        if (delta == 0 || std::llabs(delta) > cfg_.max_delta) {
            continue;
        }
        const bool timely = h.cycle + cfg_.timely_latency <= now;
        DeltaCounter *slot = nullptr;
        for (DeltaCounter &d : e.deltas) {
            if (d.delta == delta) {
                slot = &d;
                break;
            }
        }
        if (slot == nullptr) {
            if (e.deltas.size() < cfg_.deltas_per_ip) {
                e.deltas.push_back({delta, 0, 0});
                slot = &e.deltas.back();
            } else {
                // Replace the weakest candidate.
                slot = &*std::min_element(
                    e.deltas.begin(), e.deltas.end(),
                    [](const DeltaCounter &a, const DeltaCounter &b) {
                        return a.timely < b.timely;
                    });
                if (slot->timely > 2) {
                    slot = nullptr;  // keep established deltas
                } else {
                    *slot = {delta, 0, 0};
                }
            }
        }
        if (slot != nullptr) {
            ++slot->occurrences;
            if (timely) {
                ++slot->timely;
            }
        }
    }

    e.history[e.history_head] = {line, now};
    e.history_head = (e.history_head + 1) % cfg_.history_per_ip;
}

void
Berti::select_deltas(IpEntry &e)
{
    e.selected.clear();
    e.selected_timely.clear();
    // Member scratch (reserved to deltas_per_ip in the constructor)
    // instead of a per-window local copy, which allocated every
    // window_accesses-th access (rule L10).
    std::vector<DeltaCounter> &sorted = sort_scratch_;
    sorted.assign(e.deltas.begin(), e.deltas.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const DeltaCounter &a, const DeltaCounter &b) {
                  if (a.timely != b.timely) {
                      return a.timely > b.timely;
                  }
                  // Tie-break towards larger deltas: more lead time,
                  // better timeliness for the issued prefetches.
                  return std::llabs(a.delta) > std::llabs(b.delta);
              });
    const double window = static_cast<double>(cfg_.window_accesses);
    for (const DeltaCounter &d : sorted) {
        if (e.selected.size() >= cfg_.max_degree) {
            break;
        }
        if (static_cast<double>(d.timely) >=
            cfg_.coverage_threshold * window) {
            e.selected.push_back(d.delta);
            e.selected_timely.push_back(d.timely);
        }
    }
    for (DeltaCounter &d : e.deltas) {
        d.occurrences = 0;
        d.timely = 0;
    }
}

void
Berti::on_access(const PrefetchContext &ctx,
                 std::vector<PrefetchRequest> &out)
{
    IpEntry &e = lookup_ip(ctx.pc);
    const Addr line = block_number(ctx.vaddr);

    train(e, line, ctx.now);
    if (++e.window_count >= cfg_.window_accesses) {
        e.window_count = 0;
        select_deltas(e);
    }

    for (std::size_t i = 0; i < e.selected.size(); ++i) {
        const std::int64_t delta = e.selected[i];
        const std::int64_t target =
            static_cast<std::int64_t>(line) + delta;
        if (target <= 0) {
            continue;
        }
        PrefetchRequest req;
        req.vaddr = VirtAddr{static_cast<Addr>(target) << kBlockBits};
        req.delta = delta;
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        req.meta = e.selected_timely[i];  // timeliness confidence
        out.push_back(req);
    }
}

void Berti::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.berti");
    for (const IpEntry &e : ips_) {
        w.put_u64(e.tag);
        w.put_bool(e.valid);
        w.put_u64(e.lru);
        for (const HistoryItem &h : e.history) {
            w.put_u64(h.line);
            w.put_u64(h.cycle);
        }
        w.put_u32(e.history_head);
        w.put_u32(static_cast<std::uint32_t>(e.deltas.size()));
        for (const DeltaCounter &d : e.deltas) {
            w.put_i64(d.delta);
            w.put_u16(d.occurrences);
            w.put_u16(d.timely);
        }
        w.put_u32(static_cast<std::uint32_t>(e.selected.size()));
        for (std::size_t i = 0; i < e.selected.size(); ++i) {
            w.put_i64(e.selected[i]);
            w.put_u16(e.selected_timely[i]);
        }
        w.put_u32(e.window_count);
    }
    w.put_u64(lru_stamp_);
}

void Berti::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.berti");
    for (IpEntry &e : ips_) {
        e.tag = r.get_u64();
        e.valid = r.get_bool();
        e.lru = r.get_u64();
        for (HistoryItem &h : e.history) {
            h.line = r.get_u64();
            h.cycle = r.get_u64();
        }
        e.history_head = r.get_u32();
        const std::uint32_t ndeltas = r.get_u32();
        if (ndeltas > cfg_.deltas_per_ip) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "berti delta count above capacity");
        }
        e.deltas.clear();
        for (std::uint32_t i = 0; i < ndeltas; ++i) {
            DeltaCounter d;
            d.delta = r.get_i64();
            d.occurrences = r.get_u16();
            d.timely = r.get_u16();
            e.deltas.push_back(d);
        }
        const std::uint32_t nsel = r.get_u32();
        if (nsel > cfg_.max_degree) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "berti selection count above capacity");
        }
        e.selected.clear();
        e.selected_timely.clear();
        for (std::uint32_t i = 0; i < nsel; ++i) {
            e.selected.push_back(r.get_i64());
            e.selected_timely.push_back(r.get_u16());
        }
        e.window_count = r.get_u32();
    }
    lru_stamp_ = r.get_u64();
}

}  // namespace moka
