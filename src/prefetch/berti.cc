#include "prefetch/berti.h"

#include <algorithm>
#include <cstdlib>

#include "common/hashing.h"

namespace moka {

Berti::Berti(const BertiConfig &config) : cfg_(config), ips_(config.ip_entries)
{
    // All per-IP vectors are bounded by configuration; reserving at
    // construction keeps train/select allocation free (rule L10).
    for (IpEntry &e : ips_) {
        e.history.resize(cfg_.history_per_ip);
        e.deltas.reserve(cfg_.deltas_per_ip);
        e.selected.reserve(cfg_.max_degree);
        e.selected_timely.reserve(cfg_.max_degree);
    }
    sort_scratch_.reserve(cfg_.deltas_per_ip);
}

Berti::IpEntry &
Berti::lookup_ip(Addr pc)
{
    const Addr tag = mix64(pc);
    for (IpEntry &e : ips_) {
        if (e.valid && e.tag == tag) {
            e.lru = ++lru_stamp_;
            return e;
        }
    }
    // Allocate the first invalid slot, else the LRU victim.
    IpEntry *victim = &ips_[0];
    for (IpEntry &e : ips_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lru_stamp_;
    victim->history.assign(cfg_.history_per_ip, {});
    victim->history_head = 0;
    victim->deltas.clear();
    victim->selected.clear();
    victim->selected_timely.clear();
    victim->window_count = 0;
    return *victim;
}

void
Berti::train(IpEntry &e, Addr line, Cycle now)
{
    // Compare against the shadow history: a delta is timely when a
    // prefetch launched at the historical access would have completed
    // by now.
    for (const HistoryItem &h : e.history) {
        if (h.cycle == 0 || h.line == line) {
            continue;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(line) - static_cast<std::int64_t>(h.line);
        if (delta == 0 || std::llabs(delta) > cfg_.max_delta) {
            continue;
        }
        const bool timely = h.cycle + cfg_.timely_latency <= now;
        DeltaCounter *slot = nullptr;
        for (DeltaCounter &d : e.deltas) {
            if (d.delta == delta) {
                slot = &d;
                break;
            }
        }
        if (slot == nullptr) {
            if (e.deltas.size() < cfg_.deltas_per_ip) {
                e.deltas.push_back({delta, 0, 0});
                slot = &e.deltas.back();
            } else {
                // Replace the weakest candidate.
                slot = &*std::min_element(
                    e.deltas.begin(), e.deltas.end(),
                    [](const DeltaCounter &a, const DeltaCounter &b) {
                        return a.timely < b.timely;
                    });
                if (slot->timely > 2) {
                    slot = nullptr;  // keep established deltas
                } else {
                    *slot = {delta, 0, 0};
                }
            }
        }
        if (slot != nullptr) {
            ++slot->occurrences;
            if (timely) {
                ++slot->timely;
            }
        }
    }

    e.history[e.history_head] = {line, now};
    e.history_head = (e.history_head + 1) % cfg_.history_per_ip;
}

void
Berti::select_deltas(IpEntry &e)
{
    e.selected.clear();
    e.selected_timely.clear();
    // Member scratch (reserved to deltas_per_ip in the constructor)
    // instead of a per-window local copy, which allocated every
    // window_accesses-th access (rule L10).
    std::vector<DeltaCounter> &sorted = sort_scratch_;
    sorted.assign(e.deltas.begin(), e.deltas.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const DeltaCounter &a, const DeltaCounter &b) {
                  if (a.timely != b.timely) {
                      return a.timely > b.timely;
                  }
                  // Tie-break towards larger deltas: more lead time,
                  // better timeliness for the issued prefetches.
                  return std::llabs(a.delta) > std::llabs(b.delta);
              });
    const double window = static_cast<double>(cfg_.window_accesses);
    for (const DeltaCounter &d : sorted) {
        if (e.selected.size() >= cfg_.max_degree) {
            break;
        }
        if (static_cast<double>(d.timely) >=
            cfg_.coverage_threshold * window) {
            e.selected.push_back(d.delta);
            e.selected_timely.push_back(d.timely);
        }
    }
    for (DeltaCounter &d : e.deltas) {
        d.occurrences = 0;
        d.timely = 0;
    }
}

void
Berti::on_access(const PrefetchContext &ctx,
                 std::vector<PrefetchRequest> &out)
{
    IpEntry &e = lookup_ip(ctx.pc);
    const Addr line = block_number(ctx.vaddr);

    train(e, line, ctx.now);
    if (++e.window_count >= cfg_.window_accesses) {
        e.window_count = 0;
        select_deltas(e);
    }

    for (std::size_t i = 0; i < e.selected.size(); ++i) {
        const std::int64_t delta = e.selected[i];
        const std::int64_t target =
            static_cast<std::int64_t>(line) + delta;
        if (target <= 0) {
            continue;
        }
        PrefetchRequest req;
        req.vaddr = static_cast<Addr>(target) << kBlockBits;
        req.delta = delta;
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        req.meta = e.selected_timely[i];  // timeliness confidence
        out.push_back(req);
    }
}

}  // namespace moka
