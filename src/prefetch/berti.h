/**
 * @file
 * Berti: accurate local-delta L1D prefetcher (Navarro-Torres et al.,
 * MICRO 2022). Per-IP shadow history establishes which local deltas
 * would have been *timely*, and only high-coverage timely deltas are
 * used for prefetching. Reimplemented from the paper's description.
 */
#ifndef MOKASIM_PREFETCH_BERTI_H
#define MOKASIM_PREFETCH_BERTI_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace moka {

/** Berti sizing knobs. */
struct BertiConfig
{
    unsigned ip_entries = 64;        //!< tracked IPs (fully assoc, LRU)
    unsigned history_per_ip = 16;    //!< shadow history depth
    unsigned deltas_per_ip = 16;     //!< candidate deltas tracked per IP
    std::int64_t max_delta = 63;     //!< |delta| bound in blocks
    Cycle timely_latency = 80;       //!< assumed fill latency for
                                     //!< timeliness classification
    unsigned window_accesses = 128;  //!< per-IP selection window
    double coverage_threshold = 0.30; //!< timely-coverage to select
    unsigned max_degree = 4;         //!< deltas issued per access
};

/** See file comment. */
class Berti : public Prefetcher
{
  public:
    explicit Berti(const BertiConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    const std::string &name() const override { return name_; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    struct HistoryItem
    {
        Addr line = 0;
        Cycle cycle = 0;
    };

    struct DeltaCounter
    {
        std::int64_t delta = 0;
        std::uint16_t occurrences = 0;
        std::uint16_t timely = 0;
    };

    /**
     * Per-IP training state. The candidate deltas are kept as three
     * parallel arrays (value / occurrences / timely) so the per-access
     * match scan in train() touches one contiguous int64 array instead
     * of striding over padded structs. tag/valid/lru live in the
     * SoA arrays below (ip_tags_ etc.) for the same reason: lookup_ip
     * scans every entry on every trained access.
     */
    struct IpEntry
    {
        std::vector<HistoryItem> history;  //!< ring buffer
        unsigned history_head = 0;
        std::vector<std::int64_t> delta_vals;
        std::vector<std::uint16_t> delta_occ;
        std::vector<std::uint16_t> delta_timely;
        std::vector<std::int64_t> selected;
        std::vector<std::uint16_t> selected_timely;  //!< metadata export
        unsigned window_count = 0;
    };

    IpEntry &lookup_ip(Addr pc);
    void train(IpEntry &e, Addr line, Cycle now);
    void select_deltas(IpEntry &e);

    BertiConfig cfg_;  // LINT_SNAPSHOT_OK: config
    std::vector<IpEntry> ips_;
    //! parallel to ips_: hashed-PC tag per entry
    std::vector<Addr> ip_tags_;
    //! parallel to ips_: entry holds live training state
    std::vector<std::uint8_t> ip_valid_;
    //! parallel to ips_: LRU stamp per entry
    std::vector<std::uint64_t> ip_lru_;
    //! select_deltas sort scratch, reserved once (rule L10)
    // LINT_SNAPSHOT_OK: scratch, overwritten before every use
    std::vector<DeltaCounter> sort_scratch_;
    std::uint64_t lru_stamp_ = 0;
    std::string name_ = "berti";  // LINT_SNAPSHOT_OK: constant identifier
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_BERTI_H
