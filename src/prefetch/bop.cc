#include "prefetch/bop.h"
#include "snapshot/snapshot.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/hashing.h"

namespace moka {

Bop::Bop(const BopConfig &config)
    : cfg_(config), rr_mask_(pow2_mask(config.rr_entries)),
      rr_(config.rr_entries, 0), scores_(config.offsets.size(), 0)
{
}

std::size_t
Bop::rr_index(Addr line) const
{
    const std::uint64_t h = mix64(line);
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    return rr_mask_ != 0 ? h & rr_mask_ : h % rr_.size();
}

bool
Bop::rr_contains(Addr line) const
{
    return rr_[rr_index(line)] == line;
}

void
Bop::rr_insert(Addr line)
{
    rr_[rr_index(line)] = line;
}

void
Bop::end_phase()
{
    const auto it = std::max_element(scores_.begin(), scores_.end());
    const int best_score = *it;
    best_ = cfg_.offsets[static_cast<std::size_t>(
        std::distance(scores_.begin(), it))];
    active_ = best_score >= cfg_.bad_score;
    std::fill(scores_.begin(), scores_.end(), 0);
    round_ = 0;
    test_index_ = 0;
}

void
Bop::on_fill(VirtAddr vaddr, Cycle /*now*/, bool was_prefetch)
{
    // Fill-time insertion is what makes BOP timeliness-aware: offset
    // d only scores if the fill of X-d completed before X was
    // accessed. Prefetch fills of line Y with offset D record Y - D
    // ("Y - D was a good trigger for Y"); demand fills record the
    // line itself.
    const Addr line = block_number(vaddr);
    if (was_prefetch) {
        if (active_ && static_cast<std::int64_t>(line) > best_) {
            rr_insert(static_cast<Addr>(
                static_cast<std::int64_t>(line) - best_));
        }
    } else {
        rr_insert(line);
    }
}

void
Bop::on_access(const PrefetchContext &ctx,
               std::vector<PrefetchRequest> &out)
{
    const Addr line = block_number(ctx.vaddr);

    // Learning: test one offset per (miss or first-touch) event.
    if (!ctx.hit) {
        const std::int64_t d = cfg_.offsets[test_index_];
        const std::int64_t base = static_cast<std::int64_t>(line) - d;
        if (base > 0 && rr_contains(static_cast<Addr>(base))) {
            if (++scores_[test_index_] >= cfg_.score_max) {
                end_phase();
            }
        }
        if (test_index_ + 1 >= cfg_.offsets.size()) {
            test_index_ = 0;
            if (++round_ >= cfg_.round_max) {
                end_phase();
            }
        } else {
            ++test_index_;
        }
    }

    if (!active_) {
        return;
    }
    const std::int64_t target = static_cast<std::int64_t>(line) + best_;
    if (target <= 0) {
        return;
    }
    PrefetchRequest req;
    req.vaddr = VirtAddr{static_cast<Addr>(target) << kBlockBits};
    req.delta = best_;
    req.trigger_pc = ctx.pc;
    req.trigger_vaddr = ctx.vaddr;
    req.meta = static_cast<std::uint64_t>(
        scores_.empty() ? 0 : *std::max_element(scores_.begin(),
                                                scores_.end()));
    out.push_back(req);
}

void Bop::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.bop");
    put_vec(w, rr_);
    for (int s : scores_) {
        w.put_i64(s);
    }
    w.put_u32(test_index_);
    w.put_i64(round_);
    w.put_i64(best_);
    w.put_bool(active_);
}

void Bop::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.bop");
    get_vec(r, rr_);
    for (int &s : scores_) {
        s = static_cast<int>(r.get_i64());
    }
    test_index_ = r.get_u32();
    round_ = static_cast<int>(r.get_i64());
    best_ = r.get_i64();
    active_ = r.get_bool();
}

}  // namespace moka
