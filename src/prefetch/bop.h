/**
 * @file
 * BOP: Best-Offset Prefetching (Michaud, HPCA 2016). A recent-request
 * table scores candidate offsets round by round; the winning offset
 * drives degree-1 prefetching until the next learning phase completes.
 * Reimplemented from the paper.
 */
#ifndef MOKASIM_PREFETCH_BOP_H
#define MOKASIM_PREFETCH_BOP_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace moka {

/** BOP sizing and scoring knobs (paper defaults). */
struct BopConfig
{
    unsigned rr_entries = 256;  //!< recent-request table (direct mapped)
    int score_max = 31;         //!< early-exit score
    int round_max = 100;        //!< rounds per learning phase
    int bad_score = 10;         //!< below this, prefetching turns off
    std::vector<std::int64_t> offsets = {
        1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25,
        27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64, -1, -2, -3, -4, -8};
};

/** See file comment. */
class Bop : public Prefetcher
{
  public:
    explicit Bop(const BopConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    void on_fill(VirtAddr vaddr, Cycle now, bool was_prefetch) override;

    const std::string &name() const override { return name_; }

    /** Currently selected offset (0 when prefetching is off). */
    std::int64_t best_offset() const { return active_ ? best_ : 0; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    std::size_t rr_index(Addr line) const;
    bool rr_contains(Addr line) const;
    void rr_insert(Addr line);
    void end_phase();

    BopConfig cfg_;  // LINT_SNAPSHOT_OK: config
    std::uint64_t rr_mask_ = 0;  // LINT_SNAPSHOT_OK: config (rule L19)
    std::vector<Addr> rr_;       //!< line addresses (0 = empty)
    std::vector<int> scores_;
    unsigned test_index_ = 0;
    int round_ = 0;
    std::int64_t best_ = 1;
    bool active_ = true;
    std::string name_ = "bop";  // LINT_SNAPSHOT_OK: constant identifier
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_BOP_H
