#include "prefetch/ipcp.h"

#include "common/bitops.h"
#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {
namespace {

/** IPCP class identifiers exported as filter metadata. */
enum : std::uint64_t { kClassNl = 0, kClassCs = 1, kClassCplx = 2,
                       kClassGs = 3 };

void
emit(std::vector<PrefetchRequest> &out, Addr line, std::int64_t delta,
     const PrefetchContext &ctx, std::uint64_t klass)
{
    const std::int64_t target = static_cast<std::int64_t>(line) + delta;
    if (target <= 0 || delta == 0) {
        return;
    }
    PrefetchRequest req;
    req.vaddr = VirtAddr{static_cast<Addr>(target) << kBlockBits};
    req.delta = delta;
    req.trigger_pc = ctx.pc;
    req.trigger_vaddr = ctx.vaddr;
    req.meta = klass;
    out.push_back(req);
}

}  // namespace

Ipcp::Ipcp(const IpcpConfig &config)
    : cfg_(config), region_mask_(pow2_mask(config.region_lines)),
      ip_mask_(pow2_mask(config.ip_entries)),
      cspt_mask_(pow2_mask(config.cspt_entries)),
      ips_(config.ip_entries), cspt_(config.cspt_entries),
      regions_(config.rst_entries)
{
}

Ipcp::Region *
Ipcp::find_region(Addr line, bool allocate)
{
    const Addr tag = line / cfg_.region_lines;
    for (Region &r : regions_) {
        if (r.valid && r.tag == tag) {
            r.lru = ++lru_stamp_;
            return &r;
        }
    }
    if (!allocate) {
        return nullptr;
    }
    Region *victim = &regions_[0];
    for (Region &r : regions_) {
        if (!r.valid) {
            victim = &r;
            break;
        }
        if (r.lru < victim->lru) {
            victim = &r;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->touched = 0;
    victim->count = 0;
    victim->dense = false;
    victim->lru = ++lru_stamp_;
    return victim;
}

void
Ipcp::on_access(const PrefetchContext &ctx,
                std::vector<PrefetchRequest> &out)
{
    const Addr line = block_number(ctx.vaddr);

    // --- Region stream tracking (GS class) ---------------------------
    Region *region = find_region(line, true);
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    const unsigned line_in_region = static_cast<unsigned>(
        region_mask_ != 0 ? line & region_mask_
                          : line % cfg_.region_lines);
    if ((region->touched & (std::uint64_t{1} << line_in_region)) == 0) {
        region->touched |= std::uint64_t{1} << line_in_region;
        if (++region->count >= cfg_.dense_threshold) {
            region->dense = true;
        }
    }

    // --- IP table -----------------------------------------------------
    const std::uint64_t h = mix64(ctx.pc);
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    IpEntry &ip =
        ips_[ip_mask_ != 0 ? h & ip_mask_ : h % cfg_.ip_entries];
    const std::uint16_t tag = static_cast<std::uint16_t>(h >> 32);
    if (!ip.valid || ip.tag != tag) {
        ip = IpEntry{};
        ip.valid = true;
        ip.tag = tag;
        ip.last_line = line;
        // New IP: next-line (NL) class on a miss.
        if (!ctx.hit) {
            emit(out, line, +1, ctx, kClassNl);
        }
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(ip.last_line);

    // --- Train CS -----------------------------------------------------
    if (stride != 0) {
        if (stride == ip.stride) {
            ip.conf.increment();
        } else {
            ip.conf.decrement();
            if (ip.conf.value() == 0) {
                ip.stride = stride;
            }
        }
    }

    // --- Train CPLX (stride signature -> next stride) -------------------
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    CsptEntry &pred =
        cspt_[cspt_mask_ != 0 ? ip.signature & cspt_mask_
                              : ip.signature % cfg_.cspt_entries];
    if (stride != 0) {
        if (pred.stride == stride) {
            pred.conf.increment();
        } else {
            pred.conf.decrement();
            if (pred.conf.value() == 0) {
                pred.stride = stride;
            }
        }
        ip.signature = static_cast<std::uint16_t>(
            ((ip.signature << 1) ^ (stride & 0x3F)) &
            (cfg_.cspt_entries - 1));
    }

    // GS classification: the IP touches dense regions.
    ip.stream = region->dense;
    ip.last_line = line;

    // --- Issue, by class priority GS > CS > CPLX > NL -------------------
    if (ip.stream) {
        for (unsigned d = 1; d <= cfg_.gs_degree; ++d) {
            emit(out, line, static_cast<std::int64_t>(d), ctx, kClassGs);
        }
        return;
    }
    if (ip.conf.value() >= 2 && ip.stride != 0) {
        for (unsigned d = 1; d <= cfg_.cs_degree; ++d) {
            emit(out, line, ip.stride * static_cast<std::int64_t>(d), ctx,
                 kClassCs);
        }
        return;
    }
    // CPLX: chain signature predictions while confident.
    std::uint16_t sig = ip.signature;
    Addr cur = line;
    for (unsigned d = 0; d < cfg_.cplx_degree; ++d) {
        // LINT_HOT_OK: non-pow2 fallback; see the training lookup
        const CsptEntry &p =
            cspt_[cspt_mask_ != 0 ? sig & cspt_mask_
                                  : sig % cfg_.cspt_entries];
        if (p.conf.value() < 2 || p.stride == 0) {
            break;
        }
        emit(out, cur, p.stride, ctx, kClassCplx);
        cur = static_cast<Addr>(static_cast<std::int64_t>(cur) + p.stride);
        sig = static_cast<std::uint16_t>(((sig << 1) ^ (p.stride & 0x3F)) &
                                         (cfg_.cspt_entries - 1));
    }
    if (out.empty() && !ctx.hit) {
        emit(out, line, +1, ctx, kClassNl);  // NL fallback
    }
}

void Ipcp::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.ipcp");
    for (const IpEntry &e : ips_) {
        w.put_u16(e.tag);
        w.put_bool(e.valid);
        w.put_u64(e.last_line);
        w.put_i64(e.stride);
        SnapshotAccess::save(w, e.conf);
        w.put_u16(e.signature);
        w.put_bool(e.stream);
    }
    for (const CsptEntry &e : cspt_) {
        w.put_i64(e.stride);
        SnapshotAccess::save(w, e.conf);
    }
    for (const Region &rg : regions_) {
        w.put_u64(rg.tag);
        w.put_bool(rg.valid);
        w.put_u64(rg.touched);
        w.put_u32(rg.count);
        w.put_bool(rg.dense);
        w.put_u64(rg.lru);
    }
    w.put_u64(lru_stamp_);
}

void Ipcp::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.ipcp");
    for (IpEntry &e : ips_) {
        e.tag = r.get_u16();
        e.valid = r.get_bool();
        e.last_line = r.get_u64();
        e.stride = r.get_i64();
        SnapshotAccess::restore(r, e.conf);
        e.signature = r.get_u16();
        e.stream = r.get_bool();
    }
    for (CsptEntry &e : cspt_) {
        e.stride = r.get_i64();
        SnapshotAccess::restore(r, e.conf);
    }
    for (Region &rg : regions_) {
        rg.tag = r.get_u64();
        rg.valid = r.get_bool();
        rg.touched = r.get_u64();
        rg.count = r.get_u32();
        rg.dense = r.get_bool();
        rg.lru = r.get_u64();
    }
    lru_stamp_ = r.get_u64();
}

}  // namespace moka
