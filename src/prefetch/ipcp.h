/**
 * @file
 * IPCP: Instruction Pointer Classifier-based spatial Prefetching
 * (Pakalapati & Panda, ISCA 2020). Each IP is classified as constant
 * stride (CS), complex stride (CPLX) or part of a global stream (GS),
 * with next-line (NL) as the fallback. Reimplemented from the paper.
 */
#ifndef MOKASIM_PREFETCH_IPCP_H
#define MOKASIM_PREFETCH_IPCP_H

#include <cstdint>
#include <vector>

#include "common/sat_counter.h"
#include "prefetch/prefetcher.h"

namespace moka {

/** IPCP sizing knobs. */
struct IpcpConfig
{
    unsigned ip_entries = 64;     //!< IP table (direct mapped + tag)
    unsigned cspt_entries = 128;  //!< complex stride prediction table
    unsigned rst_entries = 8;     //!< region stream table
    unsigned region_lines = 32;   //!< lines per stream region (2KB)
    unsigned dense_threshold = 24; //!< touched lines to call a region dense
    unsigned cs_degree = 4;
    unsigned cplx_degree = 3;
    unsigned gs_degree = 8;
};

/** See file comment. */
class Ipcp : public Prefetcher
{
  public:
    explicit Ipcp(const IpcpConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    const std::string &name() const override { return name_; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    struct IpEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        Addr last_line = 0;
        std::int64_t stride = 0;
        UnsignedSatCounter conf{2};
        std::uint16_t signature = 0;
        bool stream = false;  //!< classified GS
    };

    struct CsptEntry
    {
        std::int64_t stride = 0;
        UnsignedSatCounter conf{2};
    };

    struct Region
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t touched = 0;  //!< bitmap of touched lines
        unsigned count = 0;
        bool dense = false;
        std::uint64_t lru = 0;
    };

    Region *find_region(Addr line, bool allocate);

    IpcpConfig cfg_;  // LINT_SNAPSHOT_OK: config
    // Index masks, nonzero when the table size is pow2 (rule L19).
    std::uint64_t region_mask_ = 0;  // LINT_SNAPSHOT_OK: config
    std::uint64_t ip_mask_ = 0;      // LINT_SNAPSHOT_OK: config
    std::uint64_t cspt_mask_ = 0;    // LINT_SNAPSHOT_OK: config
    std::vector<IpEntry> ips_;
    std::vector<CsptEntry> cspt_;
    std::vector<Region> regions_;
    std::uint64_t lru_stamp_ = 0;
    std::string name_ = "ipcp";  // LINT_SNAPSHOT_OK: constant identifier
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_IPCP_H
