#include "prefetch/next_line.h"

#include "prefetch/berti.h"
#include "prefetch/bop.h"
#include "prefetch/ipcp.h"
#include "prefetch/spp.h"
#include "prefetch/stride.h"

namespace moka {

void
NextLine::on_access(const PrefetchContext &ctx,
                    std::vector<PrefetchRequest> &out)
{
    if (ctx.hit) {
        return;
    }
    const Addr line = block_number(ctx.vaddr);
    for (unsigned d = 1; d <= degree_; ++d) {
        PrefetchRequest req;
        req.vaddr = VirtAddr{(line + d) << kBlockBits};
        req.delta = static_cast<std::int64_t>(d);
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        out.push_back(req);
    }
}

PrefetcherPtr
make_l1d_prefetcher(L1dPrefetcherKind kind, bool iso_storage)
{
    switch (kind) {
      case L1dPrefetcherKind::kBerti: {
        BertiConfig cfg;
        if (iso_storage) {
            // DRIPPER's 1.44KB reinvested in Berti's most relevant
            // structures: more tracked IPs and deeper shadow history.
            cfg.ip_entries = 96;
            cfg.history_per_ip = 20;
        }
        return std::make_unique<Berti>(cfg);
      }
      case L1dPrefetcherKind::kIpcp: {
        IpcpConfig cfg;
        if (iso_storage) {
            cfg.ip_entries = 96;
            cfg.cspt_entries = 256;
            cfg.rst_entries = 12;
        }
        return std::make_unique<Ipcp>(cfg);
      }
      case L1dPrefetcherKind::kBop: {
        BopConfig cfg;
        if (iso_storage) {
            cfg.rr_entries = 512;
        }
        return std::make_unique<Bop>(cfg);
      }
      case L1dPrefetcherKind::kStride: {
        StridePrefetcherConfig cfg;
        if (iso_storage) {
            cfg.entries = 128;
        }
        return std::make_unique<StridePrefetcher>(cfg);
      }
      case L1dPrefetcherKind::kNextLine:
      default:
        return std::make_unique<NextLine>(1);
    }
}

PrefetcherPtr
make_l2_prefetcher(L2PrefetcherKind kind)
{
    switch (kind) {
      case L2PrefetcherKind::kSpp:
        return std::make_unique<Spp>(SppConfig{});
      case L2PrefetcherKind::kIpcp:
        return std::make_unique<Ipcp>(IpcpConfig{});
      case L2PrefetcherKind::kBop:
        return std::make_unique<Bop>(BopConfig{});
      case L2PrefetcherKind::kNone:
      default:
        return nullptr;
    }
}

L1dPrefetcherKind
parse_l1d_kind(const std::string &s)
{
    if (s == "ipcp") return L1dPrefetcherKind::kIpcp;
    if (s == "bop") return L1dPrefetcherKind::kBop;
    if (s == "stride") return L1dPrefetcherKind::kStride;
    if (s == "nl") return L1dPrefetcherKind::kNextLine;
    return L1dPrefetcherKind::kBerti;
}

}  // namespace moka
