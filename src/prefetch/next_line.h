/**
 * @file
 * Next-line data prefetcher (baseline/fallback) and the prefetcher
 * factory functions declared in prefetcher.h.
 */
#ifndef MOKASIM_PREFETCH_NEXT_LINE_H
#define MOKASIM_PREFETCH_NEXT_LINE_H

#include "prefetch/prefetcher.h"

namespace moka {

/** Prefetch the next @p degree sequential lines on every miss. */
class NextLine : public Prefetcher
{
  public:
    explicit NextLine(unsigned degree = 1) : degree_(degree) {}

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    const std::string &name() const override { return name_; }

  private:
    unsigned degree_;
    std::string name_ = "nl";
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_NEXT_LINE_H
