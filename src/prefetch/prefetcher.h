/**
 * @file
 * Prefetcher interface. L1D prefetchers observe demand accesses in
 * *virtual* address space (VIPT L1D) and emit block-aligned prefetch
 * candidates annotated with the delta and trigger context that
 * Page-Cross Filters consume as program features.
 */
#ifndef MOKASIM_PREFETCH_PREFETCHER_H
#define MOKASIM_PREFETCH_PREFETCHER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "common/types.h"

namespace moka {

class SnapshotReader;
class SnapshotWriter;

/** One prefetch candidate produced by a prefetcher. */
struct PrefetchRequest
{
    VirtAddr vaddr{};        //!< block-aligned target (virtual for L1D)
    std::int64_t delta = 0;  //!< block delta from the trigger access
    Addr trigger_pc = 0;     //!< PC of the triggering load/store
    VirtAddr trigger_vaddr{}; //!< virtual address of the trigger
    std::uint64_t meta = 0;  //!< prefetcher-specific metadata for
                             //!< specialized filter features (paper
                             //!< SIII-D1 extension): Berti exports the
                             //!< delta's timeliness count, IPCP its
                             //!< class, BOP its best score
};

/** Demand-access context handed to a prefetcher. */
struct PrefetchContext
{
    VirtAddr vaddr{}; //!< accessed address (virtual for L1D; L2
                      //!< prefetchers enter via physical_context())
    Addr pc = 0;      //!< instruction pointer
    bool hit = false; //!< demand hit in the host cache
    bool store = false;
    Cycle now = 0;
};

/** Base class of every data/instruction prefetcher. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand access; append prefetch candidates to @p out.
     * Candidates may cross page boundaries — filtering is the
     * Page-Cross Filter's job, not the prefetcher's.
     */
    SIM_HOT virtual void on_access(const PrefetchContext &ctx,
                                   std::vector<PrefetchRequest> &out) = 0;

    /**
     * Notification that a block fill completed in the host cache.
     *
     * @param vaddr        virtual address of the filled block
     * @param now          fill completion cycle
     * @param was_prefetch true when the fill came from a prefetch
     */
    virtual void on_fill(VirtAddr vaddr, Cycle now, bool was_prefetch)
    {
        (void)vaddr; (void)now; (void)was_prefetch;
    }

    /** Short identifier ("berti", "ipcp", "bop", ...). */
    virtual const std::string &name() const = 0;

    /**
     * Serialize learned state. The default is a no-op pair: correct
     * only for genuinely stateless prefetchers (next-line) and test
     * doubles; every learning prefetcher overrides both.
     */
    virtual void save_state(SnapshotWriter &w) const { (void)w; }

    /** Inverse of save_state on a same-config instance. */
    virtual void restore_state(SnapshotReader &r) { (void)r; }
};

using PrefetcherPtr = std::unique_ptr<Prefetcher>;

/** Identifier for constructing L1D prefetchers by name. */
enum class L1dPrefetcherKind : std::uint8_t {
    kBerti,
    kIpcp,
    kBop,
    kStride,
    kNextLine,
};

/** Identifier for constructing L2C prefetchers by name. */
enum class L2PrefetcherKind : std::uint8_t { kNone, kSpp, kIpcp, kBop };

/**
 * Build an L1D prefetcher.
 *
 * @param kind        which algorithm
 * @param iso_storage when true, enlarge the algorithm's most
 *                    performance-relevant tables by the DRIPPER
 *                    storage budget (1.44KB) — the paper's ISO
 *                    Storage comparison point
 */
PrefetcherPtr make_l1d_prefetcher(L1dPrefetcherKind kind,
                                  bool iso_storage = false);

/** Build an L2C prefetcher (physical addresses, in-page only). */
PrefetcherPtr make_l2_prefetcher(L2PrefetcherKind kind);

/*
 * L2C prefetchers train on *physical* addresses but reuse the
 * Prefetcher interface, whose context/request carry VirtAddr for the
 * VIPT L1D. These two adapters are the single documented seam (rule
 * L18) where a physical address is re-labelled on the way into an
 * in-page L2 prefetcher and its candidates are re-labelled back.
 * L2 candidates never leave the physical page of the trigger, so the
 * re-labelled bits cannot alias a genuine virtual address downstream.
 */

/** Wrap a physical demand access for an L2C prefetcher. */
inline PrefetchContext
physical_context(PhysAddr paddr, Addr pc, bool hit, bool store, Cycle now)
{
    PrefetchContext ctx;
    ctx.vaddr = VirtAddr{paddr.raw()};  // LINT_ADDR_OK: L2 physical seam
    ctx.pc = pc;
    ctx.hit = hit;
    ctx.store = store;
    ctx.now = now;
    return ctx;
}

/** Recover the physical target of an L2C prefetch candidate. */
inline PhysAddr
physical_target(const PrefetchRequest &req)
{
    return PhysAddr{req.vaddr.raw()};  // LINT_ADDR_OK: L2 physical seam
}

/** Parse "berti"/"ipcp"/"bop"/"nl" into a kind. */
L1dPrefetcherKind parse_l1d_kind(const std::string &s);

}  // namespace moka

#endif  // MOKASIM_PREFETCH_PREFETCHER_H
