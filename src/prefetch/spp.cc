#include "prefetch/spp.h"
#include "snapshot/snapshot.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/hashing.h"

namespace moka {

Spp::Spp(const SppConfig &config)
    : cfg_(config), st_mask_(pow2_mask(config.st_entries)),
      pt_mask_(pow2_mask(config.pt_entries)), st_(config.st_entries),
      pt_(config.pt_entries)
{
    for (PtEntry &e : pt_) {
        e.slots.resize(cfg_.deltas_per_sig);
    }
}

std::uint16_t
Spp::advance_sig(std::uint16_t sig, std::int32_t delta)
{
    return static_cast<std::uint16_t>(((sig << 3) ^ (delta & 0x7F)) & 0xFFF);
}

void
Spp::on_access(const PrefetchContext &ctx,
               std::vector<PrefetchRequest> &out)
{
    const Addr page = page_index(ctx.vaddr);
    const std::int32_t offset =
        static_cast<std::int32_t>(line_in_page(ctx.vaddr) & (kBlocksPerPage - 1));

    // --- Signature table lookup (set = hashed page) -------------------
    const std::uint64_t ph = mix64(page);
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    StEntry &e = st_[st_mask_ != 0 ? ph & st_mask_ : ph % st_.size()];
    std::uint16_t sig = 0;
    if (e.valid && e.page_tag == page) {
        const std::int32_t delta = offset - e.last_offset;
        if (delta != 0) {
            // Train the pattern table for the *previous* signature.
            // LINT_HOT_OK: non-pow2 fallback; see the st_ lookup
            PtEntry &p = pt_[pt_mask_ != 0 ? e.signature & pt_mask_
                                           : e.signature % pt_.size()];
            DeltaSlot *slot = nullptr;
            for (DeltaSlot &s : p.slots) {
                if (s.delta == delta && s.count > 0) {
                    slot = &s;
                    break;
                }
            }
            if (slot == nullptr) {
                slot = &*std::min_element(
                    p.slots.begin(), p.slots.end(),
                    [](const DeltaSlot &a, const DeltaSlot &b) {
                        return a.count < b.count;
                    });
                slot->delta = delta;
                slot->count = 0;
            }
            ++slot->count;
            ++p.total;
            if (p.total >= 1024) {  // periodic decay
                for (DeltaSlot &s : p.slots) {
                    s.count = static_cast<std::uint16_t>(s.count / 2);
                }
                p.total /= 2;
            }
            e.signature = advance_sig(e.signature, delta);
            e.last_offset = offset;
        }
        sig = e.signature;
    } else {
        e.valid = true;
        e.page_tag = page;
        e.last_offset = offset;
        e.signature = static_cast<std::uint16_t>(offset & 0x3F);
        e.lru = ++lru_stamp_;
        return;  // no prediction on a fresh page
    }

    // --- Lookahead along the signature path ---------------------------
    double conf = 1.0;
    std::int32_t cur = offset;
    std::uint16_t s = sig;
    for (unsigned depth = 0; depth < cfg_.max_depth; ++depth) {
        // LINT_HOT_OK: non-pow2 fallback; see the st_ lookup
        const PtEntry &p =
            pt_[pt_mask_ != 0 ? s & pt_mask_ : s % pt_.size()];
        const DeltaSlot *best = nullptr;
        for (const DeltaSlot &slot : p.slots) {
            if (slot.count > 0 &&
                (best == nullptr || slot.count > best->count)) {
                best = &slot;
            }
        }
        if (best == nullptr || p.total == 0) {
            break;
        }
        conf *= static_cast<double>(best->count) /
                static_cast<double>(p.total);
        if (conf < cfg_.pf_threshold) {
            break;
        }
        cur += best->delta;
        if (cur < 0 || cur >= static_cast<std::int32_t>(kBlocksPerPage)) {
            break;  // physical page boundary: stop (PIPT safety)
        }
        PrefetchRequest req;
        req.vaddr = page_addr(ctx.vaddr) +
                    (static_cast<Addr>(cur) << kBlockBits);
        req.delta = best->delta;
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        out.push_back(req);
        s = advance_sig(s, best->delta);
    }
}

void Spp::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.spp");
    for (const StEntry &e : st_) {
        w.put_u64(e.page_tag);
        w.put_bool(e.valid);
        w.put_i64(e.last_offset);
        w.put_u16(e.signature);
        w.put_u64(e.lru);
    }
    for (const PtEntry &e : pt_) {
        w.put_u32(static_cast<std::uint32_t>(e.slots.size()));
        for (const DeltaSlot &s : e.slots) {
            w.put_i64(s.delta);
            w.put_u16(s.count);
        }
        w.put_u16(e.total);
    }
    w.put_u64(lru_stamp_);
}

void Spp::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.spp");
    for (StEntry &e : st_) {
        e.page_tag = r.get_u64();
        e.valid = r.get_bool();
        e.last_offset = static_cast<std::int32_t>(r.get_i64());
        e.signature = r.get_u16();
        e.lru = r.get_u64();
    }
    for (PtEntry &e : pt_) {
        const std::uint32_t nslots = r.get_u32();
        if (nslots > cfg_.deltas_per_sig) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "spp slot count above capacity");
        }
        e.slots.clear();
        for (std::uint32_t i = 0; i < nslots; ++i) {
            DeltaSlot s;
            s.delta = static_cast<std::int32_t>(r.get_i64());
            s.count = r.get_u16();
            e.slots.push_back(s);
        }
        e.total = r.get_u16();
    }
    lru_stamp_ = r.get_u64();
}

}  // namespace moka
