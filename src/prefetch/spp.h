/**
 * @file
 * SPP: Signature Path Prefetcher (Kim et al., MICRO 2016), used as an
 * L2C prefetcher in the paper's Fig. 17 study. Operates on physical
 * addresses and never crosses physical page boundaries (the safety
 * restriction the paper discusses for PIPT caches). Reimplemented
 * from the paper.
 */
#ifndef MOKASIM_PREFETCH_SPP_H
#define MOKASIM_PREFETCH_SPP_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace moka {

/** SPP sizing and confidence knobs. */
struct SppConfig
{
    unsigned st_entries = 256;   //!< signature (page tracker) table
    unsigned pt_entries = 512;   //!< pattern table
    unsigned deltas_per_sig = 4; //!< delta slots per pattern entry
    double pf_threshold = 0.25;  //!< lookahead confidence floor
    unsigned max_depth = 8;      //!< lookahead depth bound
};

/** See file comment. */
class Spp : public Prefetcher
{
  public:
    explicit Spp(const SppConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    const std::string &name() const override { return name_; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    struct StEntry
    {
        Addr page_tag = 0;
        bool valid = false;
        std::int32_t last_offset = 0;
        std::uint16_t signature = 0;
        std::uint64_t lru = 0;
    };

    struct DeltaSlot
    {
        std::int32_t delta = 0;
        std::uint16_t count = 0;
    };

    struct PtEntry
    {
        std::vector<DeltaSlot> slots;
        std::uint16_t total = 0;
    };

    static std::uint16_t advance_sig(std::uint16_t sig, std::int32_t delta);

    SppConfig cfg_;  // LINT_SNAPSHOT_OK: config
    std::uint64_t st_mask_ = 0;  // LINT_SNAPSHOT_OK: config (rule L19)
    std::uint64_t pt_mask_ = 0;  // LINT_SNAPSHOT_OK: config (rule L19)
    std::vector<StEntry> st_;
    std::vector<PtEntry> pt_;
    std::uint64_t lru_stamp_ = 0;
    std::string name_ = "spp";  // LINT_SNAPSHOT_OK: constant identifier
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_SPP_H
