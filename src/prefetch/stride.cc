#include "prefetch/stride.h"
#include "snapshot/snapshot.h"

#include "common/bitops.h"
#include "common/hashing.h"

namespace moka {

StridePrefetcher::StridePrefetcher(const StridePrefetcherConfig &config)
    : cfg_(config), table_mask_(pow2_mask(config.entries)),
      table_(config.entries)
{
}

void
StridePrefetcher::on_access(const PrefetchContext &ctx,
                            std::vector<PrefetchRequest> &out)
{
    const Addr line = block_number(ctx.vaddr);
    const std::uint64_t h = mix64(ctx.pc);
    // LINT_HOT_OK: non-pow2 fallback; shipped configs take the mask
    Entry &e =
        table_[table_mask_ != 0 ? h & table_mask_ : h % table_.size()];
    const std::uint16_t tag = static_cast<std::uint16_t>(h >> 40);

    if (!e.valid || e.tag != tag) {
        e = Entry{};
        e.valid = true;
        e.tag = tag;
        e.last_line = line;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(e.last_line);
    if (stride == 0) {
        return;
    }
    if (stride == e.stride) {
        e.conf.increment();
    } else {
        e.conf.decrement();
        if (e.conf.value() == 0) {
            e.stride = stride;
        }
    }
    e.last_line = line;

    if (e.conf.value() < cfg_.conf_threshold) {
        return;
    }
    for (unsigned d = 1; d <= cfg_.degree; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) +
            e.stride * static_cast<std::int64_t>(d);
        if (target <= 0) {
            continue;
        }
        PrefetchRequest req;
        req.vaddr = VirtAddr{static_cast<Addr>(target) << kBlockBits};
        req.delta = e.stride * static_cast<std::int64_t>(d);
        req.trigger_pc = ctx.pc;
        req.trigger_vaddr = ctx.vaddr;
        out.push_back(req);
    }
}

void StridePrefetcher::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.stride");
    for (const Entry &e : table_) {
        w.put_u16(e.tag);
        w.put_bool(e.valid);
        w.put_u64(e.last_line);
        w.put_i64(e.stride);
        SnapshotAccess::save(w, e.conf);
    }
}

void StridePrefetcher::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.stride");
    for (Entry &e : table_) {
        e.tag = r.get_u16();
        e.valid = r.get_bool();
        e.last_line = r.get_u64();
        e.stride = r.get_i64();
        SnapshotAccess::restore(r, e.conf);
    }
}

}  // namespace moka
