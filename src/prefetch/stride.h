/**
 * @file
 * Classic per-IP stride prefetcher (reference-prediction-table
 * style). Not evaluated in the paper, but a standard baseline a
 * downstream user of the library will expect to find.
 */
#ifndef MOKASIM_PREFETCH_STRIDE_H
#define MOKASIM_PREFETCH_STRIDE_H

#include <vector>

#include "common/sat_counter.h"
#include "prefetch/prefetcher.h"

namespace moka {

/** Stride prefetcher sizing knobs. */
struct StridePrefetcherConfig
{
    unsigned entries = 64;     //!< IP table (direct mapped + tag)
    unsigned degree = 2;       //!< prefetches per confirmed access
    unsigned conf_threshold = 2; //!< 2-bit confidence to fire
};

/** See file comment. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StridePrefetcherConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    const std::string &name() const override { return name_; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        Addr last_line = 0;
        std::int64_t stride = 0;
        UnsignedSatCounter conf{2};
    };

    StridePrefetcherConfig cfg_;  // LINT_SNAPSHOT_OK: config
    std::uint64_t table_mask_ = 0;  // LINT_SNAPSHOT_OK: config (rule L19)
    std::vector<Entry> table_;
    std::string name_ = "stride";  // LINT_SNAPSHOT_OK: constant identifier
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_STRIDE_H
