#include "prefetch/throttle.h"
#include "snapshot/snapshot.h"

#include <algorithm>

namespace moka {

ThrottledPrefetcher::ThrottledPrefetcher(PrefetcherPtr inner,
                                         const ThrottleConfig &config)
    : inner_(std::move(inner)), cfg_(config),
      level_(std::clamp(config.initial_level, 1u, config.levels)),
      name_("fdp+" + inner_->name())
{
}

void
ThrottledPrefetcher::on_access(const PrefetchContext &ctx,
                               std::vector<PrefetchRequest> &out)
{
    scratch_.clear();
    inner_->on_access(ctx, scratch_);
    // Level k forwards at most k candidates per trigger; the inner
    // prefetcher emits its candidates in priority order.
    const std::size_t cap = level_;
    for (std::size_t i = 0; i < scratch_.size() && i < cap; ++i) {
        out.push_back(scratch_[i]);
    }
}

void
ThrottledPrefetcher::on_fill(VirtAddr vaddr, Cycle now, bool was_prefetch)
{
    inner_->on_fill(vaddr, now, was_prefetch);
    if (was_prefetch && ++window_fills_ >= cfg_.interval_fills) {
        end_interval();
    }
}

void
ThrottledPrefetcher::on_feedback(bool useful, bool late)
{
    if (useful) {
        ++window_useful_;
    } else {
        ++window_useless_;
    }
    if (late) {
        ++window_late_;
    }
}

void
ThrottledPrefetcher::end_interval()
{
    const std::uint64_t resolved = window_useful_ + window_useless_;
    if (resolved >= 16) {
        const double acc =
            static_cast<double>(window_useful_) /
            static_cast<double>(resolved);
        const double late_frac =
            static_cast<double>(window_late_) /
            static_cast<double>(resolved);
        // FDP policy: accurate-and-late -> more aggressive; accurate
        // and timely -> hold; inaccurate -> less aggressive.
        if (acc >= cfg_.acc_high && late_frac >= cfg_.late_high) {
            level_ = std::min(level_ + 1, cfg_.levels);
        } else if (acc < cfg_.acc_low) {
            level_ = std::max(level_ - 1, 1u);
        }
    }
    window_useful_ = 0;
    window_useless_ = 0;
    window_late_ = 0;
    window_fills_ = 0;
}

void ThrottledPrefetcher::save_state(SnapshotWriter &w) const
{
    w.begin_section("pf.throttle");
    w.put_u32(level_);
    w.put_u64(window_useful_);
    w.put_u64(window_useless_);
    w.put_u64(window_late_);
    w.put_u64(window_fills_);
    inner_->save_state(w);
}

void ThrottledPrefetcher::restore_state(SnapshotReader &r)
{
    r.begin_section("pf.throttle");
    level_ = r.get_u32();
    window_useful_ = r.get_u64();
    window_useless_ = r.get_u64();
    window_late_ = r.get_u64();
    window_fills_ = r.get_u64();
    inner_->restore_state(r);
}

}  // namespace moka
