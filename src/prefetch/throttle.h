/**
 * @file
 * Feedback-directed prefetch throttling (Srinath et al., HPCA 2007
 * style), the aggressiveness-control family the paper discusses as
 * related work (§VI). Wraps any L1D prefetcher and scales how many of
 * its candidates are issued based on measured accuracy and lateness.
 *
 * This is orthogonal to Page-Cross Filters: FDP modulates *volume*
 * for all prefetches, a Page-Cross Filter classifies *individual*
 * page-cross requests. bench/ablation_throttle-style studies can
 * combine both.
 */
#ifndef MOKASIM_PREFETCH_THROTTLE_H
#define MOKASIM_PREFETCH_THROTTLE_H

#include <cstdint>

#include "prefetch/prefetcher.h"

namespace moka {

/** FDP thresholds and interval length. */
struct ThrottleConfig
{
    std::uint64_t interval_fills = 512; //!< fills per evaluation window
    double acc_high = 0.75;  //!< accuracy above this: ramp up
    double acc_low = 0.40;   //!< accuracy below this: ramp down
    double late_high = 0.30; //!< late fraction above this: ramp up
    unsigned levels = 4;     //!< aggressiveness levels (1..levels)
    unsigned initial_level = 2;
};

/**
 * Wraps an inner prefetcher; the aggressiveness level caps how many
 * candidates per trigger are forwarded (level 1 = 1 candidate, level
 * N = all). Feedback comes from the host cache's usefulness events,
 * forwarded by the owner via on_feedback().
 */
class ThrottledPrefetcher : public Prefetcher
{
  public:
    ThrottledPrefetcher(PrefetcherPtr inner, const ThrottleConfig &config);

    void on_access(const PrefetchContext &ctx,
                   std::vector<PrefetchRequest> &out) override;

    void on_fill(VirtAddr vaddr, Cycle now, bool was_prefetch) override;

    const std::string &name() const override { return name_; }

    /**
     * Outcome feedback for one resolved prefetch.
     *
     * @param useful the block served a demand access
     * @param late   the demand arrived while the fill was in flight
     */
    void on_feedback(bool useful, bool late);

    /** Current aggressiveness level (1..levels). */
    unsigned level() const { return level_; }

    /** Inner prefetcher (diagnostics). */
    const Prefetcher &inner() const { return *inner_; }

    void save_state(SnapshotWriter &w) const override;
    void restore_state(SnapshotReader &r) override;

  private:
    void end_interval();

    // LINT_SNAPSHOT_OK: serialized by delegation, inner_->save_state
    PrefetcherPtr inner_;
    ThrottleConfig cfg_;  // LINT_SNAPSHOT_OK: config
    unsigned level_;
    std::uint64_t window_useful_ = 0;
    std::uint64_t window_useless_ = 0;
    std::uint64_t window_late_ = 0;
    std::uint64_t window_fills_ = 0;
    std::string name_;  // LINT_SNAPSHOT_OK: constant identifier
    // LINT_SNAPSHOT_OK: scratch, overwritten before every use
    std::vector<PrefetchRequest> scratch_;
};

}  // namespace moka

#endif  // MOKASIM_PREFETCH_THROTTLE_H
