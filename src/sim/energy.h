/**
 * @file
 * Event-based dynamic-energy accounting. The paper charges inaccurate
 * page-cross prefetching with "increas[ing] the dynamic energy"
 * through its extra memory accesses (up to 4 page-walk references + 1
 * fill per useless prefetch); this model turns the measured event
 * counts into a first-order energy estimate so that claim can be
 * quantified (bench/energy_study).
 *
 * Costs are per-event picojoules in the spirit of CACTI-class
 * numbers for a ~22nm node; absolute values matter less than the
 * ratios (DRAM >> LLC >> L1).
 */
#ifndef MOKASIM_SIM_ENERGY_H
#define MOKASIM_SIM_ENERGY_H

#include "sim/machine.h"

namespace moka {

/** Per-event dynamic energy costs in picojoules. */
struct EnergyConfig
{
    double l1_access_pj = 10.0;    //!< L1I/L1D lookup or fill
    double l2_access_pj = 25.0;
    double llc_access_pj = 60.0;
    double tlb_access_pj = 4.0;    //!< dTLB/iTLB/sTLB lookup
    double walk_ref_pj = 30.0;     //!< PTE read (L2-class array)
    double dram_access_pj = 2000.0; //!< 64B DRAM transfer
};

/** Energy estimate derived from one measured region. */
struct EnergyEstimate
{
    double total_nj = 0.0;     //!< total dynamic energy (nanojoules)
    double nj_per_kilo_inst = 0.0;
};

/**
 * First-order dynamic energy of the measured region @p m.
 *
 * Memory-side events only (core energy is scheme-independent to
 * first order): cache demand accesses + prefetch fills at each level,
 * TLB lookups approximated by demand accesses, page-walk references,
 * and DRAM transfers.
 */
inline EnergyEstimate
estimate_energy(const RunMetrics &m, const EnergyConfig &cfg = {})
{
    double pj = 0.0;
    pj += cfg.l1_access_pj *
          double(m.l1i.accesses + m.l1d.accesses + m.pf_issued);
    pj += cfg.l2_access_pj * double(m.l1d.misses + m.l1i.misses);
    pj += cfg.llc_access_pj * double(m.l2.misses);
    pj += cfg.tlb_access_pj *
          double(m.dtlb.accesses + m.stlb.accesses);
    pj += cfg.walk_ref_pj * double(m.walk_refs);
    pj += cfg.dram_access_pj * double(m.dram_accesses);

    EnergyEstimate e;
    e.total_nj = pj / 1000.0;
    if (m.instructions > 0) {
        e.nj_per_kilo_inst =
            e.total_nj * 1000.0 / double(m.instructions);
    }
    return e;
}

}  // namespace moka

#endif  // MOKASIM_SIM_ENERGY_H
