#include "sim/experiment.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hashing.h"
#include "common/stats.h"
#include "filter/policies.h"
#include "sim/jobs/shard.h"
#include "snapshot/cache.h"
#include "telemetry/telemetry.h"
#include "trace/trace_io.h"

namespace moka {

double
speedup(const RunMetrics &m, const RunMetrics &base)
{
    const double b = base.ipc();
    return b > 0.0 ? m.ipc() / b : 0.0;
}

double
coverage_gain(const RunMetrics &m, const RunMetrics &base)
{
    if (base.l1d.misses == 0) {
        return 0.0;
    }
    return (static_cast<double>(base.l1d.misses) -
            static_cast<double>(m.l1d.misses)) /
           static_cast<double>(base.l1d.misses);
}

const char *
require_value(const std::string &flag, int &i, int argc, char **argv)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s requires a value\n", flag.c_str());  // LINT_LOG_OK: usage error
        std::exit(2);
    }
    return argv[++i];
}

std::uint64_t
require_u64(const std::string &flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,  // LINT_LOG_OK: usage error
                     "usage: %s requires a non-negative integer "
                     "(got '%s')\n",
                     flag.c_str(), value);
        std::exit(2);
    }
    return parsed;
}

double
require_double(const std::string &flag, const char *value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "usage: %s requires a number (got '%s')\n",  // LINT_LOG_OK: usage error
                     flag.c_str(), value);
        std::exit(2);
    }
    return parsed;
}

BenchArgs
parse_bench_args(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next_u64 = [&]() {
            return require_u64(a, require_value(a, i, argc, argv));
        };
        if (a == "--full") {
            args.full = true;
            args.run = args.run.scaled(4.0);
            args.mixes = 300;
        } else if (a == "--workloads") {
            args.workloads = next_u64();
        } else if (a == "--insts") {
            args.run.measure_insts = next_u64();
        } else if (a == "--warmup") {
            args.run.warmup_insts = next_u64();
        } else if (a == "--mixes") {
            args.mixes = next_u64();
        } else if (a == "--seed") {
            args.seed = next_u64();
        } else if (a == "--jobs") {
            args.jobs = next_u64();
        } else if (a == "--fail-fast") {
            args.fail_fast = true;
        } else if (a == "--journal") {
            args.journal = require_value(a, i, argc, argv);
        } else if (a == "--resume") {
            args.resume = require_value(a, i, argc, argv);
        } else if (a == "--inject-faults") {
            args.fault_rate =
                require_double(a, require_value(a, i, argc, argv));
        } else if (a == "--fault-seed") {
            args.fault_seed = next_u64();
        } else if (a == "--shard-dir") {
            args.shard_dir = require_value(a, i, argc, argv);
        } else if (a == "--shard-name") {
            args.shard_name = require_value(a, i, argc, argv);
        } else if (a == "--lease-ttl") {
            args.lease_ttl_ms = next_u64();
        } else if (a == "--merge") {
            args.merge = true;
        } else if (a == "--inject-kill") {
            args.kill_rate =
                require_double(a, require_value(a, i, argc, argv));
        } else if (a == "--telemetry-dir") {
            args.telemetry_dir = require_value(a, i, argc, argv);
        } else if (a == "--trace-events") {
            args.trace_events = require_value(a, i, argc, argv);
        } else if (a == "--snapshot-dir") {
            args.snapshot_dir = require_value(a, i, argc, argv);
        } else if (a == "--no-snapshot-reuse") {
            args.no_snapshot_reuse = true;
        } else {
            std::fprintf(stderr, "warning: ignoring unknown flag %s\n",  // LINT_LOG_OK: usage warning
                         a.c_str());
        }
    }
    return args;
}

EngineConfig
engine_config(const BenchArgs &args)
{
    EngineConfig cfg;
    cfg.workers = std::max<std::size_t>(1, args.jobs);
    cfg.fail_fast = args.fail_fast;
    cfg.journal_path = args.journal;
    cfg.resume_path = args.resume;
    if (args.fault_rate > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.seed = args.fault_seed;
        cfg.faults.throw_rate = args.fault_rate * 0.75;
        cfg.faults.stall_rate = args.fault_rate * 0.25;
        cfg.faults.stall_ms = 200;
        // Stalled workers must trip the wall deadline; generous slack
        // over the stall keeps legitimate jobs clear of it.
        cfg.watchdog_wall_ms = 60'000;
    }
    return cfg;
}

std::unique_ptr<TelemetrySession>
make_telemetry(const BenchArgs &args)
{
    if (args.telemetry_dir.empty() && args.trace_events.empty()) {
        return nullptr;
    }
    return std::make_unique<TelemetrySession>(args.telemetry_dir,
                                              args.trace_events);
}

SchemeConfig
scheme_by_name(const std::string &name, L1dPrefetcherKind kind)
{
    if (name == "discard") return scheme_discard();
    if (name == "permit") return scheme_permit();
    if (name == "discard-ptw") return scheme_discard_ptw();
    if (name == "iso") return scheme_iso_storage();
    if (name == "ppf") return scheme_ppf(false);
    if (name == "ppf-dthr") return scheme_ppf(true);
    if (name == "dripper") return scheme_dripper(kind);
    if (name == "dripper-sf") return scheme_dripper_sf(kind);
    if (name == "dripper-meta") return scheme_dripper_specialized(kind);
    if (name == "dripper-2mb") return scheme_dripper_filter_2mb(kind);
    throw JobError(JobErrorCode::kConfigInvalid,
                   "unknown scheme '" + name + "'");
}

const std::vector<std::string> &
known_scheme_names()
{
    static const std::vector<std::string> names = {
        "discard",    "permit",      "discard-ptw", "iso",
        "ppf",        "ppf-dthr",    "dripper",     "dripper-sf",
        "dripper-meta", "dripper-2mb",
    };
    return names;
}

const std::vector<std::string> &
known_prefetcher_names()
{
    static const std::vector<std::string> names = {"berti", "ipcp", "bop",
                                                   "stride", "nl"};
    return names;
}

namespace {

L1dPrefetcherKind
prefetcher_by_name(const std::string &name)
{
    const std::vector<std::string> &known = known_prefetcher_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
        throw JobError(JobErrorCode::kConfigInvalid,
                       "unknown prefetcher '" + name + "'");
    }
    return parse_l1d_kind(name);
}

}  // namespace

std::vector<JobSpec>
make_matrix(const std::vector<WorkloadSpec> &roster,
            const std::vector<std::string> &schemes,
            const std::vector<std::string> &prefetchers,
            const RunConfig &run, double large_page_fraction)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(roster.size() * schemes.size() * prefetchers.size());
    for (const std::string &pf : prefetchers) {
        for (const std::string &scheme : schemes) {
            for (const WorkloadSpec &spec : roster) {
                JobSpec job;
                job.id = jobs.size();
                job.workload = spec;
                job.scheme = scheme;
                job.prefetcher = pf;
                job.run = run;
                job.large_page_fraction = large_page_fraction;
                // A single-core run retires warmup+measure
                // instructions in exactly that many steps; 8x slack
                // accommodates replay variance with headroom while
                // still catching runaway loops.
                job.watchdog_steps =
                    8 * (run.warmup_insts + run.measure_insts);
                // Uniform single-core cells: equal cost keeps the
                // engine's cost-ordered dispatch in plain id order.
                job.estimated_cost = static_cast<double>(
                    run.warmup_insts + run.measure_insts);
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

namespace {

/**
 * Snapshot warmup-key contribution of the workload itself. Trace
 * workloads are identified by path; synthetic ones by the full spec
 * (two specs with equal fields replay identical streams).
 */
std::uint64_t
workload_identity(const JobSpec &spec)
{
    if (!spec.trace_path.empty()) {
        return fnv1a_64(spec.trace_path.data(), spec.trace_path.size());
    }
    const WorkloadSpec &w = spec.workload;
    std::uint64_t key = fnv1a_64(w.name.data(), w.name.size());
    key = hash_combine(key, static_cast<std::uint64_t>(w.family));
    key = hash_combine(key, w.variant);
    return hash_combine(key, w.seed);
}

}  // namespace

JobOutput
run_sim_job(const JobSpec &spec, JobContext &ctx)
{
    const L1dPrefetcherKind kind = prefetcher_by_name(spec.prefetcher);
    MachineConfig cfg = make_config(kind, scheme_by_name(spec.scheme, kind));
    cfg.vmem.large_page_fraction = spec.large_page_fraction;

    WorkloadPtr workload;
    JobOutput out;
    WorkloadFactory factory;
    if (!spec.trace_path.empty()) {
        TraceOpenResult open = open_trace_checked(spec.trace_path);
        if (!open.ok()) {
            // Missing file is an operator error; damaged bytes are
            // data corruption. Both isolate to this one job.
            throw JobError(open.status == TraceIoStatus::kFileMissing
                               ? JobErrorCode::kConfigInvalid
                               : JobErrorCode::kTraceCorrupt,
                           open.message);
        }
        workload = std::move(open.workload);
        out.row.workload = workload->name();
        out.row.suite = "trace";
        factory = [path = spec.trace_path]() {
            TraceOpenResult reopen = open_trace_checked(path);
            if (!reopen.ok()) {
                throw JobError(
                    reopen.status == TraceIoStatus::kFileMissing
                        ? JobErrorCode::kConfigInvalid
                        : JobErrorCode::kTraceCorrupt,
                    reopen.message);
            }
            return std::move(reopen.workload);
        };
    } else {
        workload = make_workload(spec.workload);
        out.row.workload = spec.workload.name;
        out.row.suite = spec.workload.suite;
        factory = [w = spec.workload]() { return make_workload(w); };
    }
    out.row.scheme = spec.scheme;
    out.row.prefetcher = spec.prefetcher;

    std::string audit_findings;
    const std::string label = out.row.workload + "." + spec.scheme + "." +
                              spec.prefetcher;
    if (ctx.snapshot != nullptr) {
        out.row.metrics = run_single_workload_snapshot(
            cfg, factory, spec.run, ctx.hook, *ctx.snapshot,
            workload_identity(spec), &audit_findings, ctx.telemetry,
            label, ctx.trace_pid);
    } else {
        out.row.metrics = run_single_workload(
            cfg, std::move(workload), spec.run, ctx.hook, &audit_findings,
            ctx.telemetry, label, ctx.trace_pid);
    }
    if (!audit_findings.empty()) {
        throw JobError(JobErrorCode::kAuditFailure, audit_findings);
    }
    out.aux = {out.row.metrics.ipc(),
               static_cast<double>(out.row.metrics.l1d.misses),
               static_cast<double>(out.row.metrics.l1d.accesses)};
    return out;
}

EngineReport
run_engine(const std::vector<JobSpec> &jobs, const BenchArgs &args,
           const JobFn &fn, TelemetrySession *telemetry)
{
    if (args.merge) {
        if (args.shard_dir.empty()) {
            std::fprintf(stderr,  // LINT_LOG_OK: usage error
                         "usage: --merge requires --shard-dir\n");
            std::exit(2);
        }
        const MergeReport merge =
            merge_shard_dir(args.shard_dir, jobs.size());
        std::fputs(merge.summary().c_str(), stderr);  // LINT_LOG_OK: report
        if (!merge.ok()) {
            std::exit(2);
        }
        return report_from_merge(merge, jobs);
    }
    EngineConfig cfg = engine_config(args);
    cfg.telemetry = telemetry;
    // Warmup-snapshot reuse: one cache shared by every worker (and,
    // through the claim/publish protocol, by concurrent shards using
    // the same directory). It must outlive the engine run below.
    std::unique_ptr<SnapshotCache> snapshots;
    if (!args.snapshot_dir.empty() && !args.no_snapshot_reuse) {
        snapshots = std::make_unique<SnapshotCache>(args.snapshot_dir);
        cfg.snapshot = snapshots.get();
    }
    auto report_snapshots = [&snapshots]() {
        if (snapshots == nullptr) {
            return;
        }
        const SnapshotCache::Stats s = snapshots->stats();
        std::fprintf(stderr,  // LINT_LOG_OK: report
                     "snapshot cache: %llu hits, %llu misses, "
                     "%llu saves, %llu invalid\n",
                     static_cast<unsigned long long>(s.hits),
                     static_cast<unsigned long long>(s.misses),
                     static_cast<unsigned long long>(s.saves),
                     static_cast<unsigned long long>(s.invalid));
    };
    if (!args.shard_dir.empty()) {
        ShardConfig shard;
        shard.dir = args.shard_dir;
        shard.name = args.shard_name;
        shard.lease_ttl_ms = std::max<std::uint64_t>(1, args.lease_ttl_ms);
        if (args.kill_rate > 0.0) {
            shard.proc_faults.enabled = true;
            shard.proc_faults.seed = args.fault_seed;
            shard.proc_faults.kill_rate = args.kill_rate;
        }
        // The shard layer owns journaling inside shard_dir; the
        // --journal/--resume flags stay meaningful only in plain mode.
        shard.engine = std::move(cfg);
        ShardReport report = ShardEngine(std::move(shard)).run(jobs, fn);
        std::fputs(report.summary().c_str(), stderr);  // LINT_LOG_OK: report
        report_snapshots();
        return std::move(report.engine);
    }
    JobEngine engine(std::move(cfg));
    EngineReport report = engine.run(jobs, fn);
    report_snapshots();
    return report;
}

EngineReport
run_matrix(const std::vector<JobSpec> &jobs, const BenchArgs &args,
           TelemetrySession *telemetry)
{
    return run_engine(jobs, args, run_sim_job, telemetry);
}

double
matrix_ipc(const EngineReport &report, std::size_t schemes,
           std::size_t roster, std::size_t p, std::size_t s,
           std::size_t w)
{
    const std::size_t id = (p * schemes + s) * roster + w;
    const JobResult &res = report.results[id];
    if (res.status != JobStatus::kCompleted || res.output.aux.empty()) {
        return std::nan("");
    }
    return res.output.aux[0];
}

void
SuiteAggregator::add(const std::string &suite, double ratio)
{
    auto [it, inserted] = by_suite_.try_emplace(suite);
    if (inserted) {
        order_.push_back(suite);
    }
    it->second.push_back(ratio);
}

double
SuiteAggregator::suite_geomean(const std::string &suite) const
{
    const auto it = by_suite_.find(suite);
    if (it == by_suite_.end() || it->second.empty()) {
        return 1.0;
    }
    return geomean(it->second);
}

double
SuiteAggregator::overall_geomean() const
{
    std::vector<double> all;
    for (const auto &[suite, ratios] : by_suite_) {
        all.insert(all.end(), ratios.begin(), ratios.end());
    }
    return all.empty() ? 1.0 : geomean(all);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    widths_.reserve(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths_.push_back(std::max<std::size_t>(
            headers_[i].size() + 2, i == 0 ? 26 : 12));
    }
}

void
TablePrinter::print_header() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        std::printf("%-*s", static_cast<int>(widths_[i]),  // LINT_LOG_OK: report table surface
                    headers_[i].c_str());
        total += widths_[i];
    }
    std::printf("\n");  // LINT_LOG_OK: report table surface
    for (std::size_t i = 0; i < total; ++i) {
        std::putchar('-');  // LINT_LOG_OK: report table surface
    }
    std::printf("\n");  // LINT_LOG_OK: report table surface
}

void
TablePrinter::print_row(const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
        std::printf("%-*s", static_cast<int>(widths_[i]), cells[i].c_str());  // LINT_LOG_OK: report table surface
    }
    std::printf("\n");  // LINT_LOG_OK: report table surface
}

}  // namespace moka
