#include "sim/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/stats.h"

namespace moka {

double
speedup(const RunMetrics &m, const RunMetrics &base)
{
    const double b = base.ipc();
    return b > 0.0 ? m.ipc() / b : 0.0;
}

double
coverage_gain(const RunMetrics &m, const RunMetrics &base)
{
    if (base.l1d.misses == 0) {
        return 0.0;
    }
    return (static_cast<double>(base.l1d.misses) -
            static_cast<double>(m.l1d.misses)) /
           static_cast<double>(base.l1d.misses);
}

BenchArgs
parse_bench_args(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next_u64 = [&](std::uint64_t fallback) -> std::uint64_t {
            if (i + 1 < argc) {
                return std::strtoull(argv[++i], nullptr, 10);
            }
            return fallback;
        };
        if (std::strcmp(a, "--full") == 0) {
            args.full = true;
            args.run = args.run.scaled(4.0);
            args.mixes = 300;
        } else if (std::strcmp(a, "--workloads") == 0) {
            args.workloads = next_u64(args.workloads);
        } else if (std::strcmp(a, "--insts") == 0) {
            args.run.measure_insts = next_u64(args.run.measure_insts);
        } else if (std::strcmp(a, "--warmup") == 0) {
            args.run.warmup_insts = next_u64(args.run.warmup_insts);
        } else if (std::strcmp(a, "--mixes") == 0) {
            args.mixes = next_u64(args.mixes);
        } else if (std::strcmp(a, "--seed") == 0) {
            args.seed = next_u64(args.seed);
        } else {
            std::fprintf(stderr, "warning: ignoring unknown flag %s\n", a);
        }
    }
    return args;
}

void
SuiteAggregator::add(const std::string &suite, double ratio)
{
    auto [it, inserted] = by_suite_.try_emplace(suite);
    if (inserted) {
        order_.push_back(suite);
    }
    it->second.push_back(ratio);
}

double
SuiteAggregator::suite_geomean(const std::string &suite) const
{
    const auto it = by_suite_.find(suite);
    if (it == by_suite_.end() || it->second.empty()) {
        return 1.0;
    }
    return geomean(it->second);
}

double
SuiteAggregator::overall_geomean() const
{
    std::vector<double> all;
    for (const auto &[suite, ratios] : by_suite_) {
        all.insert(all.end(), ratios.begin(), ratios.end());
    }
    return all.empty() ? 1.0 : geomean(all);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    widths_.reserve(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths_.push_back(std::max<std::size_t>(
            headers_[i].size() + 2, i == 0 ? 26 : 12));
    }
}

void
TablePrinter::print_header() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        std::printf("%-*s", static_cast<int>(widths_[i]),
                    headers_[i].c_str());
        total += widths_[i];
    }
    std::printf("\n");
    for (std::size_t i = 0; i < total; ++i) {
        std::putchar('-');
    }
    std::printf("\n");
}

void
TablePrinter::print_row(const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
        std::printf("%-*s", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
}

}  // namespace moka
