/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses: derived
 * metrics (speedup, coverage), per-suite aggregation, table printing,
 * and common CLI flags (--full, --workloads, --insts, --warmup).
 */
#ifndef MOKASIM_SIM_EXPERIMENT_H
#define MOKASIM_SIM_EXPERIMENT_H

#include <map>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {

/** IPC speedup of @p m over @p base. */
double speedup(const RunMetrics &m, const RunMetrics &base);

/**
 * Miss-coverage improvement of @p m over @p base: the fraction of the
 * baseline's L1D demand misses that @p m eliminates (paper Fig. 11).
 */
double coverage_gain(const RunMetrics &m, const RunMetrics &base);

/** Common bench CLI options. */
struct BenchArgs
{
    bool full = false;            //!< full roster + 4x instructions
    std::size_t workloads = 24;   //!< roster sample size (default runs)
    RunConfig run;                //!< instruction budgets
    std::size_t mixes = 24;       //!< multi-core mixes (fig19)
    std::uint64_t seed = 7;

    /** Effective roster for @p roster given --full/--workloads. */
    std::vector<WorkloadSpec>
    select(const std::vector<WorkloadSpec> &roster) const
    {
        return full ? roster : sample(roster, workloads);
    }
};

/** Parse argv; unknown flags are ignored with a warning. */
BenchArgs parse_bench_args(int argc, char **argv);

/** Accumulates per-workload speedups and reports suite geomeans. */
class SuiteAggregator
{
  public:
    /** Record @p ratio for @p suite. */
    void add(const std::string &suite, double ratio);

    /** Geomean of one suite (1.0 when empty). */
    double suite_geomean(const std::string &suite) const;

    /** Geomean across every recorded ratio. */
    double overall_geomean() const;

    /** Suites recorded, in first-seen order. */
    const std::vector<std::string> &suites() const { return order_; }

  private:
    std::map<std::string, std::vector<double>> by_suite_;
    std::vector<std::string> order_;
};

/** Fixed-width table printer for the bench harnesses. */
class TablePrinter
{
  public:
    /** @param headers column titles; first column is the row label. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Print the header row + rule. */
    void print_header() const;

    /** Print one row; numeric cells formatted by the caller. */
    void print_row(const std::vector<std::string> &cells) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::size_t> widths_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_EXPERIMENT_H
