/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses: derived
 * metrics (speedup, coverage), per-suite aggregation, table printing,
 * common CLI flags (--full, --workloads, --insts, --warmup, plus the
 * engine flags --jobs/--resume/--journal/--fail-fast/--inject-faults
 * and the shard flags --shard-dir/--shard-name/--lease-ttl/--merge/
 * --inject-kill), and the engine-backed matrix runner every ported
 * harness and sweep_tool share.
 */
#ifndef MOKASIM_SIM_EXPERIMENT_H
#define MOKASIM_SIM_EXPERIMENT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "sim/jobs/engine.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {

/** IPC speedup of @p m over @p base. */
double speedup(const RunMetrics &m, const RunMetrics &base);

/**
 * Miss-coverage improvement of @p m over @p base: the fraction of the
 * baseline's L1D demand misses that @p m eliminates (paper Fig. 11).
 */
double coverage_gain(const RunMetrics &m, const RunMetrics &base);

/** Common bench CLI options. */
struct BenchArgs
{
    bool full = false;            //!< full roster + 4x instructions
    std::size_t workloads = 24;   //!< roster sample size (default runs)
    RunConfig run;                //!< instruction budgets
    std::size_t mixes = 24;       //!< multi-core mixes (fig19)
    std::uint64_t seed = 7;

    // Job-engine knobs (see sim/jobs/engine.h).
    std::size_t jobs = 1;         //!< worker threads
    bool fail_fast = false;       //!< abort the sweep on first failure
    std::string journal;          //!< journal finished jobs here
    std::string resume;           //!< resume from this journal
    double fault_rate = 0.0;      //!< injected fault rate (tests/CI)
    std::uint64_t fault_seed = 1;

    // Sharded-execution knobs (see sim/jobs/shard.h). A non-empty
    // shard_dir switches the sweep into shard mode: claim jobs from
    // the shared directory instead of running the whole matrix.
    std::string shard_dir;        //!< shared lease/journal directory
    std::string shard_name;       //!< this shard's name ("" = pid-based)
    std::uint64_t lease_ttl_ms = 10000;  //!< heartbeat-miss budget
    bool merge = false;           //!< merge shard_dir, don't run jobs
    double kill_rate = 0.0;       //!< seeded self-SIGKILL rate (chaos)

    // Telemetry knobs (see telemetry/telemetry.h).
    std::string telemetry_dir;    //!< per-run epoch CSV/JSONL directory
    std::string trace_events;     //!< merged Chrome trace JSON path

    // Warmup-snapshot reuse (see snapshot/cache.h). A non-empty
    // snapshot_dir makes every job resolve its warmup through the
    // shared snapshot cache: warm up once per (workload, machine
    // config, warmup budget) key, fork every sweep point from the
    // restored state. Results stay byte-identical to a cold sweep.
    std::string snapshot_dir;     //!< snapshot cache directory
    bool no_snapshot_reuse = false;  //!< force cold warmups anyway

    /** Effective roster for @p roster given --full/--workloads. */
    std::vector<WorkloadSpec>
    select(const std::vector<WorkloadSpec> &roster) const
    {
        return full ? roster : sample(roster, workloads);
    }
};

/**
 * Parse argv; unknown flags are ignored with a warning, but a flag
 * with a missing or non-numeric value is a usage error: one line to
 * stderr and exit(2) instead of an uncaught-exception backtrace.
 */
BenchArgs parse_bench_args(int argc, char **argv);

/**
 * CLI parsing helpers shared with the tools: each prints a one-line
 * usage error and exits(2) on a missing or malformed value.
 */
const char *require_value(const std::string &flag, int &i, int argc,
                          char **argv);
std::uint64_t require_u64(const std::string &flag, const char *value);
double require_double(const std::string &flag, const char *value);

/** Engine configuration implied by the common bench flags. */
EngineConfig engine_config(const BenchArgs &args);

/**
 * TelemetrySession implied by --telemetry-dir/--trace-events, or null
 * when neither was given. Constructing the session arms the runtime
 * telemetry gate; the caller owns it and calls flush() after the
 * sweep drains.
 */
std::unique_ptr<TelemetrySession> make_telemetry(const BenchArgs &args);

/**
 * Scheme registry keyed by CLI name ("discard", "permit",
 * "discard-ptw", "iso", "ppf", "ppf-dthr", "dripper", "dripper-sf",
 * "dripper-meta", "dripper-2mb"). Throws JobError(kConfigInvalid) on
 * an unknown name.
 */
SchemeConfig scheme_by_name(const std::string &name,
                            L1dPrefetcherKind kind);

/** All names scheme_by_name accepts (usage messages, validation). */
const std::vector<std::string> &known_scheme_names();

/** All L1D prefetcher names run_sim_job accepts. */
const std::vector<std::string> &known_prefetcher_names();

/**
 * Build the dense (prefetcher-major, then scheme, then workload) job
 * matrix: id = (p * |schemes| + s) * |roster| + w, which is also the
 * CSV emission order. Every job carries @p run budgets and a
 * watchdog step budget derived from them.
 */
std::vector<JobSpec>
make_matrix(const std::vector<WorkloadSpec> &roster,
            const std::vector<std::string> &schemes,
            const std::vector<std::string> &prefetchers,
            const RunConfig &run, double large_page_fraction = 0.0);

/**
 * The default single-core simulation job body: loads the workload
 * (roster generator or trace file), runs it under the job's scheme
 * and prefetcher with the engine's watchdog/fault hook, surfaces
 * audit findings, and returns the labelled row. aux = {ipc,
 * l1d_misses, l1d_accesses} so harnesses can aggregate speedups and
 * coverage even for resumed jobs (which have no RunMetrics).
 */
JobOutput run_sim_job(const JobSpec &spec, JobContext &ctx);

/**
 * Run @p jobs through whatever execution mode the common flags chose:
 *
 *  - merge mode (--merge --shard-dir D): don't run anything; merge
 *    the shard journals in D (validating checksums and completeness)
 *    and rehydrate the report a serial run would have produced. Any
 *    merge problem is a usage-style error: summary to stderr, exit 2.
 *  - shard mode (--shard-dir D): claim jobs from D via leases, run
 *    them through the engine, journal into D (sim/jobs/shard.h); the
 *    shard summary goes to stderr and the returned report covers the
 *    whole matrix (peer-finished jobs carry status only, no CSV).
 *  - plain mode: one local JobEngine over the full matrix.
 *
 * @p telemetry (may be null) is handed down for trace spans and
 * per-run epoch sampling.
 */
EngineReport run_engine(const std::vector<JobSpec> &jobs,
                        const BenchArgs &args, const JobFn &fn,
                        TelemetrySession *telemetry = nullptr);

/** run_engine with the default single-core sim body (run_sim_job). */
EngineReport run_matrix(const std::vector<JobSpec> &jobs,
                        const BenchArgs &args,
                        TelemetrySession *telemetry = nullptr);

/**
 * Completed-job IPC for matrix cell (p, s, w) of @p report (layout
 * from make_matrix), or a quiet NaN when that job failed/was skipped.
 */
double matrix_ipc(const EngineReport &report, std::size_t schemes,
                  std::size_t roster, std::size_t p, std::size_t s,
                  std::size_t w);

/** Accumulates per-workload speedups and reports suite geomeans. */
class SuiteAggregator
{
  public:
    /** Record @p ratio for @p suite (job-completion cadence). */
    SIM_COLD void add(const std::string &suite, double ratio);

    /** Geomean of one suite (1.0 when empty). */
    double suite_geomean(const std::string &suite) const;

    /** Geomean across every recorded ratio. */
    double overall_geomean() const;

    /** Suites recorded, in first-seen order. */
    const std::vector<std::string> &suites() const { return order_; }

  private:
    std::map<std::string, std::vector<double>> by_suite_;
    std::vector<std::string> order_;
};

/** Fixed-width table printer for the bench harnesses. */
class TablePrinter
{
  public:
    /** @param headers column titles; first column is the row label. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Print the header row + rule. */
    void print_header() const;

    /** Print one row; numeric cells formatted by the caller. */
    void print_row(const std::vector<std::string> &cells) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::size_t> widths_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_EXPERIMENT_H
