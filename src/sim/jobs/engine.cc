#include "sim/jobs/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/hashing.h"
#include "common/rng.h"
#include "sim/jobs/journal.h"
#include "telemetry/telemetry.h"

namespace moka {
namespace {

/** Delivers one FaultInjector decision as machine-tick behaviour. */
class FaultHook final : public RunTickHook
{
  public:
    FaultHook(const FaultInjector::Decision &decision,
              std::uint64_t stall_ms)
        : decision_(decision), stall_ms_(stall_ms)
    {
    }

    void on_tick(std::uint64_t steps) override
    {
        using Kind = FaultInjector::Decision::Kind;
        if (fired_ || decision_.kind == Kind::kNone ||
            steps < decision_.at_tick) {
            return;
        }
        fired_ = true;
        if (decision_.kind == Kind::kThrow) {
            // LINT_HOT_OK: injected-fault exit; fires at most once
            // per run, then the job unwinds (rule L14).
            std::ostringstream os;
            os << "injected fault at tick " << steps;
            throw JobError(decision_.transient ? JobErrorCode::kTimeout
                                               : JobErrorCode::kUnknown,
                           os.str());
        }
        // Stall: sleep past the wall-clock deadline so the watchdog
        // (which runs after us in the chain) cancels the run.
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    }

  private:
    FaultInjector::Decision decision_;
    std::uint64_t stall_ms_;
    bool fired_ = false;
};

/** The engine's tracer, or null when tracing is not armed. */
Tracer *
engine_tracer(const EngineConfig &cfg)
{
    if (cfg.telemetry == nullptr || !telemetry_enabled()) {
        return nullptr;
    }
    return cfg.telemetry->tracer();
}

}  // namespace

std::string
job_label(const JobSpec &spec)
{
    std::string label = spec.trace_path.empty() ? spec.workload.name
                                                : spec.trace_path;
    if (!spec.scheme.empty()) {
        label += " scheme=" + spec.scheme;
    }
    if (!spec.prefetcher.empty()) {
        label += " prefetcher=" + spec.prefetcher;
    }
    return label;
}

Watchdog::Watchdog(std::uint64_t step_budget, std::uint64_t wall_ms)
    : step_budget_(step_budget), wall_ms_(wall_ms),
      // LINT_NONDET_OK: the watchdog deadline is wall time by design;
      // a timeout only classifies a failure, never a result value.
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(wall_ms))
{
}

void
Watchdog::on_tick(std::uint64_t steps)
{
    if (step_budget_ > 0 && steps > step_budget_) {
        // LINT_HOT_OK: timeout exit; fires at most once per run
        // (rule L14).
        std::ostringstream os;
        os << "watchdog: step budget " << step_budget_
           << " exhausted at tick " << steps;
        throw JobError(JobErrorCode::kTimeout, os.str());
    }
    if (wall_ms_ > 0 && steps % kHeartbeatSteps == 0 &&
        // LINT_NONDET_OK: heartbeat check against the wall deadline.
        std::chrono::steady_clock::now() > deadline_) {
        // LINT_HOT_OK: timeout exit, as above (rule L14).
        std::ostringstream os;
        os << "watchdog: wall deadline of " << wall_ms_
           << " ms exceeded at tick " << steps;
        throw JobError(JobErrorCode::kTimeout, os.str());
    }
}

std::uint64_t
backoff_delay_ms(const EngineConfig &cfg, std::size_t id, int attempt)
{
    // Capped exponential: base * 2^(attempt-1), clamped.
    const std::uint64_t shift =
        attempt <= 63 ? static_cast<std::uint64_t>(attempt - 1) : 63;
    const std::uint64_t delay_ms =
        std::min(cfg.backoff_cap_ms,
                 cfg.backoff_base_ms == 0 ? 0
                                          : cfg.backoff_base_ms << shift);
    if (!cfg.backoff_jitter || delay_ms == 0) {
        return delay_ms;
    }
    // Decorrelate across shards: a seeded-uniform draw in
    // [delay/2, delay] keyed on (salt, job, attempt) — pure timing,
    // no effect on any result value.
    Rng rng(hash_combine(hash_combine(cfg.jitter_salt,
                                      static_cast<std::uint64_t>(id)),
                         static_cast<std::uint64_t>(attempt)));
    return delay_ms / 2 + rng.below(delay_ms - delay_ms / 2 + 1);
}

JobEngine::JobEngine(EngineConfig cfg) : cfg_(std::move(cfg))
{
    SIM_REQUIRE(cfg_.max_attempts >= 1,
                "engine needs at least one attempt per job");
}

JobResult
JobEngine::execute_one(const JobSpec &spec, const JobFn &fn,
                       const FaultInjector &injector,
                       std::uint32_t worker, RunTickHook *extra) const
{
    Tracer *tracer = engine_tracer(cfg_);
    JobResult res;
    res.id = spec.id;
    res.label = job_label(spec);
    for (int attempt = 1; attempt <= cfg_.max_attempts; ++attempt) {
        res.attempts = attempt;
        if (tracer != nullptr && attempt > 1) {
            std::ostringstream os;
            os << "{\"job\":" << spec.id << ",\"attempt\":" << attempt
               << ",\"error\":\"" << to_string(res.error) << "\"}";
            tracer->instant(kEnginePid, worker, "retry",
                            tracer->now_us(), os.str());
        }
        const FaultInjector::Decision decision =
            injector.decide(spec.id, attempt);
        FaultHook fault(decision, injector.plan().stall_ms);
        Watchdog watchdog(spec.watchdog_steps, cfg_.watchdog_wall_ms);
        // Extra (shard heartbeat) first, then fault, then watchdog: a
        // lease refresh must happen even on the tick a fault fires,
        // and a stall is observed by the deadline check behind it.
        TickHookChain chain;
        if (extra != nullptr) {
            chain.add(extra);
        }
        chain.add(&fault);
        chain.add(&watchdog);
        JobContext ctx;
        ctx.hook = &chain;
        ctx.attempt = attempt;
        ctx.telemetry = cfg_.telemetry;
        ctx.snapshot = cfg_.snapshot;
        ctx.trace_pid =
            kJobPidBase + static_cast<std::uint32_t>(spec.id);
        try {
            res.output = fn(spec, ctx);
            res.csv = to_csv(res.output.row);
            res.status = JobStatus::kCompleted;
            return res;
        } catch (const JobError &e) {
            res.error = e.code();
            res.error_message = e.what();
        } catch (const std::bad_alloc &) {
            res.error = JobErrorCode::kOom;
            res.error_message = "allocation failure";
        } catch (const std::exception &e) {
            res.error = JobErrorCode::kUnknown;
            res.error_message = e.what();
        } catch (...) {  // LINT_CATCH_OK: classified as kUnknown below
            res.error = JobErrorCode::kUnknown;
            res.error_message = "non-standard exception";
        }
        res.status = JobStatus::kFailed;
        if (res.error == JobErrorCode::kLeaseLost) {
            break;  // the shard lost this job to a peer; never retry
        }
        if (!is_transient(res.error) || attempt == cfg_.max_attempts) {
            break;
        }
        // Jittered capped-exponential backoff before retrying a
        // transient failure (see backoff_delay_ms).
        const std::uint64_t delay_ms =
            backoff_delay_ms(cfg_, spec.id, attempt);
        if (delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        }
    }
    return res;
}

EngineReport
JobEngine::run(const std::vector<JobSpec> &jobs, const JobFn &fn)
{
    EngineReport report;
    report.results.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SIM_REQUIRE(jobs[i].id == i,
                    "job ids must be dense and in order");
        report.results[i].id = i;
        report.results[i].label = job_label(jobs[i]);
    }

    // Resume: pre-fill every journaled terminal result; those jobs
    // are never re-run and their CSV rows are replayed verbatim.
    if (!cfg_.resume_path.empty()) {
        for (const JournalRecord &rec : Journal::load(cfg_.resume_path)) {
            if (rec.job_id >= jobs.size()) {
                continue;  // journal from a different matrix
            }
            JobResult &res = report.results[rec.job_id];
            res.status = rec.status;
            res.attempts = rec.attempts;
            res.error = rec.error;
            res.error_message = rec.error_message;
            res.csv = rec.csv;
            res.output.aux = rec.aux;
            res.from_journal = true;
        }
    }

    // Fresh sweeps overwrite a stale journal instead of extending it.
    std::unique_ptr<Journal> journal;
    if (!cfg_.journal_path.empty()) {
        if (cfg_.resume_path != cfg_.journal_path) {
            std::remove(cfg_.journal_path.c_str());
        }
        journal = std::make_unique<Journal>(cfg_.journal_path);
        // Re-journal replayed results so the new journal is itself a
        // complete resume point, not just the post-crash remainder.
        for (const JobResult &res : report.results) {
            if (res.from_journal && !journal->contains(res.id)) {
                JournalRecord rec;
                rec.job_id = res.id;
                rec.status = res.status;
                rec.attempts = res.attempts;
                rec.error = res.error;
                rec.error_message = res.error_message;
                rec.csv = res.csv;
                rec.aux = res.output.aux;
                journal->append(rec);
            }
        }
    }

    // Dispatch order: descending estimated cost, id-ascending within
    // equal cost. Long jobs (multicore mixes) start first so a skewed
    // sweep doesn't serialize on a straggler claimed last; with the
    // default cost of 0 this degenerates to plain id order. Results
    // are still emitted in ascending id, so the CSV stays
    // byte-identical to a serial sweep.
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&jobs](std::size_t a, std::size_t b) {
                         return jobs[a].estimated_cost >
                                jobs[b].estimated_cost;
                     });

    Tracer *tracer = engine_tracer(cfg_);
    const std::size_t workers =
        std::max<std::size_t>(1, std::min(cfg_.workers, jobs.size()));
    if (tracer != nullptr) {
        tracer->register_process(kEnginePid, "job-engine");
        for (std::size_t w = 0; w < workers; ++w) {
            tracer->register_thread(kEnginePid,
                                    static_cast<std::uint32_t>(w),
                                    "worker-" + std::to_string(w));
        }
    }

    const FaultInjector injector(cfg_.faults);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort_rest{false};
    auto worker = [&](std::uint32_t wid) {
        while (true) {
            const std::size_t slot =
                next.fetch_add(1, std::memory_order_relaxed);
            if (slot >= order.size()) {
                return;
            }
            const std::size_t i = order[slot];
            JobResult &res = report.results[i];
            if (res.from_journal) {
                continue;
            }
            if (abort_rest.load(std::memory_order_relaxed)) {
                res.status = JobStatus::kSkipped;
                res.error_message = "skipped by --fail-fast";
                continue;
            }
            std::uint64_t begin_us = 0;
            if (tracer != nullptr) {
                begin_us = tracer->now_us();
                std::ostringstream os;
                os << "{\"job\":" << i << "}";
                tracer->instant(kEnginePid, wid, "schedule", begin_us,
                                os.str());
                tracer->register_process(
                    kJobPidBase + static_cast<std::uint32_t>(i),
                    "job " + std::to_string(i) + ": " + res.label);
            }
            res = execute_one(jobs[i], fn, injector, wid);
            if (tracer != nullptr) {
                std::ostringstream os;
                os << "{\"job\":" << i << ",\"status\":\""
                   << to_string(res.status)
                   << "\",\"attempts\":" << res.attempts << "}";
                tracer->complete(kEnginePid, wid,
                                 "job " + std::to_string(i), begin_us,
                                 tracer->now_us() - begin_us, os.str());
            }
            if (res.status == JobStatus::kFailed && cfg_.fail_fast) {
                abort_rest.store(true, std::memory_order_relaxed);
            }
            if (journal != nullptr) {
                JournalRecord rec;
                rec.job_id = res.id;
                rec.status = res.status;
                rec.attempts = res.attempts;
                rec.error = res.error;
                rec.error_message = res.error_message;
                rec.csv = res.csv;
                rec.aux = res.output.aux;
                try {
                    journal->append(rec);
                } catch (const JobError &e) {
                    // A failed append (real or injected ENOSPC) must
                    // not kill the sweep: the result is already in
                    // report.results, only resumability of this one
                    // job degrades, and the journal self-repairs its
                    // torn tail on the next append.
                    std::fprintf(stderr, /* LINT_LOG_OK */
                                 "engine: journal append failed for "
                                 "job %zu: %s\n",
                                 res.id, e.what());
                }
                if (tracer != nullptr) {
                    tracer->instant(kEnginePid, wid, "journal",
                                    tracer->now_us(),
                                    "{\"job\":" + std::to_string(i) +
                                        "}");
                }
            }
        }
    };

    if (workers <= 1) {
        worker(0);  // keep serial sweeps genuinely single-threaded
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            pool.emplace_back(worker, static_cast<std::uint32_t>(i));
        }
        for (std::thread &t : pool) {
            t.join();
        }
    }

    for (const JobResult &res : report.results) {
        switch (res.status) {
          case JobStatus::kCompleted: ++report.completed; break;
          case JobStatus::kFailed: ++report.failed; break;
          case JobStatus::kSkipped: ++report.skipped; break;
        }
        if (res.from_journal) {
            ++report.resumed;
        }
    }
    return report;
}

std::string
EngineReport::summary() const
{
    std::ostringstream os;
    os << "jobs: " << results.size() << " total, " << completed
       << " completed, " << failed << " failed, " << skipped
       << " skipped";
    if (resumed > 0) {
        os << " (" << resumed << " from journal)";
    }
    os << '\n';
    for (const JobResult &res : results) {
        if (res.status == JobStatus::kFailed) {
            os << "  job " << res.id << " [" << res.label
               << "]: " << to_string(res.error) << ": "
               << res.error_message << " (attempts=" << res.attempts
               << ")\n";
        } else if (res.status == JobStatus::kSkipped) {
            os << "  job " << res.id << " [" << res.label
               << "]: skipped\n";
        }
    }
    return os.str();
}

}  // namespace moka
