/**
 * @file
 * Fault-tolerant parallel job engine: executes the (workload, scheme,
 * prefetcher) matrix on a worker-thread pool with the posture of a
 * fleet scheduler — failures are expected, isolated, classified and
 * retried instead of fatal.
 *
 *  - isolation: a throwing job body marks that job failed with a
 *    JobErrorCode instead of killing the sweep;
 *  - watchdog: a cooperative step-budget + wall-clock heartbeat
 *    threaded through Machine::run cancels hung or stalled runs;
 *  - retry: transient failures (timeout, OOM) retry with capped
 *    exponential backoff before the engine degrades gracefully to a
 *    partial-results report;
 *  - resume: finished jobs are journaled through atomic write-rename;
 *    a resumed sweep replays journaled results and only runs the
 *    remainder, producing a byte-identical CSV;
 *  - determinism: results are emitted in ascending job id, and every
 *    per-job decision (including injected faults) is a pure function
 *    of the job id, so an N-worker run is byte-identical to a serial
 *    one.
 */
#ifndef MOKASIM_SIM_JOBS_ENGINE_H
#define MOKASIM_SIM_JOBS_ENGINE_H

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/jobs/faults.h"
#include "sim/jobs/job.h"
#include "sim/machine.h"

namespace moka {

class TelemetrySession;
class SnapshotCache;

/** Engine-wide policy knobs. */
struct EngineConfig
{
    std::size_t workers = 1;         //!< worker threads (--jobs N)
    int max_attempts = 3;            //!< attempts for transient failures
    std::uint64_t backoff_base_ms = 10;  //!< doubles per retry ...
    std::uint64_t backoff_cap_ms = 500;  //!< ... up to this cap
    /**
     * Decorrelate retry backoff: sleep a seeded-uniform duration in
     * [delay/2, delay] instead of exactly the exponential delay, so N
     * shard processes retrying the same transiently-failing trace
     * spread their filesystem hits instead of thundering in lockstep.
     * The draw is a pure function of (jitter_salt, job id, attempt) —
     * timing only, never results — and jitter_salt should differ per
     * shard (the shard layer salts it with the shard identity).
     */
    bool backoff_jitter = true;
    std::uint64_t jitter_salt = 0;
    bool fail_fast = false;          //!< first failure skips the rest
    //! wall-clock watchdog deadline per attempt; 0 disables it (the
    //! per-job step budget in JobSpec::watchdog_steps still applies)
    std::uint64_t watchdog_wall_ms = 0;
    std::string journal_path;        //!< "" = don't journal
    std::string resume_path;         //!< journal to resume from ("" = fresh)
    FaultPlan faults;                //!< injected-fault plan (tests/CI)
    /**
     * Telemetry session (non-owning, may be null): the engine emits
     * schedule/run/retry/journal trace spans per worker thread onto
     * its tracer and threads the session into every JobContext so job
     * bodies can arm per-run epoch sampling.
     */
    TelemetrySession *telemetry = nullptr;
    /**
     * Warmup-snapshot cache (non-owning, may be null): threaded into
     * every JobContext so job bodies can resolve their warmup phase
     * through snapshot reuse instead of re-simulating it.
     */
    SnapshotCache *snapshot = nullptr;
};

/**
 * Cooperative watchdog hook: cancels a run by throwing
 * JobError(kTimeout) once it exceeds its machine-step budget, or —
 * checked at a coarse heartbeat cadence so the hot path stays a
 * single compare — its wall-clock deadline.
 */
class Watchdog final : public RunTickHook
{
  public:
    /**
     * @param step_budget cancel after this many machine steps (0 = no
     *        step budget)
     * @param wall_ms     cancel once this much wall time has elapsed
     *        since construction (0 = no deadline)
     */
    Watchdog(std::uint64_t step_budget, std::uint64_t wall_ms);

    void on_tick(std::uint64_t steps) override;

  private:
    //! wall-clock checks happen every this many ticks
    static constexpr std::uint64_t kHeartbeatSteps = 2048;

    std::uint64_t step_budget_;
    std::uint64_t wall_ms_;
    std::chrono::steady_clock::time_point deadline_;
};

/** Per-attempt context the engine hands to a job body. */
struct JobContext
{
    /**
     * Composed watchdog + fault-injection hook; pass it into
     * run_single_workload / Machine::run, or invoke on_tick manually
     * from non-machine job bodies. Never null inside a job body.
     */
    RunTickHook *hook = nullptr;
    int attempt = 1;  //!< 1-based attempt number
    //! telemetry session (null when the sweep runs untelemetried)
    TelemetrySession *telemetry = nullptr;
    //! trace process id reserved for this job's sim-phase spans and
    //! per-core counter tracks (kJobPidBase + job id)
    std::uint32_t trace_pid = 0;
    //! warmup-snapshot cache (null when reuse is off)
    SnapshotCache *snapshot = nullptr;
};

//! trace pid layout: 1 = the engine itself, jobs from here up
inline constexpr std::uint32_t kEnginePid = 1;
inline constexpr std::uint32_t kJobPidBase = 2;

/** A job body: turns one JobSpec into a JobOutput, or throws. */
using JobFn = std::function<JobOutput(const JobSpec &, JobContext &)>;

/** Human-readable report label for @p spec ("trace scheme=... ..."). */
std::string job_label(const JobSpec &spec);

/** What the engine hands back after draining the matrix. */
struct EngineReport
{
    std::vector<JobResult> results;  //!< ascending job id
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;
    std::size_t resumed = 0;  //!< completed/failed satisfied by --resume

    bool all_completed() const { return failed == 0 && skipped == 0; }

    /**
     * Deterministic human-readable report: one summary line plus one
     * line per failed/skipped job in ascending id order.
     */
    std::string summary() const;
};

/**
 * Backoff before retry @p attempt (1-based) of job @p id: capped
 * exponential (base * 2^(attempt-1), clamped to the cap), then — when
 * cfg.backoff_jitter — decorrelated into [delay/2, delay] by a draw
 * seeded with (cfg.jitter_salt, id, attempt). Exposed for tests and
 * for the shard layer's own retry loops.
 */
std::uint64_t backoff_delay_ms(const EngineConfig &cfg, std::size_t id,
                               int attempt);

/** The engine. Construct once per sweep; run() drains the whole matrix. */
class JobEngine
{
  public:
    explicit JobEngine(EngineConfig cfg);

    /**
     * Execute @p jobs (dense ids: jobs[i].id must equal i) through
     * @p fn. Blocks until every job completed, failed permanently, or
     * was skipped; never throws for job-level failures.
     */
    EngineReport run(const std::vector<JobSpec> &jobs, const JobFn &fn);

    /**
     * Execute one spec through the full per-attempt machinery
     * (isolation, classification, watchdog, fault injection, retry
     * with jittered backoff) without touching any journal. @p extra,
     * when non-null, is prepended to the per-attempt tick-hook chain —
     * the shard layer threads its lease heartbeat through here so a
     * lease refresh rides the same cadence as the watchdog.
     */
    JobResult execute_one(const JobSpec &spec, const JobFn &fn,
                          const FaultInjector &injector,
                          std::uint32_t worker,
                          RunTickHook *extra = nullptr) const;

    const EngineConfig &config() const { return cfg_; }

  private:
    EngineConfig cfg_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_ENGINE_H
