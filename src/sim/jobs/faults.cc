#include "sim/jobs/faults.h"

#include <csignal>
#include <cstdio>
#include <vector>

#include "common/hashing.h"
#include "common/rng.h"

namespace moka {

const char *
to_string(ShardFaultPoint point)
{
    switch (point) {
      case ShardFaultPoint::kClaim: return "claim";
      case ShardFaultPoint::kRun: return "run";
      case ShardFaultPoint::kCommit: break;
    }
    return "commit";
}

bool
ProcessFaultInjector::should_kill(ShardFaultPoint point, std::size_t job)
{
    if (!plan_.enabled || plan_.kill_rate <= 0.0) {
        return false;
    }
    const std::uint64_t n =
        crossings_.fetch_add(1, std::memory_order_relaxed);
    Rng rng(hash_combine(
        hash_combine(hash_combine(plan_.seed, n),
                     static_cast<std::uint64_t>(point)),
        static_cast<std::uint64_t>(job)));
    return rng.chance(plan_.kill_rate);
}

void
ProcessFaultInjector::maybe_kill(ShardFaultPoint point, std::size_t job)
{
    if (should_kill(point, job)) {
        // The honest crash: SIGKILL cannot be caught, so no journal
        // flush, no lease release — exactly what a dead peer leaves.
        std::raise(SIGKILL);
    }
}

bool
ProcessFaultInjector::should_fail_write(std::uint64_t nth) const
{
    if (!plan_.enabled || plan_.write_fail_rate <= 0.0) {
        return false;
    }
    Rng rng(hash_combine(hash_combine(plan_.seed, nth),
                         0x57726974ull /* "Writ" */));
    return rng.chance(plan_.write_fail_rate);
}

FaultInjector::Decision
FaultInjector::decide(std::size_t id, int attempt) const
{
    Decision d;
    if (!plan_.enabled) {
        return d;
    }
    // One private stream per (seed, job, attempt): thread- and
    // schedule-independent, and each retry re-rolls independently.
    Rng rng(hash_combine(hash_combine(plan_.seed, id),
                         static_cast<std::uint64_t>(attempt)));
    const double roll = rng.uniform();
    // One tick = one retired instruction, and test sweeps run only a
    // few thousand of them, so fire within the first 2K ticks or the
    // fault would land beyond the end of short runs and never trigger.
    if (roll < plan_.throw_rate) {
        d.kind = Decision::Kind::kThrow;
        d.at_tick = 1 + rng.below(1 << 11);
        d.transient = rng.chance(plan_.transient_rate);
    } else if (roll < plan_.throw_rate + plan_.stall_rate) {
        d.kind = Decision::Kind::kStall;
        d.at_tick = 1 + rng.below(1 << 11);
        d.transient = true;  // stalls surface as watchdog timeouts
    }
    return d;
}

bool
corrupt_trace_file(const std::string &path, TraceFault fault,
                   std::uint64_t seed)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
        return false;
    }
    std::vector<unsigned char> bytes;
    unsigned char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        bytes.insert(bytes.end(), buf, buf + n);
    }
    // LINT_IO_OK: read-only stream; close failure cannot lose data.
    std::fclose(in);

    constexpr std::size_t kHeaderBytes = 16;  // magic + u64 count
    constexpr std::size_t kRecordBytes = 32;
    Rng rng(seed);
    switch (fault) {
      case TraceFault::kBitFlipMagic:
        if (bytes.size() < 8) {
            return false;
        }
        bytes[rng.below(8)] ^=
            static_cast<unsigned char>(1u << rng.below(8));
        break;
      case TraceFault::kTruncateHeader:
        if (bytes.size() < kHeaderBytes) {
            return false;
        }
        bytes.resize(rng.range(1, kHeaderBytes - 1));
        break;
      case TraceFault::kTruncateRecords:
        if (bytes.size() < kHeaderBytes + kRecordBytes) {
            return false;
        }
        // Cut the last record short: between 1 and 31 bytes survive.
        bytes.resize(bytes.size() - kRecordBytes +
                     rng.range(1, kRecordBytes - 1));
        break;
      case TraceFault::kBitFlipBody:
        if (bytes.size() <= kHeaderBytes) {
            return false;
        }
        bytes[kHeaderBytes +
              rng.below(bytes.size() - kHeaderBytes)] ^=
            static_cast<unsigned char>(1u << rng.below(8));
        break;
    }

    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
        return false;
    }
    bool ok =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
    // A failed close loses buffered damage bytes: report it.
    ok = std::fclose(out) == 0 && ok;
    return ok;
}

}  // namespace moka
