/**
 * @file
 * Seeded fault injection for the job engine. A FaultPlan drives two
 * kinds of damage, both fully deterministic in (seed, job, attempt):
 *
 *  - machine faults: throw a classified error at the Nth machine tick
 *    or stall the worker mid-run until the watchdog cancels it —
 *    delivered through the engine's RunTickHook chain;
 *  - trace faults: byte-level damage to trace files (bit-flipped
 *    magic, truncated header/records, flipped body bytes) exercising
 *    the classified trace_io error paths;
 *  - process faults (ProcessFaultPlan): whole-process damage for the
 *    sharded execution layer (sim/jobs/shard.h) — seeded self-SIGKILL
 *    at the claim/run/commit boundaries of a shard's job loop, and
 *    journal write failures (simulated ENOSPC/short write) delivered
 *    through the injectable write seam in journal.cc.
 *
 * Every recovery path of the engine (isolation, retry, watchdog,
 * partial-results reporting, resume) and of the shard layer (lease
 * expiry, steal, merge) is exercised in tests and CI by running real
 * sweeps under a FaultPlan / ProcessFaultPlan.
 */
#ifndef MOKASIM_SIM_JOBS_FAULTS_H
#define MOKASIM_SIM_JOBS_FAULTS_H

#include <atomic>
#include <cstdint>
#include <string>

namespace moka {

/** Fault-injection configuration (all rates are per job attempt). */
struct FaultPlan
{
    bool enabled = false;
    std::uint64_t seed = 1;
    double throw_rate = 0.0;      //!< P(classified throw at a random tick)
    double stall_rate = 0.0;      //!< P(worker stalls until the watchdog)
    double transient_rate = 0.5;  //!< P(an injected throw is transient)
    std::uint64_t stall_ms = 50;  //!< how long a stalled worker sleeps
};

/**
 * Deterministic per-(job, attempt) fault oracle. The decision depends
 * only on the plan seed, the job id and the attempt number — never on
 * the worker thread or wall clock — so a faulted sweep produces the
 * same statuses under any --jobs N, and a transient fault usually
 * clears on retry (the attempt re-rolls the dice).
 */
class FaultInjector
{
  public:
    struct Decision
    {
        enum class Kind : std::uint8_t { kNone, kThrow, kStall };
        Kind kind = Kind::kNone;
        std::uint64_t at_tick = 0;  //!< machine step the fault fires at
        bool transient = false;     //!< injected throws: retryable?
    };

    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    /** The fault (or not) for attempt @p attempt (1-based) of job @p id. */
    Decision decide(std::size_t id, int attempt) const;

    const FaultPlan &plan() const { return plan_; }

  private:
    FaultPlan plan_;
};

/**
 * Where in a shard's job loop a process fault can fire: right after a
 * lease is acquired, right before the job body runs, or right before
 * the finished result is committed (journal append + done marker).
 */
enum class ShardFaultPoint : std::uint8_t { kClaim, kRun, kCommit };

/** Stable trace/report name of @p point ("claim", "run", "commit"). */
const char *to_string(ShardFaultPoint point);

/** Process-level fault configuration for sharded sweeps. */
struct ProcessFaultPlan
{
    bool enabled = false;
    std::uint64_t seed = 1;
    //! P(self-SIGKILL) per boundary crossing — evaluated at every
    //! claim/run/commit boundary the shard passes, so any nonzero
    //! rate kills the process eventually (chaos drills rely on this)
    double kill_rate = 0.0;
    //! P(journal write fails as ENOSPC/short write) per write
    double write_fail_rate = 0.0;
};

/**
 * Deterministic process-fault oracle. Each boundary crossing draws
 * from a stream keyed on (seed, crossing index, point, job), so the
 * decision sequence replays exactly for a given interleaving, and
 * unit tests can pin individual decisions without racing.
 *
 * maybe_kill delivers SIGKILL to the calling process — the honest
 * crash: no destructors, no atexit, leases left behind mid-TTL —
 * which is precisely what the lease-recovery machinery must survive.
 */
class ProcessFaultInjector
{
  public:
    explicit ProcessFaultInjector(const ProcessFaultPlan &plan)
        : plan_(plan)
    {
    }

    /** Would crossing (@p point, @p job) kill? Advances the stream. */
    bool should_kill(ShardFaultPoint point, std::size_t job);

    /** raise(SIGKILL) when should_kill says so; otherwise a no-op. */
    void maybe_kill(ShardFaultPoint point, std::size_t job);

    /** Does the @p nth journal write fail (ENOSPC)? */
    bool should_fail_write(std::uint64_t nth) const;

    const ProcessFaultPlan &plan() const { return plan_; }

  private:
    ProcessFaultPlan plan_;
    std::atomic<std::uint64_t> crossings_{0};
};

/** Byte-level trace damage modes (see corrupt_trace_file). */
enum class TraceFault : std::uint8_t {
    kBitFlipMagic,     //!< flip one bit inside the 8-byte magic
    kTruncateHeader,   //!< cut the file inside the 16-byte header
    kTruncateRecords,  //!< cut the last record short at EOF
    kBitFlipBody,      //!< flip one bit in a seed-chosen record byte
};

/**
 * Apply @p fault to the trace file at @p path in place (seeded, so a
 * given (fault, seed) always damages the same byte).
 * @return false when the file cannot be read/rewritten or is too
 *         short to damage in the requested mode.
 */
bool corrupt_trace_file(const std::string &path, TraceFault fault,
                        std::uint64_t seed);

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_FAULTS_H
