#include "sim/jobs/job.h"

#include <cstring>

namespace moka {

const char *
to_string(JobErrorCode code)
{
    switch (code) {
      case JobErrorCode::kTraceCorrupt: return "trace_corrupt";
      case JobErrorCode::kConfigInvalid: return "config_invalid";
      case JobErrorCode::kAuditFailure: return "audit_failure";
      case JobErrorCode::kTimeout: return "timeout";
      case JobErrorCode::kOom: return "oom";
      case JobErrorCode::kLeaseLost: return "lease_lost";
      case JobErrorCode::kSnapshotInvalid: return "snapshot_invalid";
      case JobErrorCode::kUnknown: break;
    }
    return "unknown";
}

JobErrorCode
job_error_code_from(const std::string &name)
{
    for (const JobErrorCode code :
         {JobErrorCode::kTraceCorrupt, JobErrorCode::kConfigInvalid,
          JobErrorCode::kAuditFailure, JobErrorCode::kTimeout,
          JobErrorCode::kOom, JobErrorCode::kLeaseLost,
          JobErrorCode::kSnapshotInvalid}) {
        if (name == to_string(code)) {
            return code;
        }
    }
    return JobErrorCode::kUnknown;
}

bool
is_transient(JobErrorCode code)
{
    // Timeouts are stragglers/stalls and OOM is memory pressure from
    // neighbouring jobs: both may succeed on a quieter retry. Corrupt
    // input, bad configuration and audit findings are deterministic.
    // A lost lease is permanent *for this shard*: the peer that stole
    // the job owns it now, so retrying locally would double-execute.
    // A rejected snapshot is handled inline (cold-warmup fallback), so
    // a job that still fails with it would fail again on retry.
    return code == JobErrorCode::kTimeout || code == JobErrorCode::kOom;
}

const char *
to_string(JobStatus status)
{
    switch (status) {
      case JobStatus::kCompleted: return "completed";
      case JobStatus::kFailed: return "failed";
      case JobStatus::kSkipped: break;
    }
    return "skipped";
}

}  // namespace moka
