/**
 * @file
 * Job model for the fault-tolerant experiment engine: one job is one
 * cell of the (workload, scheme, prefetcher) matrix, executed in
 * isolation by the engine (src/sim/jobs/engine.h). Failures are
 * classified into a stable taxonomy (JobErrorCode) that the journal,
 * the failure report, and the retry policy all key on.
 */
#ifndef MOKASIM_SIM_JOBS_JOB_H
#define MOKASIM_SIM_JOBS_JOB_H

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {

/**
 * Why a job failed. The taxonomy is stable: codes are journaled by
 * name and drive the retry policy, so renaming one is a format break.
 */
enum class JobErrorCode : std::uint8_t {
    kTraceCorrupt,   //!< workload/trace failed to load or parse
    kConfigInvalid,  //!< scheme/prefetcher/machine config rejected
    kAuditFailure,   //!< invariant auditor flagged the finished run
    kTimeout,        //!< watchdog cancelled a hung or stalled run
    kOom,            //!< allocation failure while building/running
    kLeaseLost,      //!< sharded run lost its job lease to a peer
    kSnapshotInvalid,  //!< warmup snapshot rejected (corrupt/mismatched)
    kUnknown,        //!< unclassified exception escaping the job body
};

/** Stable journal/report name of @p code (e.g. "trace_corrupt"). */
const char *to_string(JobErrorCode code);

/** Inverse of to_string; kUnknown for unrecognized names. */
JobErrorCode job_error_code_from(const std::string &name);

/**
 * True when @p code marks a transient failure worth retrying with
 * backoff (stragglers, stalls, memory pressure); permanent failures
 * (corrupt input, bad config, audit findings) fail on first attempt.
 */
bool is_transient(JobErrorCode code);

/** Classified job failure; thrown by job bodies, caught by the engine. */
class JobError : public std::runtime_error
{
  public:
    JobError(JobErrorCode code, const std::string &message)
        : std::runtime_error(message), code_(code)
    {
    }

    JobErrorCode code() const { return code_; }
    bool transient() const { return is_transient(code_); }

  private:
    JobErrorCode code_;
};

/** Terminal state of one job after the engine is done with it. */
enum class JobStatus : std::uint8_t {
    kCompleted,  //!< produced a result (possibly after retries)
    kFailed,     //!< exhausted retries or failed permanently
    kSkipped,    //!< never ran (--fail-fast after an earlier failure)
};

/** Stable journal name of @p status. */
const char *to_string(JobStatus status);

/**
 * One cell of the experiment matrix. `id` is the dense job index and
 * the only ordering the engine honours: results, CSV rows and the
 * failure report are always emitted in ascending id so an N-worker
 * run is byte-identical to a serial one.
 */
struct JobSpec
{
    std::size_t id = 0;
    WorkloadSpec workload;       //!< roster entry (ignored with trace_path)
    std::string trace_path;      //!< non-empty: replay this trace file
    std::string scheme;          //!< scheme name, parsed by the job body
    std::string prefetcher;      //!< prefetcher name, parsed by the body
    RunConfig run;               //!< instruction budgets
    double large_page_fraction = 0.0;
    //! cooperative watchdog: cancel after this many machine steps
    //! (0 disables the step budget for this job)
    std::uint64_t watchdog_steps = 0;
    /**
     * Relative cost estimate (any monotone unit, e.g. total machine
     * steps). The engine dispatches pending jobs in descending cost so
     * a skewed sweep doesn't serialize on a long job claimed last;
     * result order stays ascending id regardless. Jobs with equal
     * cost (including the default 0) run in id order.
     */
    double estimated_cost = 0.0;
};

/**
 * What a completed job hands back: a canonical labelled result row
 * plus harness-specific scalars (e.g. fig19's weighted IPCs) that
 * ride through the journal untouched.
 */
struct JobOutput
{
    ResultRow row;
    std::vector<double> aux;
};

/** Engine-side record of one job's fate. */
struct JobResult
{
    std::size_t id = 0;
    std::string label;           //!< "workload scheme prefetcher" (reports)
    JobStatus status = JobStatus::kSkipped;
    int attempts = 0;
    JobErrorCode error = JobErrorCode::kUnknown;  //!< valid when failed
    std::string error_message;
    /**
     * Final CSV row of a completed job. Journaled verbatim and reused
     * on resume, which is what makes a resumed sweep's CSV
     * byte-identical to an uninterrupted one. Empty for failed jobs.
     */
    std::string csv;
    JobOutput output;            //!< row valid only for fresh runs;
                                 //!< aux survives resume
    bool from_journal = false;   //!< satisfied by --resume, not re-run
};

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_JOB_H
