#include "sim/jobs/journal.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/hashing.h"

namespace moka {
namespace {

/**
 * Process-global write-fault seam. Accessed under its own mutex: the
 * seam is cold (one check per journal write) and tests may install or
 * clear it around multi-threaded sweeps.
 */
SimMutex g_gate_mu;
//! null = writes always succeed
JournalWriteGate g_write_gate SIM_GUARDED_BY(g_gate_mu);

bool
gate_allows(const std::string &path, const std::string &payload)
{
    SimMutexLock lock(&g_gate_mu);
    return !g_write_gate || g_write_gate(path, payload);
}

/** JSON string escaping for the small subset we emit. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

/**
 * Find `"key":` at object top level and return the start of its
 * value, or npos. The journal only ever contains flat objects we
 * wrote ourselves, so a substring scan is sufficient and keeps the
 * parser dependency-free.
 */
std::size_t
value_start(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    return at == std::string::npos ? std::string::npos
                                   : at + needle.size();
}

bool
parse_string(const std::string &line, const char *key, std::string &out)
{
    std::size_t i = value_start(line, key);
    if (i == std::string::npos || i >= line.size() || line[i] != '"') {
        return false;
    }
    out.clear();
    for (++i; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"') {
            return true;
        }
        if (c == '\\' && i + 1 < line.size()) {
            const char e = line[++i];
            switch (e) {
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              default: out += e; break;  // \" and \\ (and pass-through)
            }
        } else {
            out += c;
        }
    }
    return false;  // unterminated string: torn line
}

bool
parse_u64(const std::string &line, const char *key, std::uint64_t &out)
{
    const std::size_t i = value_start(line, key);
    if (i == std::string::npos) {
        return false;
    }
    char *end = nullptr;
    out = std::strtoull(line.c_str() + i, &end, 10);
    return end != line.c_str() + i;
}

bool
parse_doubles(const std::string &line, const char *key,
              std::vector<double> &out)
{
    std::size_t i = value_start(line, key);
    if (i == std::string::npos || i >= line.size() || line[i] != '[') {
        return false;
    }
    const std::size_t close = line.find(']', i);
    if (close == std::string::npos) {
        return false;
    }
    out.clear();
    std::stringstream ss(line.substr(i + 1, close - i - 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(std::strtod(item.c_str(), nullptr));
        }
    }
    return true;
}

/** The %.17g serialization of @p v (exact double round trip). */
std::string
format_double(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

void
set_journal_write_gate(JournalWriteGate gate)
{
    SimMutexLock lock(&g_gate_mu);
    g_write_gate = std::move(gate);
}

std::uint64_t
record_checksum(const JournalRecord &rec)
{
    // FNV-1a over the *result* content. Attempts are excluded on
    // purpose: a job re-executed after a lease steal may need a
    // different number of attempts yet must produce the same result.
    std::uint64_t h = kFnv1aOffset;
    const auto feed_str = [&h](const std::string &s) {
        h = fnv1a_64(s.data(), s.size(), h);
        h = fnv1a_64("\x1f", 1, h);  // separator: ("ab","c") != ("a","bc")
    };
    feed_str(std::to_string(rec.job_id));
    feed_str(to_string(rec.status));
    if (rec.status == JobStatus::kCompleted) {
        feed_str(rec.csv);
        for (const double v : rec.aux) {
            feed_str(format_double(v));
        }
    } else {
        feed_str(to_string(rec.error));
        feed_str(rec.error_message);
    }
    return h;
}

std::string
to_jsonl(const JournalRecord &rec)
{
    std::ostringstream os;
    os << "{\"job\":" << rec.job_id << ",\"status\":\""
       << to_string(rec.status) << "\",\"attempts\":" << rec.attempts;
    if (rec.status == JobStatus::kCompleted) {
        os << ",\"csv\":\"" << escape(rec.csv) << "\"";
        if (!rec.aux.empty()) {
            os << ",\"aux\":[";
            for (std::size_t i = 0; i < rec.aux.size(); ++i) {
                if (i > 0) {
                    os << ',';
                }
                os << format_double(rec.aux[i]);
            }
            os << ']';
        }
    } else {
        os << ",\"error\":\"" << to_string(rec.error) << "\",\"message\":\""
           << escape(rec.error_message) << "\"";
    }
    os << ",\"sum\":" << record_checksum(rec) << "}";
    return os.str();
}

bool
from_jsonl(const std::string &line, JournalRecord &rec, std::string *error)
{
    const auto fail = [&](const char *what) {
        if (error != nullptr) {
            *error = what;
        }
        return false;
    };
    if (line.empty() || line.front() != '{' || line.back() != '}') {
        return fail("not a JSON object line");
    }
    std::uint64_t job = 0;
    if (!parse_u64(line, "job", job)) {
        return fail("missing job id");
    }
    rec.job_id = static_cast<std::size_t>(job);
    std::string status;
    if (!parse_string(line, "status", status)) {
        return fail("missing status");
    }
    std::uint64_t attempts = 0;
    parse_u64(line, "attempts", attempts);
    rec.attempts = static_cast<int>(attempts);
    if (status == to_string(JobStatus::kCompleted)) {
        rec.status = JobStatus::kCompleted;
        if (!parse_string(line, "csv", rec.csv)) {
            return fail("completed record without csv");
        }
        parse_doubles(line, "aux", rec.aux);
    } else if (status == to_string(JobStatus::kFailed)) {
        rec.status = JobStatus::kFailed;
        std::string code;
        parse_string(line, "error", code);
        rec.error = job_error_code_from(code);
        parse_string(line, "message", rec.error_message);
    } else {
        return fail("unknown status");
    }
    std::uint64_t sum = 0;
    if (parse_u64(line, "sum", sum) && sum != record_checksum(rec)) {
        return fail("checksum mismatch (corrupt record)");
    }
    return true;
}

Journal::Journal(std::string path, std::size_t compact_threshold_bytes)
    : path_(std::move(path)), compact_threshold_(compact_threshold_bytes)
{
    std::size_t skipped = 0;
    recovered_ = load(path_, &skipped);
    if (skipped > 0) {
        std::fprintf(stderr,  // LINT_LOG_OK: torn-write recovery warning
                     "journal: dropped %zu malformed line(s) from %s "
                     "(torn write?)\n",
                     skipped, path_.c_str());
    }
    // A torn tail may also be a well-formed line missing its newline;
    // appending to it directly would glue two records together.
    bool tail_newline = true;
    {
        std::ifstream is(path_, std::ios::binary | std::ios::ate);
        if (is && is.tellg() > 0) {
            is.seekg(-1, std::ios::end);
            tail_newline = is.get() == '\n';
        }
    }
    lines_.reserve(recovered_.size());
    for (const JournalRecord &rec : recovered_) {
        record_locked(to_jsonl(rec), rec.job_id);
    }
    if (skipped > 0 || !tail_newline) {
        rewrite_locked();  // start from a clean file
    }
    open_append_locked();
}

void
Journal::append(const JournalRecord &rec)
{
    SimMutexLock lock(&mu_);
    const std::string line = to_jsonl(rec);
    // A previous append failed part-way through: rewrite the file
    // clean from the in-memory mirror first, so the torn tail cannot
    // glue itself onto this record's bytes. If the disk is still
    // failing this throws and the journal stays dirty (and safe).
    if (dirty_tail_) {
        out_.close();
        rewrite_locked();
        open_append_locked();
        dirty_tail_ = false;
    }
    if (!gate_allows(path_, line)) {
        // Injected ENOSPC: emulate the worst case, a short write that
        // leaves half a record on disk with no newline.
        out_ << line.substr(0, line.size() / 2);
        out_.flush();
        dirty_tail_ = true;
        throw JobError(JobErrorCode::kUnknown,
                       "journal: no space left on device (injected), "
                       "short write to " + path_);
    }
    out_ << line << '\n';
    out_.flush();
    if (!out_) {
        out_.clear();
        dirty_tail_ = true;
        throw JobError(JobErrorCode::kUnknown,
                       "journal: short write to " + path_);
    }
    record_locked(line, rec.job_id);
    if (disk_bytes_ - live_bytes_ > compact_threshold_) {
        // Compaction is an optimization: if its replacement file
        // cannot be written the original journal is untouched, so
        // defer (the dead-byte threshold will trip again) instead of
        // failing an append that already persisted its record.
        try {
            compact_locked();
        } catch (const JobError &e) {
            std::fprintf(stderr,  // LINT_LOG_OK: deferred-compaction warning
                         "journal: compaction deferred: %s\n", e.what());
        }
    }
}

std::size_t
Journal::compactions() const
{
    SimMutexLock lock(&mu_);
    return compactions_;
}

std::size_t
Journal::disk_bytes() const
{
    SimMutexLock lock(&mu_);
    return disk_bytes_;
}

std::size_t
Journal::live_bytes() const
{
    SimMutexLock lock(&mu_);
    return live_bytes_;
}

void
Journal::open_append_locked()
{
    out_.open(path_, std::ios::app);
    if (!out_) {
        throw JobError(JobErrorCode::kUnknown,
                       "journal: cannot open " + path_);
    }
}

/** Account @p line in the in-memory mirror and the byte ledgers. */
void
Journal::record_locked(const std::string &line, std::size_t job_id)
{
    const std::size_t bytes = line.size() + 1;  // + newline
    disk_bytes_ += bytes;
    const auto [it, fresh] = live_.try_emplace(job_id, bytes);
    if (fresh) {
        live_bytes_ += bytes;
    } else {
        live_bytes_ += bytes - it->second;  // superseded earlier record
        it->second = bytes;
    }
    lines_.emplace_back(job_id, line);
}

/**
 * Drop superseded records: keep the last occurrence per job, in the
 * order those last occurrences were appended, and rewrite the file.
 */
void
Journal::compact_locked()
{
    std::unordered_map<std::size_t, std::size_t> last_at;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        last_at[lines_[i].first] = i;
    }
    std::vector<std::pair<std::size_t, std::string>> kept;
    kept.reserve(last_at.size());
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (last_at[lines_[i].first] == i) {
            kept.push_back(std::move(lines_[i]));
        }
    }
    lines_ = std::move(kept);
    out_.close();
    try {
        rewrite_locked();
    } catch (const JobError &) {
        // The replacement file could not be written; the original
        // journal on disk is untouched (write-rename) and remains a
        // superset of `lines_`, so recovery still works. Reopen the
        // append stream and let the caller defer the compaction.
        open_append_locked();
        throw;
    }
    open_append_locked();
    ++compactions_;
}

/** Write-rename `lines_` over the journal; resets the byte ledgers. */
void
Journal::rewrite_locked()
{
    const std::string tmp = path_ + ".tmp";
    std::string payload;
    for (const auto &entry : lines_) {
        payload += entry.second;
        payload += '\n';
    }
    if (!gate_allows(tmp, payload)) {
        // Injected ENOSPC during a rewrite: the replacement file never
        // materializes and the journal at `path_` is untouched. (A
        // crash here leaves at worst a stale `.tmp`, which the next
        // successful rewrite simply overwrites.)
        throw JobError(JobErrorCode::kUnknown,
                       "journal: no space left on device (injected), "
                       "cannot write " + tmp);
    }
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            throw JobError(JobErrorCode::kUnknown,
                           "journal: cannot write " + tmp);
        }
        os << payload;
        os.flush();
        if (!os) {
            throw JobError(JobErrorCode::kUnknown,
                           "journal: short write to " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        throw JobError(JobErrorCode::kUnknown,
                       "journal: rename " + tmp + " -> " + path_ +
                           " failed: " +
                           std::error_code(errno, std::generic_category())
                               .message());
    }
    disk_bytes_ = 0;
    for (const auto &entry : lines_) {
        disk_bytes_ += entry.second.size() + 1;
    }
    // The rewrite may still hold duplicates (construction-time clean
    // of a torn file); live bytes are the newest line per job.
    live_bytes_ = 0;
    // LINT_ORDER_OK: commutative sum; no output order depends on it.
    for (const auto &entry : live_) {
        live_bytes_ += entry.second;
    }
}

std::vector<JournalRecord>
Journal::load(const std::string &path, std::size_t *skipped)
{
    std::vector<JournalRecord> out;
    if (skipped != nullptr) {
        *skipped = 0;
    }
    std::ifstream is(path);
    if (!is) {
        return out;
    }
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) {
            continue;
        }
        JournalRecord rec;
        if (from_jsonl(line, rec, nullptr)) {
            out.push_back(std::move(rec));
        } else if (skipped != nullptr) {
            ++*skipped;
        }
    }
    return out;
}

}  // namespace moka
