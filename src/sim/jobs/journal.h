/**
 * @file
 * Crash-safe sweep journal: one JSONL record per finished job,
 * persisted through atomic write-rename (`<path>.tmp` -> rename) so a
 * reader never observes a torn file and an interrupted sweep resumes
 * exactly where it stopped (`--resume <journal>`).
 *
 * Record shape (one line each, completion order):
 *
 *   {"job":12,"status":"completed","attempts":1,"csv":"...","aux":[1.5]}
 *   {"job":13,"status":"failed","attempts":3,"error":"timeout",
 *    "message":"watchdog: ..."}
 *
 * The `csv` field is the job's final CSV row verbatim, which is what
 * makes a resumed sweep byte-identical to an uninterrupted one.
 */
#ifndef MOKASIM_SIM_JOBS_JOURNAL_H
#define MOKASIM_SIM_JOBS_JOURNAL_H

#include <mutex>
#include <string>
#include <vector>

#include "sim/jobs/job.h"

namespace moka {

/** One journal line, parsed or about to be written. */
struct JournalRecord
{
    std::size_t job_id = 0;
    JobStatus status = JobStatus::kFailed;
    int attempts = 0;
    JobErrorCode error = JobErrorCode::kUnknown;
    std::string error_message;
    std::string csv;          //!< to_csv(row) for completed jobs
    std::vector<double> aux;  //!< JobOutput::aux passthrough
};

/** Serialize @p rec as one JSONL line (no trailing newline). */
std::string to_jsonl(const JournalRecord &rec);

/**
 * Parse one JSONL line previously produced by to_jsonl.
 * @return false (and fills @p error) on malformed input.
 */
bool from_jsonl(const std::string &line, JournalRecord &rec,
                std::string *error);

/**
 * Append-only journal with atomic persistence. Thread-safe: worker
 * threads append concurrently; every append rewrites the whole file
 * to `<path>.tmp` and renames it over `<path>`, so the on-disk
 * journal is always a complete prefix of the sweep.
 */
class Journal
{
  public:
    /**
     * @param path journal file; an existing file is loaded first so a
     *        resumed sweep keeps its history (malformed trailing
     *        lines from a torn write are dropped with a warning).
     */
    explicit Journal(std::string path);

    /** Record @p rec and persist. Throws JobError(kUnknown) on I/O error. */
    void append(const JournalRecord &rec);

    /** Records loaded from an existing file at construction. */
    const std::vector<JournalRecord> &recovered() const
    {
        return recovered_;
    }

    /** True when a record for @p job_id was recovered at construction. */
    bool contains(std::size_t job_id) const
    {
        for (const JournalRecord &rec : recovered_) {
            if (rec.job_id == job_id) {
                return true;
            }
        }
        return false;
    }

    /**
     * Load every well-formed record of @p path (no Journal instance
     * needed). Missing file yields an empty vector; malformed lines
     * are skipped and counted in @p skipped when non-null.
     */
    static std::vector<JournalRecord> load(const std::string &path,
                                           std::size_t *skipped = nullptr);

  private:
    void persist_locked();

    std::string path_;
    std::vector<std::string> lines_;  //!< serialized records, in order
    std::vector<JournalRecord> recovered_;
    std::mutex mu_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_JOURNAL_H
