/**
 * @file
 * Crash-safe sweep journal: one JSONL record per finished job,
 * written through a true append stream — each append costs O(record),
 * not O(journal) — so an interrupted sweep resumes exactly where it
 * stopped (`--resume <journal>`). A crash can tear at most the last
 * line; recovery drops malformed trailing lines (with a warning) and
 * atomically rewrites the file clean before appending resumes.
 *
 * When later records supersede earlier ones for the same job (a
 * resumed sweep re-running a previously failed job), the dead bytes
 * accumulate; once they exceed the compaction threshold the journal
 * rewrites itself atomically (`<path>.tmp` -> rename), keeping only
 * the newest record per job, and reopens the append stream.
 *
 * Record shape (one line each, completion order):
 *
 *   {"job":12,"status":"completed","attempts":1,"csv":"...","aux":[1.5]}
 *   {"job":13,"status":"failed","attempts":3,"error":"timeout",
 *    "message":"watchdog: ..."}
 *
 * The `csv` field is the job's final CSV row verbatim, which is what
 * makes a resumed sweep byte-identical to an uninterrupted one.
 */
#ifndef MOKASIM_SIM_JOBS_JOURNAL_H
#define MOKASIM_SIM_JOBS_JOURNAL_H

#include <fstream>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/jobs/job.h"

namespace moka {

/** One journal line, parsed or about to be written. */
struct JournalRecord
{
    std::size_t job_id = 0;
    JobStatus status = JobStatus::kFailed;
    int attempts = 0;
    JobErrorCode error = JobErrorCode::kUnknown;
    std::string error_message;
    std::string csv;          //!< to_csv(row) for completed jobs
    std::vector<double> aux;  //!< JobOutput::aux passthrough
};

/**
 * Content checksum of @p rec (FNV-1a over job id, status, result CSV,
 * aux and the error fields — everything that must agree between a
 * serial run and any shard that re-executed the job, deliberately
 * excluding attempt counts). to_jsonl embeds it as "sum"; the shard
 * merge step recomputes it to detect silently corrupted journal lines
 * and to prove that duplicate records (a job stolen after a false
 * lease expiry) carry identical results.
 */
std::uint64_t record_checksum(const JournalRecord &rec);

/**
 * Injectable write-fault seam for the journal (process-level fault
 * testing, see faults.h): consulted with (path, payload) before each
 * physical write; returning false makes the write fail as a disk-full
 * short write — part of the payload lands on disk, the rest is lost,
 * and the writer throws JobError(kUnknown). Process-global; install
 * before worker threads start and clear (nullptr) after they join.
 */
using JournalWriteGate =
    std::function<bool(const std::string &path, const std::string &payload)>;
void set_journal_write_gate(JournalWriteGate gate);

/** Serialize @p rec as one JSONL line (no trailing newline). */
std::string to_jsonl(const JournalRecord &rec);

/**
 * Parse one JSONL line previously produced by to_jsonl. A line whose
 * embedded "sum" disagrees with record_checksum of the parsed fields
 * is rejected as corrupt (lines without a "sum" — journals written
 * before checksums existed — parse without verification).
 * @return false (and fills @p error) on malformed input.
 */
bool from_jsonl(const std::string &line, JournalRecord &rec,
                std::string *error);

/**
 * Append-only journal with O(1) appends and size-triggered
 * compaction; see file comment. Thread-safe: worker threads append
 * concurrently under one mutex.
 */
class Journal
{
  public:
    /** Default compaction threshold: dead bytes tolerated on disk. */
    static constexpr std::size_t kDefaultCompactBytes = 64 * 1024;

    /**
     * @param path journal file; an existing file is loaded first so a
     *        resumed sweep keeps its history (malformed lines from a
     *        torn write are dropped with a warning and the file is
     *        rewritten clean via write-rename before appends resume).
     * @param compact_threshold_bytes compact once superseded records
     *        occupy more than this many bytes on disk
     */
    explicit Journal(std::string path,
                     std::size_t compact_threshold_bytes =
                         kDefaultCompactBytes);

    /**
     * Record @p rec and persist: one stream append + flush, O(record)
     * regardless of journal length. Throws JobError(kUnknown) on I/O
     * error (including an injected ENOSPC/short write, see
     * set_journal_write_gate); the record is NOT accounted in-memory
     * then, and the next append first rewrites the file clean so the
     * torn tail cannot glue onto a later record — a failed append is
     * safe to retry. May trigger a compaction when @p rec supersedes
     * enough earlier bytes; a compaction that cannot write its
     * replacement file is deferred, never fatal (the original journal
     * is still intact and the threshold trips again later).
     */
    void append(const JournalRecord &rec) SIM_EXCLUDES(mu_);

    /** Records loaded from an existing file at construction. */
    const std::vector<JournalRecord> &recovered() const
    {
        return recovered_;
    }

    /** True when a record for @p job_id was recovered at construction. */
    bool contains(std::size_t job_id) const
    {
        for (const JournalRecord &rec : recovered_) {
            if (rec.job_id == job_id) {
                return true;
            }
        }
        return false;
    }

    /**
     * Load every well-formed record of @p path (no Journal instance
     * needed). Missing file yields an empty vector; malformed lines
     * are skipped and counted in @p skipped when non-null.
     */
    static std::vector<JournalRecord> load(const std::string &path,
                                           std::size_t *skipped = nullptr);

    /** Compactions performed over this instance's lifetime. */
    std::size_t compactions() const SIM_EXCLUDES(mu_);

    /** Bytes currently on disk (live + superseded). */
    std::size_t disk_bytes() const SIM_EXCLUDES(mu_);

    /** Bytes of the newest record per job (what a compaction keeps). */
    std::size_t live_bytes() const SIM_EXCLUDES(mu_);

  private:
    void open_append_locked() SIM_REQUIRES(mu_);
    void record_locked(const std::string &line, std::size_t job_id)
        SIM_REQUIRES(mu_);
    void compact_locked() SIM_REQUIRES(mu_);
    void rewrite_locked() SIM_REQUIRES(mu_);

    std::string path_;               //!< const after construction
    std::size_t compact_threshold_;  //!< const after construction
    //! append stream, kept open across appends
    std::ofstream out_ SIM_GUARDED_BY(mu_);
    //! (job id, serialized record), append order; compaction keeps
    //! the last occurrence per job.
    std::vector<std::pair<std::size_t, std::string>> lines_
        SIM_GUARDED_BY(mu_);
    //! job id -> byte size of its newest line (incl. newline)
    std::unordered_map<std::size_t, std::size_t> live_
        SIM_GUARDED_BY(mu_);
    std::size_t disk_bytes_ SIM_GUARDED_BY(mu_) = 0;
    std::size_t live_bytes_ SIM_GUARDED_BY(mu_) = 0;
    std::size_t compactions_ SIM_GUARDED_BY(mu_) = 0;
    //! a failed append left a torn tail on disk; repaired (write-
    //! rename from the in-memory mirror) before the next append
    bool dirty_tail_ SIM_GUARDED_BY(mu_) = false;
    //! filled by the constructor, read-only afterwards (recovered()
    //! and contains() are const views of construction-time state)
    std::vector<JournalRecord> recovered_;
    mutable SimMutex mu_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_JOURNAL_H
