#include "sim/jobs/lease.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/hashing.h"

namespace moka {
namespace {

namespace fs = std::filesystem;

/**
 * Find `"key":` and return the start of its value, or npos. Lease and
 * done files are flat one-line objects we wrote ourselves (shard
 * names are sanitized to [A-Za-z0-9_-] by the shard layer), so the
 * same substring scan the journal uses is sufficient here.
 */
std::size_t
value_start(const std::string &text, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = text.find(needle);
    return at == std::string::npos ? std::string::npos
                                   : at + needle.size();
}

bool
parse_u64(const std::string &text, const char *key, std::uint64_t &out)
{
    const std::size_t i = value_start(text, key);
    if (i == std::string::npos) {
        return false;
    }
    char *end = nullptr;
    out = std::strtoull(text.c_str() + i, &end, 10);
    return end != text.c_str() + i;
}

bool
parse_string(const std::string &text, const char *key, std::string &out)
{
    std::size_t i = value_start(text, key);
    if (i == std::string::npos || i >= text.size() || text[i] != '"') {
        return false;
    }
    const std::size_t close = text.find('"', i + 1);
    if (close == std::string::npos) {
        return false;
    }
    out = text.substr(i + 1, close - i - 1);
    return true;
}

/** Whole-file read; empty optional-style: false when unreadable. */
bool
read_file(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return false;
    }
    out.clear();
    char buf[512];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        out.append(buf, n);
    }
    // LINT_IO_OK: read-only stream; close failure cannot lose data.
    std::fclose(f);
    return true;
}

/**
 * Write @p payload to @p path, creating it exclusively when
 * @p exclusive (the atomic claim: exactly one concurrent caller
 * succeeds). Every I/O return is checked; a file we created but could
 * not fill is removed so a half-written lease never lingers.
 */
bool
write_file(const std::string &path, const std::string &payload,
           bool exclusive)
{
    std::FILE *f = std::fopen(path.c_str(), exclusive ? "wbx" : "wb");
    if (f == nullptr) {
        return false;  // EEXIST (claim lost) or a real I/O error
    }
    bool ok =
        std::fwrite(payload.data(), 1, payload.size(), f) ==
        payload.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        // LINT_IO_OK: best-effort cleanup of a half-written file the
        // caller is about to report as not-created.
        std::remove(path.c_str());
    }
    return ok;
}

/**
 * Age of @p path's mtime in milliseconds, or -1 when the file is gone
 * (released or reaped under us). A future mtime (clock skew between
 * hosts on a shared filesystem) clamps to age 0 — skew can delay a
 * steal by its magnitude, never cause a premature one.
 */
std::int64_t
age_ms(const std::string &path)
{
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(path, ec);
    if (ec) {
        return -1;
    }
    // LINT_NONDET_OK: lease expiry is wall-clock by design; it gates
    // only *which process* runs a job, never any result value.
    const auto age = fs::file_time_type::clock::now() - mtime;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(age)
            .count();
    return ms < 0 ? 0 : ms;
}

}  // namespace

const char *
to_string(ClaimOutcome outcome)
{
    switch (outcome) {
      case ClaimOutcome::kAcquired: return "acquired";
      case ClaimOutcome::kStolen: return "stolen";
      case ClaimOutcome::kBusy: return "busy";
      case ClaimOutcome::kDone: break;
    }
    return "done";
}

LeaseDir::LeaseDir(std::string dir, std::string owner,
                   std::uint64_t ttl_ms)
    : dir_(std::move(dir)), owner_(std::move(owner)), ttl_ms_(ttl_ms)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);  // claim/steal surface any error
    // Per-process nonce: distinguishes "my lease" from "a lease a peer
    // re-created under the same job after stealing mine". It only has
    // to differ between processes racing for the same directory, so
    // pid + a wall-clock draw is plenty.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : owner_) {
        h = hash_combine(h, static_cast<unsigned char>(c));
    }
    // LINT_NONDET_OK: process-identity nonce, never a result value.
    const auto wall = std::chrono::steady_clock::now().time_since_epoch();
    nonce_ = hash_combine(
        hash_combine(h, static_cast<std::uint64_t>(::getpid())),
        static_cast<std::uint64_t>(wall.count()));
}

std::string
LeaseDir::lease_path(std::size_t job) const
{
    return dir_ + "/job-" + std::to_string(job) + ".lease";
}

std::string
LeaseDir::done_path(std::size_t job) const
{
    return dir_ + "/job-" + std::to_string(job) + ".done";
}

bool
LeaseDir::owns(const std::string &path) const
{
    std::string text;
    std::uint64_t nonce = 0;
    return read_file(path, text) && parse_u64(text, "nonce", nonce) &&
           nonce == nonce_;
}

ClaimOutcome
LeaseDir::try_claim(std::size_t job, bool allow_steal)
{
    if (is_done(job)) {
        return ClaimOutcome::kDone;
    }
    const std::string path = lease_path(job);
    const std::string body = "{\"owner\":\"" + owner_ +
                             "\",\"nonce\":" + std::to_string(nonce_) +
                             "}\n";
    bool stole = false;
    if (!write_file(path, body, /*exclusive=*/true)) {
        if (!allow_steal) {
            return ClaimOutcome::kBusy;
        }
        const std::int64_t age = age_ms(path);
        if (age < 0) {
            // Released between our create and our stat: one retry.
            if (!write_file(path, body, /*exclusive=*/true)) {
                return ClaimOutcome::kBusy;
            }
        } else if (static_cast<std::uint64_t>(age) <= ttl_ms_) {
            return ClaimOutcome::kBusy;  // live peer heartbeat
        } else {
            // Expired: reap by rename — atomic, so however many
            // thieves race, exactly one sees this succeed. A thief
            // that dies here leaves a stale .reap file; it is inert
            // (nothing globs it) and the lease name is free again.
            const std::string reap = path + ".reap." + owner_;
            if (std::rename(path.c_str(), reap.c_str()) != 0) {
                return ClaimOutcome::kBusy;  // lost the reap race
            }
            // LINT_IO_OK: reap-file cleanup; a leftover file is inert.
            std::remove(reap.c_str());
            if (!write_file(path, body, /*exclusive=*/true)) {
                return ClaimOutcome::kBusy;  // another claimer slipped in
            }
            stole = true;
        }
    }
    // A peer may have published its result between our is_done check
    // and the claim (done marker lands *before* lease release, so the
    // marker is always visible by the time the lease name frees up).
    if (is_done(job)) {
        release(job);
        return ClaimOutcome::kDone;
    }
    return stole ? ClaimOutcome::kStolen : ClaimOutcome::kAcquired;
}

bool
LeaseDir::refresh(std::size_t job)
{
    const std::string path = lease_path(job);
    if (!owns(path)) {
        return false;  // stolen or vanished: the job is lost
    }
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    if (ec) {
        return false;  // reaped between the read and the touch
    }
    // Narrow the touch-vs-steal race: if a thief renamed our lease
    // away and a new claim re-created the file in the window above,
    // the touch refreshed *their* lease. Re-reading the nonce detects
    // that; the residual window is benign (deterministic results +
    // merge checksums make a double execution harmless).
    return owns(path);
}

void
LeaseDir::release(std::size_t job)
{
    const std::string path = lease_path(job);
    if (owns(path)) {
        // LINT_IO_OK: failing to unlink only delays a peer by one TTL.
        std::remove(path.c_str());
    }
}

bool
LeaseDir::mark_done(const DoneMarker &marker)
{
    const std::string done = done_path(marker.job_id);
    const std::string tmp = done + ".tmp." + owner_;
    const std::string body =
        "{\"job\":" + std::to_string(marker.job_id) + ",\"status\":\"" +
        to_string(marker.status) +
        "\",\"sum\":" + std::to_string(marker.sum) + ",\"owner\":\"" +
        owner_ + "\"}\n";
    bool ok = write_file(tmp, body, /*exclusive=*/false);
    if (ok && std::rename(tmp.c_str(), done.c_str()) != 0) {
        // LINT_IO_OK: cleanup of the temp marker we failed to publish.
        std::remove(tmp.c_str());
        ok = false;
    }
    // Release either way: on failure a peer must be able to steal the
    // job and publish its own marker.
    release(marker.job_id);
    return ok;
}

bool
LeaseDir::is_done(std::size_t job) const
{
    std::error_code ec;
    return fs::exists(done_path(job), ec);
}

bool
LeaseDir::read_done(std::size_t job, DoneMarker &out) const
{
    std::string text;
    if (!read_file(done_path(job), text)) {
        return false;
    }
    std::uint64_t id = 0;
    std::string status;
    if (!parse_u64(text, "job", id) ||
        !parse_string(text, "status", status) ||
        !parse_u64(text, "sum", out.sum) ||
        !parse_string(text, "owner", out.owner)) {
        return false;
    }
    out.job_id = static_cast<std::size_t>(id);
    if (status == to_string(JobStatus::kCompleted)) {
        out.status = JobStatus::kCompleted;
    } else if (status == to_string(JobStatus::kFailed)) {
        out.status = JobStatus::kFailed;
    } else {
        return false;
    }
    return out.job_id == job;
}

}  // namespace moka
