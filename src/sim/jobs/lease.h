/**
 * @file
 * Filesystem-coordinated job leases for sharded sweeps. N independent
 * processes share one journal directory; each job in the matrix is
 * guarded by a lease file whose existence means "someone is running
 * this" and whose mtime doubles as a heartbeat:
 *
 *  - claim: exclusive create (`fopen "wbx"`) of `job-<id>.lease` —
 *    the filesystem picks exactly one winner;
 *  - heartbeat: the owner touches the lease mtime while the job runs
 *    (LeaseDir::refresh, driven by the shard layer's tick hook at the
 *    same cadence as the watchdog);
 *  - expiry + steal: a lease whose mtime is older than the TTL
 *    belongs to a dead (or wedged) peer. A thief renames it aside —
 *    rename is atomic, so concurrent thieves get exactly one winner —
 *    and then claims normally;
 *  - done: a terminal result is published as `job-<id>.done` via
 *    write-to-temp + rename, carrying the result's content checksum
 *    (journal.h) so the merge step can prove agreement.
 *
 * The protocol is crash-safe but deliberately not race-free: a wedged
 * owner can revive after its lease was stolen and finish the job a
 * second time. That double execution is benign by design — per-job
 * results are deterministic, so both shards journal byte-identical
 * records and the merge step dedupes them by checksum (and fails
 * loudly if they ever disagree).
 */
#ifndef MOKASIM_SIM_JOBS_LEASE_H
#define MOKASIM_SIM_JOBS_LEASE_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/hot_path.h"
#include "sim/jobs/job.h"

namespace moka {

/** What LeaseDir::try_claim found. */
enum class ClaimOutcome : std::uint8_t {
    kAcquired,  //!< fresh lease created; the job is ours
    kStolen,    //!< expired peer lease reaped, then acquired
    kBusy,      //!< live lease held by a peer (or steal lost the race)
    kDone,      //!< a done marker exists; nothing to run
};

/** Stable report name of @p outcome. */
const char *to_string(ClaimOutcome outcome);

/** Parsed `job-<id>.done` marker (see LeaseDir::mark_done). */
struct DoneMarker
{
    std::size_t job_id = 0;
    JobStatus status = JobStatus::kFailed;
    std::uint64_t sum = 0;  //!< record_checksum of the journaled result
    std::string owner;      //!< shard that committed the result
};

/**
 * One process's view of the shared lease directory. Each instance
 * carries a per-process nonce so a shard can tell "my lease" from "a
 * lease someone re-created under the same name after stealing mine".
 *
 * Thread-compatible the way the shard layer uses it: distinct jobs
 * may be claimed/refreshed from distinct threads concurrently, but a
 * single job's lease is only ever driven by the one thread that
 * claimed it.
 */
class LeaseDir
{
  public:
    /**
     * @param dir    shared directory (created if missing)
     * @param owner  this shard's name, embedded in lease/done files
     * @param ttl_ms lease older than this (mtime age) is stealable
     */
    LeaseDir(std::string dir, std::string owner, std::uint64_t ttl_ms);

    /**
     * Try to become the owner of @p job. Never blocks: a live peer
     * lease yields kBusy immediately (callers poll). With
     * @p allow_steal, an expired lease is reaped first; losing the
     * reap race to another thief also yields kBusy.
     */
    ClaimOutcome try_claim(std::size_t job, bool allow_steal);

    /**
     * Heartbeat: push @p job's lease expiry out by touching its
     * mtime. @return false when the lease is no longer ours (stolen,
     * or the file vanished) — the caller must treat the job as lost
     * and MUST NOT commit its result. SIM_COLD: called from a machine
     * tick hook, but only at the heartbeat cadence (milliseconds of
     * simulated work per call), never per access.
     */
    SIM_COLD bool refresh(std::size_t job);

    /** Drop @p job's lease if it is still ours (crash = just don't). */
    void release(std::size_t job);

    /**
     * Publish @p marker as `job-<id>.done` (write-temp + rename, so a
     * crash mid-publish leaves no half-written marker), then release
     * the lease. @return false when the marker could not be written —
     * the lease is then released anyway so a peer can retry the job.
     */
    bool mark_done(const DoneMarker &marker);

    /** True once any shard published a done marker for @p job. */
    bool is_done(std::size_t job) const;

    /**
     * Parse @p job's done marker into @p out.
     * @return false when absent or malformed.
     */
    bool read_done(std::size_t job, DoneMarker &out) const;

    std::string lease_path(std::size_t job) const;
    std::string done_path(std::size_t job) const;

    const std::string &dir() const { return dir_; }
    const std::string &owner() const { return owner_; }
    std::uint64_t nonce() const { return nonce_; }
    std::uint64_t ttl_ms() const { return ttl_ms_; }

  private:
    //! Does the lease file at @p path carry our nonce?
    bool owns(const std::string &path) const;

    std::string dir_;
    std::string owner_;
    std::uint64_t ttl_ms_;
    std::uint64_t nonce_;
};

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_LEASE_H
