#include "sim/jobs/shard.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/hashing.h"
#include "common/thread_annotations.h"
#include "sim/jobs/lease.h"
#include "telemetry/telemetry.h"

namespace moka {
namespace {

namespace fs = std::filesystem;

/**
 * Lease heartbeat threaded into the engine's per-attempt tick-hook
 * chain: while the job body runs, touch the lease mtime every
 * heartbeat period so peers see a live owner. Wall-clock checks ride
 * a coarse step cadence (like the Watchdog) so the hot path stays one
 * modulo. Losing the lease aborts the run with kLeaseLost — the
 * result MUST NOT be committed once a peer owns the job.
 */
class LeaseHeartbeat final : public RunTickHook
{
  public:
    //! wall-clock checks happen every this many machine steps
    static constexpr std::uint64_t kCheckSteps = 1024;

    LeaseHeartbeat(LeaseDir &leases, std::size_t job,
                   std::uint64_t interval_ms)
        : leases_(leases), job_(job),
          interval_(std::chrono::milliseconds(interval_ms)),
          // LINT_NONDET_OK: heartbeat cadence is wall time by design;
          // it gates only which process commits, never a result value.
          next_(std::chrono::steady_clock::now() + interval_)
    {
    }

    void on_tick(std::uint64_t steps) override
    {
        if (steps % kCheckSteps != 0) {
            return;
        }
        // LINT_NONDET_OK: heartbeat check, as above.
        const auto now = std::chrono::steady_clock::now();
        if (now < next_) {
            return;
        }
        next_ = now + interval_;
        if (!leases_.refresh(job_)) {
            // LINT_HOT_OK: lease-lost exit; fires at most once per
            // run, then the attempt unwinds (rule L14).
            std::ostringstream os;
            os << "lease for job " << job_
               << " lost to a peer; abandoning this run";
            throw JobError(JobErrorCode::kLeaseLost, os.str());
        }
    }

  private:
    LeaseDir &leases_;
    std::size_t job_;
    std::chrono::steady_clock::duration interval_;
    std::chrono::steady_clock::time_point next_;
};

/**
 * Shared mutable state of one shard's worker pool: terminal-result
 * flags, own-result flags, and the report being assembled (results
 * vector + counters). All of it is guarded by one mutex — claims go
 * through the filesystem, so this lock is never contended for long.
 */
struct SweepState
{
    explicit SweepState(std::size_t n)
        : settled(n, 0), have_own(n, 0)
    {
    }

    SimMutex mu;
    //! per-job: a terminal result is recorded locally (ours or a
    //! peer's marker); the sweep is over when every flag is set
    std::vector<std::uint8_t> settled SIM_GUARDED_BY(mu);
    //! per-job: report.engine.results[i] holds a full journaled
    //! record of our own
    std::vector<std::uint8_t> have_own SIM_GUARDED_BY(mu);
    ShardReport report SIM_GUARDED_BY(mu);
};

JournalRecord
to_record(const JobResult &res)
{
    JournalRecord rec;
    rec.job_id = res.id;
    rec.status = res.status;
    rec.attempts = res.attempts;
    rec.error = res.error;
    rec.error_message = res.error_message;
    rec.csv = res.csv;
    rec.aux = res.output.aux;
    return rec;
}

}  // namespace

std::string
ShardEngine::sanitize_name(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        out += ok ? c : '-';
    }
    return out;
}

std::string
ShardEngine::journal_path(const std::string &dir, const std::string &name)
{
    return dir + "/shard-" + name + ".jsonl";
}

ShardEngine::ShardEngine(ShardConfig cfg) : cfg_(std::move(cfg))
{
    SIM_REQUIRE(!cfg_.dir.empty(), "shard engine needs a --shard-dir");
    SIM_REQUIRE(cfg_.lease_ttl_ms > 0, "lease TTL must be positive");
    name_ = sanitize_name(cfg_.name);
    if (name_.empty()) {
        // LINT_NONDET_OK: shard identity only — it names the journal
        // file and the lease owner, never enters any result value.
        name_ = "pid" + std::to_string(::getpid());
    }
}

ShardReport
ShardEngine::run(const std::vector<JobSpec> &jobs, const JobFn &fn)
{
    //! const after this loop; read lock-free by workers (labels feed
    //! tracer registration and report rows)
    std::vector<std::string> labels(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SIM_REQUIRE(jobs[i].id == i,
                    "job ids must be dense and in order");
        labels[i] = job_label(jobs[i]);
    }
    SweepState state(jobs.size());
    {
        SimMutexLock lock(&state.mu);
        state.report.engine.results.resize(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            state.report.engine.results[i].id = i;
            state.report.engine.results[i].label = labels[i];
        }
    }

    LeaseDir leases(cfg_.dir, name_, cfg_.lease_ttl_ms);
    Journal journal(journal_path(cfg_.dir, name_));

    EngineConfig ecfg = cfg_.engine;
    // The shard layer owns journaling and publication; the inner
    // engine only executes. fail-fast has no cross-process owner, so
    // it is disabled in shard mode (documented in ShardConfig).
    ecfg.journal_path.clear();
    ecfg.resume_path.clear();
    ecfg.fail_fast = false;
    std::uint64_t name_hash = 1469598103934665603ull;
    for (const char c : name_) {
        name_hash = hash_combine(name_hash,
                                 static_cast<unsigned char>(c));
    }
    ecfg.jitter_salt = hash_combine(ecfg.jitter_salt, name_hash);
    const JobEngine engine(ecfg);
    const FaultInjector injector(ecfg.faults);
    ProcessFaultInjector proc(cfg_.proc_faults);
    const std::uint64_t heartbeat_ms =
        cfg_.heartbeat_ms > 0
            ? cfg_.heartbeat_ms
            : std::max<std::uint64_t>(1, cfg_.lease_ttl_ms / 4);

    Tracer *tracer = nullptr;
    if (ecfg.telemetry != nullptr && telemetry_enabled()) {
        tracer = ecfg.telemetry->tracer();
    }
    const std::size_t workers =
        std::max<std::size_t>(1, std::min(ecfg.workers, jobs.size()));
    if (tracer != nullptr) {
        tracer->register_process(kEnginePid, "shard:" + name_);
        for (std::size_t w = 0; w < workers; ++w) {
            tracer->register_thread(kEnginePid,
                                    static_cast<std::uint32_t>(w),
                                    "worker-" + std::to_string(w));
        }
    }

    // Restart resume: a shard re-launched under its old name replays
    // its own journal — those jobs skip execution and go straight to
    // marker publication when (re)claimed.
    {
        SimMutexLock lock(&state.mu);
        for (const JournalRecord &rec : journal.recovered()) {
            if (rec.job_id >= jobs.size()) {
                continue;  // journal from a different matrix
            }
            JobResult &res = state.report.engine.results[rec.job_id];
            res.status = rec.status;
            res.attempts = rec.attempts;
            res.error = rec.error;
            res.error_message = rec.error_message;
            res.csv = rec.csv;
            res.output.aux = rec.aux;
            res.from_journal = true;
            state.have_own[rec.job_id] = 1;
        }
    }

    const auto instant = [&](std::uint32_t wid, const char *what,
                             std::size_t job) {
        if (tracer == nullptr) {
            return;
        }
        std::ostringstream os;
        os << "{\"job\":" << job << ",\"shard\":\"" << name_
           << "\",\"pid\":" << ::getpid() << "}";
        tracer->instant(kEnginePid, wid, what, tracer->now_us(),
                        os.str());
    };

    const auto worker = [&](std::uint32_t wid) {
        const std::size_t n = jobs.size();
        // Stagger start offsets so workers (and, statistically, peer
        // shards started at different times) don't all fight over
        // job 0 first.
        const std::size_t offset = n == 0 ? 0 : (wid * n) / workers;
        while (true) {
            bool progressed = false;
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t i = (offset + k) % n;
                {
                    SimMutexLock lock(&state.mu);
                    if (state.settled[i] != 0) {
                        continue;
                    }
                }
                const ClaimOutcome outcome =
                    leases.try_claim(i, cfg_.steal);
                if (outcome == ClaimOutcome::kBusy) {
                    continue;  // live peer owns it; poll again later
                }
                if (outcome == ClaimOutcome::kDone) {
                    DoneMarker marker;
                    const bool parsed = leases.read_done(i, marker);
                    instant(wid, "peer-done", i);
                    SimMutexLock lock(&state.mu);
                    if (state.settled[i] != 0) {
                        continue;
                    }
                    state.settled[i] = 1;
                    progressed = true;
                    if (state.have_own[i] == 0) {
                        ++state.report.peer_done;
                        JobResult &res = state.report.engine.results[i];
                        res.status = parsed ? marker.status
                                            : JobStatus::kCompleted;
                        res.from_journal = true;
                        if (res.status == JobStatus::kFailed) {
                            res.error = JobErrorCode::kUnknown;
                            res.error_message =
                                "failed on shard " +
                                (parsed ? marker.owner
                                        : std::string("?")) +
                                " (see merged journal)";
                        }
                    }
                    continue;
                }
                // kAcquired / kStolen: the job is ours.
                proc.maybe_kill(ShardFaultPoint::kClaim, i);
                instant(wid,
                        outcome == ClaimOutcome::kStolen ? "steal"
                                                         : "claim",
                        i);
                JobResult res;
                bool own = false;
                {
                    SimMutexLock lock(&state.mu);
                    if (outcome == ClaimOutcome::kStolen) {
                        ++state.report.stolen;
                    }
                    own = state.have_own[i] != 0;
                    if (own) {
                        res = state.report.engine.results[i];
                    }
                }
                if (!own) {
                    proc.maybe_kill(ShardFaultPoint::kRun, i);
                    if (tracer != nullptr) {
                        tracer->register_process(
                            kJobPidBase + static_cast<std::uint32_t>(i),
                            "job " + std::to_string(i) + ": " +
                                labels[i]);
                    }
                    LeaseHeartbeat heartbeat(leases, i, heartbeat_ms);
                    res = engine.execute_one(jobs[i], fn, injector, wid,
                                             &heartbeat);
                    if (res.status == JobStatus::kFailed &&
                        res.error == JobErrorCode::kLeaseLost) {
                        // A peer owns the job now; never commit this
                        // run. The peer's marker (or a later steal by
                        // us) settles it.
                        instant(wid, "lease-lost", i);
                        SimMutexLock lock(&state.mu);
                        ++state.report.lost;
                        continue;
                    }
                    SimMutexLock lock(&state.mu);
                    ++state.report.ran;
                }
                // Commit: journal first (the merge reads journals, so
                // a record on disk makes the result durable), then
                // publish the done marker, then the lease drops.
                proc.maybe_kill(ShardFaultPoint::kCommit, i);
                const JournalRecord rec = to_record(res);
                bool committed = own;  // resumed results already on disk
                for (int attempt = 1; !committed && attempt <= 3;
                     ++attempt) {
                    try {
                        journal.append(rec);
                        committed = true;
                    } catch (const JobError &e) {
                        std::fprintf(stderr,  // LINT_LOG_OK: commit retry
                                     "shard %s: journal append failed "
                                     "for job %zu (attempt %d): %s\n",
                                     name_.c_str(), i, attempt,
                                     e.what());
                        const std::uint64_t delay =
                            backoff_delay_ms(ecfg, i, attempt);
                        if (delay > 0) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(delay));
                        }
                    }
                }
                if (!committed) {
                    // Nothing durable: hand the job back to the farm.
                    leases.release(i);
                    SimMutexLock lock(&state.mu);
                    ++state.report.commit_failures;
                    continue;
                }
                if (!leases.mark_done({i, rec.status,
                                       record_checksum(rec), name_})) {
                    // The record is journaled (merge-visible); only
                    // the marker failed. A peer may re-run the job —
                    // harmless, the merge dedupes by checksum.
                    SimMutexLock lock(&state.mu);
                    ++state.report.commit_failures;
                }
                instant(wid, "commit", i);
                SimMutexLock lock(&state.mu);
                state.report.engine.results[i] = res;
                state.have_own[i] = 1;
                state.settled[i] = 1;
                progressed = true;
            }
            {
                SimMutexLock lock(&state.mu);
                bool all = true;
                for (const std::uint8_t s : state.settled) {
                    if (s == 0) {
                        all = false;
                        break;
                    }
                }
                if (all) {
                    return;
                }
            }
            if (!progressed) {
                // Everything unsettled is owned by live peers: wait
                // for their markers (or their leases to expire).
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(cfg_.poll_ms));
            }
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back(worker, static_cast<std::uint32_t>(w));
        }
        for (std::thread &t : pool) {
            t.join();
        }
    }

    SimMutexLock lock(&state.mu);
    ShardReport report = std::move(state.report);
    for (const JobResult &res : report.engine.results) {
        switch (res.status) {
          case JobStatus::kCompleted: ++report.engine.completed; break;
          case JobStatus::kFailed: ++report.engine.failed; break;
          case JobStatus::kSkipped: ++report.engine.skipped; break;
        }
        if (res.from_journal) {
            ++report.engine.resumed;
        }
    }
    return report;
}

std::string
ShardReport::summary() const
{
    std::ostringstream os;
    os << "shard: ran " << ran << " (" << stolen << " stolen), "
       << peer_done << " by peers, " << lost << " lost, "
       << commit_failures << " commit failure(s)\n";
    return os.str();
}

MergeReport
merge_shard_dir(const std::string &dir, std::size_t total_jobs)
{
    MergeReport merge;

    std::vector<std::string> files;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.rfind("shard-", 0) == 0 && name.size() > 6 + 6 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0) {
            files.push_back(it->path().string());
        }
    }
    std::sort(files.begin(), files.end());  // deterministic read order
    merge.shards = files.size();
    if (files.empty()) {
        merge.problems.push_back("no shard journals (shard-*.jsonl) in " +
                                 dir);
        return merge;
    }

    struct Candidate
    {
        JournalRecord rec;
        std::uint64_t sum = 0;
    };
    // Ordered by job id so the emitted records (and any problem
    // lines) come out ascending and deterministic.
    std::map<std::size_t, std::vector<Candidate>> by_job;
    for (const std::string &file : files) {
        std::size_t skipped = 0;
        for (JournalRecord &rec : Journal::load(file, &skipped)) {
            const std::uint64_t sum = record_checksum(rec);
            by_job[rec.job_id].push_back({std::move(rec), sum});
        }
        merge.corrupt += skipped;
    }

    for (auto &entry : by_job) {
        const std::size_t id = entry.first;
        std::vector<Candidate> &cands = entry.second;
        if (id >= total_jobs) {
            merge.problems.push_back(
                "job " + std::to_string(id) +
                ": record outside the matrix (stale shard dir?)");
            continue;
        }
        std::vector<const Candidate *> completed;
        std::vector<const Candidate *> failed;
        for (const Candidate &c : cands) {
            (c.rec.status == JobStatus::kCompleted ? completed : failed)
                .push_back(&c);
        }
        const Candidate *winner = nullptr;
        if (!completed.empty()) {
            // Completed beats failed: a failed record for the same
            // job is an interrupted shard's attempt that a peer later
            // finished for real.
            winner = completed.front();
            std::set<std::uint64_t> sums;
            for (const Candidate *c : completed) {
                sums.insert(c->sum);
            }
            if (sums.size() > 1) {
                merge.problems.push_back(
                    "job " + std::to_string(id) + ": " +
                    std::to_string(sums.size()) +
                    " conflicting completed results across shards "
                    "(determinism violation)");
            }
            merge.duplicates += completed.size() - sums.size();
            merge.superseded += failed.size();
        } else {
            // All failed: keep the most-informed record (most
            // attempts), first shard on ties.
            winner = failed.front();
            for (const Candidate *c : failed) {
                if (c->rec.attempts > winner->rec.attempts) {
                    winner = c;
                }
            }
            for (const Candidate *c : failed) {
                if (c == winner) {
                    continue;
                }
                if (c->sum == winner->sum) {
                    ++merge.duplicates;
                } else {
                    ++merge.superseded;
                }
            }
        }
        merge.records.push_back(winner->rec);
    }

    for (std::size_t id = 0; id < total_jobs; ++id) {
        if (by_job.find(id) == by_job.end()) {
            merge.problems.push_back("job " + std::to_string(id) +
                                     ": no record in any shard journal");
        }
    }
    return merge;
}

std::string
MergeReport::summary() const
{
    std::ostringstream os;
    os << "merge: " << records.size() << " job record(s) from "
       << shards << " shard journal(s), " << duplicates
       << " duplicate(s) deduped, " << superseded << " superseded, "
       << corrupt << " corrupt line(s)\n";
    for (const std::string &problem : problems) {
        os << "  problem: " << problem << '\n';
    }
    return os.str();
}

EngineReport
report_from_merge(const MergeReport &merge,
                  const std::vector<JobSpec> &jobs)
{
    EngineReport report;
    report.results.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        report.results[i].id = i;
        report.results[i].label = job_label(jobs[i]);
    }
    for (const JournalRecord &rec : merge.records) {
        if (rec.job_id >= report.results.size()) {
            continue;
        }
        JobResult &res = report.results[rec.job_id];
        res.status = rec.status;
        res.attempts = rec.attempts;
        res.error = rec.error;
        res.error_message = rec.error_message;
        res.csv = rec.csv;
        res.output.aux = rec.aux;
        res.from_journal = true;
    }
    for (const JobResult &res : report.results) {
        switch (res.status) {
          case JobStatus::kCompleted: ++report.completed; break;
          case JobStatus::kFailed: ++report.failed; break;
          case JobStatus::kSkipped: ++report.skipped; break;
        }
        if (res.from_journal) {
            ++report.resumed;
        }
    }
    return report;
}

}  // namespace moka
