/**
 * @file
 * Sharded multi-process sweeps. N independent processes point at the
 * same `--shard-dir`; each runs a ShardEngine over the SAME job
 * matrix, claims individual jobs through filesystem leases (lease.h),
 * heartbeats while running, journals finished results into its own
 * `shard-<name>.jsonl`, and publishes a done marker per job. A shard
 * that dies mid-job simply stops heartbeating; once its lease ages
 * past the TTL any surviving peer steals the job and re-runs it
 * (work-stealing crash recovery — no coordinator process anywhere).
 *
 * Exactly-once is enforced at merge time, not claim time: per-job
 * results are deterministic, so the rare double execution (a false
 * expiry) yields byte-identical records that merge_shard_dir dedupes
 * by content checksum — and flags as a hard error if they ever
 * disagree. The merged report is byte-identical to a serial run.
 *
 * Chaos posture: ProcessFaultPlan (faults.h) can SIGKILL a shard at
 * claim/run/commit boundaries and fail journal writes; CI runs a
 * 4-shard drill with two seeded victims (tools/ci_chaos_shard.sh).
 */
#ifndef MOKASIM_SIM_JOBS_SHARD_H
#define MOKASIM_SIM_JOBS_SHARD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/jobs/engine.h"
#include "sim/jobs/faults.h"
#include "sim/jobs/journal.h"

namespace moka {

/** Policy for one shard process. */
struct ShardConfig
{
    std::string dir;   //!< shared lease/journal directory (--shard-dir)
    /**
     * This shard's name (--shard-name); sanitized to [A-Za-z0-9_-]
     * and defaulting to "pid<os-pid>" when empty. Names must be
     * unique across live shards: the per-shard journal is
     * `<dir>/shard-<name>.jsonl`, and a restarted shard reusing its
     * old name resumes from that journal.
     */
    std::string name;
    std::uint64_t lease_ttl_ms = 10000;  //!< heartbeat-miss budget
    //! heartbeat period while a job runs; 0 = lease_ttl_ms / 4
    std::uint64_t heartbeat_ms = 0;
    bool steal = true;         //!< reap expired peer leases
    std::uint64_t poll_ms = 50;  //!< sleep when every job is busy
    ProcessFaultPlan proc_faults;  //!< chaos drill knobs
    //! inner engine policy; journal_path/resume_path are ignored (the
    //! shard layer owns journaling) and jitter_salt is re-salted with
    //! the shard name so peers' retry backoffs decorrelate
    EngineConfig engine;
};

/** What one shard process did (its peers did the rest). */
struct ShardReport
{
    //! full-matrix view: jobs this shard ran carry real results; jobs
    //! finished by peers carry status from their done markers (no
    //! csv — the merged journal has the payload), from_journal=true
    EngineReport engine;
    std::size_t ran = 0;        //!< jobs this shard executed
    std::size_t stolen = 0;     //!< ...of which via expired-lease steal
    std::size_t lost = 0;       //!< runs abandoned: lease lost mid-job
    std::size_t peer_done = 0;  //!< jobs satisfied by peers' markers
    std::size_t commit_failures = 0;  //!< results we could not journal

    /**
     * One deterministic shard counters line (callers print
     * engine.summary() separately when they want job details).
     */
    std::string summary() const;
};

/**
 * One shard process's engine. Construct with the shared directory and
 * run the full matrix; returns once every job in the matrix has a
 * done marker (ours or a peer's) or is terminally unrunnable here.
 */
class ShardEngine
{
  public:
    explicit ShardEngine(ShardConfig cfg);

    ShardReport run(const std::vector<JobSpec> &jobs, const JobFn &fn);

    const std::string &name() const { return name_; }
    const ShardConfig &config() const { return cfg_; }

    /** `<dir>/shard-<name>.jsonl`, this shard's result journal. */
    static std::string journal_path(const std::string &dir,
                                    const std::string &name);

    /** @p name with every character outside [A-Za-z0-9_-] mapped to '-'. */
    static std::string sanitize_name(const std::string &name);

  private:
    ShardConfig cfg_;
    std::string name_;
};

/** Outcome of merging a shard directory (see merge_shard_dir). */
struct MergeReport
{
    //! winning record per job, ascending job id
    std::vector<JournalRecord> records;
    std::size_t shards = 0;      //!< shard journals found
    std::size_t duplicates = 0;  //!< checksum-identical extra records
    //! records superseded by a better one for the same job (a failed
    //! record beaten by a completed re-run, or a lower-attempt failed
    //! record beaten by a higher-attempt one)
    std::size_t superseded = 0;
    std::size_t corrupt = 0;     //!< malformed/checksum-failed lines
    //! hard problems (conflicting completed results, missing jobs);
    //! any entry here means the merge must not be trusted
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }

    /** Deterministic one-line stats + one line per problem. */
    std::string summary() const;
};

/**
 * Merge every `shard-*.jsonl` in @p dir into one record per job
 * (deduped by content checksum; completed beats failed; two
 * *different* completed results for one job is a hard problem, as is
 * any job in [0, @p total_jobs) with no record at all). Reading order
 * is sorted by file name, so the merge is deterministic.
 */
MergeReport merge_shard_dir(const std::string &dir,
                            std::size_t total_jobs);

/**
 * Rehydrate an EngineReport (labels from @p jobs, results from the
 * merged records, all from_journal) so sweep tools can emit the
 * byte-identical CSV a serial run would have produced.
 */
EngineReport report_from_merge(const MergeReport &merge,
                               const std::vector<JobSpec> &jobs);

}  // namespace moka

#endif  // MOKASIM_SIM_JOBS_SHARD_H
