#include "sim/machine.h"

#include <algorithm>
#include <cstring>

#include "audit/audit.h"
#include "common/check.h"
#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {

RunMetrics
RunMetrics::operator-(const RunMetrics &o) const
{
    RunMetrics r = *this;
    r.instructions -= o.instructions;
    r.cycles -= o.cycles;
    r.l1i = l1i - o.l1i;
    r.l1d = l1d - o.l1d;
    r.l2 = l2 - o.l2;
    r.llc = llc - o.llc;
    r.dtlb = dtlb - o.dtlb;
    r.stlb = stlb - o.stlb;
    r.l2_walk = l2_walk - o.l2_walk;
    r.l1d_writebacks -= o.l1d_writebacks;
    r.l1d_pf_lookups -= o.l1d_pf_lookups;
    r.pf_issued -= o.pf_issued;
    r.pf_useful -= o.pf_useful;
    r.pf_useless -= o.pf_useless;
    r.pgc_candidates -= o.pgc_candidates;
    r.pgc_issued -= o.pgc_issued;
    r.pgc_useful -= o.pgc_useful;
    r.pgc_useless -= o.pgc_useless;
    r.pgc_dropped -= o.pgc_dropped;
    r.demand_walks -= o.demand_walks;
    r.spec_walks -= o.spec_walks;
    r.walk_refs -= o.walk_refs;
    r.dram_accesses -= o.dram_accesses;
    r.branch_mispredicts -= o.branch_mispredicts;
    return r;
}

MachineConfig
default_config(unsigned cores)
{
    MachineConfig cfg;
    // LLC scales with core count (2MB per core); DRAM channels scale
    // at one per two cores so the 8-core mixes are contended but not
    // saturated by the memory-intensive roster.
    cfg.llc.sets = 2048 * cores;
    cfg.dram.channels = std::max(1u, cores / 2);
    cfg.vmem.phys_bytes = (cores > 1) ? (Addr{16} << 30) : (Addr{4} << 30);
    return cfg;
}

// ---------------------------------------------------------------------------
// CoreComplex
// ---------------------------------------------------------------------------

CoreComplex::CoreComplex(const MachineConfig &cfg, Cache *llc,
                         WorkloadPtr workload, std::uint64_t seed)
    : cfg_(cfg), llc_shared_(llc), bp_(cfg.branch), core_(cfg.core),
      frontend_(cfg.frontend, nullptr, nullptr, nullptr, nullptr, nullptr),
      workload_(std::move(workload))
{
    l2_ = std::make_unique<Cache>(cfg.l2, llc);
    l1i_ = std::make_unique<Cache>(cfg.l1i, l2_.get());
    l1d_ = std::make_unique<Cache>(cfg.l1d, l2_.get());
    l1d_->set_listener(this);

    VmemConfig vmem = cfg.vmem;
    vmem.seed = hash_combine(vmem.seed, seed);
    page_table_ = std::make_unique<PageTable>(vmem);
    itlb_ = std::make_unique<Tlb>(cfg.itlb);
    dtlb_ = std::make_unique<Tlb>(cfg.dtlb);
    stlb_ = std::make_unique<Tlb>(cfg.stlb);
    walker_ = std::make_unique<PageWalker>(cfg.walker, page_table_.get(),
                                           l2_.get());

    frontend_ = Frontend(cfg.frontend, l1i_.get(), itlb_.get(),
                         stlb_.get(), walker_.get(), &bp_);

    l1d_pf_ = make_l1d_prefetcher(cfg.l1d_prefetcher,
                                  cfg.scheme.iso_storage);
    l2_pf_ = make_l2_prefetcher(cfg.l2_prefetcher);
    if (cfg.scheme.policy == PgcPolicy::kFilter) {
        SIM_REQUIRE(cfg.scheme.make_filter != nullptr,
                    "kFilter scheme configured without a filter factory");
        filter_ = cfg.scheme.make_filter();
    }

    next_interval_ = cfg.interval_insts;
    next_epoch_ = cfg.epoch_insts;
    next_audit_ = cfg.audit_interval_insts;
}

CoreComplex::~CoreComplex() = default;

CoreComplex::Translated
CoreComplex::translate_demand(VirtAddr vaddr, Cycle now)
{
    Translated out;
    Tlb::Result d = dtlb_->lookup(vaddr, now, /*demand=*/true);
    if (d.hit) {
        out.page_base = d.page_base;
        out.large = d.large;
        out.done = d.done;
    } else {
        Tlb::Result s = stlb_->lookup(vaddr, d.done, /*demand=*/true);
        if (s.hit) {
            dtlb_->fill(vaddr, s.page_base, s.large, false);
            out.page_base = s.page_base;
            out.large = s.large;
            out.done = s.done;
        } else {
            const PageWalker::WalkResult w =
                walker_->walk(vaddr, s.done, /*speculative=*/false);
            stlb_->fill(vaddr, w.page_base, w.large, false);
            dtlb_->fill(vaddr, w.page_base, w.large, false);
            out.page_base = w.page_base;
            out.large = w.large;
            out.done = w.done;
        }
    }
    out.paddr = out.page_base + (out.large ? large_page_offset(vaddr)
                                           : page_offset(vaddr));
    return out;
}

void
CoreComplex::process_candidate(const PrefetchRequest &req,
                               const Translated &trigger, Cycle now)
{
    const bool pgc = crosses_page(req.trigger_vaddr, req.vaddr);

    if (!pgc) {
        // In-page prefetch: reuse the trigger's translation.
        const PhysAddr paddr =
            trigger.page_base +
            (trigger.large ? large_page_offset(req.vaddr)
                           : page_offset(req.vaddr));
        const AccessResult r =
            l1d_->access(paddr, AccessType::kPrefetch, now, false);
        if (!r.hit && !r.merged) {
            l1d_pf_->on_fill(req.vaddr, r.done, true);
        }
        return;
    }

    ++pgc_candidates_;

    // --- Page-cross decision (Fig. 5 step B) -------------------------
    bool permit = false;
    switch (cfg_.scheme.policy) {
      case PgcPolicy::kPermit:
        permit = true;
        break;
      case PgcPolicy::kDiscard:
        permit = false;
        break;
      case PgcPolicy::kDiscardPtw:
        permit = true;  // resolved at the TLB probe below
        break;
      case PgcPolicy::kFilter:
        if (cfg_.scheme.filter_at_2mb &&
            page_table_->is_large_region(req.trigger_vaddr) &&
            !crosses_large_page(req.trigger_vaddr, req.vaddr)) {
            // Fig. 16 variant: inside a 2MB page, only 2MB-boundary
            // crossings are filtered; 4KB crossings pass freely.
            permit = true;
        } else {
            permit = filter_->permit(req.trigger_pc, req.trigger_vaddr,
                                     req.delta, req.vaddr, last_snapshot_,
                                     req.meta);
        }
        break;
    }
    if (!permit) {
        ++pgc_dropped_;
        return;
    }

    // --- TLB probe and (possibly) speculative walk (steps C-D) -------
    const bool used_filter = cfg_.scheme.policy == PgcPolicy::kFilter &&
                             filter_ != nullptr;
    PhysAddr page_base;
    bool large;
    Cycle t;
    Tlb::Result d = dtlb_->lookup(req.vaddr, now, /*demand=*/false);
    if (d.hit) {
        page_base = d.page_base;
        large = d.large;
        t = d.done;
    } else {
        Tlb::Result s = stlb_->lookup(req.vaddr, d.done, /*demand=*/false);
        if (s.hit) {
            dtlb_->fill(req.vaddr, s.page_base, s.large,
                        /*from_prefetch=*/true);
            page_base = s.page_base;
            large = s.large;
            t = s.done;
        } else if (cfg_.scheme.policy == PgcPolicy::kDiscardPtw) {
            // No resident translation: drop instead of walking.
            ++pgc_dropped_;
            return;
        } else {
            const PageWalker::WalkResult w =
                walker_->walk(req.vaddr, s.done, /*speculative=*/true);
            stlb_->fill(req.vaddr, w.page_base, w.large, true);
            dtlb_->fill(req.vaddr, w.page_base, w.large, true);
            page_base = w.page_base;
            large = w.large;
            t = w.done;
        }
    }

    const PhysAddr paddr =
        page_base + (large ? large_page_offset(req.vaddr)
                           : page_offset(req.vaddr));
    const AccessResult r =
        l1d_->access(paddr, AccessType::kPrefetch, t, /*pgc=*/true);
    if (!r.hit && !r.merged) {
        l1d_pf_->on_fill(req.vaddr, r.done, true);
        if (used_filter) {
            filter_->on_pgc_issued(req.vaddr, paddr);
        }
    } else if (used_filter) {
        filter_->on_pgc_abandoned();
    }
}

void
CoreComplex::run_l1d_prefetcher(const PrefetchContext &ctx,
                                const Translated &trigger)
{
    pf_buffer_.clear();
    l1d_pf_->on_access(ctx, pf_buffer_);
    for (const PrefetchRequest &req : pf_buffer_) {
        process_candidate(req, trigger, ctx.now);
    }
}

void
CoreComplex::run_l2_prefetcher(PhysAddr trigger_paddr, Addr pc, Cycle now)
{
    l2_pf_buffer_.clear();
    // L2 prefetchers train and prefetch on physical addresses; the
    // physical_context/physical_target adapters are the declared
    // re-labelling seam for reusing the Prefetcher interface there.
    const PrefetchContext ctx =
        physical_context(trigger_paddr, pc, /*hit=*/false,
                         /*store=*/false, now);
    l2_pf_->on_access(ctx, l2_pf_buffer_);
    for (const PrefetchRequest &req : l2_pf_buffer_) {
        // PIPT safety: physical page crossing is never allowed at L2.
        if (crosses_page(req.trigger_vaddr, req.vaddr)) {
            continue;
        }
        l2_->access(physical_target(req), AccessType::kPrefetch, now,
                    false);
    }
}

void
CoreComplex::handle_memory(const TraceInst &inst, Cycle dispatch,
                           Cycle &complete)
{
    Cycle issue = dispatch + 1;  // address generation
    if (inst.dep_load) {
        issue = std::max(issue, last_load_complete_);
    }

    const Translated tr = translate_demand(inst.mem_addr, issue);
    const bool is_store = inst.op == OpClass::kStore;
    const AccessResult r = l1d_->access(
        tr.paddr, is_store ? AccessType::kStore : AccessType::kLoad,
        tr.done);

    if (!r.hit) {
        if (filter_ != nullptr) {
            // vUB false-negative check (Fig. 7 steps 1-3).
            filter_->on_l1d_demand_miss(inst.mem_addr);
        }
        if (!r.merged) {
            // Demand fill: timeliness cue for fill-trained prefetchers.
            l1d_pf_->on_fill(inst.mem_addr, r.done, false);
        }
    }

    if (is_store) {
        // Stores retire once translated (store buffer absorbs the
        // write latency).
        complete = tr.done + 1;
    } else {
        complete = r.done;
        last_load_complete_ = r.done;
    }

    PrefetchContext ctx;
    ctx.vaddr = inst.mem_addr;
    ctx.pc = inst.pc;
    ctx.hit = r.hit;
    ctx.store = is_store;
    ctx.now = tr.done;
    run_l1d_prefetcher(ctx, tr);

    if (!r.hit && l2_pf_ != nullptr) {
        run_l2_prefetcher(tr.paddr, inst.pc, tr.done);
    }

    if (filter_ != nullptr) {
        // History update comes last so the current access is the
        // trigger (VA_i) and the buffers hold VA_{i-1}, VA_{i-2}.
        filter_->on_demand_access(inst.pc, inst.mem_addr);
    }
}

void
CoreComplex::step()
{
    const TraceInst inst = workload_->next();
    const Frontend::FetchResult fr = frontend_.fetch(inst);
    const Cycle dispatch = core_.dispatch(fr.ready);
    Cycle complete = dispatch + 1;

    if (inst.op == OpClass::kLoad || inst.op == OpClass::kStore) {
        handle_memory(inst, dispatch, complete);
    }
    if (inst.op == OpClass::kBranch && fr.mispredict) {
        frontend_.redirect(complete);
    }

    core_.retire(complete);
    if (core_.retired() >= next_interval_) {
        interval_tick();
    }
}

SystemSnapshot
CoreComplex::snapshot() const
{
    SystemSnapshot s;
    const InstCount di =
        std::max<InstCount>(1, core_.retired() - window_start_.insts);
    const AccessStats l1d = l1d_->stats().demand - window_start_.l1d;
    const AccessStats l1i = l1i_->stats().demand - window_start_.l1i;
    const AccessStats stlb = stlb_->demand_stats() - window_start_.stlb;
    // The LLC is shared: its windowed stats are machine-wide, which
    // is exactly the pressure the adaptive scheme must react to.
    const AccessStats llc = llc_shared_->stats().demand - window_start_.llc;
    s.llc_mpki = llc.mpki(di);
    s.llc_miss_rate = llc.miss_rate();
    s.l1d_mpki = l1d.mpki(di);
    s.l1d_miss_rate = l1d.miss_rate();
    s.l1i_mpki = l1i.mpki(di);
    s.stlb_mpki = stlb.mpki(di);
    s.stlb_miss_rate = stlb.miss_rate();
    const Cycle dc = core_.last_retire() > window_start_.cycle
                         ? core_.last_retire() - window_start_.cycle
                         : 1;
    s.ipc = static_cast<double>(di) / static_cast<double>(dc);
    s.rob_occupancy = core_.rob_pressure();
    s.inflight_l1d_misses = l1d_->inflight_misses(core_.last_retire());
    const std::uint64_t resolved = epoch_pgc_useful_ + epoch_pgc_useless_;
    s.pgc_accuracy_valid = resolved >= 8;
    s.pgc_accuracy =
        resolved == 0 ? 1.0
                      : static_cast<double>(epoch_pgc_useful_) /
                            static_cast<double>(resolved);
    return s;
}

void
CoreComplex::interval_tick()
{
    next_interval_ += cfg_.interval_insts;
    last_snapshot_ = snapshot();
    if (filter_ != nullptr) {
        filter_->on_interval(last_snapshot_);
    }

    // Reset the measurement window.
    window_start_.l1d = l1d_->stats().demand;
    window_start_.l1i = l1i_->stats().demand;
    window_start_.stlb = stlb_->demand_stats();
    window_start_.llc = llc_shared_->stats().demand;
    window_start_.insts = core_.retired();
    window_start_.cycle = core_.last_retire();
    core_.reset_pressure_window();

    if (core_.retired() >= next_epoch_) {
        next_epoch_ += cfg_.epoch_insts;
        if (filter_ != nullptr) {
            EpochInfo info;
            const std::uint64_t resolved =
                epoch_pgc_useful_ + epoch_pgc_useless_;
            info.accuracy_valid = resolved >= 16;
            info.pgc_accuracy =
                resolved == 0
                    ? 0.0
                    : static_cast<double>(epoch_pgc_useful_) /
                          static_cast<double>(resolved);
            const InstCount ei = core_.retired() - epoch_start_insts_;
            const Cycle ec =
                std::max<Cycle>(1, core_.last_retire() - epoch_start_cycle_);
            info.ipc = static_cast<double>(ei) / static_cast<double>(ec);
            filter_->on_epoch(info);
        }
        epoch_pgc_useful_ = 0;
        epoch_pgc_useless_ = 0;
        epoch_start_insts_ = core_.retired();
        epoch_start_cycle_ = core_.last_retire();
    }

#if SIM_AUDIT_ENABLED
    if (cfg_.audit_interval_insts > 0 && core_.retired() >= next_audit_) {
        next_audit_ += cfg_.audit_interval_insts;
        AuditReport report(/*forward=*/true);
        audit(report);
    }
#endif
}

void
CoreComplex::audit(AuditReport &report) const
{
    audit::audit_cache(*l1i_, report);
    audit::audit_cache(*l1d_, report);
    audit::audit_cache(*l2_, report);
    audit::audit_page_table(*page_table_, report);
    audit::audit_tlb(*itlb_, *page_table_, report);
    audit::audit_tlb(*dtlb_, *page_table_, report);
    audit::audit_tlb(*stlb_, *page_table_, report);
    audit::audit_walker(*walker_, report);
    if (filter_ != nullptr) {
        audit::audit_filter(*filter_, report);
        audit::audit_pcb_pub(*l1d_, *filter_, report);
    }
}

void
CoreComplex::on_pgc_first_use(PhysAddr block_paddr)
{
    ++epoch_pgc_useful_;
    if (filter_ != nullptr) {
        filter_->on_pgc_first_use(block_paddr);
    }
}

void
CoreComplex::on_eviction(PhysAddr block_paddr, bool prefetched, bool pgc,
                         bool used)
{
    if (!prefetched || !pgc) {
        return;
    }
    if (!used) {
        ++epoch_pgc_useless_;
    }
    if (filter_ != nullptr) {
        filter_->on_pgc_eviction(block_paddr, used);
    }
}

RunMetrics
CoreComplex::metrics() const
{
    RunMetrics m;
    m.instructions = core_.retired();
    m.cycles = core_.last_retire();
    m.l1i = l1i_->stats().demand;
    m.l1d = l1d_->stats().demand;
    m.l2 = l2_->stats().demand;
    m.dtlb = dtlb_->demand_stats();
    m.stlb = stlb_->demand_stats();
    m.l2_walk = l2_->stats().walk;
    m.l1d_writebacks = l1d_->stats().writebacks;
    m.l1d_pf_lookups = l1d_->stats().prefetch_lookups;
    const PrefetchStats &pf = l1d_->stats().pf;
    m.pf_issued = pf.issued;
    m.pf_useful = pf.useful;
    m.pf_useless = pf.useless;
    m.pgc_candidates = pgc_candidates_;
    m.pgc_issued = pf.pgc_issued;
    m.pgc_useful = pf.pgc_useful;
    m.pgc_useless = pf.pgc_useless;
    m.pgc_dropped = pgc_dropped_;
    m.demand_walks = walker_->demand_walks();
    m.spec_walks = walker_->spec_walks();
    m.walk_refs = walker_->total_mem_refs();
    m.branch_mispredicts = bp_.mispredicts();
    return m;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(const MachineConfig &cfg,
                 std::vector<WorkloadPtr> workloads)
    : cfg_(cfg)
{
    dram_ = std::make_unique<Dram>(cfg_.dram);
    llc_ = std::make_unique<Cache>(cfg_.llc, dram_.get());
    std::uint64_t seed = 0x1234;
    for (WorkloadPtr &w : workloads) {
        cores_.push_back(std::make_unique<CoreComplex>(
            cfg_, llc_.get(), std::move(w), mix64(++seed)));
    }
    measure_start_.resize(cores_.size());
    at_budget_.resize(cores_.size());
    run_target_.resize(cores_.size());
    run_crossed_.resize(cores_.size());
}

Machine::~Machine() = default;

void
Machine::start_measurement()
{
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        measure_start_[i] = cores_[i]->metrics();
        measure_start_[i].llc = llc_->stats().demand;
        measure_start_[i].dram_accesses = dram_->accesses();
    }
}

void
Machine::run(InstCount insts_per_core, RunTickHook *hook)
{
    std::vector<InstCount> &target = run_target_;
    std::vector<std::uint8_t> &crossed = run_crossed_;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        target[i] = cores_[i]->retired() + insts_per_core;
        crossed[i] = 0;
    }
    std::size_t remaining = cores_.size();
    while (remaining > 0) {
        // Step the core whose clock is furthest behind so shared-level
        // contention interleaves in rough time order. Finished cores
        // keep replaying (paper §IV-A2) until all cores cross.
        std::size_t pick = 0;
        Cycle best = ~Cycle{0};
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (cores_[i]->now() < best) {
                best = cores_[i]->now();
                pick = i;
            }
        }
        cores_[pick]->step();
        ++steps_;
        if (hook != nullptr) {
            // LINT_HOT_OK: the tick hook is the engine's fault/
            // watchdog/telemetry seam; it is null in measured perf
            // runs, and hooks guard their own slow paths (rule L12).
            hook->on_tick(steps_);
        }
        if (crossed[pick] == 0 &&
            cores_[pick]->retired() >= target[pick]) {
            crossed[pick] = 1;
            at_budget_[pick] = cores_[pick]->metrics();
            --remaining;
        }
    }
    // Fill shared-structure stats machine-wide into each core's
    // budget snapshot.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        at_budget_[i].llc = llc_->stats().demand;
        at_budget_[i].dram_accesses = dram_->accesses();
    }
}

RunMetrics
Machine::measured(std::size_t i) const
{
    return at_budget_[i] - measure_start_[i];
}

void
Machine::audit(AuditReport &report) const
{
    audit::audit_cache(*llc_, report);
    audit::audit_dram(*dram_, report);
    for (const auto &core : cores_) {
        core->audit(report);
    }
}

// ---------------------------------------------------------------------------
// Snapshotting
// ---------------------------------------------------------------------------

namespace {

/** Fingerprint helpers: order-sensitive field mixing. */
void
fp(std::uint64_t &h, std::uint64_t v)
{
    h = hash_combine(h, v);
}

void
fp_f64(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fp(h, bits);
}

void
fp_str(std::uint64_t &h, const std::string &s)
{
    fp(h, s.size());
    h = hash_combine(h, fnv1a_64(s.data(), s.size()));
}

void
fp_cache(std::uint64_t &h, const CacheConfig &c)
{
    fp_str(h, c.name);
    fp(h, c.sets);
    fp(h, c.ways);
    fp(h, c.latency);
    fp(h, c.mshr_entries);
    fp(h, c.track_pgc ? 1 : 0);
    fp(h, static_cast<std::uint64_t>(c.replacement));
}

void
fp_tlb(std::uint64_t &h, const TlbConfig &c)
{
    fp_str(h, c.name);
    fp(h, c.sets);
    fp(h, c.ways);
    fp(h, c.large_sets);
    fp(h, c.large_ways);
    fp(h, c.latency);
}

void
put_metrics(SnapshotWriter &w, const RunMetrics &m)
{
    w.put_u64(m.instructions);
    w.put_u64(m.cycles);
    put_stats(w, m.l1i);
    put_stats(w, m.l1d);
    put_stats(w, m.l2);
    put_stats(w, m.llc);
    put_stats(w, m.dtlb);
    put_stats(w, m.stlb);
    put_stats(w, m.l2_walk);
    w.put_u64(m.l1d_writebacks);
    w.put_u64(m.l1d_pf_lookups);
    w.put_u64(m.pf_issued);
    w.put_u64(m.pf_useful);
    w.put_u64(m.pf_useless);
    w.put_u64(m.pgc_candidates);
    w.put_u64(m.pgc_issued);
    w.put_u64(m.pgc_useful);
    w.put_u64(m.pgc_useless);
    w.put_u64(m.pgc_dropped);
    w.put_u64(m.demand_walks);
    w.put_u64(m.spec_walks);
    w.put_u64(m.walk_refs);
    w.put_u64(m.dram_accesses);
    w.put_u64(m.branch_mispredicts);
}

void
get_metrics(SnapshotReader &r, RunMetrics &m)
{
    m.instructions = r.get_u64();
    m.cycles = r.get_u64();
    get_stats(r, m.l1i);
    get_stats(r, m.l1d);
    get_stats(r, m.l2);
    get_stats(r, m.llc);
    get_stats(r, m.dtlb);
    get_stats(r, m.stlb);
    get_stats(r, m.l2_walk);
    m.l1d_writebacks = r.get_u64();
    m.l1d_pf_lookups = r.get_u64();
    m.pf_issued = r.get_u64();
    m.pf_useful = r.get_u64();
    m.pf_useless = r.get_u64();
    m.pgc_candidates = r.get_u64();
    m.pgc_issued = r.get_u64();
    m.pgc_useful = r.get_u64();
    m.pgc_useless = r.get_u64();
    m.pgc_dropped = r.get_u64();
    m.demand_walks = r.get_u64();
    m.spec_walks = r.get_u64();
    m.walk_refs = r.get_u64();
    m.dram_accesses = r.get_u64();
    m.branch_mispredicts = r.get_u64();
}

void
put_system_snapshot(SnapshotWriter &w, const SystemSnapshot &s)
{
    w.put_f64(s.l1d_mpki);
    w.put_f64(s.l1d_miss_rate);
    w.put_f64(s.llc_mpki);
    w.put_f64(s.llc_miss_rate);
    w.put_f64(s.stlb_mpki);
    w.put_f64(s.stlb_miss_rate);
    w.put_f64(s.l1i_mpki);
    w.put_f64(s.ipc);
    w.put_f64(s.rob_occupancy);
    w.put_u32(s.inflight_l1d_misses);
    w.put_f64(s.pgc_accuracy);
    w.put_bool(s.pgc_accuracy_valid);
}

void
get_system_snapshot(SnapshotReader &r, SystemSnapshot &s)
{
    s.l1d_mpki = r.get_f64();
    s.l1d_miss_rate = r.get_f64();
    s.llc_mpki = r.get_f64();
    s.llc_miss_rate = r.get_f64();
    s.stlb_mpki = r.get_f64();
    s.stlb_miss_rate = r.get_f64();
    s.l1i_mpki = r.get_f64();
    s.ipc = r.get_f64();
    s.rob_occupancy = r.get_f64();
    s.inflight_l1d_misses = r.get_u32();
    s.pgc_accuracy = r.get_f64();
    s.pgc_accuracy_valid = r.get_bool();
}

}  // namespace

std::uint64_t
config_fingerprint(const MachineConfig &cfg, std::size_t cores)
{
    std::uint64_t h = kFnv1aOffset;
    fp(h, cores);
    fp(h, cfg.core.rob_entries);
    fp(h, cfg.core.width);
    fp(h, cfg.core.mispredict_penalty);
    fp(h, cfg.frontend.fetch_width);
    fp(h, cfg.frontend.l1i_prefetch_degree);
    fp(h, cfg.frontend.mispredict_penalty);
    fp(h, cfg.branch.tables);
    fp(h, cfg.branch.entries);
    fp(h, cfg.branch.weight_bits);
    fp(h, static_cast<std::uint64_t>(cfg.branch.train_threshold));
    fp_cache(h, cfg.l1i);
    fp_cache(h, cfg.l1d);
    fp_cache(h, cfg.l2);
    fp_cache(h, cfg.llc);
    fp_tlb(h, cfg.itlb);
    fp_tlb(h, cfg.dtlb);
    fp_tlb(h, cfg.stlb);
    fp(h, cfg.walker.psc_pml5_entries);
    fp(h, cfg.walker.psc_pml4_entries);
    fp(h, cfg.walker.psc_pdpte_entries);
    fp(h, cfg.walker.psc_pde_entries);
    fp(h, cfg.walker.psc_latency);
    fp(h, cfg.walker.concurrent_walks);
    fp(h, cfg.vmem.phys_bytes);
    fp_f64(h, cfg.vmem.large_page_fraction);
    fp(h, cfg.vmem.seed);
    fp(h, cfg.vmem.reserve_pages);
    fp(h, cfg.dram.channels);
    fp(h, cfg.dram.banks);
    fp(h, cfg.dram.rows_bits);
    fp(h, cfg.dram.column_bits);
    fp(h, cfg.dram.row_hit_latency);
    fp(h, cfg.dram.row_miss_latency);
    fp(h, cfg.dram.burst_cycles);
    fp(h, static_cast<std::uint64_t>(cfg.l1d_prefetcher));
    fp(h, static_cast<std::uint64_t>(cfg.l2_prefetcher));
    // The scheme's filter factory is a closure; the name + policy +
    // flags identify the configuration it builds (scheme construction
    // is deterministic per name in policies.cc).
    fp_str(h, cfg.scheme.name);
    fp(h, static_cast<std::uint64_t>(cfg.scheme.policy));
    fp(h, cfg.scheme.iso_storage ? 1 : 0);
    fp(h, cfg.scheme.filter_at_2mb ? 1 : 0);
    fp(h, cfg.interval_insts);
    fp(h, cfg.epoch_insts);
    fp(h, cfg.audit_interval_insts);
    return h;
}

void
CoreComplex::save_state(SnapshotWriter &w) const
{
    w.begin_section("core.mem");
    l2_->save_state(w);
    l1i_->save_state(w);
    l1d_->save_state(w);
    page_table_->save_state(w);
    itlb_->save_state(w);
    dtlb_->save_state(w);
    stlb_->save_state(w);
    walker_->save_state(w);
    w.begin_section("core.cpu");
    bp_.save_state(w);
    core_.save_state(w);
    frontend_.save_state(w);
    // Prefetchers/filters open their own sections (or none when
    // stateless); presence is configuration-determined, so save and
    // restore agree structurally.
    l1d_pf_->save_state(w);
    if (l2_pf_ != nullptr) {
        l2_pf_->save_state(w);
    }
    if (filter_ != nullptr) {
        filter_->save_state(w);
    }
    w.begin_section("core.state");
    w.put_u64(last_load_complete_);
    w.put_u64(pgc_candidates_);
    w.put_u64(pgc_dropped_);
    w.put_u64(epoch_pgc_useful_);
    w.put_u64(epoch_pgc_useless_);
    w.put_u64(next_interval_);
    w.put_u64(next_epoch_);
    w.put_u64(next_audit_);
    put_stats(w, window_start_.l1d);
    put_stats(w, window_start_.llc);
    put_stats(w, window_start_.stlb);
    put_stats(w, window_start_.l1i);
    w.put_u64(window_start_.insts);
    w.put_u64(window_start_.cycle);
    w.put_u64(epoch_start_cycle_);
    w.put_u64(epoch_start_insts_);
    put_system_snapshot(w, last_snapshot_);
}

void
CoreComplex::restore_state(SnapshotReader &r)
{
    r.begin_section("core.mem");
    l2_->restore_state(r);
    l1i_->restore_state(r);
    l1d_->restore_state(r);
    page_table_->restore_state(r);
    itlb_->restore_state(r);
    dtlb_->restore_state(r);
    stlb_->restore_state(r);
    walker_->restore_state(r);
    r.begin_section("core.cpu");
    bp_.restore_state(r);
    core_.restore_state(r);
    frontend_.restore_state(r);
    l1d_pf_->restore_state(r);
    if (l2_pf_ != nullptr) {
        l2_pf_->restore_state(r);
    }
    if (filter_ != nullptr) {
        filter_->restore_state(r);
    }
    r.begin_section("core.state");
    last_load_complete_ = r.get_u64();
    pgc_candidates_ = r.get_u64();
    pgc_dropped_ = r.get_u64();
    epoch_pgc_useful_ = r.get_u64();
    epoch_pgc_useless_ = r.get_u64();
    next_interval_ = r.get_u64();
    next_epoch_ = r.get_u64();
    next_audit_ = r.get_u64();
    get_stats(r, window_start_.l1d);
    get_stats(r, window_start_.llc);
    get_stats(r, window_start_.stlb);
    get_stats(r, window_start_.l1i);
    window_start_.insts = r.get_u64();
    window_start_.cycle = r.get_u64();
    epoch_start_cycle_ = r.get_u64();
    epoch_start_insts_ = r.get_u64();
    get_system_snapshot(r, last_snapshot_);
    // Fast-forward the fresh workload to the snapshot position:
    // step() consumes exactly one workload instruction per
    // retirement, so the retired count IS the replay position.
    // Seekable workloads (trace files) re-position in O(1).
    workload_->skip(core_.retired());
}

std::string
Machine::save_snapshot() const
{
    SnapshotWriter w(config_fingerprint(cfg_, cores_.size()));
    w.begin_section("machine");
    w.put_u64(steps_);
    for (const RunMetrics &m : measure_start_) {
        put_metrics(w, m);
    }
    for (const RunMetrics &m : at_budget_) {
        put_metrics(w, m);
    }
    w.begin_section("dram");
    dram_->save_state(w);
    w.begin_section("llc");
    llc_->save_state(w);
    for (const auto &core : cores_) {
        core->save_state(w);
    }
    return w.finish();
}

void
Machine::restore_snapshot(const std::string &bytes)
{
    SnapshotReader r(bytes);
    const std::uint64_t want = config_fingerprint(cfg_, cores_.size());
    if (r.fingerprint() != want) {
        throw SnapshotError(SnapshotErrorKind::kConfigMismatch,
                            "snapshot was taken on a different machine "
                            "configuration");
    }
    r.begin_section("machine");
    steps_ = r.get_u64();
    for (RunMetrics &m : measure_start_) {
        get_metrics(r, m);
    }
    for (RunMetrics &m : at_budget_) {
        get_metrics(r, m);
    }
    r.begin_section("dram");
    dram_->restore_state(r);
    r.begin_section("llc");
    llc_->restore_state(r);
    for (const auto &core : cores_) {
        core->restore_state(r);
    }
    r.finish();
}

}  // namespace moka
