/**
 * @file
 * Machine assembly: N cores (Table IV configuration), each with a
 * private L1I/L1D/L2, TLB hierarchy, page table + walker, L1D
 * prefetcher and page-cross scheme, sharing an LLC and DRAM. This is
 * where the paper's page-cross prefetch flow (Fig. 5) lives: filter
 * decision -> TLB probe -> speculative walk -> prefetch fill, plus
 * all training hooks back into the filter.
 */
#ifndef MOKASIM_SIM_MACHINE_H
#define MOKASIM_SIM_MACHINE_H

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/hot_path.h"
#include "core/branch_pred.h"
#include "core/core.h"
#include "core/frontend.h"
#include "dram/dram.h"
#include "filter/policies.h"
#include "prefetch/prefetcher.h"
#include "trace/workload.h"
#include "vmem/page_table.h"
#include "vmem/tlb.h"
#include "vmem/walker.h"

namespace moka {

struct AuditAccess;
class AuditReport;
class SnapshotReader;
class SnapshotWriter;

/** Full machine configuration (defaults = paper Table IV). */
struct MachineConfig
{
    CoreConfig core;
    FrontendConfig frontend;
    BranchPredConfig branch;
    CacheConfig l1i{"L1I", 64, 12, 5, 16, false};      // 48KB
    CacheConfig l1d{"L1D", 64, 8, 4, 8, true};         // 32KB, PCB bits
    CacheConfig l2{"L2C", 1024, 8, 10, 32, false};     // 512KB
    CacheConfig llc{"LLC", 2048, 16, 20, 64, false};   // 2MB (per core x N)
    TlbConfig itlb{"iTLB", 16, 4, 1, 4, 4};            // 64-entry
    TlbConfig dtlb{"dTLB", 16, 4, 1, 4, 4};            // 64-entry
    TlbConfig stlb{"sTLB", 128, 12, 8, 16, 8};         // 1536-entry
    WalkerConfig walker;
    VmemConfig vmem;
    DramConfig dram;
    L1dPrefetcherKind l1d_prefetcher = L1dPrefetcherKind::kBerti;
    L2PrefetcherKind l2_prefetcher = L2PrefetcherKind::kNone;
    SchemeConfig scheme;                       //!< page-cross policy
    std::uint64_t interval_insts = 4096;       //!< snapshot cadence
    std::uint64_t epoch_insts = 65536;         //!< adaptive epoch length
    //! invariant-audit cadence in audit-enabled builds (see
    //! common/check.h); 0 disables the periodic sweep
    std::uint64_t audit_interval_insts = 262144;
};

/**
 * Per-core counters. All fields are raw cumulative counts so that a
 * measured region is simply `end - start` (operator-); rates are
 * derived by the accessors.
 */
struct RunMetrics
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    AccessStats l1i, l1d, l2, llc;  //!< demand access/miss pairs
    AccessStats dtlb, stlb;
    AccessStats l2_walk;            //!< page-walker refs hitting the L2
    std::uint64_t l1d_writebacks = 0;
    std::uint64_t l1d_pf_lookups = 0;  //!< prefetch requests observed
    std::uint64_t pf_issued = 0;    //!< all prefetch fills
    std::uint64_t pf_useful = 0;
    std::uint64_t pf_useless = 0;
    std::uint64_t pgc_candidates = 0; //!< page-cross candidates seen
    std::uint64_t pgc_issued = 0;
    std::uint64_t pgc_useful = 0;
    std::uint64_t pgc_useless = 0;
    std::uint64_t pgc_dropped = 0;  //!< discarded by the policy/filter
    std::uint64_t demand_walks = 0;
    std::uint64_t spec_walks = 0;
    std::uint64_t walk_refs = 0;      //!< PTE memory references
    std::uint64_t dram_accesses = 0;  //!< machine-wide DRAM transfers
    std::uint64_t branch_mispredicts = 0;

    /** Instructions per cycle over the region. */
    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : double(instructions) / double(cycles);
    }

    /** MPKI helpers over the region. */
    double l1i_mpki() const { return l1i.mpki(instructions); }
    double l1d_mpki() const { return l1d.mpki(instructions); }
    double l2_mpki() const { return l2.mpki(instructions); }
    double llc_mpki() const { return llc.mpki(instructions); }
    double dtlb_mpki() const { return dtlb.mpki(instructions); }
    double stlb_mpki() const { return stlb.mpki(instructions); }
    double walk_mpki() const { return l2_walk.mpki(instructions); }

    /** Prefetch accuracy over resolved prefetches. */
    double pf_accuracy() const
    {
        const auto r = pf_useful + pf_useless;
        return r == 0 ? 0.0 : double(pf_useful) / double(r);
    }

    /** Page-cross accuracy over resolved PGC prefetches. */
    double pgc_accuracy() const
    {
        const auto r = pgc_useful + pgc_useless;
        return r == 0 ? 0.0 : double(pgc_useful) / double(r);
    }

    RunMetrics operator-(const RunMetrics &o) const;
};

/** One core with its private memory-side structures. */
class CoreComplex : public CacheListener
{
  public:
    /**
     * @param cfg      machine configuration
     * @param shared   next level below the private L2 (LLC)
     * @param workload instruction stream (ownership taken)
     * @param seed     per-core seed (frame allocator etc.)
     */
    CoreComplex(const MachineConfig &cfg, Cache *llc,
                WorkloadPtr workload, std::uint64_t seed);
    ~CoreComplex() override;

    /** Execute one instruction. */
    SIM_HOT void step();

    /** Instructions retired so far. */
    InstCount retired() const { return core_.retired(); }

    /** Cycle of the youngest retirement (the core's clock). */
    Cycle now() const { return core_.last_retire(); }

    /** Snapshot cumulative counters into a RunMetrics. */
    SIM_COLD RunMetrics metrics() const;

    /** L1D cache (tests/diagnostics). */
    const Cache &l1d() const { return *l1d_; }
    /** sTLB (tests/diagnostics). */
    const Tlb &stlb() const { return *stlb_; }
    /** Active page-cross filter, may be null. */
    const PageCrossFilter *filter() const { return filter_.get(); }

    // CacheListener (L1D lifetime events):
    void on_pgc_first_use(PhysAddr block_paddr) override;
    void on_eviction(PhysAddr block_paddr, bool prefetched, bool pgc,
                     bool used) override;

    /**
     * Run every structural auditor over this core's private
     * structures (caches, TLBs vs page table, walker, filter, and the
     * PCB<->pUB cross-check). Always compiled; the machine invokes it
     * periodically only in audit-enabled builds.
     */
    SIM_COLD void audit(AuditReport &report) const;

    /**
     * Serialize every architectural structure in this core complex.
     * The workload itself is not serialized: its replay position is
     * the retired-instruction count, and restore_state fast-forwards
     * a freshly built workload to it (CoreComplex::step consumes
     * exactly one workload instruction per retirement).
     */
    SIM_COLD void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    SIM_COLD void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;
    struct Translated
    {
        PhysAddr paddr{};
        PhysAddr page_base{};
        bool large = false;
        Cycle done = 0;
    };

    Translated translate_demand(VirtAddr vaddr, Cycle now);
    void handle_memory(const TraceInst &inst, Cycle dispatch,
                       Cycle &complete);
    void run_l1d_prefetcher(const PrefetchContext &ctx,
                            const Translated &trigger);
    void process_candidate(const PrefetchRequest &req,
                           const Translated &trigger, Cycle now);
    void run_l2_prefetcher(PhysAddr trigger_paddr, Addr pc, Cycle now);
    //! interval/epoch cadence work: amortized over interval_insts
    //! accesses, so it is exempt from the per-access contract
    SIM_COLD void interval_tick();
    SIM_COLD SystemSnapshot snapshot() const;

    // LINT_SNAPSHOT_OK: config, checked via the snapshot fingerprint
    const MachineConfig &cfg_;
    // LINT_SNAPSHOT_OK: collaborator, owned by the machine
    Cache *llc_shared_;  //!< shared LLC (observed for snapshots)

    // Memory-side structures (construction order matters).
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<PageTable> page_table_;
    std::unique_ptr<Tlb> itlb_;
    std::unique_ptr<Tlb> dtlb_;
    std::unique_ptr<Tlb> stlb_;
    std::unique_ptr<PageWalker> walker_;

    BranchPredictor bp_;
    Core core_;
    Frontend frontend_;
    // LINT_SNAPSHOT_OK: replayed, fast-forwarded to core_.retired()
    WorkloadPtr workload_;

    PrefetcherPtr l1d_pf_;
    PrefetcherPtr l2_pf_;
    FilterPtr filter_;

    Cycle last_load_complete_ = 0;  //!< dependent-load serialization
    // LINT_SNAPSHOT_OK: scratch, cleared before every use
    std::vector<PrefetchRequest> pf_buffer_;
    // LINT_SNAPSHOT_OK: scratch, cleared before every use
    std::vector<PrefetchRequest> l2_pf_buffer_;

    // Page-cross bookkeeping.
    std::uint64_t pgc_candidates_ = 0;
    std::uint64_t pgc_dropped_ = 0;
    std::uint64_t epoch_pgc_useful_ = 0;
    std::uint64_t epoch_pgc_useless_ = 0;

    // Interval/epoch state.
    InstCount next_interval_ = 0;
    InstCount next_epoch_ = 0;
    InstCount next_audit_ = 0;  //!< audit-enabled builds only
    struct Window
    {
        AccessStats l1d, llc, stlb, l1i;
        InstCount insts = 0;
        Cycle cycle = 0;
    } window_start_;
    Cycle epoch_start_cycle_ = 0;
    InstCount epoch_start_insts_ = 0;
    SystemSnapshot last_snapshot_;
};

/**
 * Cooperative per-step hook for Machine::run. The job engine chains a
 * watchdog (step-budget + wall-clock heartbeat) and the fault
 * injector through this interface; a hook cancels the run by
 * throwing (typically a classified JobError), which the engine
 * catches and maps onto the failure taxonomy.
 */
class RunTickHook
{
  public:
    virtual ~RunTickHook() = default;

    /**
     * Called once per machine step (one instruction on one core).
     * @p steps counts from 1 within the machine's lifetime, across
     * run() calls, so budgets cover warmup + measurement together.
     */
    virtual void on_tick(std::uint64_t steps) = 0;
};

/**
 * Fans one Machine::run hook slot out to several hooks in add()
 * order (watchdog, fault injector, telemetry sampler). Non-owning;
 * null hooks are skipped at add() time so a chain of zero or one
 * hook costs nothing extra per tick.
 */
class TickHookChain : public RunTickHook
{
  public:
    /** Append @p hook (ignored when null). */
    void add(RunTickHook *hook)
    {
        if (hook != nullptr) {
            hooks_.push_back(hook);
        }
    }

    /** The chain itself, or the single hook / null when degenerate. */
    RunTickHook *as_hook()
    {
        if (hooks_.empty()) {
            return nullptr;
        }
        return hooks_.size() == 1 ? hooks_.front() : this;
    }

    void on_tick(std::uint64_t steps) override
    {
        for (RunTickHook *hook : hooks_) {
            // LINT_HOT_OK: the engine's fault/watchdog/telemetry seam;
            // the chain only exists when >= 2 hooks are installed, and
            // measured perf runs install none (run() sees nullptr).
            hook->on_tick(steps);
        }
    }

  private:
    std::vector<RunTickHook *> hooks_;
};

/** The machine: cores + shared LLC + DRAM. */
class Machine
{
  public:
    /** One workload per core. */
    Machine(const MachineConfig &cfg, std::vector<WorkloadPtr> workloads);
    ~Machine();

    /**
     * Run until every core has retired at least @p insts_per_core
     * instructions past its current count (cores that finish early
     * keep replaying, per the paper's multi-core methodology).
     * Records each core's cycle count at its own crossing point.
     *
     * @p hook, when non-null, is invoked after every step and may
     * throw to cancel the run (watchdog deadline, fault injection).
     * The machine stays destructible after such a cancellation but
     * its counters describe a partial run.
     */
    SIM_HOT void run(InstCount insts_per_core, RunTickHook *hook = nullptr);

    /** Number of cores. */
    std::size_t num_cores() const { return cores_.size(); }

    /** Cumulative metrics of core @p i. */
    RunMetrics metrics(std::size_t i) const { return cores_[i]->metrics(); }

    /** Begin a measured region (after warmup). */
    void start_measurement();

    /**
     * Metrics of the measured region for core @p i: counters since
     * start_measurement(), with cycles taken at the core's own
     * crossing of the instruction budget in the last run() call.
     */
    RunMetrics measured(std::size_t i) const;

    /** Core access (tests/diagnostics). */
    CoreComplex &core(std::size_t i) { return *cores_[i]; }
    const CoreComplex &core(std::size_t i) const { return *cores_[i]; }

    /** Lifetime step count (one instruction on one core per step). */
    std::uint64_t steps() const { return steps_; }

    /** Configuration echo. */
    const MachineConfig &config() const { return cfg_; }

    /** Audit the shared levels (LLC, DRAM) and every core. */
    SIM_COLD void audit(AuditReport &report) const;

    /**
     * Serialize the whole machine (DRAM, LLC, every core complex and
     * the run bookkeeping) into a snapshot stamped with this
     * configuration's fingerprint.
     */
    SIM_COLD std::string save_snapshot() const;

    /**
     * Restore a snapshot produced by save_snapshot() on an identical
     * configuration. The machine must be freshly built (workloads
     * unconsumed); they are fast-forwarded to the snapshot position.
     *
     * @throws SnapshotError kConfigMismatch when the fingerprint
     *         differs, or the corruption taxonomy of SnapshotReader.
     */
    SIM_COLD void restore_snapshot(const std::string &bytes);

  private:
    MachineConfig cfg_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<CoreComplex>> cores_;
    std::vector<RunMetrics> measure_start_;
    std::vector<RunMetrics> at_budget_;  //!< metrics at own crossing
    //! run() scratch, sized once at construction (rule L10)
    std::vector<InstCount> run_target_;
    // uint8_t, not the bit-packed vector<bool>: the run loop reads
    // this per step and the proxy-object bit math costs more than the
    // byte it saves (rule L19)
    std::vector<std::uint8_t> run_crossed_;
    std::uint64_t steps_ = 0;            //!< lifetime step count (hooks)
};

/** Table IV machine configuration for @p cores cores. */
MachineConfig default_config(unsigned cores = 1);

/**
 * Order-sensitive FNV/mix hash over every field of @p cfg (and the
 * core count). Two configurations with equal fingerprints build
 * machines whose snapshots are interchangeable; the scheme's filter
 * factory is covered by the scheme name, policy and flags.
 */
std::uint64_t config_fingerprint(const MachineConfig &cfg,
                                 std::size_t cores);

}  // namespace moka

#endif  // MOKASIM_SIM_MACHINE_H
