#include "sim/multicore.h"

#include "common/rng.h"
#include "sim/runner.h"
#include "telemetry/timeseries.h"

namespace moka {

std::vector<std::vector<WorkloadSpec>>
make_mixes(const std::vector<WorkloadSpec> &roster, std::size_t count,
           unsigned cores, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<WorkloadSpec>> mixes;
    mixes.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
        std::vector<WorkloadSpec> mix;
        mix.reserve(cores);
        for (unsigned c = 0; c < cores; ++c) {
            mix.push_back(roster[rng.below(roster.size())]);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

double
IsolationCache::get_or_compute(const std::string &name,
                               const std::function<double()> &compute)
{
    {
        SimMutexLock lock(&mu_);
        auto it = map_.find(name);
        if (it != map_.end()) {
            return it->second;
        }
    }
    // Computed outside the lock: an isolation run takes far longer
    // than a redundant duplicate is worth blocking other workers for,
    // and the run is deterministic so duplicates agree.
    const double value = compute();
    SimMutexLock lock(&mu_);
    return map_.try_emplace(name, value).first->second;
}

std::size_t
IsolationCache::size() const
{
    SimMutexLock lock(&mu_);
    return map_.size();
}

namespace {

double
isolation_ipc(L1dPrefetcherKind prefetcher, const WorkloadSpec &spec,
              const MulticoreConfig &mc, IsolationCache &iso,
              RunTickHook *hook)
{
    return iso.get_or_compute(spec.name, [&]() {
        // Isolation run: multi-core machine configuration (bigger
        // LLC, more channels), a single active core, baseline scheme.
        MachineConfig cfg = default_config(mc.cores);
        cfg.l1d_prefetcher = prefetcher;
        cfg.scheme = scheme_discard();
        std::vector<WorkloadPtr> w;
        w.push_back(make_workload(spec));
        Machine machine(cfg, std::move(w));
        machine.run(mc.warmup_insts, hook);
        machine.start_measurement();
        machine.run(mc.measure_insts, hook);
        return machine.measured(0).ipc();
    });
}

}  // namespace

double
weighted_ipc(L1dPrefetcherKind prefetcher, const SchemeConfig &scheme,
             const std::vector<WorkloadSpec> &mix,
             const MulticoreConfig &mc, IsolationCache &iso,
             RunTickHook *hook, TelemetrySession *telemetry,
             const std::string &label, std::uint32_t trace_pid)
{
    MachineConfig cfg = default_config(static_cast<unsigned>(mix.size()));
    cfg.l1d_prefetcher = prefetcher;
    cfg.scheme = scheme;
    std::vector<WorkloadPtr> workloads;
    workloads.reserve(mix.size());
    for (const WorkloadSpec &spec : mix) {
        workloads.push_back(make_workload(spec));
    }
    Machine machine(cfg, std::move(workloads));
    ScopedRunTelemetry scoped(telemetry, &machine, label, trace_pid);
    RunTickHook *run_hook = scoped.hook(hook);
    scoped.span("warmup",
                [&] { machine.run(mc.warmup_insts, run_hook); });
    machine.start_measurement();
    scoped.span("measure",
                [&] { machine.run(mc.measure_insts, run_hook); });

    double sum = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const double iso_ipc =
            isolation_ipc(prefetcher, mix[i], mc, iso, hook);
        if (iso_ipc > 0.0) {
            sum += machine.measured(i).ipc() / iso_ipc;
        }
    }
    return sum;
}

double
weighted_speedup(L1dPrefetcherKind prefetcher, const SchemeConfig &scheme,
                 const SchemeConfig &baseline,
                 const std::vector<WorkloadSpec> &mix,
                 const MulticoreConfig &mc, IsolationCache &iso,
                 RunTickHook *hook)
{
    const double ws = weighted_ipc(prefetcher, scheme, mix, mc, iso, hook);
    const double wb =
        weighted_ipc(prefetcher, baseline, mix, mc, iso, hook);
    return wb > 0.0 ? ws / wb : 0.0;
}

}  // namespace moka
