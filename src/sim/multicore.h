/**
 * @file
 * Multi-core evaluation (paper §IV-A2 and Fig. 19): randomly
 * generated 8-core mixes, weighted speedup over the Discard PGC
 * baseline with isolation IPCs, and the replay-until-all-finish rule.
 */
#ifndef MOKASIM_SIM_MULTICORE_H
#define MOKASIM_SIM_MULTICORE_H

#include <map>
#include <string>
#include <vector>

#include "filter/policies.h"
#include "sim/machine.h"
#include "trace/suites.h"

namespace moka {

/** Multi-core run parameters. */
struct MulticoreConfig
{
    unsigned cores = 8;
    InstCount warmup_insts = 100'000;
    InstCount measure_insts = 400'000;
};

/** Draw @p count random @p cores-wide mixes from @p roster. */
std::vector<std::vector<WorkloadSpec>>
make_mixes(const std::vector<WorkloadSpec> &roster, std::size_t count,
           unsigned cores, std::uint64_t seed);

/** Isolation-IPC cache keyed by workload name. */
using IsolationCache = std::map<std::string, double>;

/**
 * Weighted IPC of @p mix under @p scheme: sum of
 * IPC_multicore / IPC_isolation per core (paper's metric). Isolation
 * IPCs are computed on demand against the multi-core machine
 * configuration with the baseline (Discard PGC) scheme and memoized
 * in @p iso.
 */
double weighted_ipc(L1dPrefetcherKind prefetcher,
                    const SchemeConfig &scheme,
                    const std::vector<WorkloadSpec> &mix,
                    const MulticoreConfig &mc, IsolationCache &iso);

/**
 * Weighted speedup of @p scheme over @p baseline for @p mix
 * (both normalized with the same isolation IPCs).
 */
double weighted_speedup(L1dPrefetcherKind prefetcher,
                        const SchemeConfig &scheme,
                        const SchemeConfig &baseline,
                        const std::vector<WorkloadSpec> &mix,
                        const MulticoreConfig &mc, IsolationCache &iso);

}  // namespace moka

#endif  // MOKASIM_SIM_MULTICORE_H
