/**
 * @file
 * Multi-core evaluation (paper §IV-A2 and Fig. 19): randomly
 * generated 8-core mixes, weighted speedup over the Discard PGC
 * baseline with isolation IPCs, and the replay-until-all-finish rule.
 */
#ifndef MOKASIM_SIM_MULTICORE_H
#define MOKASIM_SIM_MULTICORE_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "filter/policies.h"
#include "sim/machine.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {

class TelemetrySession;

/** Multi-core run parameters. */
struct MulticoreConfig
{
    unsigned cores = 8;
    //! shared with RunConfig so the two entry points cannot drift
    InstCount warmup_insts = kDefaultWarmupInsts;
    InstCount measure_insts = 400'000;
};

/** Draw @p count random @p cores-wide mixes from @p roster. */
std::vector<std::vector<WorkloadSpec>>
make_mixes(const std::vector<WorkloadSpec> &roster, std::size_t count,
           unsigned cores, std::uint64_t seed);

/**
 * Isolation-IPC memo keyed by workload name. Thread-safe so fig19's
 * (mix, scheme) jobs can share one cache across engine workers: a
 * value may be computed twice under contention, but isolation runs
 * are deterministic, so whichever insert wins stores the same number
 * and parallel sweeps stay byte-identical to serial ones.
 */
class IsolationCache
{
  public:
    /**
     * Return the memoized IPC for @p name, or invoke @p compute
     * (outside the lock — isolation runs are long) and memoize it.
     */
    double get_or_compute(const std::string &name,
                          const std::function<double()> &compute)
        SIM_EXCLUDES(mu_);

    /** Number of memoized entries. */
    std::size_t size() const SIM_EXCLUDES(mu_);

  private:
    mutable SimMutex mu_;
    std::map<std::string, double> map_ SIM_GUARDED_BY(mu_);
};

/**
 * Weighted IPC of @p mix under @p scheme: sum of
 * IPC_multicore / IPC_isolation per core (paper's metric). Isolation
 * IPCs are computed on demand against the multi-core machine
 * configuration with the baseline (Discard PGC) scheme and memoized
 * in @p iso. @p hook (may be null) is threaded into every
 * Machine::run for watchdog/fault-injection coverage.
 *
 * With an active @p telemetry session, the multi-core machine is
 * sampled per adaptive epoch (per-core T_a / PGC-accuracy tracks
 * under process id @p trace_pid, timeseries file named @p label).
 * Isolation runs stay untelemetried: their results are memoized
 * across jobs, so instrumenting them would attribute one job's
 * samples to another's track.
 */
double weighted_ipc(L1dPrefetcherKind prefetcher,
                    const SchemeConfig &scheme,
                    const std::vector<WorkloadSpec> &mix,
                    const MulticoreConfig &mc, IsolationCache &iso,
                    RunTickHook *hook = nullptr,
                    TelemetrySession *telemetry = nullptr,
                    const std::string &label = "",
                    std::uint32_t trace_pid = 0);

/**
 * Weighted speedup of @p scheme over @p baseline for @p mix
 * (both normalized with the same isolation IPCs).
 */
double weighted_speedup(L1dPrefetcherKind prefetcher,
                        const SchemeConfig &scheme,
                        const SchemeConfig &baseline,
                        const std::vector<WorkloadSpec> &mix,
                        const MulticoreConfig &mc, IsolationCache &iso,
                        RunTickHook *hook = nullptr);

}  // namespace moka

#endif  // MOKASIM_SIM_MULTICORE_H
