#include "sim/report.h"

#include <sstream>

namespace moka {

std::string
csv_header()
{
    return "workload,suite,scheme,prefetcher,instructions,cycles,ipc,"
           "l1i_mpki,l1d_mpki,l2_mpki,llc_mpki,dtlb_mpki,stlb_mpki,"
           "pf_issued,pf_useful,pf_useless,pf_accuracy,"
           "pgc_candidates,pgc_issued,pgc_useful,pgc_useless,"
           "pgc_dropped,pgc_accuracy,demand_walks,spec_walks,"
           "branch_mispredicts";
}

std::string
to_csv(const ResultRow &row)
{
    const RunMetrics &m = row.metrics;
    std::ostringstream os;
    os << row.workload << ',' << row.suite << ',' << row.scheme << ','
       << row.prefetcher << ',' << m.instructions << ',' << m.cycles << ','
       << m.ipc() << ',' << m.l1i_mpki() << ',' << m.l1d_mpki() << ','
       << m.l2_mpki() << ',' << m.llc_mpki() << ',' << m.dtlb_mpki() << ','
       << m.stlb_mpki() << ',' << m.pf_issued << ',' << m.pf_useful << ','
       << m.pf_useless << ',' << m.pf_accuracy() << ','
       << m.pgc_candidates << ',' << m.pgc_issued << ',' << m.pgc_useful
       << ',' << m.pgc_useless << ',' << m.pgc_dropped << ','
       << m.pgc_accuracy() << ',' << m.demand_walks << ',' << m.spec_walks
       << ',' << m.branch_mispredicts;
    return os.str();
}

void
write_csv(std::ostream &os, const std::vector<ResultRow> &rows)
{
    os << csv_header() << '\n';
    for (const ResultRow &row : rows) {
        os << to_csv(row) << '\n';
    }
}

std::string
to_json(const ResultRow &row)
{
    const RunMetrics &m = row.metrics;
    std::ostringstream os;
    os << "{\n"
       << "  \"workload\": \"" << row.workload << "\",\n"
       << "  \"suite\": \"" << row.suite << "\",\n"
       << "  \"scheme\": \"" << row.scheme << "\",\n"
       << "  \"prefetcher\": \"" << row.prefetcher << "\",\n"
       << "  \"instructions\": " << m.instructions << ",\n"
       << "  \"cycles\": " << m.cycles << ",\n"
       << "  \"ipc\": " << m.ipc() << ",\n"
       << "  \"mpki\": {\n"
       << "    \"l1i\": " << m.l1i_mpki() << ",\n"
       << "    \"l1d\": " << m.l1d_mpki() << ",\n"
       << "    \"l2\": " << m.l2_mpki() << ",\n"
       << "    \"llc\": " << m.llc_mpki() << ",\n"
       << "    \"dtlb\": " << m.dtlb_mpki() << ",\n"
       << "    \"stlb\": " << m.stlb_mpki() << "\n"
       << "  },\n"
       << "  \"prefetch\": {\n"
       << "    \"issued\": " << m.pf_issued << ",\n"
       << "    \"useful\": " << m.pf_useful << ",\n"
       << "    \"useless\": " << m.pf_useless << ",\n"
       << "    \"accuracy\": " << m.pf_accuracy() << "\n"
       << "  },\n"
       << "  \"page_cross\": {\n"
       << "    \"candidates\": " << m.pgc_candidates << ",\n"
       << "    \"issued\": " << m.pgc_issued << ",\n"
       << "    \"useful\": " << m.pgc_useful << ",\n"
       << "    \"useless\": " << m.pgc_useless << ",\n"
       << "    \"dropped\": " << m.pgc_dropped << ",\n"
       << "    \"accuracy\": " << m.pgc_accuracy() << "\n"
       << "  },\n"
       << "  \"walks\": {\n"
       << "    \"demand\": " << m.demand_walks << ",\n"
       << "    \"speculative\": " << m.spec_walks << "\n"
       << "  }\n"
       << "}";
    return os.str();
}

}  // namespace moka
