/**
 * @file
 * Machine-readable result export: RunMetrics rows to CSV and single
 * runs to JSON, for plotting the figure data outside the harnesses.
 */
#ifndef MOKASIM_SIM_REPORT_H
#define MOKASIM_SIM_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace moka {

/** One labelled result row. */
struct ResultRow
{
    std::string workload;
    std::string suite;
    std::string scheme;
    std::string prefetcher;
    RunMetrics metrics;
};

/** CSV header matching write_csv's columns. */
std::string csv_header();

/** One CSV line for @p row (no trailing newline). */
std::string to_csv(const ResultRow &row);

/** Write header + all rows to @p os. */
void write_csv(std::ostream &os, const std::vector<ResultRow> &rows);

/** Pretty JSON object for one run. */
std::string to_json(const ResultRow &row);

}  // namespace moka

#endif  // MOKASIM_SIM_REPORT_H
