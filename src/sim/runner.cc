#include "sim/runner.h"

#include "audit/audit.h"
#include "common/check.h"
#include "telemetry/timeseries.h"

namespace moka {

MachineConfig
make_config(L1dPrefetcherKind prefetcher, const SchemeConfig &scheme)
{
    MachineConfig cfg = default_config(1);
    cfg.l1d_prefetcher = prefetcher;
    cfg.scheme = scheme;
    return cfg;
}

RunMetrics
run_single(const MachineConfig &cfg, const WorkloadSpec &spec,
           const RunConfig &run)
{
    return run_single_workload(cfg, make_workload(spec), run,
                               /*hook=*/nullptr);
}

RunMetrics
run_single_workload(const MachineConfig &cfg, WorkloadPtr workload,
                    const RunConfig &run, RunTickHook *hook,
                    std::string *audit_findings,
                    TelemetrySession *telemetry, const std::string &label,
                    std::uint32_t trace_pid)
{
    std::vector<WorkloadPtr> w;
    w.push_back(std::move(workload));
    Machine machine(cfg, std::move(w));
    ScopedRunTelemetry scoped(telemetry, &machine, label, trace_pid);
    hook = scoped.hook(hook);
    scoped.span("warmup", [&] { machine.run(run.warmup_insts, hook); });
    machine.start_measurement();
    scoped.span("measure", [&] { machine.run(run.measure_insts, hook); });
#if SIM_AUDIT_ENABLED
    // Final full-machine sweep so even sub-cadence runs get audited.
    AuditReport report(/*forward=*/true);
    machine.audit(report);
    if (audit_findings != nullptr && !report.ok()) {
        *audit_findings = report.to_string();
    }
#else
    (void)audit_findings;
#endif
    return machine.measured(0);
}

}  // namespace moka
