#include "sim/runner.h"

#include "audit/audit.h"
#include "common/check.h"
#include "common/hashing.h"
#include "snapshot/cache.h"
#include "snapshot/format.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"

namespace moka {

MachineConfig
make_config(L1dPrefetcherKind prefetcher, const SchemeConfig &scheme)
{
    MachineConfig cfg = default_config(1);
    cfg.l1d_prefetcher = prefetcher;
    cfg.scheme = scheme;
    return cfg;
}

RunMetrics
run_single(const MachineConfig &cfg, const WorkloadSpec &spec,
           const RunConfig &run)
{
    return run_single_workload(cfg, make_workload(spec), run,
                               /*hook=*/nullptr);
}

RunMetrics
run_single_workload(const MachineConfig &cfg, WorkloadPtr workload,
                    const RunConfig &run, RunTickHook *hook,
                    std::string *audit_findings,
                    TelemetrySession *telemetry, const std::string &label,
                    std::uint32_t trace_pid)
{
    std::vector<WorkloadPtr> w;
    w.push_back(std::move(workload));
    Machine machine(cfg, std::move(w));
    ScopedRunTelemetry scoped(telemetry, &machine, label, trace_pid);
    hook = scoped.hook(hook);
    scoped.span("warmup", [&] { machine.run(run.warmup_insts, hook); });
    machine.start_measurement();
    scoped.span("measure", [&] { machine.run(run.measure_insts, hook); });
#if SIM_AUDIT_ENABLED
    // Final full-machine sweep so even sub-cadence runs get audited.
    AuditReport report(/*forward=*/true);
    machine.audit(report);
    if (audit_findings != nullptr && !report.ok()) {
        *audit_findings = report.to_string();
    }
#else
    (void)audit_findings;
#endif
    return machine.measured(0);
}

namespace {

/** Bump a snapshot telemetry counter (no-op without a session). */
void
count_snapshot(TelemetrySession *telemetry, const char *name)
{
    if (telemetry != nullptr && telemetry->active()) {
        telemetry->registry().counter(name).add();
    }
}

}  // namespace

RunMetrics
run_single_workload_snapshot(const MachineConfig &cfg,
                             const WorkloadFactory &make,
                             const RunConfig &run, RunTickHook *hook,
                             SnapshotCache &cache,
                             std::uint64_t warmup_key,
                             std::string *audit_findings,
                             TelemetrySession *telemetry,
                             const std::string &label,
                             std::uint32_t trace_pid)
{
    // The full machine configuration is part of the key: snapshots
    // are never shared across schemes/prefetchers, because the filter
    // and prefetcher state warmed under one scheme is not the state a
    // straight-through run of another scheme would reach.
    std::uint64_t key = config_fingerprint(cfg, 1);
    key = hash_combine(key, warmup_key);
    key = hash_combine(key, run.warmup_insts);

    SnapshotCache::FetchOutcome outcome;
    // A throwing producer (watchdog timeout, injected fault) escapes
    // here and is classified by the job engine as usual.
    const SnapshotBlob blob = cache.fetch(
        key,
        [&]() {
            std::vector<WorkloadPtr> w;
            w.push_back(make());
            Machine machine(cfg, std::move(w));
            machine.run(run.warmup_insts, hook);
            return machine.save_snapshot();
        },
        &outcome);
    count_snapshot(telemetry, outcome.hit ? "snapshot.hits"
                                          : "snapshot.misses");
    if (outcome.saved) {
        count_snapshot(telemetry, "snapshot.saves");
    }

    {
        // Hit or miss, the measuring machine is built by restore so
        // both paths are the same code path (and a miss round-trips
        // the serialization every time, keeping it honest).
        std::vector<WorkloadPtr> w;
        w.push_back(make());
        Machine machine(cfg, std::move(w));
        ScopedRunTelemetry scoped(telemetry, &machine, label, trace_pid);
        // Chained hook is scoped to this block: the cold-fallback
        // path below must chain the *original* hook afresh.
        RunTickHook *run_hook = scoped.hook(hook);
        bool restored = false;
        try {
            scoped.span("snapshot:restore",
                        [&] { machine.restore_snapshot(*blob); });
            restored = true;
        } catch (const SnapshotError &) {
            // Key collision or torn blob that survived the cache's
            // structural probe: classified (kSnapshotInvalid family),
            // counted, and the run falls back to a cold warmup below.
            count_snapshot(telemetry, "snapshot.invalid");
        }
        if (restored) {
            count_snapshot(telemetry, "snapshot.restores");
            machine.start_measurement();
            scoped.span("measure",
                        [&] { machine.run(run.measure_insts, run_hook); });
#if SIM_AUDIT_ENABLED
            AuditReport report(/*forward=*/true);
            machine.audit(report);
            if (audit_findings != nullptr && !report.ok()) {
                *audit_findings = report.to_string();
            }
#else
            (void)audit_findings;
#endif
            return machine.measured(0);
        }
    }
    // Cold fallback: identical to a run without snapshot reuse.
    return run_single_workload(cfg, make(), run, hook, audit_findings,
                               telemetry, label, trace_pid);
}

}  // namespace moka
