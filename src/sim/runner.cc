#include "sim/runner.h"

#include "audit/audit.h"
#include "common/check.h"

namespace moka {

MachineConfig
make_config(L1dPrefetcherKind prefetcher, const SchemeConfig &scheme)
{
    MachineConfig cfg = default_config(1);
    cfg.l1d_prefetcher = prefetcher;
    cfg.scheme = scheme;
    return cfg;
}

RunMetrics
run_single(const MachineConfig &cfg, const WorkloadSpec &spec,
           const RunConfig &run)
{
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(spec));
    Machine machine(cfg, std::move(w));
    machine.run(run.warmup_insts);
    machine.start_measurement();
    machine.run(run.measure_insts);
#if SIM_AUDIT_ENABLED
    // Final full-machine sweep so even sub-cadence runs get audited.
    AuditReport report(/*forward=*/true);
    machine.audit(report);
#endif
    return machine.measured(0);
}

}  // namespace moka
