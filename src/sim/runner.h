/**
 * @file
 * Single-core experiment runner: warmup + measured region for one
 * (workload, scheme) pair, mirroring the paper's SimPoint
 * methodology at a laptop-friendly scale.
 */
#ifndef MOKASIM_SIM_RUNNER_H
#define MOKASIM_SIM_RUNNER_H

#include "sim/machine.h"
#include "trace/suites.h"

namespace moka {

/** Instruction budgets for one run. */
struct RunConfig
{
    InstCount warmup_insts = 200'000;
    InstCount measure_insts = 800'000;

    /** Scale both budgets by @p factor (for --full sweeps). */
    RunConfig scaled(double factor) const
    {
        RunConfig r = *this;
        r.warmup_insts = static_cast<InstCount>(
            static_cast<double>(warmup_insts) * factor);
        r.measure_insts = static_cast<InstCount>(
            static_cast<double>(measure_insts) * factor);
        return r;
    }
};

/**
 * Run @p spec single-core under @p cfg: warm up, measure, return the
 * measured-region metrics.
 */
RunMetrics run_single(const MachineConfig &cfg, const WorkloadSpec &spec,
                      const RunConfig &run);

class TelemetrySession;

/**
 * Engine-facing variant: run an already-constructed @p workload with
 * a cooperative @p hook threaded into Machine::run (watchdog / fault
 * injection; may be null). In audit-enabled builds the end-of-run
 * sweep's findings are returned through @p audit_findings (when
 * non-null) instead of only the global failure handler, so the job
 * engine can classify them as JobErrorCode::kAuditFailure.
 *
 * When @p telemetry is an active session, the run is sampled per
 * adaptive epoch into `<dir>/<label>.epochs.{csv,jsonl}` and its
 * warmup/measure phases plus per-epoch counter tracks are traced
 * under process id @p trace_pid.
 */
RunMetrics run_single_workload(const MachineConfig &cfg,
                               WorkloadPtr workload, const RunConfig &run,
                               RunTickHook *hook,
                               std::string *audit_findings = nullptr,
                               TelemetrySession *telemetry = nullptr,
                               const std::string &label = "",
                               std::uint32_t trace_pid = 0);

/**
 * Convenience: default Table IV machine with @p prefetcher and
 * @p scheme.
 */
MachineConfig make_config(L1dPrefetcherKind prefetcher,
                          const SchemeConfig &scheme);

}  // namespace moka

#endif  // MOKASIM_SIM_RUNNER_H
