/**
 * @file
 * Single-core experiment runner: warmup + measured region for one
 * (workload, scheme) pair, mirroring the paper's SimPoint
 * methodology at a laptop-friendly scale.
 */
#ifndef MOKASIM_SIM_RUNNER_H
#define MOKASIM_SIM_RUNNER_H

#include <functional>

#include "sim/machine.h"
#include "trace/suites.h"

namespace moka {

/**
 * Default warmup budget shared by the single-core RunConfig and the
 * multicore harness (sim/multicore.h) so the two entry points cannot
 * silently drift apart. Snapshot warmup-reuse keys include the warmup
 * budget, so a change here also invalidates cached snapshots.
 */
inline constexpr InstCount kDefaultWarmupInsts = 200'000;

/** Instruction budgets for one run. */
struct RunConfig
{
    InstCount warmup_insts = kDefaultWarmupInsts;
    InstCount measure_insts = 800'000;

    /** Scale both budgets by @p factor (for --full sweeps). */
    RunConfig scaled(double factor) const
    {
        RunConfig r = *this;
        r.warmup_insts = static_cast<InstCount>(
            static_cast<double>(warmup_insts) * factor);
        r.measure_insts = static_cast<InstCount>(
            static_cast<double>(measure_insts) * factor);
        return r;
    }
};

/**
 * Run @p spec single-core under @p cfg: warm up, measure, return the
 * measured-region metrics.
 */
RunMetrics run_single(const MachineConfig &cfg, const WorkloadSpec &spec,
                      const RunConfig &run);

class TelemetrySession;

/**
 * Engine-facing variant: run an already-constructed @p workload with
 * a cooperative @p hook threaded into Machine::run (watchdog / fault
 * injection; may be null). In audit-enabled builds the end-of-run
 * sweep's findings are returned through @p audit_findings (when
 * non-null) instead of only the global failure handler, so the job
 * engine can classify them as JobErrorCode::kAuditFailure.
 *
 * When @p telemetry is an active session, the run is sampled per
 * adaptive epoch into `<dir>/<label>.epochs.{csv,jsonl}` and its
 * warmup/measure phases plus per-epoch counter tracks are traced
 * under process id @p trace_pid.
 */
RunMetrics run_single_workload(const MachineConfig &cfg,
                               WorkloadPtr workload, const RunConfig &run,
                               RunTickHook *hook,
                               std::string *audit_findings = nullptr,
                               TelemetrySession *telemetry = nullptr,
                               const std::string &label = "",
                               std::uint32_t trace_pid = 0);

class SnapshotCache;

/** Builds a fresh, position-zero copy of one run's workload. */
using WorkloadFactory = std::function<WorkloadPtr()>;

/**
 * Snapshot-reusing variant of run_single_workload: the warmup phase
 * is resolved through @p cache under @p warmup_key (callers fold the
 * workload identity in; the machine config fingerprint and warmup
 * budget are folded in here). On a cache hit the run restores the
 * warmed architectural state (traced as a "snapshot:restore" span)
 * instead of re-simulating the warmup; on a miss it warms up once,
 * publishes the snapshot, and still goes through restore so hit and
 * miss runs follow the identical code path — the measured region is
 * byte-identical to a straight-through run either way.
 *
 * A snapshot the cache produced but the machine rejects (corrupt or
 * config-mismatched bytes) is counted under the "snapshot.invalid"
 * telemetry counter and the run falls back to a cold warmup — never
 * a crash, never a silent partial restore.
 *
 * @p make is invoked once per machine built (warmup producer and
 * measuring machine), so it must yield identical replay streams.
 */
RunMetrics run_single_workload_snapshot(
    const MachineConfig &cfg, const WorkloadFactory &make,
    const RunConfig &run, RunTickHook *hook, SnapshotCache &cache,
    std::uint64_t warmup_key, std::string *audit_findings = nullptr,
    TelemetrySession *telemetry = nullptr, const std::string &label = "",
    std::uint32_t trace_pid = 0);

/**
 * Convenience: default Table IV machine with @p prefetcher and
 * @p scheme.
 */
MachineConfig make_config(L1dPrefetcherKind prefetcher,
                          const SchemeConfig &scheme);

}  // namespace moka

#endif  // MOKASIM_SIM_RUNNER_H
