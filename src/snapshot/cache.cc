#include "snapshot/cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "snapshot/format.h"

namespace moka {
namespace {

namespace fs = std::filesystem;

/** Bounded wait for a concurrent shard's publish before duplicating. */
constexpr int kClaimPollMs = 100;
constexpr int kClaimPollRounds = 300;  // 30s, far above any warmup

std::string
hex_key(std::uint64_t key)
{
    std::ostringstream os;
    os << std::hex;
    os.width(16);
    os.fill('0');
    os << key;
    return os.str();
}

/** Whole-file read; false when absent/unreadable. */
bool
read_file(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is.good() && !is.eof()) {
        return false;
    }
    out = buf.str();
    return true;
}

}  // namespace

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir))
{
    SIM_REQUIRE(!dir_.empty(), "snapshot cache needs a directory");
    // Best effort: a failure here surfaces as cold warmups (claim
    // files and publishes fail individually), never as a crash.
    std::error_code ec;
    fs::create_directories(dir_, ec);
}

std::string
SnapshotCache::path_for(std::uint64_t key) const
{
    return dir_ + "/snap-" + hex_key(key) + ".bin";
}

SnapshotCache::Stats
SnapshotCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.saves = saves_.load(std::memory_order_relaxed);
    s.invalid = invalid_.load(std::memory_order_relaxed);
    return s;
}

SnapshotBlob
SnapshotCache::try_load(std::uint64_t key)
{
    const std::string path = path_for(key);
    std::string bytes;
    if (!read_file(path, bytes)) {
        return nullptr;
    }
    try {
        // Full structural validation: magic, version, bounds and
        // every section checksum. The config fingerprint is checked
        // later by Machine::restore_snapshot.
        SnapshotReader probe(bytes);
        (void)probe;
    } catch (const SnapshotError &) {
        // Corrupt published file (torn copy, disk fault): drop it and
        // fall back to a cold warmup. Never crash, never restore.
        invalid_.fetch_add(1, std::memory_order_relaxed);
        std::remove(path.c_str());
        return nullptr;
    }
    return std::make_shared<const std::string>(std::move(bytes));
}

SnapshotBlob
SnapshotCache::load_or_produce(std::uint64_t key, const Producer &produce,
                               FetchOutcome &outcome)
{
    if (SnapshotBlob found = try_load(key)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        outcome.hit = true;
        return found;
    }

    // Lease-style claim so concurrent shards warming the same key
    // don't all do the work: the claimant produces and publishes,
    // everyone else polls for the published file (bounded), then
    // falls back to a local produce — a duplicate warmup is benign.
    const std::string claim = path_for(key) + ".claim";
    const int fd = ::open(claim.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        for (int round = 0; round < kClaimPollRounds; ++round) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kClaimPollMs));
            if (SnapshotBlob found = try_load(key)) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                outcome.hit = true;
                return found;
            }
            std::error_code ec;
            if (!fs::exists(claim, ec)) {
                break;  // claimant gone without publishing: produce
            }
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::make_shared<const std::string>(produce());
    }
    ::close(fd);

    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
        auto blob = std::make_shared<const std::string>(produce());
        // Write-temp + rename: readers only ever see complete files.
        const std::string tmp =
            path_for(key) + ".tmp." + std::to_string(::getpid());
        {
            std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
            os.write(blob->data(),
                     static_cast<std::streamsize>(blob->size()));
            if (!os.good()) {
                std::remove(tmp.c_str());
                std::remove(claim.c_str());
                return blob;  // reuse in-process even if unpublished
            }
        }
        if (std::rename(tmp.c_str(), path_for(key).c_str()) == 0) {
            saves_.fetch_add(1, std::memory_order_relaxed);
            outcome.saved = true;
        } else {
            std::remove(tmp.c_str());
        }
        std::remove(claim.c_str());
        return blob;
    } catch (...) {  // LINT_CATCH_OK: claim cleanup only; rethrown
        std::remove(claim.c_str());
        throw;
    }
}

SnapshotBlob
SnapshotCache::fetch(std::uint64_t key, const Producer &produce,
                     FetchOutcome *outcome)
{
    FetchOutcome local;
    if (outcome == nullptr) {
        outcome = &local;
    }
    std::shared_future<SnapshotBlob> fut;
    bool owner = false;
    std::promise<SnapshotBlob> mine;
    {
        SimMutexLock lock(&mu_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            owner = true;
            fut = mine.get_future().share();
            inflight_.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }
    if (!owner) {
        // Memoized: the first caller's production (or load) is shared.
        SnapshotBlob blob = fut.get();
        hits_.fetch_add(1, std::memory_order_relaxed);
        outcome->hit = true;
        return blob;
    }
    try {
        SnapshotBlob blob = load_or_produce(key, produce, *outcome);
        mine.set_value(blob);
        return blob;
    } catch (...) {  // LINT_CATCH_OK: propagated to waiters + rethrown
        mine.set_exception(std::current_exception());
        // Drop the poisoned entry so a later attempt can retry cold.
        SimMutexLock lock(&mu_);
        inflight_.erase(key);
        throw;
    }
}

}  // namespace moka
