/**
 * @file
 * Warmup-snapshot cache: content-addressed snapshot files shared by
 * every job that warms up the same (workload, machine config,
 * warmup_insts) triple. In-process callers share one production via a
 * memoized future; across processes (sharded sweeps) the publish is
 * write-temp+rename with a lease-style claim file, so concurrent
 * shards either reuse the published snapshot or, after a bounded
 * wait, produce their own copy (a benign duplicate warmup).
 */
#ifndef MOKASIM_SNAPSHOT_CACHE_H
#define MOKASIM_SNAPSHOT_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "common/hot_path.h"
#include "common/thread_annotations.h"

namespace moka {

/** Shared snapshot bytes (immutable once published). */
using SnapshotBlob = std::shared_ptr<const std::string>;

/** See file comment. */
class SnapshotCache
{
  public:
    /** Cumulative cache activity (thread-safe reads). */
    struct Stats
    {
        std::uint64_t hits = 0;     //!< reused (memory or disk)
        std::uint64_t misses = 0;   //!< produced by warmup
        std::uint64_t saves = 0;    //!< published to disk
        std::uint64_t invalid = 0;  //!< corrupt/rejected files dropped

        /** Delta between two polls (interval reporting). */
        Stats operator-(const Stats &o) const
        {
            return {hits - o.hits, misses - o.misses, saves - o.saves,
                    invalid - o.invalid};
        }
    };

    /** Produces snapshot bytes by running the warmup. */
    using Producer = std::function<std::string()>;

    /** What one fetch did (for per-job telemetry counters). */
    struct FetchOutcome
    {
        bool hit = false;    //!< reused (memory or disk)
        bool saved = false;  //!< this fetch published to disk
    };

    /**
     * @param dir snapshot directory (created on first publish)
     */
    explicit SnapshotCache(std::string dir);

    /**
     * Return the snapshot for @p key, producing and publishing it on
     * a miss. Concurrent in-process callers with the same key share
     * one production. A corrupt cached file is classified, counted,
     * removed and treated as a miss — never restored and never fatal.
     *
     * @throws whatever @p produce throws (a failed warmup propagates).
     */
    SIM_COLD SnapshotBlob fetch(std::uint64_t key,
                                const Producer &produce,
                                FetchOutcome *outcome = nullptr)
        SIM_EXCLUDES(mu_);

    /** Snapshot directory. */
    const std::string &dir() const { return dir_; }

    /** Activity counters. */
    SIM_COLD Stats stats() const;

    /** Published snapshot path for @p key (tests/diagnostics). */
    SIM_COLD std::string path_for(std::uint64_t key) const;

  private:
    SIM_COLD SnapshotBlob load_or_produce(std::uint64_t key,
                                          const Producer &produce,
                                          FetchOutcome &outcome);
    /** Validated read of a published file; null when absent/corrupt. */
    SIM_COLD SnapshotBlob try_load(std::uint64_t key);

    std::string dir_;
    SimMutex mu_;
    std::map<std::uint64_t, std::shared_future<SnapshotBlob>> inflight_
        SIM_GUARDED_BY(mu_);
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> saves_{0};
    std::atomic<std::uint64_t> invalid_{0};
};

}  // namespace moka

#endif  // MOKASIM_SNAPSHOT_CACHE_H
