#include "snapshot/format.h"

#include <cstring>

#include "common/check.h"
#include "common/hashing.h"

namespace moka {
namespace {

/** Little-endian append of the low @p n bytes of @p v. */
void
append_le(std::string &out, std::uint64_t v, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

/** Little-endian read of @p n bytes at @p data. */
std::uint64_t
read_le(const char *data, unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data[i]))
             << (8 * i);
    }
    return v;
}

}  // namespace

const char *
to_string(SnapshotErrorKind kind)
{
    switch (kind) {
      case SnapshotErrorKind::kBadMagic: return "bad_magic";
      case SnapshotErrorKind::kBadVersion: return "bad_version";
      case SnapshotErrorKind::kTruncated: return "truncated";
      case SnapshotErrorKind::kChecksum: return "checksum";
      case SnapshotErrorKind::kConfigMismatch: return "config_mismatch";
      case SnapshotErrorKind::kMalformed: return "malformed";
    }
    return "unknown";
}

SnapshotError::SnapshotError(SnapshotErrorKind kind,
                             const std::string &message)
    : std::runtime_error(std::string("snapshot: ") + to_string(kind) +
                         ": " + message),
      kind_(kind)
{
}

SnapshotWriter::SnapshotWriter(std::uint64_t fingerprint)
    : fingerprint_(fingerprint)
{
}

void
SnapshotWriter::begin_section(const std::string &name)
{
    SIM_REQUIRE(!name.empty(), "snapshot sections need a name");
    sections_.push_back(Section{name, {}});
    open_ = true;
}

void
SnapshotWriter::raw(const void *data, std::size_t n)
{
    SIM_REQUIRE(open_, "snapshot write outside a section");
    sections_.back().payload.append(static_cast<const char *>(data), n);
}

void
SnapshotWriter::put_u8(std::uint8_t v)
{
    raw(&v, 1);
}

void
SnapshotWriter::put_u16(std::uint16_t v)
{
    SIM_REQUIRE(open_, "snapshot write outside a section");
    append_le(sections_.back().payload, v, 2);
}

void
SnapshotWriter::put_u32(std::uint32_t v)
{
    SIM_REQUIRE(open_, "snapshot write outside a section");
    append_le(sections_.back().payload, v, 4);
}

void
SnapshotWriter::put_u64(std::uint64_t v)
{
    SIM_REQUIRE(open_, "snapshot write outside a section");
    append_le(sections_.back().payload, v, 8);
}

void
SnapshotWriter::put_i64(std::int64_t v)
{
    put_u64(static_cast<std::uint64_t>(v));
}

void
SnapshotWriter::put_bool(bool v)
{
    put_u8(v ? 1 : 0);
}

void
SnapshotWriter::put_f64(double v)
{
    // Bit-exact: the round trip must reproduce the value even for
    // NaN payloads and signed zeros.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
}

std::string
SnapshotWriter::finish()
{
    std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
    append_le(out, kSnapshotVersion, 4);
    append_le(out, fingerprint_, 8);
    append_le(out, sections_.size(), 4);
    for (const Section &s : sections_) {
        append_le(out, s.name.size(), 4);
        out += s.name;
        append_le(out, s.payload.size(), 8);
        append_le(out, fnv1a_64(s.payload.data(), s.payload.size()), 8);
        out += s.payload;
    }
    open_ = false;
    return out;
}

SnapshotReader::SnapshotReader(std::string bytes)
    : bytes_(std::move(bytes))
{
    std::size_t at = 0;
    const auto take = [&](unsigned n) {
        if (bytes_.size() - at < n) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "header ends early");
        }
        const std::uint64_t v = read_le(bytes_.data() + at, n);
        at += n;
        return v;
    };
    if (bytes_.size() < sizeof(kSnapshotMagic) ||
        std::memcmp(bytes_.data(), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) != 0) {
        throw SnapshotError(SnapshotErrorKind::kBadMagic,
                            "missing MOKASNAP magic");
    }
    at = sizeof(kSnapshotMagic);
    const std::uint64_t version = take(4);
    if (version != kSnapshotVersion) {
        throw SnapshotError(SnapshotErrorKind::kBadVersion,
                            "format version " + std::to_string(version) +
                                " (want " +
                                std::to_string(kSnapshotVersion) + ")");
    }
    fingerprint_ = take(8);
    const std::uint64_t count = take(4);
    sections_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Section s;
        const std::uint64_t name_len = take(4);
        if (bytes_.size() - at < name_len) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "section name ends early");
        }
        s.name.assign(bytes_.data() + at, name_len);
        at += name_len;
        s.size = take(8);
        const std::uint64_t sum = take(8);
        if (bytes_.size() - at < s.size) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "section '" + s.name + "' ends early");
        }
        s.begin = at;
        at += s.size;
        if (fnv1a_64(bytes_.data() + s.begin, s.size) != sum) {
            throw SnapshotError(SnapshotErrorKind::kChecksum,
                                "section '" + s.name +
                                    "' fails its FNV-1a sum");
        }
        sections_.push_back(std::move(s));
    }
    if (at != bytes_.size()) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "trailing bytes after the last section");
    }
}

void
SnapshotReader::begin_section(const std::string &name)
{
    if (section_ > 0) {
        const Section &prev = sections_[section_ - 1];
        if (cursor_ != prev.size) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "section '" + prev.name +
                                    "' left partially consumed");
        }
    }
    if (section_ >= sections_.size() ||
        sections_[section_].name != name) {
        throw SnapshotError(
            SnapshotErrorKind::kMalformed,
            "expected section '" + name + "', found '" +
                (section_ < sections_.size() ? sections_[section_].name
                                             : std::string("<end>")) +
                "'");
    }
    ++section_;
    cursor_ = 0;
}

void
SnapshotReader::need(std::size_t n) const
{
    if (section_ == 0) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "read outside any section");
    }
    if (sections_[section_ - 1].size - cursor_ < n) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "section '" + sections_[section_ - 1].name +
                                "' over-consumed");
    }
}

std::uint8_t
SnapshotReader::get_u8()
{
    need(1);
    const Section &s = sections_[section_ - 1];
    return static_cast<std::uint8_t>(
        static_cast<unsigned char>(bytes_[s.begin + cursor_++]));
}

std::uint16_t
SnapshotReader::get_u16()
{
    need(2);
    const Section &s = sections_[section_ - 1];
    const std::uint64_t v = read_le(bytes_.data() + s.begin + cursor_, 2);
    cursor_ += 2;
    return static_cast<std::uint16_t>(v);
}

std::uint32_t
SnapshotReader::get_u32()
{
    need(4);
    const Section &s = sections_[section_ - 1];
    const std::uint64_t v = read_le(bytes_.data() + s.begin + cursor_, 4);
    cursor_ += 4;
    return static_cast<std::uint32_t>(v);
}

std::uint64_t
SnapshotReader::get_u64()
{
    need(8);
    const Section &s = sections_[section_ - 1];
    const std::uint64_t v = read_le(bytes_.data() + s.begin + cursor_, 8);
    cursor_ += 8;
    return v;
}

std::int64_t
SnapshotReader::get_i64()
{
    return static_cast<std::int64_t>(get_u64());
}

bool
SnapshotReader::get_bool()
{
    return get_u8() != 0;
}

double
SnapshotReader::get_f64()
{
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
SnapshotReader::finish() const
{
    if (section_ != sections_.size()) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "unconsumed sections remain");
    }
    if (section_ > 0 && cursor_ != sections_[section_ - 1].size) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "last section left partially consumed");
    }
}

}  // namespace moka
