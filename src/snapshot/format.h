/**
 * @file
 * Binary snapshot container: a versioned, checksummed TLV format for
 * serialized architectural state.
 *
 * Layout (all integers little-endian):
 *
 *   magic            8 bytes  "MOKASNAP"
 *   format version   u32      kSnapshotVersion
 *   config sum       u64      config_fingerprint of the saving machine
 *   section count    u32
 *   sections         repeated {
 *       name length  u32
 *       name         bytes
 *       payload len  u64
 *       payload sum  u64      FNV-1a over the payload bytes
 *       payload      bytes
 *   }
 *
 * Sections are named after machine components ("dram", "llc",
 * "core0", ...) and read back in the exact order they were written;
 * SnapshotReader::begin_section verifies both the name and that the
 * previous section was consumed to its last byte, so a component that
 * gains a field without bumping its save/restore pair desyncs loudly
 * instead of silently shifting every later read.
 *
 * This header depends only on common/ and the standard library (the
 * job layer maps SnapshotError onto its own JobError taxonomy; no
 * include cycle back into sim/).
 */
#ifndef MOKASIM_SNAPSHOT_FORMAT_H
#define MOKASIM_SNAPSHOT_FORMAT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace moka {

//! bump when the container layout or any component's section layout
//! changes; readers reject other versions outright
inline constexpr std::uint32_t kSnapshotVersion = 1;

//! container magic, first 8 bytes of every snapshot
inline constexpr char kSnapshotMagic[8] = {'M', 'O', 'K', 'A',
                                           'S', 'N', 'A', 'P'};

/** Why a snapshot was rejected. */
enum class SnapshotErrorKind : std::uint8_t {
    kBadMagic,        //!< not a snapshot file at all
    kBadVersion,      //!< produced by an incompatible format version
    kTruncated,       //!< shorter than its own headers claim
    kChecksum,        //!< a section's FNV-1a sum does not match
    kConfigMismatch,  //!< saved under a different machine config
    kMalformed,       //!< section desync or over/under-consumed payload
};

/** Stable report name of @p kind. */
const char *to_string(SnapshotErrorKind kind);

/**
 * Classified snapshot rejection. Every failure mode is recoverable by
 * design: the caller falls back to a cold warmup (the job layer maps
 * this onto JobErrorCode::kSnapshotInvalid when it must surface).
 */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(SnapshotErrorKind kind, const std::string &message);

    SnapshotErrorKind kind() const { return kind_; }

  private:
    SnapshotErrorKind kind_;
};

/**
 * Serializes primitives into named sections and assembles the final
 * container. Usage: begin_section(), put_* the component's state,
 * repeat, then finish() exactly once.
 */
class SnapshotWriter
{
  public:
    /** @param fingerprint config_fingerprint of the saving machine */
    explicit SnapshotWriter(std::uint64_t fingerprint);

    /** Close the current section (if any) and open a new one. */
    void begin_section(const std::string &name);

    void put_u8(std::uint8_t v);
    void put_u16(std::uint16_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    void put_i64(std::int64_t v);
    void put_bool(bool v);
    void put_f64(double v);

    /** Assemble header + checksummed sections into the final bytes. */
    std::string finish();

  private:
    struct Section
    {
        std::string name;
        std::string payload;
    };

    void raw(const void *data, std::size_t n);

    std::uint64_t fingerprint_;
    std::vector<Section> sections_;
    bool open_ = false;
};

/**
 * Validates and deserializes a container produced by SnapshotWriter.
 * The constructor checks magic, version, structural completeness and
 * every section checksum up front, so a reader that constructs at all
 * is structurally sound; begin_section / get_* then enforce exact
 * consumption.
 */
class SnapshotReader
{
  public:
    /** @throws SnapshotError on any structural or checksum defect */
    explicit SnapshotReader(std::string bytes);

    /** Config fingerprint recorded by the saving machine. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Enter the next section, which must be named @p name and must
     * follow a fully-consumed predecessor.
     */
    void begin_section(const std::string &name);

    std::uint8_t get_u8();
    std::uint16_t get_u16();
    std::uint32_t get_u32();
    std::uint64_t get_u64();
    std::int64_t get_i64();
    bool get_bool();
    double get_f64();

    /** Verify every section was consumed to its last byte. */
    void finish() const;

  private:
    struct Section
    {
        std::string name;
        std::size_t begin = 0;  //!< payload offset into bytes_
        std::size_t size = 0;
    };

    void need(std::size_t n) const;

    std::string bytes_;
    std::uint64_t fingerprint_ = 0;
    std::vector<Section> sections_;
    std::size_t section_ = 0;  //!< 1-based index of the open section
    std::size_t cursor_ = 0;   //!< read offset into the open payload
};

}  // namespace moka

#endif  // MOKASIM_SNAPSHOT_FORMAT_H
