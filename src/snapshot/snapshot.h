/**
 * @file
 * The Snapshottable contract and shared serialization helpers.
 *
 * Components expose a pair of member functions
 *
 *     void save_state(SnapshotWriter &w) const;
 *     void restore_state(SnapshotReader &r);
 *
 * with one hard rule: restore_state applied to a freshly-constructed
 * instance of the *same configuration* must reproduce every bit of
 * behaviourally relevant state, so that a restored machine continues
 * byte-identically to one that never stopped (simlint rule L16
 * enforces member coverage; tests/test_snapshot.cc round-trips every
 * component).  Configuration itself is never serialized — it is
 * re-derived from the MachineConfig and guarded by the container's
 * config fingerprint.
 *
 * SnapshotAccess is the narrow friend (mirroring audit/ AuditAccess)
 * through which common/ leaf types with private layout-sensitive
 * state (Rng lanes, FlatAddrMap slot arrays, saturating counters) are
 * copied verbatim.
 */
#ifndef MOKASIM_SNAPSHOT_SNAPSHOT_H
#define MOKASIM_SNAPSHOT_SNAPSHOT_H

#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/sat_counter.h"
#include "common/stats.h"
#include "common/types.h"
#include "snapshot/format.h"

namespace moka {

/** Save one integral value, width-dispatched. */
template <typename T>
inline void
put_int(SnapshotWriter &w, T v)
{
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "put_int takes integral or enum values");
    if constexpr (sizeof(T) == 1) {
        w.put_u8(static_cast<std::uint8_t>(v));
    } else if constexpr (sizeof(T) == 2) {
        w.put_u16(static_cast<std::uint16_t>(v));
    } else if constexpr (sizeof(T) == 4) {
        w.put_u32(static_cast<std::uint32_t>(v));
    } else {
        w.put_u64(static_cast<std::uint64_t>(v));
    }
}

/** Restore one integral value, width-dispatched. */
template <typename T>
inline void
get_int(SnapshotReader &r, T &v)
{
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "get_int takes integral or enum values");
    if constexpr (sizeof(T) == 1) {
        v = static_cast<T>(r.get_u8());
    } else if constexpr (sizeof(T) == 2) {
        v = static_cast<T>(r.get_u16());
    } else if constexpr (sizeof(T) == 4) {
        v = static_cast<T>(r.get_u32());
    } else {
        v = static_cast<T>(r.get_u64());
    }
}

/** Save a vector of integral values (length-prefixed). */
template <typename T>
inline void
put_vec(SnapshotWriter &w, const std::vector<T> &v)
{
    w.put_u64(v.size());
    for (const T &x : v) {
        put_int(w, x);
    }
}

/**
 * Restore a vector of integral values.  The saved length must match
 * the configured length when the structure is fixed-size; callers
 * that allow growth (FlatAddrMap doubling past its reservation) pass
 * @p fixed_size false.
 */
template <typename T>
inline void
get_vec(SnapshotReader &r, std::vector<T> &v, bool fixed_size = true)
{
    const std::uint64_t n = r.get_u64();
    if (fixed_size && n != v.size()) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "vector length mismatch");
    }
    v.resize(n);
    for (T &x : v) {
        get_int(r, x);
    }
}

/** Save a vector<bool> (length-prefixed, one byte per bit). */
inline void
put_vec(SnapshotWriter &w, const std::vector<bool> &v)
{
    w.put_u64(v.size());
    for (const bool x : v) {
        w.put_bool(x);
    }
}

inline void
get_vec(SnapshotReader &r, std::vector<bool> &v, bool fixed_size = true)
{
    const std::uint64_t n = r.get_u64();
    if (fixed_size && n != v.size()) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "vector<bool> length mismatch");
    }
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = r.get_bool();
    }
}

/** Save a vector of doubles (length-prefixed, bit-exact). */
inline void
put_vec_f64(SnapshotWriter &w, const std::vector<double> &v)
{
    w.put_u64(v.size());
    for (const double x : v) {
        w.put_f64(x);
    }
}

inline void
get_vec_f64(SnapshotReader &r, std::vector<double> &v)
{
    const std::uint64_t n = r.get_u64();
    v.resize(n);
    for (double &x : v) {
        x = r.get_f64();
    }
}

/*
 * Serialization is a whitelisted exit from the strong address types
 * (types.h / ARCHITECTURE.md): a snapshot stores raw bits, so typed
 * addresses and page numbers pass through here instead of scattering
 * `.raw()` across component save/restore code.
 */

/** Save one typed address (virtual or physical). */
template <class Tag>
inline void
put_addr(SnapshotWriter &w, StrongAddr<Tag> a)
{
    w.put_u64(a.raw());
}

/** Restore one typed address. */
template <class Tag>
inline void
get_addr(SnapshotReader &r, StrongAddr<Tag> &a)
{
    a = StrongAddr<Tag>{r.get_u64()};
}

/** Save one typed page number (VPN or PPN). */
template <class Tag>
inline void
put_addr(SnapshotWriter &w, StrongPageNum<Tag> p)
{
    w.put_u64(p.raw());
}

/** Restore one typed page number. */
template <class Tag>
inline void
get_addr(SnapshotReader &r, StrongPageNum<Tag> &p)
{
    p = StrongPageNum<Tag>{r.get_u64()};
}

inline void
put_stats(SnapshotWriter &w, const AccessStats &s)
{
    w.put_u64(s.accesses);
    w.put_u64(s.misses);
}

inline void
get_stats(SnapshotReader &r, AccessStats &s)
{
    s.accesses = r.get_u64();
    s.misses = r.get_u64();
}

inline void
put_stats(SnapshotWriter &w, const PrefetchStats &s)
{
    w.put_u64(s.issued);
    w.put_u64(s.useful);
    w.put_u64(s.useless);
    w.put_u64(s.pgc_issued);
    w.put_u64(s.pgc_useful);
    w.put_u64(s.pgc_useless);
    w.put_u64(s.pgc_dropped);
}

inline void
get_stats(SnapshotReader &r, PrefetchStats &s)
{
    s.issued = r.get_u64();
    s.useful = r.get_u64();
    s.useless = r.get_u64();
    s.pgc_issued = r.get_u64();
    s.pgc_useful = r.get_u64();
    s.pgc_useless = r.get_u64();
    s.pgc_dropped = r.get_u64();
}

/**
 * Narrow serialization friend for common/ leaf types whose private
 * state must be copied verbatim (layout is behaviour: Rng lanes
 * continue the stream, FlatAddrMap probe placement depends on
 * insertion order).
 */
struct SnapshotAccess
{
    static void save(SnapshotWriter &w, const Rng &rng)
    {
        for (const std::uint64_t lane : rng.s_) {
            w.put_u64(lane);
        }
    }

    static void restore(SnapshotReader &r, Rng &rng)
    {
        for (std::uint64_t &lane : rng.s_) {
            lane = r.get_u64();
        }
    }

    static void save(SnapshotWriter &w, const SignedSatCounter &c)
    {
        w.put_u16(static_cast<std::uint16_t>(c.value_));
    }

    static void restore(SnapshotReader &r, SignedSatCounter &c)
    {
        const auto v = static_cast<std::int16_t>(r.get_u16());
        if (v < c.min_ || v > c.max_) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "signed counter outside its rails");
        }
        c.value_ = v;
    }

    static void save(SnapshotWriter &w, const UnsignedSatCounter &c)
    {
        w.put_u16(c.value_);
    }

    static void restore(SnapshotReader &r, UnsignedSatCounter &c)
    {
        const std::uint16_t v = r.get_u16();
        if (v > c.max_) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "unsigned counter above its rail");
        }
        c.value_ = v;
    }

    static void save(SnapshotWriter &w, const FlatAddrMap &m)
    {
        put_vec(w, m.keys_);
        put_vec(w, m.vals_);
        w.put_u64(m.size_);
    }

    static void restore(SnapshotReader &r, FlatAddrMap &m)
    {
        // The map may have doubled past its construction reservation
        // before the snapshot was taken; accept the saved capacity.
        get_vec(r, m.keys_, /*fixed_size=*/false);
        get_vec(r, m.vals_, /*fixed_size=*/false);
        m.size_ = r.get_u64();
        if (m.keys_.size() != m.vals_.size() ||
            (m.keys_.size() & (m.keys_.size() - 1)) != 0) {
            throw SnapshotError(SnapshotErrorKind::kMalformed,
                                "flat map slot arrays inconsistent");
        }
    }

    static void save(SnapshotWriter &w, const FrameBitmap &b)
    {
        put_vec(w, b.bits_);
        w.put_u64(b.count_);
    }

    static void restore(SnapshotReader &r, FrameBitmap &b)
    {
        get_vec(r, b.bits_);
        b.count_ = r.get_u64();
    }
};

}  // namespace moka

#endif  // MOKASIM_SNAPSHOT_SNAPSHOT_H
