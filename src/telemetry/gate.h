/**
 * @file
 * Telemetry master switch, separated from the session types so hot
 * subsystems (filter, machine) can test the gate without pulling in
 * the registry/tracer headers.
 *
 * Two gates keep observability free when unused:
 *
 *  - build gate: configuring with -DMOKASIM_TELEMETRY=OFF defines
 *    MOKASIM_TELEMETRY_BUILD=0, which folds telemetry_enabled() to a
 *    compile-time `false` so every instrumentation site is dead code;
 *  - runtime gate: in telemetry-enabled builds (the default), a
 *    sample point costs exactly one predictable branch on a relaxed
 *    atomic until the MOKASIM_TELEMETRY environment variable or a
 *    tool flag (--telemetry-dir / --trace-events) arms the subsystem.
 */
#ifndef MOKASIM_TELEMETRY_GATE_H
#define MOKASIM_TELEMETRY_GATE_H

#include <atomic>

#ifndef MOKASIM_TELEMETRY_BUILD
#define MOKASIM_TELEMETRY_BUILD 1
#endif

namespace moka {

namespace telemetry_detail {
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_detail

/**
 * True when telemetry instrumentation should record. The single
 * relaxed load is the whole idle cost of a sample point; with
 * MOKASIM_TELEMETRY_BUILD=0 the call is a constant `false` and dead
 * instrumentation code is eliminated entirely.
 */
inline bool
telemetry_enabled()
{
#if MOKASIM_TELEMETRY_BUILD
    return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Arm/disarm the runtime gate (tools call this from flag parsing). */
void set_telemetry_enabled(bool enabled);

/**
 * True when the MOKASIM_TELEMETRY environment variable requests
 * telemetry ("", "0", "off", "false" count as off). The gate is also
 * initialized from this at process start.
 */
bool telemetry_env_requested();

}  // namespace moka

#endif  // MOKASIM_TELEMETRY_GATE_H
