#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/stats.h"

namespace moka {

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    SIM_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be ascending");
}

void
MetricHistogram::observe(double v)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::count(std::size_t bucket) const
{
    return counts_[bucket].load(std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::total() const
{
    std::uint64_t sum = 0;
    for (const auto &c : counts_) {
        sum += c.load(std::memory_order_relaxed);
    }
    return sum;
}

double
MetricHistogram::bound(std::size_t i) const
{
    return i < bounds_.size()
               ? bounds_[i]
               : std::numeric_limits<double>::infinity();
}

MetricRegistry::Entry &
MetricRegistry::find_or_create(const std::string &name, Kind kind)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        Entry &entry = *entries_[it->second];
        SIM_REQUIRE(entry.kind == kind || kind == Kind::kProbe,
                    "metric re-registered as a different instrument kind");
        return entry;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->kind = kind;
    index_.emplace(name, entries_.size());
    entries_.push_back(std::move(entry));
    return *entries_.back();
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    SimMutexLock lock(&mu_);
    Entry &entry = find_or_create(name, Kind::kCounter);
    if (entry.counter == nullptr) {
        entry.counter = std::make_unique<Counter>();
    }
    return *entry.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    SimMutexLock lock(&mu_);
    Entry &entry = find_or_create(name, Kind::kGauge);
    if (entry.gauge == nullptr) {
        entry.gauge = std::make_unique<Gauge>();
    }
    return *entry.gauge;
}

MetricHistogram &
MetricRegistry::histogram(const std::string &name, std::vector<double> bounds)
{
    SimMutexLock lock(&mu_);
    Entry &entry = find_or_create(name, Kind::kHistogram);
    if (entry.histogram == nullptr) {
        entry.histogram = std::make_unique<MetricHistogram>(std::move(bounds));
    }
    return *entry.histogram;
}

void
MetricRegistry::probe(const std::string &name, std::function<double()> fn)
{
    SimMutexLock lock(&mu_);
    Entry &entry = find_or_create(name, Kind::kProbe);
    SIM_REQUIRE(entry.kind == Kind::kProbe,
                "metric re-registered as a different instrument kind");
    entry.probe = std::move(fn);
}

std::vector<MetricRegistry::Sample>
MetricRegistry::snapshot() const
{
    SimMutexLock lock(&mu_);
    std::vector<Sample> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_) {
        switch (entry->kind) {
          case Kind::kCounter:
            out.push_back({entry->name,
                           static_cast<double>(entry->counter->value()),
                           /*cumulative=*/true});
            break;
          case Kind::kGauge:
            out.push_back({entry->name, entry->gauge->value(),
                           /*cumulative=*/false});
            break;
          case Kind::kProbe:
            out.push_back({entry->name, entry->probe ? entry->probe() : 0.0,
                           /*cumulative=*/false});
            break;
          case Kind::kHistogram: {
            const MetricHistogram &h = *entry->histogram;
            for (std::size_t b = 0; b < h.buckets(); ++b) {
                char suffix[48];
                if (b + 1 < h.buckets()) {
                    std::snprintf(suffix, sizeof(suffix), ".le_%g",
                                  h.bound(b));
                } else {
                    std::snprintf(suffix, sizeof(suffix), ".le_inf");
                }
                out.push_back({entry->name + suffix,
                               static_cast<double>(h.count(b)),
                               /*cumulative=*/true});
            }
            out.push_back({entry->name + ".count",
                           static_cast<double>(h.total()),
                           /*cumulative=*/true});
            break;
          }
        }
    }
    return out;
}

std::size_t
MetricRegistry::size() const
{
    SimMutexLock lock(&mu_);
    return entries_.size();
}

// Adapters declared in common/stats.h: expose existing stat structs
// through read-on-snapshot probes without touching their hot paths.

void
register_access_stats(MetricRegistry &registry, const std::string &prefix,
                      const AccessStats *stats)
{
    registry.probe(prefix + ".accesses", [stats] {
        return static_cast<double>(stats->accesses);
    });
    registry.probe(prefix + ".misses", [stats] {
        return static_cast<double>(stats->misses);
    });
    registry.probe(prefix + ".miss_rate",
                   [stats] { return stats->miss_rate(); });
}

void
register_prefetch_stats(MetricRegistry &registry, const std::string &prefix,
                        const PrefetchStats *stats)
{
    registry.probe(prefix + ".issued", [stats] {
        return static_cast<double>(stats->issued);
    });
    registry.probe(prefix + ".useful", [stats] {
        return static_cast<double>(stats->useful);
    });
    registry.probe(prefix + ".useless", [stats] {
        return static_cast<double>(stats->useless);
    });
    registry.probe(prefix + ".pgc_issued", [stats] {
        return static_cast<double>(stats->pgc_issued);
    });
    registry.probe(prefix + ".pgc_useful", [stats] {
        return static_cast<double>(stats->pgc_useful);
    });
    registry.probe(prefix + ".pgc_useless", [stats] {
        return static_cast<double>(stats->pgc_useless);
    });
    registry.probe(prefix + ".pgc_dropped", [stats] {
        return static_cast<double>(stats->pgc_dropped);
    });
    registry.probe(prefix + ".accuracy",
                   [stats] { return stats->accuracy(); });
    registry.probe(prefix + ".pgc_accuracy",
                   [stats] { return stats->pgc_accuracy(); });
}

}  // namespace moka
