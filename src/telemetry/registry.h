/**
 * @file
 * Thread-safe metric registry (telemetry surface (a)). Subsystems
 * register named instruments once and update them lock-free:
 *
 *  - Counter:         monotonically increasing 64-bit count
 *  - Gauge:           last-written double
 *  - MetricHistogram: fixed-bucket distribution (bounds set at
 *                     registration; atomic per-bucket counts)
 *  - probe:           read-on-snapshot callback for values that live
 *                     in existing structs (see the AccessStats
 *                     adapters in common/stats.h)
 *
 * Registration takes a mutex; updates touch only relaxed atomics, so
 * concurrent job-engine workers can share one registry. snapshot()
 * flattens every instrument to (name, value) rows in registration
 * order, which is what the timeseries sampler serializes.
 */
#ifndef MOKASIM_TELEMETRY_REGISTRY_H
#define MOKASIM_TELEMETRY_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hot_path.h"
#include "common/thread_annotations.h"

namespace moka {

/** Monotonic event count. */
class Counter
{
  public:
    /** Add @p n (relaxed; safe from any thread). */
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current count. */
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written value. */
class Gauge
{
  public:
    /** Overwrite the value (relaxed; safe from any thread). */
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Current value. */
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: bucket i counts samples in
 * (bound[i-1], bound[i]]; one extra overflow bucket counts samples
 * above the last bound. Bounds are fixed at registration so snapshots
 * are columnar-stable.
 */
class MetricHistogram
{
  public:
    /** @param bounds ascending bucket upper bounds (may be empty). */
    explicit MetricHistogram(std::vector<double> bounds);

    /** Record one sample. */
    void observe(double v);

    /** Bucket count (buckets() entries, last one = overflow). */
    std::uint64_t count(std::size_t bucket) const;

    /** Number of buckets including the overflow bucket. */
    std::size_t buckets() const { return counts_.size(); }

    /** Total samples recorded. */
    std::uint64_t total() const;

    /** Upper bound of bucket @p i (overflow bucket: +inf). */
    double bound(std::size_t i) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
};

/** See file comment. */
class MetricRegistry
{
  public:
    /**
     * Find or create the counter @p name. The returned reference is
     * stable for the registry's lifetime. Re-registering a name as a
     * different instrument kind is a usage error (SIM_REQUIRE).
     */
    // Registration takes the mutex: do it once at setup and cache
    // the returned reference; hot code must never re-look-up.
    SIM_COLD Counter &counter(const std::string &name) SIM_EXCLUDES(mu_);

    /** Find or create the gauge @p name. */
    SIM_COLD Gauge &gauge(const std::string &name) SIM_EXCLUDES(mu_);

    /**
     * Find or create the histogram @p name; @p bounds is used only on
     * first registration.
     */
    SIM_COLD MetricHistogram &histogram(const std::string &name,
                               std::vector<double> bounds)
        SIM_EXCLUDES(mu_);

    /**
     * Register a read-on-snapshot probe. The callback is invoked by
     * snapshot(), so the data it reads must outlive the registry or
     * the caller must stop snapshotting first. Re-registering a probe
     * name replaces the callback (structs move between runs).
     */
    SIM_COLD void probe(const std::string &name, std::function<double()> fn)
        SIM_EXCLUDES(mu_);

    /** One flattened metric value. */
    struct Sample
    {
        std::string name;
        double value = 0.0;
        //! true for counters and histogram buckets (the timeseries
        //! sampler turns these into per-epoch deltas)
        bool cumulative = false;
    };

    /**
     * Flatten every instrument in registration order. Histograms
     * expand to `<name>.le_<bound>` bucket counts plus
     * `<name>.count`.
     */
    SIM_COLD std::vector<Sample> snapshot() const SIM_EXCLUDES(mu_);

    /** Number of registered instruments. */
    std::size_t size() const SIM_EXCLUDES(mu_);

  private:
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kProbe };

    struct Entry
    {
        std::string name;
        Kind kind = Kind::kCounter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<MetricHistogram> histogram;
        std::function<double()> probe;
    };

    SIM_COLD Entry &find_or_create(const std::string &name, Kind kind)
        SIM_REQUIRES(mu_);

    mutable SimMutex mu_;
    //! registration order
    std::vector<std::unique_ptr<Entry>> entries_ SIM_GUARDED_BY(mu_);
    std::unordered_map<std::string, std::size_t> index_
        SIM_GUARDED_BY(mu_);
};

}  // namespace moka

#endif  // MOKASIM_TELEMETRY_REGISTRY_H
