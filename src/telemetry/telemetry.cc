#include "telemetry/telemetry.h"

#include <cstdlib>
#include <filesystem>

namespace moka {

namespace telemetry_detail {
std::atomic<bool> g_enabled{telemetry_env_requested()};
}  // namespace telemetry_detail

void
set_telemetry_enabled(bool enabled)
{
    telemetry_detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
telemetry_env_requested()
{
    const char *env =  // NOLINT(concurrency-mt-unsafe): read once
        std::getenv("MOKASIM_TELEMETRY");  // before any thread spawns
    if (env == nullptr) {
        return false;
    }
    const std::string v(env);
    return !(v.empty() || v == "0" || v == "off" || v == "OFF" ||
             v == "false" || v == "FALSE");
}

TelemetrySession::TelemetrySession(std::string dir, std::string trace_path)
    : dir_(std::move(dir)), trace_path_(std::move(trace_path))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        // An uncreatable directory surfaces as a write failure later;
        // the session itself stays usable for tracing.
    }
    if (!trace_path_.empty()) {
        const auto parent =
            std::filesystem::path(trace_path_).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        tracer_ = std::make_unique<Tracer>();
    }
    if (active()) {
        set_telemetry_enabled(true);
    }
}

std::string
TelemetrySession::sanitize_label(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok) {
            c = '_';
        }
    }
    return out;
}

std::string
TelemetrySession::flush()
{
    if (tracer_ == nullptr) {
        return "";
    }
    return tracer_->write_json_file(trace_path_) ? trace_path_ : "";
}

}  // namespace moka
