/**
 * @file
 * Per-process telemetry session. The on/off gate itself lives in
 * telemetry/gate.h (see there for the two-gate cost model).
 *
 * A TelemetrySession bundles the three surfaces (metric registry,
 * epoch timeseries output directory, Chrome trace_event tracer) and
 * is threaded by non-owning pointer through the job engine, runner
 * and multicore harness.
 */
#ifndef MOKASIM_TELEMETRY_TELEMETRY_H
#define MOKASIM_TELEMETRY_TELEMETRY_H

#include <memory>
#include <string>

#include "telemetry/gate.h"
#include "telemetry/registry.h"
#include "telemetry/trace_event.h"

namespace moka {

/**
 * Per-process telemetry context: a metric registry every subsystem
 * can register into, an optional output directory for epoch
 * timeseries (CSV/JSONL per labelled run), and an optional Chrome
 * trace_event tracer. Construction with both paths empty yields an
 * inactive session that consumers treat like a null pointer.
 */
class TelemetrySession
{
  public:
    /**
     * @param dir        directory for per-run epoch CSV/JSONL files
     *        ("" = no timeseries output); created if missing
     * @param trace_path output file for the merged Chrome trace JSON
     *        ("" = no tracer)
     */
    TelemetrySession(std::string dir, std::string trace_path);

    /** True when at least one output surface is configured. */
    bool active() const { return !dir_.empty() || tracer_ != nullptr; }

    /** Process-wide metric registry. */
    MetricRegistry &registry() { return registry_; }

    /** Tracer, or null when --trace-events was not given. */
    Tracer *tracer() { return tracer_.get(); }

    /** Timeseries output directory ("" = none). */
    const std::string &dir() const { return dir_; }

    /**
     * Filesystem-safe variant of @p label for per-run file names:
     * every character outside [A-Za-z0-9._-] becomes '_'.
     */
    static std::string sanitize_label(const std::string &label);

    /**
     * Write the trace JSON (when tracing) and return the path it was
     * written to ("" when no tracer). Idempotent; called by tools
     * after a sweep drains.
     */
    std::string flush();

  private:
    std::string dir_;
    std::string trace_path_;
    MetricRegistry registry_;
    std::unique_ptr<Tracer> tracer_;
};

}  // namespace moka

#endif  // MOKASIM_TELEMETRY_TELEMETRY_H
