#include "telemetry/timeseries.h"

#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace moka {

namespace {

std::string
format_value(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

void
Timeseries::append(const std::vector<TimeseriesCell> &row)
{
    if (columns_.empty() && data_.empty()) {
        columns_.reserve(row.size());
        for (const auto &cell : row) {
            columns_.push_back(cell.first);
        }
    }
    SIM_REQUIRE(row.size() == columns_.size(),
                "timeseries row does not match the frozen column set");
    for (std::size_t i = 0; i < row.size(); ++i) {
        SIM_AUDIT(row[i].first == columns_[i],
                  "timeseries row columns out of order vs. first row");
        data_.push_back(row[i].second);
    }
}

bool
Timeseries::write_csv(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return false;
    }
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        os << (c == 0 ? "" : ",") << columns_[c];
    }
    os << "\n";
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            os << (c == 0 ? "" : ",") << format_value(at(r, c));
        }
        os << "\n";
    }
    os.flush();
    return static_cast<bool>(os);
}

bool
Timeseries::write_jsonl(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return false;
    }
    for (std::size_t r = 0; r < rows(); ++r) {
        os << "{";
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            os << (c == 0 ? "" : ",") << "\"" << Tracer::escape(columns_[c])
               << "\":" << format_value(at(r, c));
        }
        os << "}\n";
    }
    os.flush();
    return static_cast<bool>(os);
}

void
RegistrySampler::sample_into(std::vector<TimeseriesCell> &row)
{
    for (const MetricRegistry::Sample &s : registry_->snapshot()) {
        if (!s.cumulative) {
            row.emplace_back(s.name, s.value);
            continue;
        }
        const auto it = last_.find(s.name);
        const double prev = it == last_.end() ? 0.0 : it->second;
        row.emplace_back(s.name, s.value - prev);
        last_[s.name] = s.value;
    }
}

EpochSampler::EpochSampler(std::uint64_t cadence, SampleFn fn)
    : cadence_(cadence), next_(cadence), fn_(std::move(fn))
{
    SIM_REQUIRE(cadence_ > 0, "epoch-sampler cadence must be positive");
    SIM_REQUIRE(fn_ != nullptr, "epoch sampler needs a callback");
}

MachineSampler::MachineSampler(const Machine *machine, Timeseries *out,
                               Tracer *tracer, std::uint32_t pid,
                               const MetricRegistry *registry)
    : machine_(machine), out_(out), tracer_(tracer), pid_(pid)
{
    SIM_REQUIRE(machine_ != nullptr && out_ != nullptr,
                "machine sampler needs a machine and a buffer");
    if (registry != nullptr) {
        registry_sampler_ = std::make_unique<RegistrySampler>(registry);
    }
    // Baseline so the first sample reports the first epoch's deltas,
    // not cumulative-since-construction values.
    for (std::size_t i = 0; i < machine_->num_cores(); ++i) {
        last_.push_back(machine_->metrics(i));
        const PageCrossFilter *f = machine_->core(i).filter();
        last_filter_.push_back(f != nullptr ? f->telemetry()
                                            : FilterTelemetry{});
    }
}

void
MachineSampler::sample_now()
{
    sample(machine_->steps());
}

void
MachineSampler::sample(std::uint64_t steps)
{
    std::vector<TimeseriesCell> row;
    row.emplace_back("epoch", static_cast<double>(sample_index_));
    row.emplace_back("steps", static_cast<double>(steps));

    const std::uint64_t ts = tracer_ != nullptr ? tracer_->now_us() : 0;

    for (std::size_t i = 0; i < machine_->num_cores(); ++i) {
        char p[32];
        std::snprintf(p, sizeof(p), "c%zu.", i);
        const std::string prefix(p);

        const RunMetrics now = machine_->metrics(i);
        const RunMetrics d = now - last_[i];
        last_[i] = now;

        row.emplace_back(prefix + "insts", double(d.instructions));
        row.emplace_back(prefix + "ipc", d.ipc());
        row.emplace_back(prefix + "l1d_mpki", d.l1d_mpki());
        row.emplace_back(prefix + "llc_mpki", d.llc_mpki());
        row.emplace_back(prefix + "stlb_mpki", d.stlb_mpki());
        row.emplace_back(prefix + "walk_mpki", d.walk_mpki());
        row.emplace_back(prefix + "l1d_writebacks",
                         double(d.l1d_writebacks));
        row.emplace_back(prefix + "l1d_pf_lookups",
                         double(d.l1d_pf_lookups));
        row.emplace_back(prefix + "pgc_candidates",
                         double(d.pgc_candidates));
        row.emplace_back(prefix + "pgc_issued", double(d.pgc_issued));
        row.emplace_back(prefix + "pgc_useful", double(d.pgc_useful));
        row.emplace_back(prefix + "pgc_useless", double(d.pgc_useless));
        row.emplace_back(prefix + "pgc_dropped", double(d.pgc_dropped));
        const double pgc_acc = d.pgc_accuracy();
        row.emplace_back(prefix + "pgc_accuracy", pgc_acc);

        const PageCrossFilter *f = machine_->core(i).filter();
        const FilterTelemetry ft =
            f != nullptr ? f->telemetry() : FilterTelemetry{};
        if (ft.valid) {
            const FilterTelemetry &prev = last_filter_[i];
            row.emplace_back(prefix + "t_a", double(ft.t_a));
            row.emplace_back(prefix + "ta_level", double(ft.level));
            row.emplace_back(prefix + "pgc_disabled",
                             ft.pgc_disabled ? 1.0 : 0.0);
            const std::uint64_t decisions = ft.decisions - prev.decisions;
            row.emplace_back(prefix + "decisions", double(decisions));
            row.emplace_back(prefix + "permits",
                             double(ft.permits - prev.permits));
            row.emplace_back(prefix + "vub_rewards",
                             double(ft.vub_rewards - prev.vub_rewards));
            row.emplace_back(prefix + "pub_rewards",
                             double(ft.pub_rewards - prev.pub_rewards));
            row.emplace_back(prefix + "pub_punishes",
                             double(ft.pub_punishes - prev.pub_punishes));
            const std::int64_t sum_d = ft.sum_total - prev.sum_total;
            row.emplace_back(prefix + "sum_mean",
                             decisions == 0
                                 ? 0.0
                                 : double(sum_d) / double(decisions));
            for (std::size_t b = 0; b < FilterTelemetry::kSumBuckets;
                 ++b) {
                char col[32];
                if (b + 1 < FilterTelemetry::kSumBuckets) {
                    std::snprintf(col, sizeof(col), "sum_le_%d",
                                  FilterTelemetry::kSumBounds[b]);
                } else {
                    std::snprintf(col, sizeof(col), "sum_le_inf");
                }
                row.emplace_back(
                    prefix + col,
                    double(ft.sum_hist[b] - prev.sum_hist[b]));
            }
            for (std::size_t j = 0; j < ft.num_features; ++j) {
                char col[24];
                std::snprintf(col, sizeof(col), "f%zu_mean_abs_w", j);
                const std::uint64_t abs_d =
                    ft.feature_abs[j] - prev.feature_abs[j];
                row.emplace_back(prefix + col,
                                 decisions == 0 ? 0.0
                                                : double(abs_d) /
                                                      double(decisions));
            }
            const ThresholdTelemetry &th = ft.threshold;
            const ThresholdTelemetry &pth = prev.threshold;
            row.emplace_back(prefix + "th_rob_clamps",
                             double(th.rob_clamps - pth.rob_clamps));
            row.emplace_back(prefix + "th_acc_clamps",
                             double(th.acc_clamps - pth.acc_clamps));
            row.emplace_back(prefix + "th_l1i_clamps",
                             double(th.l1i_clamps - pth.l1i_clamps));
            row.emplace_back(
                prefix + "th_disable_intervals",
                double(th.disable_intervals - pth.disable_intervals));
            row.emplace_back(
                prefix + "th_epoch_acc_clamps",
                double(th.epoch_acc_clamps - pth.epoch_acc_clamps));
            row.emplace_back(prefix + "th_nudges_up",
                             double(th.nudges_up - pth.nudges_up));
            row.emplace_back(prefix + "th_nudges_down",
                             double(th.nudges_down - pth.nudges_down));
            row.emplace_back(
                prefix + "th_ipc_drop_clamps",
                double(th.ipc_drop_clamps - pth.ipc_drop_clamps));
            last_filter_[i] = ft;

            if (tracer_ != nullptr) {
                tracer_->counter(pid_, std::uint32_t(i), prefix + "T_a",
                                 ts, "T_a", double(ft.t_a));
            }
        }
        if (tracer_ != nullptr) {
            tracer_->counter(pid_, std::uint32_t(i), prefix + "pgc_acc",
                             ts, "acc", pgc_acc);
            tracer_->counter(pid_, std::uint32_t(i), prefix + "ipc", ts,
                             "ipc", d.ipc());
        }
    }

    if (registry_sampler_ != nullptr) {
        registry_sampler_->sample_into(row);
    }
    out_->append(row);
    ++sample_index_;
}

ScopedRunTelemetry::ScopedRunTelemetry(TelemetrySession *session,
                                       const Machine *machine,
                                       const std::string &label,
                                       std::uint32_t pid)
    : session_(session), label_(label), pid_(pid)
{
    if (session_ == nullptr || !session_->active() ||
        !telemetry_enabled() || machine == nullptr) {
        return;
    }
    sampler_ = std::make_unique<MachineSampler>(
        machine, &series_, session_->tracer(), pid_);
    // One sample per (per-core) adaptive epoch: the machine steps one
    // instruction on one core at a time, so the per-machine cadence
    // is epoch_insts scaled by the core count.
    const std::uint64_t cadence =
        machine->config().epoch_insts *
        std::max<std::uint64_t>(1, machine->num_cores());
    epoch_hook_ = std::make_unique<EpochSampler>(
        cadence, [this](std::uint64_t steps) { sampler_->sample(steps); });
}

ScopedRunTelemetry::~ScopedRunTelemetry()
{
    if (sampler_ == nullptr) {
        return;
    }
    // Final partial-epoch sample so short runs still produce rows.
    sampler_->sample_now();
    if (!session_->dir().empty()) {
        const std::string base = session_->dir() + "/" +
                                 TelemetrySession::sanitize_label(label_);
        series_.write_csv(base + ".epochs.csv");
        series_.write_jsonl(base + ".epochs.jsonl");
    }
}

RunTickHook *
ScopedRunTelemetry::hook(RunTickHook *inner)
{
    if (epoch_hook_ == nullptr) {
        return inner;
    }
    chain_.add(inner);
    chain_.add(epoch_hook_.get());
    return chain_.as_hook();
}

void
ScopedRunTelemetry::span(const char *name, const std::function<void()> &body)
{
    Tracer *tracer =
        session_ != nullptr && session_->active() ? session_->tracer()
                                                  : nullptr;
    TraceSpan s(tracer, pid_, 0, name);
    body();
}

}  // namespace moka
