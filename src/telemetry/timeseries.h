/**
 * @file
 * Epoch timeseries sampling (telemetry surface (b)).
 *
 * Layers, bottom up:
 *
 *  - Timeseries: columnar in-memory buffer (column set frozen by the
 *    first row) flushed as CSV or JSONL once the run is over;
 *  - RegistrySampler: turns MetricRegistry snapshots into rows,
 *    emitting per-sample deltas for cumulative instruments (counters,
 *    histogram buckets) and raw values for gauges/probes;
 *  - EpochSampler: a RunTickHook that invokes a callback every
 *    `cadence` machine steps — the only thing on the sim hot path,
 *    costing one compare-and-branch per step;
 *  - MachineSampler: snapshots a Machine per epoch — per-core IPC,
 *    MPKIs, page-cross counters and the filter's FilterTelemetry
 *    (T_a, perceptron-sum distribution, vUB/pUB reward-punish rates,
 *    per-feature contribution) — into a Timeseries and optional
 *    Chrome counter tracks;
 *  - ScopedRunTelemetry: RAII bundle the runner uses to arm all of
 *    the above for one labelled run and flush files on destruction.
 */
#ifndef MOKASIM_TELEMETRY_TIMESERIES_H
#define MOKASIM_TELEMETRY_TIMESERIES_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/machine.h"
#include "telemetry/telemetry.h"

namespace moka {

/** One (column, value) cell of a timeseries row. */
using TimeseriesCell = std::pair<std::string, double>;

/** Columnar buffer; see file comment. */
class Timeseries
{
  public:
    /**
     * Append one row. The first append freezes the column set; later
     * rows must present the same columns in the same order
     * (SIM_REQUIRE), which keeps the buffer rectangular.
     */
    void append(const std::vector<TimeseriesCell> &row);

    /** Frozen column names (empty before the first append). */
    const std::vector<std::string> &columns() const { return columns_; }

    /** Number of rows appended. */
    std::size_t rows() const
    {
        return columns_.empty() ? 0 : data_.size() / columns_.size();
    }

    /** Cell value at (@p row, @p col). */
    double at(std::size_t row, std::size_t col) const
    {
        return data_[row * columns_.size() + col];
    }

    /** Write `col,col,...\n` header + one CSV line per row. */
    bool write_csv(const std::string &path) const;

    /** Write one JSON object per row ({"col":value,...}). */
    bool write_jsonl(const std::string &path) const;

  private:
    std::vector<std::string> columns_;
    std::vector<double> data_;  //!< row-major
};

/** Registry-to-row adapter; see file comment. */
class RegistrySampler
{
  public:
    explicit RegistrySampler(const MetricRegistry *registry)
        : registry_(registry)
    {
    }

    /**
     * Append one cell per registered instrument to @p row: deltas
     * since the previous sample for cumulative instruments, raw
     * values otherwise.
     */
    void sample_into(std::vector<TimeseriesCell> &row);

  private:
    const MetricRegistry *registry_;
    std::unordered_map<std::string, double> last_;
};

/**
 * RunTickHook firing a callback every @p cadence machine steps. The
 * idle-path cost is the single `steps < next_` branch.
 */
class EpochSampler : public RunTickHook
{
  public:
    using SampleFn = std::function<void(std::uint64_t steps)>;

    EpochSampler(std::uint64_t cadence, SampleFn fn);

    void on_tick(std::uint64_t steps) override
    {
        if (steps < next_) {
            return;
        }
        next_ = steps + cadence_;
        fn_(steps);
    }

  private:
    std::uint64_t cadence_;
    std::uint64_t next_;
    SampleFn fn_;
};

/** Per-epoch Machine snapshotter; see file comment. */
class MachineSampler
{
  public:
    /**
     * @param machine sampled machine (non-owning; must outlive this)
     * @param out     destination buffer (non-owning)
     * @param tracer  optional: emit per-epoch counter tracks
     *        ("T_a", "pgc_acc" per core) onto (pid, tid=core)
     * @param pid     trace process id for the counter tracks
     * @param registry optional: extra columns via RegistrySampler
     */
    MachineSampler(const Machine *machine, Timeseries *out,
                   Tracer *tracer = nullptr, std::uint32_t pid = 0,
                   const MetricRegistry *registry = nullptr);

    /** Take one sample at machine-step @p steps. */
    void sample(std::uint64_t steps);

    /** sample() at the machine's current step count. */
    void sample_now();

    /** Samples taken so far. */
    std::uint64_t samples() const { return sample_index_; }

  private:
    const Machine *machine_;
    Timeseries *out_;
    Tracer *tracer_;
    std::uint32_t pid_;
    std::unique_ptr<RegistrySampler> registry_sampler_;
    std::vector<RunMetrics> last_;
    std::vector<FilterTelemetry> last_filter_;
    std::uint64_t sample_index_ = 0;
};

/**
 * Arms epoch sampling (and an optional "warmup"/"measure" phase span)
 * for one labelled run. Inert — every method degenerates to the inner
 * hook / no-op — when @p session is null or inactive, so callers
 * construct it unconditionally.
 *
 * On destruction, takes a final sample and writes
 * `<dir>/<label>.epochs.csv` + `.jsonl` (when the session has a
 * timeseries directory).
 */
class ScopedRunTelemetry
{
  public:
    /**
     * @param session telemetry session (null = inert)
     * @param machine machine to sample (non-owning)
     * @param label   run label, sanitized for file names
     * @param pid     trace process id of this run's counter tracks
     */
    ScopedRunTelemetry(TelemetrySession *session, const Machine *machine,
                       const std::string &label, std::uint32_t pid = 0);
    ~ScopedRunTelemetry();

    ScopedRunTelemetry(const ScopedRunTelemetry &) = delete;
    ScopedRunTelemetry &operator=(const ScopedRunTelemetry &) = delete;

    /**
     * Chain the epoch-sampling hook after @p inner; returns @p inner
     * unchanged when inert.
     */
    RunTickHook *hook(RunTickHook *inner);

    /** Record phase @p name as a span around @p body (always runs). */
    void span(const char *name, const std::function<void()> &body);

    /** True when sampling is armed. */
    bool active() const { return sampler_ != nullptr; }

  private:
    TelemetrySession *session_;
    std::string label_;
    std::uint32_t pid_;
    Timeseries series_;
    std::unique_ptr<MachineSampler> sampler_;
    std::unique_ptr<EpochSampler> epoch_hook_;
    TickHookChain chain_;
};

}  // namespace moka

#endif  // MOKASIM_TELEMETRY_TIMESERIES_H
