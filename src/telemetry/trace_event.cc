#include "telemetry/trace_event.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace moka {

namespace {

std::uint64_t
steady_now_us()
{
    // LINT_NONDET_OK: trace timestamps are wall-time by design; they
    // never feed a result CSV (tests pass explicit ts_us instead).
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void
write_event(std::ostream &os, const TraceEvent &e, bool last)
{
    os << "{\"name\":\"" << Tracer::escape(e.name) << "\",\"ph\":\""
       << e.phase << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us;
    if (e.phase == 'X') {
        os << ",\"dur\":" << e.dur_us;
    }
    if (e.phase == 'i') {
        os << ",\"s\":\"t\"";
    }
    if (!e.args_json.empty()) {
        os << ",\"args\":" << e.args_json;
    }
    os << (last ? "}" : "},") << "\n";
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_us_(steady_now_us())
{
    SIM_REQUIRE(capacity_ > 0, "tracer ring capacity must be positive");
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint64_t
Tracer::now_us() const
{
    const std::uint64_t now = steady_now_us();
    return now >= epoch_us_ ? now - epoch_us_ : 0;
}

void
Tracer::register_process(std::uint32_t pid, const std::string &name)
{
    TraceEvent e;
    e.phase = 'M';
    e.pid = pid;
    e.tid = 0;
    e.name = "process_name";
    e.args_json = "{\"name\":\"" + escape(name) + "\"}";
    SimMutexLock lock(&mu_);
    metadata_.push_back(std::move(e));
}

void
Tracer::register_thread(std::uint32_t pid, std::uint32_t tid,
                        const std::string &name)
{
    TraceEvent e;
    e.phase = 'M';
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.args_json = "{\"name\":\"" + escape(name) + "\"}";
    SimMutexLock lock(&mu_);
    metadata_.push_back(std::move(e));
}

void
Tracer::complete(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, std::uint64_t ts_us,
                 std::uint64_t dur_us, const std::string &args_json)
{
    TraceEvent e;
    e.phase = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.name = name;
    e.args_json = args_json;
    SimMutexLock lock(&mu_);
    push_locked(std::move(e));
}

void
Tracer::instant(std::uint32_t pid, std::uint32_t tid, const std::string &name,
                std::uint64_t ts_us, const std::string &args_json)
{
    TraceEvent e;
    e.phase = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    e.name = name;
    e.args_json = args_json;
    SimMutexLock lock(&mu_);
    push_locked(std::move(e));
}

void
Tracer::counter(std::uint32_t pid, std::uint32_t tid, const std::string &name,
                std::uint64_t ts_us, const std::string &series, double value)
{
    char body[96];
    std::snprintf(body, sizeof(body), "{\"%s\":%.17g}",
                  escape(series).c_str(), value);
    TraceEvent e;
    e.phase = 'C';
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    e.name = name;
    e.args_json = body;
    SimMutexLock lock(&mu_);
    push_locked(std::move(e));
}

std::size_t
Tracer::size() const
{
    SimMutexLock lock(&mu_);
    return wrapped_ ? capacity_ : ring_.size();
}

std::uint64_t
Tracer::dropped() const
{
    SimMutexLock lock(&mu_);
    return dropped_;
}

void
Tracer::push_locked(TraceEvent event)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
}

void
Tracer::write_json(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    std::vector<TraceEvent> metadata;
    {
        SimMutexLock lock(&mu_);
        metadata = metadata_;
        if (wrapped_) {
            events.reserve(capacity_);
            events.insert(events.end(), ring_.begin() + head_, ring_.end());
            events.insert(events.end(), ring_.begin(), ring_.begin() + head_);
        } else {
            events = ring_;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    os << "{\"traceEvents\":[\n";
    const std::size_t total = metadata.size() + events.size();
    std::size_t written = 0;
    for (const auto &e : metadata) {
        write_event(os, e, ++written == total);
    }
    for (const auto &e : events) {
        write_event(os, e, ++written == total);
    }
    os << "]}\n";
}

bool
Tracer::write_json_file(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return false;
    }
    write_json(os);
    os.flush();
    return static_cast<bool>(os);
}

std::string
Tracer::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

TraceSpan::TraceSpan(Tracer *tracer, std::uint32_t pid, std::uint32_t tid,
                     std::string name, std::string args_json)
    : tracer_(tracer),
      pid_(pid),
      tid_(tid),
      name_(std::move(name)),
      args_json_(std::move(args_json))
{
    if (tracer_ != nullptr) {
        begin_us_ = tracer_->now_us();
    }
}

TraceSpan::~TraceSpan()
{
    if (tracer_ != nullptr) {
        const std::uint64_t end = tracer_->now_us();
        tracer_->complete(pid_, tid_, name_, begin_us_,
                          end >= begin_us_ ? end - begin_us_ : 0, args_json_);
    }
}

}  // namespace moka
