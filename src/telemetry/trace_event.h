/**
 * @file
 * Structured event tracer (telemetry surface (c)) emitting Chrome
 * `trace_event` JSON that loads in chrome://tracing and Perfetto.
 *
 * Event model (the subset of the trace_event spec we emit):
 *
 *  - complete ("X"): a span with begin timestamp + duration, bound to
 *    a (pid, tid) track — job-engine jobs, per-core sim phases
 *  - instant ("i"):  a point event — retries, journal writes
 *  - counter ("C"):  a numeric track sampled over time — T_a, PGC
 *    accuracy per epoch
 *  - metadata ("M"): process_name / thread_name labels for the tracks
 *
 * Events are appended into a fixed-capacity ring buffer under a
 * mutex; when the ring wraps the oldest events are overwritten and a
 * drop counter records how many were lost (flushing happens off the
 * hot path, never inside the sim loop). Timestamps are explicit
 * microsecond values so tests can emit deterministic traces; live
 * callers use now_us().
 */
#ifndef MOKASIM_TELEMETRY_TRACE_EVENT_H
#define MOKASIM_TELEMETRY_TRACE_EVENT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace moka {

/** One trace_event row; see file comment for the phase vocabulary. */
struct TraceEvent
{
    char phase = 'X';       //!< 'X' complete, 'i' instant, 'C' counter
    std::uint32_t pid = 0;  //!< process track (e.g. engine vs. core)
    std::uint32_t tid = 0;  //!< thread track (worker index, core index)
    std::uint64_t ts_us = 0;   //!< event begin, microseconds
    std::uint64_t dur_us = 0;  //!< duration ('X' only)
    std::string name;
    std::string args_json;  //!< preformatted JSON object body, "" = none
};

/** See file comment. */
class Tracer
{
  public:
    /** @param capacity ring size in events (oldest overwritten). */
    explicit Tracer(std::size_t capacity = 1u << 16);

    /** Microseconds on a steady clock since tracer construction. */
    std::uint64_t now_us() const;

    /** Label a pid track ("M" process_name metadata). */
    void register_process(std::uint32_t pid, const std::string &name)
        SIM_EXCLUDES(mu_);

    /** Label a (pid, tid) track ("M" thread_name metadata). */
    void register_thread(std::uint32_t pid, std::uint32_t tid,
                         const std::string &name) SIM_EXCLUDES(mu_);

    /**
     * Record a complete span ('X').
     * @param args_json preformatted JSON object ("" = omit args)
     */
    void complete(std::uint32_t pid, std::uint32_t tid,
                  const std::string &name, std::uint64_t ts_us,
                  std::uint64_t dur_us, const std::string &args_json = "")
        SIM_EXCLUDES(mu_);

    /** Record an instant event ('i', thread scope). */
    void instant(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, std::uint64_t ts_us,
                 const std::string &args_json = "") SIM_EXCLUDES(mu_);

    /** Record a counter sample ('C'); @p series names the value. */
    void counter(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, std::uint64_t ts_us,
                 const std::string &series, double value)
        SIM_EXCLUDES(mu_);

    /** Events currently buffered (metadata excluded). */
    std::size_t size() const SIM_EXCLUDES(mu_);

    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const SIM_EXCLUDES(mu_);

    /**
     * Write the whole trace as `{"traceEvents":[...]}` — metadata
     * first, then buffered events sorted by timestamp, one event per
     * line (parseable line-wise by the golden test and mergeable by
     * timeline_tool).
     */
    void write_json(std::ostream &os) const SIM_EXCLUDES(mu_);

    /** write_json to @p path; returns false on I/O failure. */
    bool write_json_file(const std::string &path) const;

    /** JSON-escape @p s (quotes, backslashes, control characters). */
    static std::string escape(const std::string &s);

  private:
    void push_locked(TraceEvent event) SIM_REQUIRES(mu_);

    mutable SimMutex mu_;
    std::size_t capacity_;  //!< const after construction (unguarded)
    std::vector<TraceEvent> ring_ SIM_GUARDED_BY(mu_);
    //! next write slot once the ring is full
    std::size_t head_ SIM_GUARDED_BY(mu_) = 0;
    bool wrapped_ SIM_GUARDED_BY(mu_) = false;
    std::uint64_t dropped_ SIM_GUARDED_BY(mu_) = 0;
    //! never dropped
    std::vector<TraceEvent> metadata_ SIM_GUARDED_BY(mu_);
    std::uint64_t epoch_us_;  //!< steady-clock construction time (const)
};

/**
 * RAII complete-span helper; null-safe so instrumentation sites can
 * hold a possibly-null Tracer*. The span is recorded at destruction
 * with the elapsed wall time.
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer *tracer, std::uint32_t pid, std::uint32_t tid,
              std::string name, std::string args_json = "");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Tracer *tracer_;
    std::uint32_t pid_;
    std::uint32_t tid_;
    std::string name_;
    std::string args_json_;
    std::uint64_t begin_us_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_TELEMETRY_TRACE_EVENT_H
