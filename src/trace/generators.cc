#include "trace/generators.h"

#include <cmath>
#include <utility>

#include "common/hashing.h"

namespace moka {
namespace {

/** Sequential multi-stream sweep (see make_stream_kernel). */
class StreamKernel : public AccessKernel
{
  public:
    explicit StreamKernel(const StreamParams &p) : p_(p)
    {
        const Addr per_stream = p_.footprint / p_.streams;
        for (unsigned s = 0; s < p_.streams; ++s) {
            cursors_.push_back(p_.base + s * per_stream);
        }
    }

    Access
    next(Rng &rng) override
    {
        const unsigned s = next_stream_;
        // Compare-wrap, not %: runs on every generated access
        // (rule L19).
        if (++next_stream_ == p_.streams) {
            next_stream_ = 0;
        }
        const Addr per_stream = p_.footprint / p_.streams;
        const Addr lo = p_.base + s * per_stream;
        Addr a = cursors_[s];
        cursors_[s] += p_.stride;
        if (cursors_[s] >= lo + per_stream) {
            cursors_[s] = lo;
        }
        return {a, 0x4000 + s * 16, rng.chance(p_.store_frac)};
    }

  private:
    StreamParams p_;
    std::vector<Addr> cursors_;
    unsigned next_stream_ = 0;
};

/** Page-sized rows with large pitch (see make_tile_kernel). */
class TileKernel : public AccessKernel
{
  public:
    explicit TileKernel(const TileParams &p) : p_(p) {}

    Access
    next(Rng &rng) override
    {
        const Addr a = p_.base + row_ * p_.pitch + col_;
        col_ += p_.stride;
        if (col_ >= p_.row_bytes) {
            col_ = 0;
            if (++row_ == p_.rows) {  // compare-wrap (rule L19)
                row_ = 0;
            }
        }
        return {a, 0x5000, rng.chance(p_.store_frac)};
    }

  private:
    TileParams p_;
    Addr row_ = 0;
    Addr col_ = 0;
};

/** CSR traversal (see make_csr_graph_kernel). */
class CsrGraphKernel : public AccessKernel
{
  public:
    explicit CsrGraphKernel(const CsrGraphParams &p) : p_(p)
    {
        offsets_base_ = p_.base;
        edges_base_ = p_.base + p_.vertices * 8 + kPageSize;
        edges_base_ = page_addr(edges_base_ + kPageSize - 1);
        values_base_ =
            edges_base_ + p_.vertices * Addr{p_.avg_degree} * 8 + kPageSize;
        values_base_ = page_addr(values_base_ + kPageSize - 1);
    }

    Access
    next(Rng &rng) override
    {
        switch (state_) {
          case State::kOffset: {
            const Addr a = offsets_base_ + vertex_ * 8;
            // Deterministic degree derived from the vertex id so the
            // stream replays identically across schemes.
            degree_left_ = 1 + static_cast<unsigned>(
                mix64(vertex_ * 0x9E3779B97F4A7C15ull) %
                (2 * p_.avg_degree));
            // LINT_HOT_OK: semantic range reduction of a hash onto
            // the edge array, not table indexing -- the footprint is
            // not pow2 and the modulo defines the workload.
            edge_cursor_ = edges_base_ +
                (mix64(vertex_) % (p_.vertices * p_.avg_degree)) * 8;
            state_ = State::kEdges;
            return {a, 0x6000, false};
          }
          case State::kEdges: {
            const Addr a = edge_cursor_;
            edge_cursor_ += 8;
            pending_gather_ = rng.chance(p_.value_gather_frac);
            if (--degree_left_ == 0) {
                if (++vertex_ == p_.vertices) {  // compare-wrap (rule L19)
                    vertex_ = 0;
                }
                state_ = pending_gather_ ? State::kGather : State::kOffset;
            } else if (pending_gather_) {
                state_ = State::kGather;
            }
            return {a, 0x6010, false, true};
          }
          case State::kGather:
          default: {
            // LINT_HOT_OK: semantic range reduction of the random
            // gather target; vertices is not pow2 in general.
            const Addr a = values_base_ +
                (rng.next() % p_.vertices) * kBlockSize;
            state_ = (degree_left_ == 0) ? State::kOffset : State::kEdges;
            return {a, 0x6020, rng.chance(p_.store_frac), true};
          }
        }
    }

  private:
    enum class State { kOffset, kEdges, kGather };

    CsrGraphParams p_;
    Addr offsets_base_ = 0;
    Addr edges_base_ = 0;
    Addr values_base_ = 0;
    std::uint64_t vertex_ = 0;
    unsigned degree_left_ = 0;
    Addr edge_cursor_ = 0;
    bool pending_gather_ = false;
    State state_ = State::kOffset;
};

/** Dependent sequential chase (see make_seq_chase_kernel). */
class SeqChaseKernel : public AccessKernel
{
  public:
    explicit SeqChaseKernel(const SeqChaseParams &p) : p_(p)
    {
        blocks_ = p_.footprint / kBlockSize;
    }

    Access
    next(Rng &rng) override
    {
        const Addr a = p_.base + cursor_ * kBlockSize;
        cursor_ += p_.stride_lines;
        if (cursor_ >= blocks_ || rng.chance(p_.restart_prob)) {
            cursor_ = rng.below(blocks_);
        }
        return {a, 0x7800, false, /*dependent=*/true};
    }

  private:
    SeqChaseParams p_;
    Addr blocks_ = 0;
    Addr cursor_ = 0;
};

/** Dependent random chase (see make_pointer_chase_kernel). */
class PointerChaseKernel : public AccessKernel
{
  public:
    explicit PointerChaseKernel(const PointerChaseParams &p) : p_(p)
    {
        for (unsigned c = 0; c < p_.chains; ++c) {
            cursors_.push_back(mix64(c * 77 + 1));
        }
    }

    Access
    next(Rng & /*rng*/) override
    {
        const unsigned c = next_chain_;
        if (++next_chain_ == p_.chains) {  // compare-wrap (rule L19)
            next_chain_ = 0;
        }
        const Addr blocks = p_.footprint / kBlockSize;
        // LINT_HOT_OK: semantic range reduction of the chase hash
        // onto the footprint, which is not pow2 in general.
        const Addr a = p_.base + (cursors_[c] % blocks) * kBlockSize;
        // Next hop depends on the current one: a data-dependent chain.
        cursors_[c] = mix64(cursors_[c]);
        return {a, 0x7000 + c * 16, false, true};
    }

  private:
    PointerChaseParams p_;
    std::vector<std::uint64_t> cursors_;
    unsigned next_chain_ = 0;
};

/** Random bucket + short in-page probe (see make_hash_probe_kernel). */
class HashProbeKernel : public AccessKernel
{
  public:
    explicit HashProbeKernel(const HashProbeParams &p) : p_(p) {}

    Access
    next(Rng &rng) override
    {
        if (lines_left_ == 0) {
            const Addr pages = p_.footprint / kPageSize;
            cursor_ = p_.base + rng.below(pages) * kPageSize +
                      rng.below(kBlocksPerPage) * kBlockSize;
            lines_left_ = static_cast<unsigned>(
                rng.range(p_.probe_lines_min, p_.probe_lines_max));
        }
        const Addr a = cursor_;
        cursor_ += kBlockSize;
        --lines_left_;
        return {a, 0x8000, rng.chance(p_.store_frac)};
    }

  private:
    HashProbeParams p_;
    Addr cursor_ = 0;
    unsigned lines_left_ = 0;
};

/** Sequential index stream + random gathers (see make_gather_kernel). */
class GatherKernel : public AccessKernel
{
  public:
    explicit GatherKernel(const GatherParams &p) : p_(p) {}

    Access
    next(Rng &rng) override
    {
        if (gathers_left_ > 0) {
            --gathers_left_;
            const Addr blocks = p_.data_bytes / kBlockSize;
            return {p_.data_base + rng.below(blocks) * kBlockSize, 0x9010,
                    false, true};
        }
        const Addr a = p_.index_base + index_cursor_;
        index_cursor_ += 8;
        if (index_cursor_ >= p_.index_bytes) {
            index_cursor_ = 0;
        }
        gathers_left_ = p_.gathers_per_index;
        return {a, 0x9000, false};
    }

  private:
    GatherParams p_;
    Addr index_cursor_ = 0;
    unsigned gathers_left_ = 0;
};

/** 5-point stencil sweep (see make_stencil_kernel). */
class StencilKernel : public AccessKernel
{
  public:
    explicit StencilKernel(const StencilParams &p) : p_(p) {}

    Access
    next(Rng & /*rng*/) override
    {
        // Point order per element: N, W, C, E, S.
        const Addr center =
            p_.base + row_ * p_.row_bytes + col_ * p_.elem_bytes;
        Addr a = center;
        switch (point_) {
          case 0: a = center - p_.row_bytes; break;  // north
          case 1: a = center - p_.elem_bytes; break; // west
          case 2: a = center; break;
          case 3: a = center + p_.elem_bytes; break; // east
          case 4: a = center + p_.row_bytes; break;  // south
        }
        // Distinct PC per stencil point: five recognizable streams.
        const Addr pc = 0xC800 + Addr(point_) * 8;
        if (++point_ == 5) {
            point_ = 0;
            if (++col_ >= p_.row_bytes / p_.elem_bytes - 1) {
                col_ = 1;
                if (++row_ == p_.rows) {  // compare-wrap (rule L19)
                    row_ = 0;
                }
                if (row_ == 0) {
                    row_ = 1;
                }
            }
        }
        return {a, pc, false};
    }

  private:
    StencilParams p_;
    Addr row_ = 1;
    Addr col_ = 1;
    unsigned point_ = 0;
};

/** Zipf-distributed point accesses (see make_zipf_kernel). */
class ZipfKernel : public AccessKernel
{
  public:
    explicit ZipfKernel(const ZipfParams &p) : p_(p)
    {
        // Rejection-free approximate Zipf via the inverse-CDF power
        // trick: rank = N * u^(1/(1-skew)) biases towards low ranks.
        blocks_ = p_.footprint / kBlockSize;
    }

    Access
    next(Rng &rng) override
    {
        const double u = rng.uniform();
        const double exponent = 1.0 / (1.0 - p_.skew);
        const double frac = std::pow(u, exponent);
        Addr block = static_cast<Addr>(frac * double(blocks_ - 1));
        if (block >= blocks_) {
            block = blocks_ - 1;
        }
        // Scramble ranks across the footprint so the hot set is not
        // spatially contiguous (defeats trivial spatial prefetching).
        // LINT_HOT_OK: semantic range reduction of the scramble hash;
        // the Zipf footprint is not pow2 in general.
        block = mix64(block) % blocks_;
        return {p_.base + block * kBlockSize, 0xD800,
                rng.chance(p_.store_frac)};
    }

  private:
    ZipfParams p_;
    Addr blocks_ = 0;
};

/** Same-PC dual-stride kernel (see make_dual_stride_kernel). */
class DualStrideKernel : public AccessKernel
{
  public:
    explicit DualStrideKernel(const DualStrideParams &p) : p_(p) {}

    Access
    next(Rng &rng) override
    {
        if (streaming_) {
            const Addr a = p_.base + stream_cursor_;
            // cursor < footprint, so one compare-subtract wraps
            // exactly like the modulo (rule L19).
            stream_cursor_ += kBlockSize;
            if (stream_cursor_ >= p_.footprint) {
                stream_cursor_ -= p_.footprint;
            }
            if (++burst_count_ >= p_.stream_burst) {
                burst_count_ = 0;
                streaming_ = false;
                runs_left_ = p_.runs_per_burst;
                start_run(rng);
            }
            return {a, 0xB000, false};
        }
        const Addr a = p_.base + run_page_ * kPageSize +
                       run_line_ * kBlockSize;
        run_line_ += p_.hop_lines;
        if (run_line_ >= kBlocksPerPage) {
            // The run always dies at the page boundary: a +hop_lines
            // page-cross prefetch issued from the last hop is useless.
            if (--runs_left_ == 0) {
                streaming_ = true;
            } else {
                start_run(rng);
            }
        }
        return {a, 0xB000, false};
    }

  private:
    void
    start_run(Rng &rng)
    {
        run_page_ = rng.below(p_.footprint / kPageSize);
        run_line_ = 0;
    }

    DualStrideParams p_;
    bool streaming_ = true;
    Addr stream_cursor_ = 0;
    unsigned burst_count_ = 0;
    unsigned runs_left_ = 0;
    Addr run_page_ = 0;
    Addr run_line_ = 0;
};

/** Round-robin phase mixer (see make_phase_mix_kernel). */
class PhaseMixKernel : public AccessKernel
{
  public:
    PhaseMixKernel(std::vector<KernelPtr> children, std::uint64_t phase_len)
        : children_(std::move(children)), phase_len_(phase_len)
    {
    }

    Access
    next(Rng &rng) override
    {
        if (++count_ >= phase_len_) {
            count_ = 0;
            if (++active_ == children_.size()) {  // compare-wrap (rule L19)
                active_ = 0;
            }
        }
        return children_[active_]->next(rng);
    }

  private:
    std::vector<KernelPtr> children_;
    std::uint64_t phase_len_;
    std::uint64_t count_ = 0;
    std::size_t active_ = 0;
};

/** Bursty stream/chase alternation (see make_bursty_kernel). */
class BurstyKernel : public AccessKernel
{
  public:
    explicit BurstyKernel(const BurstyParams &p) : p_(p) {}

    Access
    next(Rng &rng) override
    {
        if (left_ == 0) {
            left_ = p_.burst_len;
            streaming_ = rng.chance(p_.stream_frac);
            if (streaming_) {
                cursor_ = p_.base +
                          rng.below(p_.footprint / kPageSize) * kPageSize;
            }
        }
        --left_;
        if (streaming_) {
            const Addr a = cursor_;
            cursor_ += kBlockSize;
            if (cursor_ >= p_.base + p_.footprint) {
                cursor_ = p_.base;
            }
            return {a, 0xA000, false};
        }
        chase_ = mix64(chase_ + 1);
        const Addr blocks = p_.footprint / kBlockSize;
        // LINT_HOT_OK: semantic range reduction of the chase hash;
        // the footprint is not pow2 in general.
        return {p_.base + (chase_ % blocks) * kBlockSize, 0xA010, false, true};
    }

  private:
    BurstyParams p_;
    std::uint64_t left_ = 0;
    bool streaming_ = false;
    Addr cursor_ = 0;
    std::uint64_t chase_ = 0;
};

/**
 * The interleaver: wraps a kernel with ALU filler and loop branches
 * to form a complete instruction stream (see make_synthetic).
 */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(std::string name, KernelPtr kernel,
                      const InterleaveParams &params, std::uint64_t seed)
        : name_(std::move(name)), kernel_(std::move(kernel)), p_(params),
          rng_(seed)
    {
    }

    TraceInst
    next() override
    {
        TraceInst inst;
        const double draw = rng_.uniform();
        if (draw < p_.branch_ratio) {
            inst.op = OpClass::kBranch;
            if (rng_.chance(p_.hard_branch_frac)) {
                // Data-dependent branch: outcome is a coin flip.
                inst.pc = kBranchBase + 0x40;
                inst.taken = rng_.chance(0.5);
            } else {
                // Loop branch: taken (period-1)/period of the time.
                inst.pc = kBranchBase;
                // LINT_HOT_OK: loop_iter_ is a monotonic counter in
                // the snapshot format; wrapping it would change the
                // serialized state.
                inst.taken = (++loop_iter_ % p_.loop_period) != 0;
            }
            inst.target = inst.taken ? kLoopTop : inst.pc + 4;
        } else if (draw < p_.branch_ratio + p_.mem_ratio) {
            // LINT_HOT_OK: the kernel is the synthetic workload's
            // configuration seam (chosen per run, genuinely
            // polymorphic); trace generation is not the simulated
            // pipeline the inst/sec budget measures (rule L12).
            const AccessKernel::Access a = kernel_->next(rng_);
            inst.op = (a.store || rng_.chance(p_.store_frac))
                          ? OpClass::kStore
                          : OpClass::kLoad;
            inst.pc = kCodeBase + a.pc;
            // Trace synthesis: the one place raw generated addresses
            // become typed virtual addresses.
            inst.mem_addr = VirtAddr{a.addr};
            inst.dep_load = a.dependent;
        } else {
            inst.op = OpClass::kAlu;
            inst.pc = kCodeBase + 0x100 + (alu_pc_++ % 16) * 4;
        }
        return inst;
    }

    const std::string &name() const override { return name_; }

  private:
    static constexpr Addr kCodeBase = 0x400000;
    static constexpr Addr kBranchBase = kCodeBase + 0x2000;
    static constexpr Addr kLoopTop = kCodeBase + 0x1000;

    std::string name_;
    KernelPtr kernel_;
    InterleaveParams p_;
    Rng rng_;
    std::uint64_t loop_iter_ = 0;
    std::uint64_t alu_pc_ = 0;
};

}  // namespace

WorkloadPtr
make_synthetic(std::string name, KernelPtr kernel,
               const InterleaveParams &params, std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(std::move(name),
                                               std::move(kernel), params,
                                               seed);
}

KernelPtr
make_stream_kernel(const StreamParams &p)
{
    return std::make_unique<StreamKernel>(p);
}

KernelPtr
make_tile_kernel(const TileParams &p)
{
    return std::make_unique<TileKernel>(p);
}

KernelPtr
make_csr_graph_kernel(const CsrGraphParams &p)
{
    return std::make_unique<CsrGraphKernel>(p);
}

KernelPtr
make_seq_chase_kernel(const SeqChaseParams &p)
{
    return std::make_unique<SeqChaseKernel>(p);
}

KernelPtr
make_pointer_chase_kernel(const PointerChaseParams &p)
{
    return std::make_unique<PointerChaseKernel>(p);
}

KernelPtr
make_hash_probe_kernel(const HashProbeParams &p)
{
    return std::make_unique<HashProbeKernel>(p);
}

KernelPtr
make_gather_kernel(const GatherParams &p)
{
    return std::make_unique<GatherKernel>(p);
}

KernelPtr
make_stencil_kernel(const StencilParams &p)
{
    return std::make_unique<StencilKernel>(p);
}

KernelPtr
make_zipf_kernel(const ZipfParams &p)
{
    return std::make_unique<ZipfKernel>(p);
}

KernelPtr
make_dual_stride_kernel(const DualStrideParams &p)
{
    return std::make_unique<DualStrideKernel>(p);
}

KernelPtr
make_phase_mix_kernel(std::vector<KernelPtr> children,
                      std::uint64_t phase_len)
{
    return std::make_unique<PhaseMixKernel>(std::move(children), phase_len);
}

KernelPtr
make_bursty_kernel(const BurstyParams &p)
{
    return std::make_unique<BurstyKernel>(p);
}

}  // namespace moka
