/**
 * @file
 * Synthetic access kernels and the generic instruction interleaver
 * that turns a kernel into a full Workload instruction stream.
 *
 * Kernels are crafted so that across the roster some workloads reward
 * page-cross prefetching (dense multi-page streams: the next virtual
 * page is about to be touched) and others punish it (page-sized rows
 * with large pitch, hash probes: the sequential-next page is never
 * touched, so a page-cross prefetch costs a speculative page walk and
 * pollutes TLB + caches for nothing). This mirrors the bimodal
 * behaviour the paper reports in Fig. 2.
 */
#ifndef MOKASIM_TRACE_GENERATORS_H
#define MOKASIM_TRACE_GENERATORS_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/workload.h"

namespace moka {

/**
 * A memory-access pattern: yields the data-reference stream of a
 * kernel, one access at a time. The interleaver wraps it with ALU and
 * branch filler to produce a complete instruction stream.
 */
class AccessKernel
{
  public:
    /** One data reference. */
    struct Access
    {
        Addr addr = 0;      //!< virtual byte address
        Addr pc = 0;        //!< PC of the load/store instruction
        bool store = false; //!< true for stores
        bool dependent = false; //!< address depends on previous load
    };

    virtual ~AccessKernel() = default;

    /** Produce the next data reference. */
    virtual Access next(Rng &rng) = 0;
};

using KernelPtr = std::unique_ptr<AccessKernel>;

/** Instruction-mix knobs for the interleaver. */
struct InterleaveParams
{
    double mem_ratio = 0.35;    //!< fraction of instructions that touch memory
    double store_frac = 0.0;    //!< extra stores beyond kernel-tagged ones (0..1 of mem ops forced to store)
    double branch_ratio = 0.10; //!< fraction of instructions that are branches
    unsigned loop_period = 16;  //!< loop branch falls through once per period
    double hard_branch_frac = 0.0; //!< fraction of branches that are data-dependent (hard to predict)
};

/**
 * Wrap an access kernel into a Workload: memory ops come from the
 * kernel, ALU filler keeps the instruction mix realistic, and loop
 * branches give the branch predictor a learnable pattern (plus an
 * optional hard-to-predict fraction).
 *
 * @param name   instance name reported by Workload::name()
 * @param kernel the data-reference pattern
 * @param params instruction-mix knobs
 * @param seed   RNG seed (determinism contract: same args => same stream)
 */
WorkloadPtr make_synthetic(std::string name, KernelPtr kernel,
                           const InterleaveParams &params,
                           std::uint64_t seed);

/** Dense sequential streams: page-cross friendly. */
struct StreamParams
{
    Addr base = 0x10000000;       //!< VA of the first stream
    Addr footprint = 8u << 20;    //!< total bytes swept (all streams)
    unsigned streams = 4;         //!< concurrent sequential streams
    Addr stride = 64;             //!< per-access byte stride
    double store_frac = 0.1;      //!< fraction of accesses that are stores
};
KernelPtr make_stream_kernel(const StreamParams &p);

/**
 * Page-sized rows with a large pitch: the access pattern is
 * sequential inside each 4KB row, then jumps by @p pitch. Next-line
 * page-cross prefetches at row ends are always useless: hostile to
 * page-cross prefetching.
 */
struct TileParams
{
    Addr base = 0x20000000;
    Addr row_bytes = 4096;        //!< bytes accessed sequentially per row
    Addr pitch = 1u << 20;        //!< byte distance between row starts
    unsigned rows = 48;           //!< rows per pass (wraps)
    Addr stride = 64;             //!< in-row stride
    double store_frac = 0.0;
};
KernelPtr make_tile_kernel(const TileParams &p);

/**
 * CSR graph traversal (GAP/LIGRA flavour): sequential offset reads,
 * short sequential neighbor runs in the edge array (which crosses
 * pages usefully), and random per-neighbor value gathers (which do
 * not).
 */
struct CsrGraphParams
{
    Addr base = 0x40000000;
    std::uint64_t vertices = 1u << 17;   //!< vertex count
    unsigned avg_degree = 12;            //!< mean out-degree
    double value_gather_frac = 1.0;      //!< gathers per traversed edge
    double store_frac = 0.05;
};
KernelPtr make_csr_graph_kernel(const CsrGraphParams &p);

/**
 * Dependent *sequential* chase (astar/list-traversal flavour): a
 * pointer chain whose nodes were allocated in address order, so each
 * hop advances by a fixed small stride. Every hop depends on the
 * previous load, making miss and page-walk latency unhidable — and
 * making accurate page-cross prefetching exceptionally valuable at
 * page boundaries (the paper's Fig. 2 winner class: astar, cc.road,
 * MIS, ...). Occasional restarts scatter the chain across the
 * footprint for TLB pressure.
 */
struct SeqChaseParams
{
    Addr base = 0x68000000;
    Addr footprint = 16u << 20;
    unsigned stride_lines = 2;   //!< node spacing in cache lines
    double restart_prob = 0.001; //!< chance a hop jumps to a new region
};
KernelPtr make_seq_chase_kernel(const SeqChaseParams &p);

/** Dependent random pointer chase: hostile to all prefetching. */
struct PointerChaseParams
{
    Addr base = 0x60000000;
    Addr footprint = 16u << 20;
    unsigned chains = 2;          //!< independent chase chains
};
KernelPtr make_pointer_chase_kernel(const PointerChaseParams &p);

/**
 * Hash-table probing: random bucket page, then a short in-page
 * sequential probe. Probes that start near a page end emit page-cross
 * prefetch bait that is never useful.
 */
struct HashProbeParams
{
    Addr base = 0x80000000;
    Addr footprint = 32u << 20;
    unsigned probe_lines_min = 2; //!< min sequential lines per probe
    unsigned probe_lines_max = 6; //!< max sequential lines per probe
    double store_frac = 0.15;
};
KernelPtr make_hash_probe_kernel(const HashProbeParams &p);

/**
 * Index-driven gather (SPEC-fp flavour): a sequential index stream
 * (page-cross friendly) driving random gathers (prefetch hostile).
 */
struct GatherParams
{
    Addr index_base = 0xA0000000;
    Addr data_base = 0xB0000000;
    Addr index_bytes = 8u << 20;  //!< sequential index array footprint
    Addr data_bytes = 64u << 20;  //!< gather target footprint
    unsigned gathers_per_index = 1;
};
KernelPtr make_gather_kernel(const GatherParams &p);

/**
 * Dual-stride kernel: a single load PC alternates between bursts of
 * a dense sequential sweep (stride +1 line; page crossings are
 * useful because the sweep continues into the next page) and bursts
 * of fixed-stride runs that always terminate at the page boundary
 * (stride +k lines; page crossings are never useful). Both patterns
 * share one PC and one address region, so only a *delta*-aware
 * Page-Cross Filter can separate them — the discrimination DRIPPER's
 * Table II features provide and PPF's feature set cannot.
 */
struct DualStrideParams
{
    Addr base = 0xD0000000;
    Addr footprint = 16u << 20;
    unsigned hop_lines = 12;      //!< lines per hop in the run pattern
    unsigned stream_burst = 96;   //!< accesses per sequential burst
    unsigned runs_per_burst = 8;  //!< page runs per hop burst
};
KernelPtr make_dual_stride_kernel(const DualStrideParams &p);

/**
 * 2D 5-point stencil sweep (HPC flavour): for each output element the
 * kernel reads north/west/center/east/south of the input grid — five
 * parallel streams at fixed row offsets. Page-cross friendly on all
 * streams; the classic multi-stream prefetcher stressor.
 */
struct StencilParams
{
    Addr base = 0xE0000000;
    Addr row_bytes = 64u << 10;  //!< grid row pitch (bytes)
    unsigned rows = 256;         //!< grid rows (wraps)
    Addr elem_bytes = 8;         //!< element size
};
KernelPtr make_stencil_kernel(const StencilParams &p);

/**
 * Zipf-distributed point accesses (database/key-value flavour): a
 * small hot set absorbs most accesses (cache-resident) while the
 * long tail scatters over the footprint. Nearly prefetch-neutral;
 * useful as a non-bimodal control workload.
 */
struct ZipfParams
{
    Addr base = 0xF0000000;
    Addr footprint = 16u << 20;
    double skew = 0.8;           //!< Zipf exponent (0 = uniform)
    double store_frac = 0.1;
};
KernelPtr make_zipf_kernel(const ZipfParams &p);

/**
 * Phase mixer: runs each child kernel for @p phase_len accesses in
 * round-robin. Exercises the adaptive thresholding scheme.
 */
KernelPtr make_phase_mix_kernel(std::vector<KernelPtr> children,
                                std::uint64_t phase_len);

/**
 * Bursty short-running kernel (Qualcomm CVP-1 flavour): rapid
 * alternation of small streaming bursts and dependent chases over a
 * modest footprint.
 */
struct BurstyParams
{
    Addr base = 0xC0000000;
    Addr footprint = 4u << 20;
    std::uint64_t burst_len = 512;   //!< accesses per burst
    double stream_frac = 0.5;        //!< fraction of bursts that stream
};
KernelPtr make_bursty_kernel(const BurstyParams &p);

}  // namespace moka

#endif  // MOKASIM_TRACE_GENERATORS_H
