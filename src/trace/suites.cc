#include "trace/suites.h"

#include <algorithm>
#include <array>

#include "common/hashing.h"
#include "common/rng.h"
#include "trace/generators.h"

namespace moka {
namespace {

/** Family cycle per suite: chosen to mirror each suite's character. */
struct SuitePlan
{
    const char *suite;
    const char *tag;               //!< lowercase name fragment
    std::vector<Family> families;  //!< round-robin family assignment
    unsigned seen;                 //!< # seen instances
    unsigned unseen;               //!< # unseen instances
};

const std::vector<SuitePlan> &
plans()
{
    // seen counts sum to 218 and unseen counts to 178, matching the
    // paper's roster sizes (Section IV-A).
    static const std::vector<SuitePlan> kPlans = {
        {"SPEC06", "spec06",
         {Family::kTile, Family::kGather, Family::kSeqChase,
          Family::kStream, Family::kHash, Family::kPhaseMix,
          Family::kDualStride, Family::kChase},
         40, 28},
        {"SPEC17", "spec17",
         {Family::kGather, Family::kTile, Family::kStream, Family::kChase,
          Family::kPhaseMix, Family::kHash, Family::kDualStride},
         40, 30},
        {"GAP", "gap",
         {Family::kCsr, Family::kSeqChase, Family::kCsr, Family::kPhaseMix},
         24, 16},
        {"LIGRA", "ligra",
         {Family::kCsr, Family::kPhaseMix, Family::kSeqChase, Family::kCsr},
         24, 16},
        {"PARSEC", "parsec",
         {Family::kStream, Family::kTile, Family::kStream, Family::kGather},
         20, 14},
        {"GKB5", "gkb5",
         {Family::kHash, Family::kBursty, Family::kStream, Family::kPhaseMix,
          Family::kDualStride},
         20, 24},
        {"QMM_INT", "qmm_int",
         {Family::kBursty, Family::kHash, Family::kChase, Family::kBursty},
         28, 28},
        {"QMM_FP", "qmm_fp",
         {Family::kGather, Family::kStream, Family::kBursty, Family::kTile},
         22, 22},
    };
    return kPlans;
}

const char *
family_tag(Family f)
{
    switch (f) {
      case Family::kStream:   return "stream";
      case Family::kTile:     return "tile";
      case Family::kGather:   return "gather";
      case Family::kCsr:      return "csr";
      case Family::kChase:    return "chase";
      case Family::kHash:     return "hash";
      case Family::kBursty:   return "bursty";
      case Family::kPhaseMix: return "mix";
      case Family::kDualStride: return "dstride";
      case Family::kSeqChase: return "seqchase";
    }
    return "?";
}

std::vector<WorkloadSpec>
build_roster(bool seen)
{
    std::vector<WorkloadSpec> out;
    for (const SuitePlan &plan : plans()) {
        const unsigned count = seen ? plan.seen : plan.unseen;
        for (unsigned i = 0; i < count; ++i) {
            const Family fam = plan.families[i % plan.families.size()];
            WorkloadSpec spec;
            spec.suite = plan.suite;
            spec.family = fam;
            spec.variant = i;
            // Unseen instances live in a disjoint seed space; the
            // whole suite name participates so no two suites share
            // instance seeds.
            std::uint64_t suite_hash = 0xcbf29ce484222325ull;
            for (const char *c = plan.suite; *c != '\0'; ++c) {
                suite_hash = (suite_hash ^ std::uint64_t(*c)) *
                             0x100000001b3ull;
            }
            spec.seed = mix64(hash_combine(mix64(i * 2 + (seen ? 0 : 1)),
                                           suite_hash));
            spec.memory_intensive = true;
            spec.name = std::string(plan.tag) + "." + family_tag(fam) + "." +
                        std::to_string(i) + (seen ? "" : ".u");
            out.push_back(std::move(spec));
        }
    }
    return out;
}

}  // namespace

std::vector<WorkloadSpec>
seen_workloads()
{
    return build_roster(true);
}

std::vector<WorkloadSpec>
unseen_workloads()
{
    return build_roster(false);
}

std::vector<WorkloadSpec>
non_intensive_workloads()
{
    // Small-footprint, low memory-ratio instances: they fit in L2/LLC
    // and produce LLC MPKI << 1 (the paper's non-intensive cut).
    std::vector<WorkloadSpec> out;
    const std::array<Family, 4> fams = {Family::kStream, Family::kHash,
                                        Family::kBursty, Family::kTile};
    for (unsigned i = 0; i < 40; ++i) {
        WorkloadSpec spec;
        spec.suite = (i % 2 == 0) ? "SPEC06" : "SPEC17";
        spec.family = fams[i % fams.size()];
        spec.variant = 1000 + i;  // variant >= 1000 selects tiny params
        spec.seed = mix64(0xABCD + i);
        spec.memory_intensive = false;
        spec.name = std::string("nonmem.") + family_tag(spec.family) + "." +
                    std::to_string(i);
        out.push_back(std::move(spec));
    }
    return out;
}

std::vector<WorkloadSpec>
sample(const std::vector<WorkloadSpec> &roster, std::size_t count)
{
    if (count == 0 || roster.size() <= count) {
        return roster;
    }
    std::vector<WorkloadSpec> out;
    out.reserve(count);
    const double step =
        static_cast<double>(roster.size()) / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(roster[static_cast<std::size_t>(
            static_cast<double>(i) * step)]);
    }
    return out;
}

std::vector<WorkloadSpec>
filter_suite(const std::vector<WorkloadSpec> &roster,
             const std::string &suite)
{
    std::vector<WorkloadSpec> out;
    for (const WorkloadSpec &s : roster) {
        if (s.suite == suite) {
            out.push_back(s);
        }
    }
    return out;
}

std::vector<std::string>
suite_names()
{
    std::vector<std::string> out;
    for (const SuitePlan &plan : plans()) {
        out.push_back(plan.suite);
    }
    return out;
}

WorkloadPtr
make_workload(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    const bool tiny = spec.variant >= 1000;  // non-intensive roster

    InterleaveParams ip;
    // Memory intensity tuned so LLC MPKIs land in the paper's
    // "memory-intensive" band (roughly 1-60) without saturating DRAM
    // bandwidth in the 8-core mixes.
    ip.mem_ratio = tiny ? 0.05 : 0.10 + rng.uniform() * 0.18;
    ip.branch_ratio = 0.06 + rng.uniform() * 0.08;
    ip.hard_branch_frac = rng.uniform() * 0.15;
    ip.loop_period = static_cast<unsigned>(rng.range(8, 48));

    // Footprint scale: mixes TLB-comfortable (<256KB dTLB reach),
    // sTLB-comfortable (<6MB) and TLB-stressing (>6MB) instances.
    const Addr mb = Addr{1} << 20;
    // Streaming-flavoured families need footprints beyond the LLC so
    // their misses actually reach DRAM; irregular families span the
    // whole 2MB..32MB range to diversify TLB pressure.
    const bool streaming_family = spec.family == Family::kStream ||
                                  spec.family == Family::kGather ||
                                  spec.family == Family::kDualStride ||
                                  spec.family == Family::kPhaseMix;
    const Addr footprint =
        tiny ? (mb / 4)
             : (Addr{1} << rng.range(streaming_family ? 23 : 21, 25));

    KernelPtr kernel;
    switch (spec.family) {
      case Family::kStream: {
        StreamParams p;
        p.footprint = footprint;
        p.streams = static_cast<unsigned>(rng.range(1, 6));
        // Strides span dense sweeps (64B) to column-walks (512B).
        // Mid strides touch few lines per page, so page crossings are
        // frequent while local deltas (<=63 lines) still give the
        // prefetcher 10+ accesses of lead — the TLB-bound winner
        // class of the paper's Fig. 2 (astar, MIS, ...).
        p.stride = Addr{64} << rng.below(4);  // 64..512
        p.store_frac = rng.uniform() * 0.25;
        kernel = make_stream_kernel(p);
        break;
      }
      case Family::kTile: {
        TileParams p;
        // Page-sized rows, large pitch. The row working set exceeds
        // the LLC (and usually the sTLB reach) so the useless
        // page-cross prefetches this pattern baits cost real DRAM
        // bandwidth, walker slots and TLB entries — the penalty side
        // of Fig. 2.
        p.row_bytes = rng.chance(0.5) ? 4096 : 2048;
        p.pitch = (Addr{128} << 10) << rng.below(3);  // 128/256/512KB
        p.rows = static_cast<unsigned>(rng.range(768, 2560));
        p.store_frac = rng.uniform() * 0.15;
        kernel = make_tile_kernel(p);
        break;
      }
      case Family::kGather: {
        GatherParams p;
        p.index_bytes = footprint / 4;
        p.data_bytes = footprint;
        p.gathers_per_index = static_cast<unsigned>(rng.range(1, 3));
        kernel = make_gather_kernel(p);
        break;
      }
      case Family::kCsr: {
        CsrGraphParams p;
        p.vertices = footprint / 64;
        p.avg_degree = static_cast<unsigned>(rng.range(6, 24));
        p.value_gather_frac = 0.4 + rng.uniform() * 0.6;
        kernel = make_csr_graph_kernel(p);
        break;
      }
      case Family::kSeqChase: {
        SeqChaseParams p;
        p.footprint = footprint;
        p.stride_lines = 1 + static_cast<unsigned>(rng.below(3));
        // Frequent random restarts keep the chain's page-cross gain in
        // the paper's winner band (astar ~+10%, not +300%): most
        // full-latency stalls come from restarts that no prefetcher
        // can cover, and crossing saves only the boundary stalls.
        p.restart_prob = 0.04 + rng.uniform() * 0.10;
        kernel = make_seq_chase_kernel(p);
        break;
      }
      case Family::kChase: {
        PointerChaseParams p;
        p.footprint = footprint;
        p.chains = static_cast<unsigned>(rng.range(1, 4));
        kernel = make_pointer_chase_kernel(p);
        break;
      }
      case Family::kHash: {
        HashProbeParams p;
        p.footprint = footprint;
        p.probe_lines_min = static_cast<unsigned>(rng.range(1, 3));
        p.probe_lines_max =
            p.probe_lines_min + static_cast<unsigned>(rng.range(1, 5));
        p.store_frac = rng.uniform() * 0.25;
        kernel = make_hash_probe_kernel(p);
        break;
      }
      case Family::kBursty: {
        BurstyParams p;
        p.footprint = tiny ? mb / 4 : footprint / 4;
        p.burst_len = rng.range(128, 1024);
        p.stream_frac = 0.3 + rng.uniform() * 0.5;
        kernel = make_bursty_kernel(p);
        break;
      }
      case Family::kDualStride: {
        DualStrideParams p;
        p.footprint = footprint;
        // Hop strides stay clear of the stream deltas Berti selects
        // (13..16) so the two crossing populations are separable by
        // delta; long stream bursts keep the stream deltas' crossing
        // usefulness high despite occasional hop-side pollution.
        p.hop_lines = 9 + static_cast<unsigned>(rng.below(3));  // 9/10/11
        p.stream_burst = static_cast<unsigned>(rng.range(192, 384));
        p.runs_per_burst = static_cast<unsigned>(rng.range(3, 6));
        kernel = make_dual_stride_kernel(p);
        break;
      }
      case Family::kPhaseMix: {
        StreamParams sp;
        sp.footprint = footprint;
        sp.streams = 2;
        TileParams tp;
        tp.pitch = mb / 2;
        tp.rows = 64;
        std::vector<KernelPtr> children;
        children.push_back(make_stream_kernel(sp));
        children.push_back(make_tile_kernel(tp));
        if (rng.chance(0.5)) {
            HashProbeParams hp;
            hp.footprint = footprint;
            children.push_back(make_hash_probe_kernel(hp));
        }
        kernel =
            make_phase_mix_kernel(std::move(children), rng.range(20000, 80000));
        break;
      }
    }

    return make_synthetic(spec.name, std::move(kernel), ip, spec.seed);
}

}  // namespace moka
