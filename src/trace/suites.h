/**
 * @file
 * Named workload roster mirroring the paper's evaluation set: 218
 * "seen" memory-intensive workloads (used to design DRIPPER), 178
 * "unseen" ones, and a non-intensive remainder, spread over suites
 * named after the paper's (SPEC06, SPEC17, GAP, LIGRA, PARSEC, GKB5,
 * QMM_INT, QMM_FP). Each instance is a parameterized, seeded
 * synthetic generator — see DESIGN.md for the substitution rationale.
 */
#ifndef MOKASIM_TRACE_SUITES_H
#define MOKASIM_TRACE_SUITES_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace moka {

/** Kernel family backing a roster instance. */
enum class Family : std::uint8_t {
    kStream,    //!< dense sequential streams (PGC-friendly)
    kTile,      //!< page rows with large pitch (PGC-hostile)
    kGather,    //!< sequential index + random gather
    kCsr,       //!< CSR graph traversal
    kChase,     //!< dependent pointer chase
    kHash,      //!< random bucket probes (PGC-hostile)
    kBursty,    //!< short alternating bursts (QMM flavour)
    kPhaseMix,  //!< stream/tile phase alternation
    kDualStride, //!< same-PC dual stride (delta-separable crossings)
    kSeqChase,   //!< dependent sequential chase (astar flavour)
};

/** One roster entry; `make_workload` instantiates the generator. */
struct WorkloadSpec
{
    std::string name;            //!< e.g. "gap.csr.3"
    std::string suite;           //!< e.g. "GAP"
    Family family;               //!< backing kernel family
    std::uint32_t variant;       //!< family-local variant index
    std::uint64_t seed;          //!< generator seed
    bool memory_intensive;       //!< paper's LLC-MPKI >= 1 proxy
};

/** The 218 seen memory-intensive workloads. */
std::vector<WorkloadSpec> seen_workloads();

/** The 178 unseen memory-intensive workloads. */
std::vector<WorkloadSpec> unseen_workloads();

/** Non memory-intensive workloads (Table V's "All" completion). */
std::vector<WorkloadSpec> non_intensive_workloads();

/**
 * Evenly spaced subset of @p roster with at most @p count entries,
 * preserving suite diversity (stable order). Used by the bench
 * harnesses to trade runtime for roster size.
 */
std::vector<WorkloadSpec> sample(const std::vector<WorkloadSpec> &roster,
                                 std::size_t count);

/** Keep only entries of @p suite. */
std::vector<WorkloadSpec> filter_suite(const std::vector<WorkloadSpec> &roster,
                                       const std::string &suite);

/** Instantiate the generator for @p spec. */
WorkloadPtr make_workload(const WorkloadSpec &spec);

/** Ordered list of suite names appearing in the roster. */
std::vector<std::string> suite_names();

}  // namespace moka

#endif  // MOKASIM_TRACE_SUITES_H
