#include "trace/trace_io.h"

#include <cstring>
#include <memory>
#include <stdexcept>

namespace moka {
namespace {

constexpr char kMagic[8] = {'M', 'O', 'K', 'A', 'T', 'R', 'C', '1'};

/** RAII stdio handle. */
struct File
{
    explicit File(std::FILE *f) : fp(f) {}
    ~File()
    {
        if (fp != nullptr) {
            std::fclose(fp);
        }
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;

    std::FILE *fp;
};

}  // namespace

bool
record_trace(const std::string &path, Workload &workload,
             std::uint64_t count)
{
    File f(std::fopen(path.c_str(), "wb"));
    if (f.fp == nullptr) {
        return false;
    }
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.fp) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.fp) != 1) {
        return false;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceInst inst = workload.next();
        TraceRecord rec{};
        rec.pc = inst.pc;
        rec.mem_addr = inst.mem_addr;
        rec.target = inst.target;
        rec.op = static_cast<std::uint8_t>(inst.op);
        rec.taken = inst.taken ? 1 : 0;
        rec.dep_load = inst.dep_load ? 1 : 0;
        if (std::fwrite(&rec, sizeof(rec), 1, f.fp) != 1) {
            return false;
        }
    }
    return true;
}

TraceFileWorkload::TraceFileWorkload(const std::string &path)
    : name_("trace:" + path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (f.fp == nullptr) {
        throw std::runtime_error("cannot open trace " + path);
    }
    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.fp) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
        std::fread(&count, sizeof(count), 1, f.fp) != 1) {
        throw std::runtime_error("bad trace header in " + path);
    }
    records_.resize(count);
    if (count > 0 &&
        std::fread(records_.data(), sizeof(TraceRecord), count, f.fp) !=
            count) {
        throw std::runtime_error("truncated trace " + path);
    }
    if (records_.empty()) {
        throw std::runtime_error("empty trace " + path);
    }
}

TraceInst
TraceFileWorkload::next()
{
    const TraceRecord &rec = records_[cursor_];
    cursor_ = (cursor_ + 1) % records_.size();
    TraceInst inst;
    inst.pc = rec.pc;
    inst.mem_addr = rec.mem_addr;
    inst.target = rec.target;
    inst.op = static_cast<OpClass>(rec.op);
    inst.taken = rec.taken != 0;
    inst.dep_load = rec.dep_load != 0;
    return inst;
}

WorkloadPtr
open_trace(const std::string &path)
{
    try {
        return std::make_unique<TraceFileWorkload>(path);
    } catch (const std::exception &) {
        return nullptr;
    }
}

}  // namespace moka
