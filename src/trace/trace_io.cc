#include "trace/trace_io.h"

#include <cstring>
#include <memory>
#include <stdexcept>

namespace moka {
namespace {

constexpr char kMagic[8] = {'M', 'O', 'K', 'A', 'T', 'R', 'C', '1'};

/** RAII stdio handle. */
struct File
{
    explicit File(std::FILE *f) : fp(f) {}
    ~File()
    {
        if (fp != nullptr) {
            std::fclose(fp);
        }
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;

    std::FILE *fp;
};

}  // namespace

bool
record_trace(const std::string &path, Workload &workload,
             std::uint64_t count)
{
    File f(std::fopen(path.c_str(), "wb"));
    if (f.fp == nullptr) {
        return false;
    }
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.fp) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.fp) != 1) {
        return false;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceInst inst = workload.next();
        TraceRecord rec{};
        rec.pc = inst.pc;
        rec.mem_addr = inst.mem_addr.raw();  // LINT_ADDR_OK: trace file format
        rec.target = inst.target;
        rec.op = static_cast<std::uint8_t>(inst.op);
        rec.taken = inst.taken ? 1 : 0;
        rec.dep_load = inst.dep_load ? 1 : 0;
        if (std::fwrite(&rec, sizeof(rec), 1, f.fp) != 1) {
            return false;
        }
    }
    return true;
}

const char *
to_string(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::kOk: return "ok";
      case TraceIoStatus::kFileMissing: return "file_missing";
      case TraceIoStatus::kBadHeader: return "bad_header";
      case TraceIoStatus::kTruncated: return "truncated";
      case TraceIoStatus::kEmpty: break;
    }
    return "empty";
}

TraceFileWorkload::TraceFileWorkload(const std::string &path)
    : name_("trace:" + path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (f.fp == nullptr) {
        throw TraceIoError(TraceIoStatus::kFileMissing,
                           "cannot open trace " + path);
    }
    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.fp) != 1) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "truncated header (no magic) in " + path);
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw TraceIoError(TraceIoStatus::kBadHeader,
                           "bad magic in " + path +
                               " (not a MOKATRC1 trace)");
    }
    if (std::fread(&count, sizeof(count), 1, f.fp) != 1) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "truncated header (no count) in " + path);
    }
    // A flipped count byte must not turn into a terabyte allocation.
    constexpr std::uint64_t kMaxRecords = std::uint64_t{1} << 32;
    if (count > kMaxRecords) {
        throw TraceIoError(TraceIoStatus::kBadHeader,
                           "implausible record count " +
                               std::to_string(count) + " in " + path);
    }
    records_.resize(count);
    if (count > 0) {
        const std::size_t got = std::fread(
            records_.data(), sizeof(TraceRecord), count, f.fp);
        if (got != count) {
            throw TraceIoError(
                TraceIoStatus::kTruncated,
                "truncated trace " + path + ": header promises " +
                    std::to_string(count) + " records, found " +
                    std::to_string(got));
        }
    }
    if (records_.empty()) {
        throw TraceIoError(TraceIoStatus::kEmpty,
                           "empty trace " + path);
    }
}

TraceInst
TraceFileWorkload::next()
{
    const TraceRecord &rec = records_[cursor_];
    cursor_ = (cursor_ + 1) % records_.size();
    TraceInst inst;
    inst.pc = rec.pc;
    inst.mem_addr = VirtAddr{rec.mem_addr};
    inst.target = rec.target;
    inst.op = static_cast<OpClass>(rec.op);
    inst.taken = rec.taken != 0;
    inst.dep_load = rec.dep_load != 0;
    return inst;
}

TraceOpenResult
open_trace_checked(const std::string &path)
{
    TraceOpenResult result;
    try {
        result.workload = std::make_unique<TraceFileWorkload>(path);
    } catch (const TraceIoError &e) {
        result.status = e.status();
        result.message = e.what();
    } catch (const std::bad_alloc &) {
        result.status = TraceIoStatus::kTruncated;
        result.message = "trace " + path +
                         " too large to load (allocation failure)";
    }
    return result;
}

WorkloadPtr
open_trace(const std::string &path)
{
    TraceOpenResult result = open_trace_checked(path);
    if (!result.ok()) {
        std::fprintf(stderr, "mokasim: trace open failed [%s]: %s\n",  // LINT_LOG_OK: trace open diagnostic
                     to_string(result.status), result.message.c_str());
    }
    return std::move(result.workload);
}

}  // namespace moka
