#include "trace/trace_io.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace moka {
namespace {

constexpr char kMagic[8] = {'M', 'O', 'K', 'A', 'T', 'R', 'C', '1'};

/** RAII stdio handle. */
struct File
{
    explicit File(std::FILE *f) : fp(f) {}
    ~File()
    {
        if (fp != nullptr) {
            std::fclose(fp);
        }
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;

    std::FILE *fp;
};

}  // namespace

bool
record_trace(const std::string &path, Workload &workload,
             std::uint64_t count)
{
    File f(std::fopen(path.c_str(), "wb"));
    if (f.fp == nullptr) {
        return false;
    }
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.fp) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.fp) != 1) {
        return false;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceInst inst = workload.next();
        TraceRecord rec{};
        rec.pc = inst.pc;
        rec.mem_addr = inst.mem_addr.raw();  // LINT_ADDR_OK: trace file format
        rec.target = inst.target;
        rec.op = static_cast<std::uint8_t>(inst.op);
        rec.taken = inst.taken ? 1 : 0;
        rec.dep_load = inst.dep_load ? 1 : 0;
        if (std::fwrite(&rec, sizeof(rec), 1, f.fp) != 1) {
            return false;
        }
    }
    return true;
}

const char *
to_string(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::kOk: return "ok";
      case TraceIoStatus::kFileMissing: return "file_missing";
      case TraceIoStatus::kBadHeader: return "bad_header";
      case TraceIoStatus::kTruncated: return "truncated";
      case TraceIoStatus::kEmpty: break;
    }
    return "empty";
}

namespace {

constexpr long kHeaderBytes = 16;  //!< magic + u64 record count

}  // namespace

TraceFileWorkload::TraceFileWorkload(const std::string &path,
                                     std::size_t block_records)
    : name_("trace:" + path), path_(path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (f.fp == nullptr) {
        throw TraceIoError(TraceIoStatus::kFileMissing,
                           "cannot open trace " + path);
    }
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, f.fp) != 1) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "truncated header (no magic) in " + path);
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw TraceIoError(TraceIoStatus::kBadHeader,
                           "bad magic in " + path +
                               " (not a MOKATRC1 trace)");
    }
    if (std::fread(&count_, sizeof(count_), 1, f.fp) != 1) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "truncated header (no count) in " + path);
    }
    // A flipped count byte must not turn into a terabyte allocation.
    constexpr std::uint64_t kMaxRecords = std::uint64_t{1} << 32;
    if (count_ > kMaxRecords) {
        throw TraceIoError(TraceIoStatus::kBadHeader,
                           "implausible record count " +
                               std::to_string(count_) + " in " + path);
    }
    // The record stream is validated against the on-disk size up
    // front, so the block decoder never discovers truncation
    // mid-simulation.
    if (std::fseek(f.fp, 0, SEEK_END) != 0) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "cannot size trace " + path);
    }
    const long size = std::ftell(f.fp);
    const std::uint64_t found =
        size <= kHeaderBytes
            ? 0
            : static_cast<std::uint64_t>(size - kHeaderBytes) /
                  sizeof(TraceRecord);
    if (found < count_) {
        throw TraceIoError(
            TraceIoStatus::kTruncated,
            "truncated trace " + path + ": header promises " +
                std::to_string(count_) + " records, found " +
                std::to_string(found));
    }
    if (count_ == 0) {
        throw TraceIoError(TraceIoStatus::kEmpty,
                           "empty trace " + path);
    }
    if (std::fseek(f.fp, kHeaderBytes, SEEK_SET) != 0) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "cannot seek trace " + path);
    }
    const std::uint64_t cap =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                       block_records, count_));
    ring_.resize(static_cast<std::size_t>(cap));
    // Adopt the handle: replay streams from disk for the whole run.
    file_ = f.fp;
    f.fp = nullptr;
}

TraceFileWorkload::~TraceFileWorkload()
{
    if (file_ != nullptr) {
        std::fclose(file_);
    }
}

void
TraceFileWorkload::refill()
{
    const std::uint64_t remaining = count_ - file_next_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(ring_.size(), remaining));
    // LINT_HOT_OK: one fread per ring_ records, not per instruction —
    // this IS the batching that keeps the per-next() path lean
    const std::size_t got =
        std::fread(ring_.data(), sizeof(TraceRecord), n, file_);
    if (got != n) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "trace " + path_ + " shrank mid-replay");
    }
    file_next_ += n;
    if (file_next_ == count_) {
        // End of pass: loop back to the first record.
        if (std::fseek(file_, kHeaderBytes, SEEK_SET) != 0) {
            throw TraceIoError(TraceIoStatus::kTruncated,
                               "cannot rewind trace " + path_);
        }
        file_next_ = 0;
    }
    ring_pos_ = 0;
    ring_filled_ = n;
}

TraceInst
TraceFileWorkload::next()
{
    if (ring_pos_ == ring_filled_) {
        refill();
    }
    const TraceRecord &rec = ring_[ring_pos_++];
    cursor_ = cursor_ + 1 == count_ ? 0 : cursor_ + 1;
    TraceInst inst;
    inst.pc = rec.pc;
    inst.mem_addr = VirtAddr{rec.mem_addr};
    inst.target = rec.target;
    inst.op = static_cast<OpClass>(rec.op);
    inst.taken = rec.taken != 0;
    inst.dep_load = rec.dep_load != 0;
    return inst;
}

void
TraceFileWorkload::skip(std::uint64_t n)
{
    cursor_ = (cursor_ + n) % count_;
    ring_pos_ = 0;
    ring_filled_ = 0;
    file_next_ = cursor_;
    const long offset =
        kHeaderBytes +
        static_cast<long>(cursor_ * sizeof(TraceRecord));
    if (std::fseek(file_, offset, SEEK_SET) != 0) {
        throw TraceIoError(TraceIoStatus::kTruncated,
                           "cannot seek trace " + path_);
    }
}

TraceOpenResult
open_trace_checked(const std::string &path)
{
    TraceOpenResult result;
    try {
        result.workload = std::make_unique<TraceFileWorkload>(path);
    } catch (const TraceIoError &e) {
        result.status = e.status();
        result.message = e.what();
    } catch (const std::bad_alloc &) {
        result.status = TraceIoStatus::kTruncated;
        result.message = "trace " + path +
                         " too large to load (allocation failure)";
    }
    return result;
}

WorkloadPtr
open_trace(const std::string &path)
{
    TraceOpenResult result = open_trace_checked(path);
    if (!result.ok()) {
        std::fprintf(stderr, "mokasim: trace open failed [%s]: %s\n",  // LINT_LOG_OK: trace open diagnostic
                     to_string(result.status), result.message.c_str());
    }
    return std::move(result.workload);
}

}  // namespace moka
