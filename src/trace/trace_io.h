/**
 * @file
 * Binary trace file format: record any Workload to disk and replay it
 * later. This is the adoption path for real traces (e.g. converted
 * ChampSim/SimPoint traces) in place of the synthetic generators.
 *
 * Format: 16-byte header (magic "MOKATRC1", u64 instruction count),
 * then one packed record per instruction.
 */
#ifndef MOKASIM_TRACE_TRACE_IO_H
#define MOKASIM_TRACE_TRACE_IO_H

#include <cstdio>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace moka {

/** On-disk instruction record (packed, little-endian). */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t mem_addr;
    std::uint64_t target;
    std::uint8_t op;       //!< OpClass
    std::uint8_t taken;    //!< 0/1
    std::uint8_t dep_load; //!< 0/1
    std::uint8_t pad[5];
};
static_assert(sizeof(TraceRecord) == 32, "record layout");

/**
 * Capture @p count instructions of @p workload into @p path.
 *
 * @return true on success.
 */
bool record_trace(const std::string &path, Workload &workload,
                  std::uint64_t count);

/**
 * A Workload backed by a trace file; loops back to the start when the
 * trace is exhausted (mirrors how SimPoint regions are replayed).
 * The whole trace is held in memory (32B/instruction).
 */
class TraceFileWorkload : public Workload
{
  public:
    /** Throws std::runtime_error on malformed files. */
    explicit TraceFileWorkload(const std::string &path);

    TraceInst next() override;

    const std::string &name() const override { return name_; }

    /** Instructions in one pass of the trace. */
    std::uint64_t length() const { return records_.size(); }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    std::size_t cursor_ = 0;
};

/** Open a trace file as a Workload (nullptr on failure, no throw). */
WorkloadPtr open_trace(const std::string &path);

}  // namespace moka

#endif  // MOKASIM_TRACE_TRACE_IO_H
