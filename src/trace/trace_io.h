/**
 * @file
 * Binary trace file format: record any Workload to disk and replay it
 * later. This is the adoption path for real traces (e.g. converted
 * ChampSim/SimPoint traces) in place of the synthetic generators.
 *
 * Format: 16-byte header (magic "MOKATRC1", u64 instruction count),
 * then one packed record per instruction.
 */
#ifndef MOKASIM_TRACE_TRACE_IO_H
#define MOKASIM_TRACE_TRACE_IO_H

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace moka {

/**
 * Why a trace failed to open. "File missing" (bad path, permissions)
 * and "file corrupt" (bad magic, truncation, empty stream) are
 * distinct classes: the former is an operator error, the latter is
 * data damage the job engine classifies as kTraceCorrupt.
 */
enum class TraceIoStatus : std::uint8_t {
    kOk,
    kFileMissing,   //!< cannot open the path at all
    kBadHeader,     //!< magic mismatch: not a mokasim trace
    kTruncated,     //!< header or record stream cut short
    kEmpty,         //!< well-formed but zero instructions
};

/** Stable diagnostic name of @p status (e.g. "bad_header"). */
const char *to_string(TraceIoStatus status);

/** Classified trace-I/O failure thrown by TraceFileWorkload. */
class TraceIoError : public std::runtime_error
{
  public:
    TraceIoError(TraceIoStatus status, const std::string &message)
        : std::runtime_error(message), status_(status)
    {
    }

    TraceIoStatus status() const { return status_; }

  private:
    TraceIoStatus status_;
};

/** On-disk instruction record (packed, little-endian). */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t mem_addr;
    std::uint64_t target;
    std::uint8_t op;       //!< OpClass
    std::uint8_t taken;    //!< 0/1
    std::uint8_t dep_load; //!< 0/1
    std::uint8_t pad[5];
};
static_assert(sizeof(TraceRecord) == 32, "record layout");

/**
 * Capture @p count instructions of @p workload into @p path.
 *
 * @return true on success.
 */
bool record_trace(const std::string &path, Workload &workload,
                  std::uint64_t count);

/**
 * A Workload backed by a trace file; loops back to the start when the
 * trace is exhausted (mirrors how SimPoint regions are replayed).
 *
 * Decoding is batched: the file stays open and records stream through
 * a reusable fixed-size ring, fread'ing a block at a time instead of
 * one record per next() — or the whole trace up front. The record
 * stream is validated against the on-disk size at construction, so a
 * truncated file still fails fast with the classified taxonomy.
 */
class TraceFileWorkload : public Workload
{
  public:
    //! records per decoded block (128KB of ring at 32B/record)
    static constexpr std::size_t kDefaultBlockRecords = 4096;

    /**
     * Throws TraceIoError (a std::runtime_error) on malformed files.
     *
     * @param block_records ring capacity; tests shrink it to cover
     *                      wrap/short-block paths cheaply
     */
    explicit TraceFileWorkload(
        const std::string &path,
        std::size_t block_records = kDefaultBlockRecords);
    ~TraceFileWorkload() override;
    TraceFileWorkload(const TraceFileWorkload &) = delete;
    TraceFileWorkload &operator=(const TraceFileWorkload &) = delete;

    TraceInst next() override;

    /** O(1) re-position: one fseek instead of n decodes. */
    void skip(std::uint64_t n) override;

    const std::string &name() const override { return name_; }

    /** Instructions in one pass of the trace. */
    std::uint64_t length() const { return count_; }

  private:
    void refill();

    std::string name_;
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;      //!< records in one trace pass
    std::uint64_t cursor_ = 0;     //!< logical index of the next record
    std::uint64_t file_next_ = 0;  //!< next record the file will read
    std::vector<TraceRecord> ring_;
    std::size_t ring_pos_ = 0;     //!< next undecoded ring slot
    std::size_t ring_filled_ = 0;  //!< valid records in the ring
};

/** Outcome of open_trace_checked: workload or classified failure. */
struct TraceOpenResult
{
    WorkloadPtr workload;  //!< null on failure
    TraceIoStatus status = TraceIoStatus::kOk;
    std::string message;   //!< human-readable diagnostic on failure

    bool ok() const { return workload != nullptr; }
};

/**
 * Open a trace file as a Workload, surfacing the failure class and
 * message to the caller instead of swallowing them. Never throws.
 */
TraceOpenResult open_trace_checked(const std::string &path);

/**
 * Open a trace file as a Workload (nullptr on failure, no throw).
 * Each failure is logged once to stderr with its taxonomy code;
 * callers that want the classification use open_trace_checked.
 */
WorkloadPtr open_trace(const std::string &path);

}  // namespace moka

#endif  // MOKASIM_TRACE_TRACE_IO_H
