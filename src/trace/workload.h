/**
 * @file
 * Workload abstraction: an endless, deterministic instruction stream
 * consumed by the core model. Synthetic generators implementing this
 * interface stand in for the paper's SimPoint traces (see DESIGN.md
 * substitution table).
 */
#ifndef MOKASIM_TRACE_WORKLOAD_H
#define MOKASIM_TRACE_WORKLOAD_H

#include <memory>
#include <string>

#include "common/types.h"

namespace moka {

/** Instruction class as seen by the trace-driven core. */
enum class OpClass : std::uint8_t {
    kAlu,     //!< non-memory, non-branch op (1-cycle, pipelined)
    kLoad,    //!< data load
    kStore,   //!< data store
    kBranch,  //!< conditional/unconditional branch
};

/** One traced instruction. */
struct TraceInst
{
    Addr pc = 0;                 //!< virtual PC of the instruction
    OpClass op = OpClass::kAlu;  //!< instruction class
    VirtAddr mem_addr{};         //!< virtual data address (load/store)
    bool taken = false;          //!< branch outcome
    Addr target = 0;             //!< branch target PC (taken branches)
    bool dep_load = false;       //!< load address depends on the
                                 //!< previous load's data (serializes)
};

/**
 * Endless instruction stream.
 *
 * Generators must be deterministic given their construction
 * parameters: two instances built identically produce identical
 * streams, which is what makes multi-scheme comparisons and the
 * multi-core replay rule meaningful.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next instruction of the stream. */
    virtual TraceInst next() = 0;

    /**
     * Advance the stream by @p n instructions, discarding them. The
     * default decodes and drops; seekable sources (trace files)
     * override with O(1) re-positioning — snapshot restore uses this
     * to fast-forward to the retired-instruction count.
     */
    virtual void skip(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            (void)next();
        }
    }

    /** Human-readable instance name (e.g. "gap.bfs.0"). */
    virtual const std::string &name() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace moka

#endif  // MOKASIM_TRACE_WORKLOAD_H
