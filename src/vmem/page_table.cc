#include "vmem/page_table.h"

#include "common/check.h"
#include "common/hashing.h"
#include "snapshot/snapshot.h"

namespace moka {
namespace {

/** 9-bit radix index of @p vaddr at @p level (0 = PT, 4 = PML5). */
constexpr unsigned
radix_index(Addr vaddr, unsigned level)
{
    return static_cast<unsigned>((vaddr >> (kPageBits + 9 * level)) & 0x1FF);
}

}  // namespace

PageTable::PageTable(const VmemConfig &config)
    : cfg_(config), rng_(config.seed),
      tables_{FlatAddrMap(config.reserve_pages / 64),
              FlatAddrMap(config.reserve_pages / 64),
              FlatAddrMap(config.reserve_pages / 64),
              FlatAddrMap(config.reserve_pages / 64)},
      page_map_(config.reserve_pages),
      large_page_map_(config.reserve_pages / 64),
      used_frames_(
          static_cast<std::size_t>(config.phys_bytes / kPageSize / 2)),
      used_large_frames_(static_cast<std::size_t>(
          (config.phys_bytes / 2) / kLargePageSize))
{
    root_ = alloc_frame();
}

Addr
PageTable::alloc_frame()
{
    // 4KB frames come from the lower half of physical memory; 2MB
    // frames from the upper half (avoids overlap bookkeeping).
    const Addr frames = cfg_.phys_bytes / kPageSize / 2;
    for (;;) {
        const Addr f = rng_.below(frames);
        if (used_frames_.insert(static_cast<std::size_t>(f))) {
            return f * kPageSize;
        }
    }
}

Addr
PageTable::alloc_large_frame()
{
    const Addr half = cfg_.phys_bytes / 2;
    const Addr frames = half / kLargePageSize;
    SIM_REQUIRE(frames > 0,
                "physical memory too small for a 2MB page partition");
    for (;;) {
        const Addr f = rng_.below(frames);
        if (used_large_frames_.insert(static_cast<std::size_t>(f))) {
            return half + f * kLargePageSize;
        }
    }
}

bool
PageTable::is_large_region(VirtAddr vaddr) const
{
    if (cfg_.large_page_fraction <= 0.0) {
        return false;
    }
    // Deterministic per-region coin flip so every simulation of the
    // same address space agrees on page sizes.
    const Addr region = large_page_number(vaddr.raw());
    const double draw =
        static_cast<double>(mix64(region ^ cfg_.seed) >> 11) * 0x1.0p-53;
    return draw < cfg_.large_page_fraction;
}

Translation
PageTable::translate(VirtAddr vaddr)
{
    // The page table is the authoritative VA->PA bridge: virtual
    // bits unwrap here, physical bits wrap on the way out (the page
    // maps and frame allocator speak raw frame numbers).
    Translation t;
    if (is_large_region(vaddr)) {
        const Addr lvpn = large_page_number(vaddr.raw());
        auto [frame, inserted] = large_page_map_.try_emplace(lvpn);
        if (inserted) {
            *frame = alloc_large_frame();
        }
        t.paddr = PhysAddr{*frame + large_page_offset(vaddr.raw())};
        t.large = true;
        return t;
    }
    const Addr vpn = page_number(vaddr.raw());
    auto [frame, inserted] = page_map_.try_emplace(vpn);
    if (inserted) {
        *frame = alloc_frame();
    }
    t.paddr = PhysAddr{*frame + page_offset(vaddr.raw())};
    t.large = false;
    return t;
}

Addr
PageTable::table_frame(unsigned level, Addr prefix)
{
    auto [frame, inserted] = tables_[level].try_emplace(prefix);
    if (inserted) {
        *frame = alloc_frame();
    }
    return *frame;
}

unsigned
PageTable::walk_addresses(VirtAddr vaddr, std::array<PhysAddr, 5> &out)
{
    // Levels top-down: PML5 (radix level 4) .. PT (radix level 0).
    // Table frames are keyed by the VA prefix above each table so
    // adjacent pages share leaf tables, giving walks cache locality.
    const Addr va = vaddr.raw();
    out[0] = PhysAddr{root_ + radix_index(va, 4) * 8};
    const Addr pml4 = table_frame(3, va >> (kPageBits + 9 * 4));
    out[1] = PhysAddr{pml4 + radix_index(va, 3) * 8};
    const Addr pdpt = table_frame(2, va >> (kPageBits + 9 * 3));
    out[2] = PhysAddr{pdpt + radix_index(va, 2) * 8};
    const Addr pd = table_frame(1, va >> (kPageBits + 9 * 2));
    out[3] = PhysAddr{pd + radix_index(va, 1) * 8};
    if (is_large_region(vaddr)) {
        return 4;  // PDE maps the 2MB page directly
    }
    const Addr pt = table_frame(0, va >> (kPageBits + 9));
    out[4] = PhysAddr{pt + radix_index(va, 0) * 8};
    return 5;
}


void
PageTable::save_state(SnapshotWriter &w) const
{
    SnapshotAccess::save(w, rng_);
    w.put_u64(root_);
    for (const FlatAddrMap &m : tables_) {
        SnapshotAccess::save(w, m);
    }
    SnapshotAccess::save(w, page_map_);
    SnapshotAccess::save(w, large_page_map_);
    SnapshotAccess::save(w, used_frames_);
    SnapshotAccess::save(w, used_large_frames_);
}

void
PageTable::restore_state(SnapshotReader &r)
{
    SnapshotAccess::restore(r, rng_);
    root_ = r.get_u64();
    for (FlatAddrMap &m : tables_) {
        SnapshotAccess::restore(r, m);
    }
    SnapshotAccess::restore(r, page_map_);
    SnapshotAccess::restore(r, large_page_map_);
    SnapshotAccess::restore(r, used_frames_);
    SnapshotAccess::restore(r, used_large_frames_);
}

}  // namespace moka
