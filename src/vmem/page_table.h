/**
 * @file
 * Lazy 5-level radix page table with a randomized physical frame
 * allocator. Randomized allocation destroys virtual->physical
 * contiguity, which is why patterns easy to prefetch in virtual space
 * are invisible in physical space — the premise behind VIPT L1D
 * prefetching (paper §II-A).
 */
#ifndef MOKASIM_VMEM_PAGE_TABLE_H
#define MOKASIM_VMEM_PAGE_TABLE_H

#include <array>
#include <cstdint>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Virtual-memory configuration for one address space. */
struct VmemConfig
{
    Addr phys_bytes = Addr{4} << 30;   //!< physical memory size
    double large_page_fraction = 0.0;  //!< chance a 2MB VA region is
                                       //!< backed by a 2MB page
    std::uint64_t seed = 1;            //!< allocator randomization

    /**
     * Mappings (data pages + table frames) the flat page maps hold
     * before their first allocating doubling.  The default covers
     * multi-million-instruction runs of the heaviest generators; the
     * alloc-trace build asserts measured regions stay inside it.
     */
    std::size_t reserve_pages = std::size_t{1} << 16;
};

/** Result of an address translation. */
struct Translation
{
    PhysAddr paddr{};   //!< translated physical byte address
    bool large = false; //!< backed by a 2MB page
};

/**
 * Per-process page table. Mappings and intermediate table frames are
 * allocated on first touch, emulating a lazy OS; walk_addresses()
 * exposes the physical PTE addresses so the hardware walker can issue
 * real memory references against the cache hierarchy.
 */
class PageTable
{
  public:
    explicit PageTable(const VmemConfig &config);

    /**
     * Translate @p vaddr, allocating the mapping on demand — the
     * authoritative VA->PA bridge (see ARCHITECTURE.md).
     */
    Translation translate(VirtAddr vaddr);

    /**
     * Physical addresses of the page-table entries a full walk reads,
     * outermost first (PML5E, PML4E, PDPTE, PDE[, PTE]).
     *
     * @param vaddr faulting virtual address
     * @param out   filled with up to 5 entry addresses
     * @return number of levels to read (4 for 2MB mappings, 5 for 4KB)
     */
    unsigned walk_addresses(VirtAddr vaddr, std::array<PhysAddr, 5> &out);

    /** Number of 4KB data pages mapped so far. */
    std::size_t mapped_pages() const { return page_map_.size(); }

    /** True if the 2MB region containing @p vaddr uses a large page. */
    bool is_large_region(VirtAddr vaddr) const;

    /** Serialize mappings, table frames, frame sets and the RNG. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    Addr alloc_frame();        //!< unique random 4KB frame
    Addr alloc_large_frame();  //!< unique random 2MB-aligned frame
    Addr table_frame(unsigned level, Addr prefix);

    VmemConfig cfg_;  // LINT_SNAPSHOT_OK: config
    Rng rng_;
    Addr root_;  //!< physical base of the PML5 table
    //! table frames keyed by (level, VA prefix)
    std::array<FlatAddrMap, 4> tables_;
    FlatAddrMap page_map_;        //!< VPN -> frame
    FlatAddrMap large_page_map_;  //!< LVPN -> frame
    FrameBitmap used_frames_;           //!< 4KB frame ids
    FrameBitmap used_large_frames_;     //!< 2MB frame ids
};

}  // namespace moka

#endif  // MOKASIM_VMEM_PAGE_TABLE_H
