#include "vmem/tlb.h"

#include "common/bitops.h"
#include "common/check.h"
#include "snapshot/snapshot.h"

namespace moka {

Tlb::Tlb(const TlbConfig &config)
    : cfg_(config),
      small_(static_cast<std::size_t>(config.sets) * config.ways),
      large_(static_cast<std::size_t>(config.large_sets) *
             config.large_ways)
{
    SIM_REQUIRE(is_pow2(cfg_.sets) && is_pow2(cfg_.large_sets),
                "TLB sets must be powers of two");
}

std::size_t
Tlb::find(const EntryArray &arr, std::uint32_t sets, std::uint32_t ways,
          Addr vpn) const
{
    const Addr key = vpn | kValidVpnBit;
    const std::size_t base =
        static_cast<std::size_t>(vpn & (sets - 1)) * ways;
    const Addr *row = &arr.vpn[base];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (row[w] == key) {
            return base + w;
        }
    }
    return kNoSlot;
}

void
Tlb::install(EntryArray &arr, std::uint32_t sets, std::uint32_t ways,
             Addr vpn, Addr page_base)
{
    const std::size_t base =
        static_cast<std::size_t>(vpn & (sets - 1)) * ways;
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if ((arr.vpn[base + w] & kValidVpnBit) == 0) {
            victim = base + w;
            break;
        }
        if (arr.lru[base + w] < arr.lru[victim]) {
            victim = base + w;
        }
    }
    arr.vpn[victim] = vpn | kValidVpnBit;
    arr.page_base[victim] = page_base;
    arr.lru[victim] = ++lru_stamp_;
}

Tlb::Result
Tlb::lookup(VirtAddr vaddr, Cycle now, bool demand)
{
    AccessStats &st = demand ? demand_ : probe_;
    ++st.accesses;

    Result r;
    r.done = now + cfg_.latency;

    // Entries store raw VPN/page-base bits; the TLB is a whitelisted
    // translation seam (rule L18) so the unwrap happens here, once.
    if (const std::size_t slot = find(small_, cfg_.sets, cfg_.ways,
                                      page_number(vaddr.raw()));
        slot != kNoSlot) {
        small_.lru[slot] = ++lru_stamp_;
        r.hit = true;
        r.page_base = PhysAddr{small_.page_base[slot]};
        r.large = false;
        return r;
    }
    if (const std::size_t slot =
            find(large_, cfg_.large_sets, cfg_.large_ways,
                 large_page_number(vaddr.raw()));
        slot != kNoSlot) {
        large_.lru[slot] = ++lru_stamp_;
        r.hit = true;
        r.page_base = PhysAddr{large_.page_base[slot]};
        r.large = true;
        return r;
    }
    ++st.misses;
    return r;
}

void
Tlb::fill(VirtAddr vaddr, PhysAddr page_base, bool large,
          bool from_prefetch)
{
    if (from_prefetch) {
        ++prefetch_fills_;
    }
    if (large) {
        install(large_, cfg_.large_sets, cfg_.large_ways,
                large_page_number(vaddr.raw()), page_base.raw());
    } else {
        install(small_, cfg_.sets, cfg_.ways, page_number(vaddr.raw()),
                page_base.raw());
    }
}


void
Tlb::save_state(SnapshotWriter &w) const
{
    // Byte format is unchanged from the array-of-structs layout: the
    // embedded valid bit decomposes back into the (vpn, valid) pair.
    const auto put_arr = [&w](const EntryArray &arr) {
        for (std::size_t i = 0; i < arr.vpn.size(); ++i) {
            w.put_u64(arr.vpn[i] & ~kValidVpnBit);
            w.put_u64(arr.page_base[i]);
            w.put_bool((arr.vpn[i] & kValidVpnBit) != 0);
            w.put_u64(arr.lru[i]);
        }
    };
    put_arr(small_);
    put_arr(large_);
    w.put_u64(lru_stamp_);
    put_stats(w, demand_);
    put_stats(w, probe_);
    w.put_u64(prefetch_fills_);
}

void
Tlb::restore_state(SnapshotReader &r)
{
    const auto get_arr = [&r](EntryArray &arr) {
        for (std::size_t i = 0; i < arr.vpn.size(); ++i) {
            const Addr vpn = r.get_u64();
            arr.page_base[i] = r.get_u64();
            arr.vpn[i] = r.get_bool() ? (vpn | kValidVpnBit) : vpn;
            arr.lru[i] = r.get_u64();
        }
    };
    get_arr(small_);
    get_arr(large_);
    lru_stamp_ = r.get_u64();
    get_stats(r, demand_);
    get_stats(r, probe_);
    prefetch_fills_ = r.get_u64();
}

}  // namespace moka
