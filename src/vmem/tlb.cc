#include "vmem/tlb.h"

#include "common/bitops.h"
#include "common/check.h"
#include "snapshot/snapshot.h"

namespace moka {

Tlb::Tlb(const TlbConfig &config)
    : cfg_(config),
      small_(static_cast<std::size_t>(config.sets) * config.ways),
      large_(static_cast<std::size_t>(config.large_sets) *
             config.large_ways)
{
    SIM_REQUIRE(is_pow2(cfg_.sets) && is_pow2(cfg_.large_sets),
                "TLB sets must be powers of two");
}

Tlb::Entry *
Tlb::find(std::vector<Entry> &arr, std::uint32_t sets, std::uint32_t ways,
          Addr vpn)
{
    Entry *row = &arr[static_cast<std::size_t>(vpn & (sets - 1)) * ways];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (row[w].valid && row[w].vpn == vpn) {
            return &row[w];
        }
    }
    return nullptr;
}

void
Tlb::install(std::vector<Entry> &arr, std::uint32_t sets,
             std::uint32_t ways, Addr vpn, Addr page_base)
{
    Entry *row = &arr[static_cast<std::size_t>(vpn & (sets - 1)) * ways];
    Entry *victim = &row[0];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru) {
            victim = &row[w];
        }
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->page_base = page_base;
    victim->lru = ++lru_stamp_;
}

Tlb::Result
Tlb::lookup(VirtAddr vaddr, Cycle now, bool demand)
{
    AccessStats &st = demand ? demand_ : probe_;
    ++st.accesses;

    Result r;
    r.done = now + cfg_.latency;

    // Entries store raw VPN/page-base bits; the TLB is a whitelisted
    // translation seam (rule L18) so the unwrap happens here, once.
    if (Entry *e = find(small_, cfg_.sets, cfg_.ways,
                        page_number(vaddr.raw()))) {
        e->lru = ++lru_stamp_;
        r.hit = true;
        r.page_base = PhysAddr{e->page_base};
        r.large = false;
        return r;
    }
    if (Entry *e = find(large_, cfg_.large_sets, cfg_.large_ways,
                        large_page_number(vaddr.raw()))) {
        e->lru = ++lru_stamp_;
        r.hit = true;
        r.page_base = PhysAddr{e->page_base};
        r.large = true;
        return r;
    }
    ++st.misses;
    return r;
}

void
Tlb::fill(VirtAddr vaddr, PhysAddr page_base, bool large,
          bool from_prefetch)
{
    if (from_prefetch) {
        ++prefetch_fills_;
    }
    if (large) {
        install(large_, cfg_.large_sets, cfg_.large_ways,
                large_page_number(vaddr.raw()), page_base.raw());
    } else {
        install(small_, cfg_.sets, cfg_.ways, page_number(vaddr.raw()),
                page_base.raw());
    }
}


void
Tlb::save_state(SnapshotWriter &w) const
{
    const auto put_arr = [&w](const std::vector<Entry> &arr) {
        for (const Entry &e : arr) {
            w.put_u64(e.vpn);
            w.put_u64(e.page_base);
            w.put_bool(e.valid);
            w.put_u64(e.lru);
        }
    };
    put_arr(small_);
    put_arr(large_);
    w.put_u64(lru_stamp_);
    put_stats(w, demand_);
    put_stats(w, probe_);
    w.put_u64(prefetch_fills_);
}

void
Tlb::restore_state(SnapshotReader &r)
{
    const auto get_arr = [&r](std::vector<Entry> &arr) {
        for (Entry &e : arr) {
            e.vpn = r.get_u64();
            e.page_base = r.get_u64();
            e.valid = r.get_bool();
            e.lru = r.get_u64();
        }
    };
    get_arr(small_);
    get_arr(large_);
    lru_stamp_ = r.get_u64();
    get_stats(r, demand_);
    get_stats(r, probe_);
    prefetch_fills_ = r.get_u64();
}

}  // namespace moka
