/**
 * @file
 * Set-associative TLB with separate small-page (4KB) and large-page
 * (2MB) arrays. Demand lookups and prefetch probes are counted
 * separately so that speculative page-cross traffic never perturbs
 * the demand MPKI/miss-rate statistics the paper reports — while its
 * fills still pollute (or warm) the arrays.
 */
#ifndef MOKASIM_VMEM_TLB_H
#define MOKASIM_VMEM_TLB_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Geometry/timing of a TLB level. */
struct TlbConfig
{
    std::string name = "tlb";
    std::uint32_t sets = 16;        //!< small-page array sets (pow2)
    std::uint32_t ways = 4;
    std::uint32_t large_sets = 4;   //!< large-page array sets (pow2)
    std::uint32_t large_ways = 4;
    Cycle latency = 1;
};

/** One TLB level (dTLB, iTLB or sTLB). */
class Tlb
{
  public:
    /** Lookup outcome. */
    struct Result
    {
        bool hit = false;
        PhysAddr page_base{};  //!< physical base of the enclosing page
        bool large = false;
        Cycle done = 0;        //!< lookup completion cycle
    };

    explicit Tlb(const TlbConfig &config);

    /**
     * Translate lookup — one of the three legal bridges between the
     * virtual and physical address spaces (see ARCHITECTURE.md).
     *
     * @param vaddr  virtual address
     * @param now    arrival cycle
     * @param demand true for demand accesses (counted in MPKI);
     *               false for prefetch probes (counted separately)
     */
    Result lookup(VirtAddr vaddr, Cycle now, bool demand);

    /**
     * Install a translation.
     *
     * @param vaddr     any address inside the page
     * @param page_base physical base of the page
     * @param large     2MB entry
     * @param from_prefetch fill caused by a page-cross prefetch
     */
    void fill(VirtAddr vaddr, PhysAddr page_base, bool large,
              bool from_prefetch);

    /** Demand access/miss counters. */
    const AccessStats &demand_stats() const { return demand_; }
    /** Prefetch-probe access/miss counters. */
    const AccessStats &probe_stats() const { return probe_; }
    /** Fills triggered by page-cross prefetches. */
    std::uint64_t prefetch_fills() const { return prefetch_fills_; }

    /** Config echo. */
    const TlbConfig &config() const { return cfg_; }

    /** Serialize both entry arrays, the LRU clock and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    // Structure-of-arrays entry store, mirroring the cache layout:
    // the lookup scan reads only the vpn array, whose bit 63 carries
    // the valid flag (VPNs are at most 52 bits), so each way costs a
    // single compare against vpn|kValidVpnBit. Page bases and LRU
    // stamps sit in parallel arrays touched only on hit/install.
    static constexpr Addr kValidVpnBit = Addr{1} << 63;
    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    struct EntryArray
    {
        std::vector<Addr> vpn;        //!< bit 63 = valid
        std::vector<Addr> page_base;  //!< parallel to vpn
        std::vector<std::uint64_t> lru;

        explicit EntryArray(std::size_t slots)
            : vpn(slots, 0), page_base(slots, 0), lru(slots, 0)
        {
        }
    };

    std::size_t find(const EntryArray &arr, std::uint32_t sets,
                     std::uint32_t ways, Addr vpn) const;
    void install(EntryArray &arr, std::uint32_t sets,
                 std::uint32_t ways, Addr vpn, Addr page_base);

    TlbConfig cfg_;  // LINT_SNAPSHOT_OK: config
    EntryArray small_;
    EntryArray large_;
    std::uint64_t lru_stamp_ = 0;
    AccessStats demand_;
    AccessStats probe_;
    std::uint64_t prefetch_fills_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_VMEM_TLB_H
