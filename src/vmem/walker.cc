#include "vmem/walker.h"

#include <algorithm>

#include "snapshot/snapshot.h"

namespace moka {

bool
StructureCache::lookup(Addr prefix)
{
    ++lookups_;
    for (Entry &e : data_) {
        if (e.prefix == prefix) {
            e.lru = ++lru_stamp_;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
StructureCache::fill(Addr prefix)
{
    for (Entry &e : data_) {
        if (e.prefix == prefix) {
            e.lru = ++lru_stamp_;
            return;
        }
    }
    if (data_.size() < entries_) {
        data_.push_back({prefix, ++lru_stamp_});
        return;
    }
    Entry *victim = &data_[0];
    for (Entry &e : data_) {
        if (e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->prefix = prefix;
    victim->lru = ++lru_stamp_;
}

PageWalker::PageWalker(const WalkerConfig &config, PageTable *table,
                       MemoryLevel *memory)
    : cfg_(config), table_(table), memory_(memory),
      psc_pml5_(config.psc_pml5_entries),
      psc_pml4_(config.psc_pml4_entries),
      psc_pdpte_(config.psc_pdpte_entries),
      psc_pde_(config.psc_pde_entries),
      walker_free_(std::max(1u, config.concurrent_walks), 0)
{
}

PageWalker::WalkResult
PageWalker::walk(VirtAddr vaddr, Cycle now, bool speculative)
{
    if (speculative) {
        ++spec_walks_;
    } else {
        ++demand_walks_;
    }

    // Claim the earliest-available walker slot.
    auto slot = std::min_element(walker_free_.begin(), walker_free_.end());
    Cycle t = std::max(now, *slot);

    std::array<PhysAddr, 5> pte_addrs;
    const unsigned levels = table_->walk_addresses(vaddr, pte_addrs);

    // Split PSC lookup (parallel, 1 cycle): deepest hit decides how
    // many upper-level reads the walk may skip. PSC prefixes, deepest
    // first. A PDE-PSC hit on a 2MB mapping resolves the translation
    // outright (the PDE is the leaf). PSCs are keyed by raw VA
    // prefixes; the walker is part of the vmem translation seam.
    const Addr va = vaddr.raw();
    t += cfg_.psc_latency;
    unsigned first_level = 0;  // index into pte_addrs to start reading at
    if (psc_pde_.lookup(va >> kLargePageBits)) {
        first_level = 4;
    } else if (psc_pdpte_.lookup(va >> 30)) {
        first_level = 3;
    } else if (psc_pml4_.lookup(va >> 39)) {
        first_level = 2;
    } else if (psc_pml5_.lookup(va >> 48)) {
        first_level = 1;
    }

    WalkResult r;
    for (unsigned i = first_level; i < levels; ++i) {
        // Dependent chain: each PTE read must finish before the next.
        t = memory_->access(pte_addrs[i], AccessType::kPageWalk, t).done;
        ++r.mem_refs;
    }
    total_mem_refs_ += r.mem_refs;

    // Refill PSCs for every level the walk traversed.
    if (levels == 5) {
        psc_pde_.fill(va >> kLargePageBits);
    }
    psc_pdpte_.fill(va >> 30);
    psc_pml4_.fill(va >> 39);
    psc_pml5_.fill(va >> 48);

    const Translation tr = table_->translate(vaddr);
    r.done = t;
    r.page_base = tr.large ? PhysAddr{tr.paddr.raw() & ~(kLargePageSize - 1)}
                           : PhysAddr{tr.paddr.raw() & ~(kPageSize - 1)};
    r.large = tr.large;

    *slot = t;
    return r;
}


void
StructureCache::save_state(SnapshotWriter &w) const
{
    w.put_u64(data_.size());
    for (const Entry &e : data_) {
        w.put_u64(e.prefix);
        w.put_u64(e.lru);
    }
    w.put_u64(lru_stamp_);
    w.put_u64(hits_);
    w.put_u64(lookups_);
}

void
StructureCache::restore_state(SnapshotReader &r)
{
    const std::uint64_t n = r.get_u64();
    if (n > entries_) {
        throw SnapshotError(SnapshotErrorKind::kMalformed,
                            "PSC occupancy above its capacity");
    }
    data_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        Entry e;
        e.prefix = r.get_u64();
        e.lru = r.get_u64();
        data_.push_back(e);
    }
    lru_stamp_ = r.get_u64();
    hits_ = r.get_u64();
    lookups_ = r.get_u64();
}

void
PageWalker::save_state(SnapshotWriter &w) const
{
    psc_pml5_.save_state(w);
    psc_pml4_.save_state(w);
    psc_pdpte_.save_state(w);
    psc_pde_.save_state(w);
    put_vec(w, walker_free_);
    w.put_u64(demand_walks_);
    w.put_u64(spec_walks_);
    w.put_u64(total_mem_refs_);
}

void
PageWalker::restore_state(SnapshotReader &r)
{
    psc_pml5_.restore_state(r);
    psc_pml4_.restore_state(r);
    psc_pdpte_.restore_state(r);
    psc_pde_.restore_state(r);
    get_vec(r, walker_free_);
    demand_walks_ = r.get_u64();
    spec_walks_ = r.get_u64();
    total_mem_refs_ = r.get_u64();
}

}  // namespace moka
