/**
 * @file
 * Hardware page-table walker with split page-structure caches (PSCs).
 * Walks are sequences of dependent memory references issued through
 * the cache hierarchy (L2C entry point), so a speculative walk for a
 * useless page-cross prefetch costs up to 4 real memory accesses —
 * the paper's headline risk.
 */
#ifndef MOKASIM_VMEM_WALKER_H
#define MOKASIM_VMEM_WALKER_H

#include <array>
#include <cstdint>
#include <vector>

#include "cache/memory_level.h"
#include "common/types.h"
#include "vmem/page_table.h"

namespace moka {

struct AuditAccess;
class SnapshotReader;
class SnapshotWriter;

/** Walker + PSC configuration (Table IV: split PSC, 1-cycle). */
struct WalkerConfig
{
    unsigned psc_pml5_entries = 1;
    unsigned psc_pml4_entries = 2;
    unsigned psc_pdpte_entries = 8;
    unsigned psc_pde_entries = 32;
    Cycle psc_latency = 1;
    unsigned concurrent_walks = 4;  //!< walker MSHR-equivalents
};

/** A small fully-associative LRU cache over VA prefixes (one PSC). */
class StructureCache
{
  public:
    explicit StructureCache(unsigned entries) : entries_(entries)
    {
        // Occupancy is bounded at entries_ by the LRU replacement in
        // fill(); reserving keeps walks allocation free (rule L10).
        data_.reserve(entries_);
    }

    /** True when @p prefix is cached (updates recency). */
    bool lookup(Addr prefix);

    /** Install @p prefix, evicting LRU if needed. */
    void fill(Addr prefix);

    /** Lookup counters. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t lookups() const { return lookups_; }

    /** Serialize cached prefixes, the LRU clock and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    struct Entry
    {
        Addr prefix = 0;
        std::uint64_t lru = 0;
    };

    unsigned entries_;  // LINT_SNAPSHOT_OK: config
    std::vector<Entry> data_;
    std::uint64_t lru_stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t lookups_ = 0;
};

/** The hardware page-table walker. */
class PageWalker
{
  public:
    /** Result of a completed walk. */
    struct WalkResult
    {
        Cycle done = 0;         //!< translation available
        PhysAddr page_base{};   //!< physical page base
        bool large = false;     //!< 2MB mapping
        unsigned mem_refs = 0;  //!< memory accesses the walk issued
    };

    /**
     * @param config walker/PSC geometry
     * @param table  the process page table
     * @param memory entry point for PTE reads (L2C in the paper)
     */
    PageWalker(const WalkerConfig &config, PageTable *table,
               MemoryLevel *memory);

    /**
     * Perform a full walk for @p vaddr starting at @p now.
     *
     * @param speculative true for walks triggered by page-cross
     *                    prefetches (counted separately)
     */
    WalkResult walk(VirtAddr vaddr, Cycle now, bool speculative);

    /** Demand walks performed. */
    std::uint64_t demand_walks() const { return demand_walks_; }
    /** Speculative (prefetch-triggered) walks performed. */
    std::uint64_t spec_walks() const { return spec_walks_; }
    /** Total PTE memory references issued. */
    std::uint64_t total_mem_refs() const { return total_mem_refs_; }

    /** Serialize PSCs, walker-slot availability and counters. */
    void save_state(SnapshotWriter &w) const;
    /** Inverse of save_state on a same-config instance. */
    void restore_state(SnapshotReader &r);

  private:
    friend struct AuditAccess;

    WalkerConfig cfg_;     // LINT_SNAPSHOT_OK: config
    PageTable *table_;     // LINT_SNAPSHOT_OK: collaborator, owned by core
    MemoryLevel *memory_;  // LINT_SNAPSHOT_OK: collaborator, owned by core
    StructureCache psc_pml5_;
    StructureCache psc_pml4_;
    StructureCache psc_pdpte_;
    StructureCache psc_pde_;
    std::vector<Cycle> walker_free_;  //!< per-slot availability
    std::uint64_t demand_walks_ = 0;
    std::uint64_t spec_walks_ = 0;
    std::uint64_t total_mem_refs_ = 0;
};

}  // namespace moka

#endif  // MOKASIM_VMEM_WALKER_H
