#include <cassert>

void
check_widget(int n)
{
    assert(n > 0);
}
