#include "common/check.h"

// The lexer regression corpus: none of the `assert(` tokens below are
// code, and the old line-oriented stripper got several of them wrong.
static const char *kBanner =
    R"(usage: assert(x) is banned here, " and so is #include <cassert>)";
static const char *kMultiline = R"doc(line one
assert(hidden)
line three)doc";
static const char *kEscaped = "quote \" then assert( nothing";
constexpr int kBig = 1'000'000;  // digit separator, not a char literal

void
check_widget(int n)
{
    // assert(n) in a comment is fine.
    SIM_REQUIRE(n > 0, "widget count must be positive");
    static_assert(sizeof(int) >= 4, "ILP32 or wider");
    (void)kBanner;
    (void)kMultiline;
    (void)kEscaped;
    (void)kBig;
}
