#include <string>
#include <vector>

// Per-access pipeline: SIM_HOT marks the root the reachability
// analysis traverses from (tools/simlint/hotpath.py).
class Pipeline
{
  public:
    SIM_HOT void on_access(unsigned long addr)
    {
        history_.push_back(addr);  // grows without a reserve anywhere
        record(addr);
    }

  private:
    void record(unsigned long addr)
    {
        // Reached from the hot root: per-call string + new.
        std::string label = "access";
        label += std::to_string(addr).empty() ? "x" : "y";
        scratch_ = new unsigned long[2];
        scratch_[0] = addr;
    }

    std::vector<unsigned long> history_;
    unsigned long *scratch_ = nullptr;
};
