#include <string>
#include <vector>

// Fixed: capacity reserved at construction, sinks passed by
// reference so the caller owns the capacity contract.
class Pipeline
{
  public:
    Pipeline() { history_.reserve(1024); }

    SIM_HOT void on_access(unsigned long addr)
    {
        history_.push_back(addr);  // reserved in the constructor
        collect(addr, history_);
    }

    SIM_COLD void report()
    {
        // Cold (amortized) path: allocation is allowed here.
        std::string text = "report";
        rows_.push_back(text.size());
    }

  private:
    static void collect(unsigned long addr, std::vector<unsigned long> &out)
    {
        out.push_back(addr);  // by-ref parameter: caller reserves
    }

    std::vector<unsigned long> history_;
    std::vector<unsigned long> rows_;
};

// Not reachable from any SIM_HOT root: unconstrained.
void
build_table(std::vector<std::string> &rows)
{
    rows.push_back(std::string("header"));
}
