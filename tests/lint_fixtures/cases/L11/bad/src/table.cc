#include <unordered_map>

// A fixed-capacity hardware table modelled with a hash map: every
// per-access lookup pays a hash + pointer chase.
class Tlb
{
  public:
    SIM_HOT bool lookup(unsigned long vpn)
    {
        return entries_.find(vpn) != entries_.end();
    }

    SIM_HOT void fill(unsigned long vpn, unsigned long pfn)
    {
        entries_[vpn] = pfn;
    }

  private:
    std::unordered_map<unsigned long, unsigned long> entries_;
};
