#include <cstdint>
#include <map>
#include <vector>

// Fixed: the bounded table is a flat set-associative array; the
// genuinely sparse OS-side map keeps a justified escape.
class Tlb
{
  public:
    explicit Tlb(std::size_t sets) : ways_(sets * 4) {}

    SIM_HOT bool lookup(unsigned long vpn)
    {
        const std::size_t base = (vpn % (ways_.size() / 4)) * 4;
        for (std::size_t i = 0; i < 4; ++i) {
            if (ways_[base + i].vpn == vpn && ways_[base + i].valid) {
                return true;
            }
        }
        return miss(vpn);
    }

  private:
    bool miss(unsigned long vpn)
    {
        // LINT_HOT_OK: the page map models the OS view over a sparse
        // key space and is consulted only per TLB miss (amortized).
        return os_pages_.count(vpn) != 0;
    }

    struct Way
    {
        unsigned long vpn = 0;
        bool valid = false;
    };
    std::vector<Way> ways_;
    std::map<unsigned long, unsigned long> os_pages_;
};

// Not hot-reachable: maps are fine off the per-access path.
class ReportIndex
{
  public:
    void add(unsigned long key) { rows_[key] += 1; }

  private:
    std::map<unsigned long, int> rows_;
};
