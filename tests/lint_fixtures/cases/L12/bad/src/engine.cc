// A per-access virtual call through a non-final class: the compiler
// cannot devirtualize, so the innermost loop pays an indirect call.
struct Model
{
    virtual ~Model() = default;
    virtual int predict(int x) = 0;
};

struct Linear : Model
{
    int predict(int x) override { return 2 * x; }
};

class Engine
{
  public:
    SIM_HOT int on_access(int x) { return model_->predict(x); }

  private:
    Model *model_ = nullptr;
};
