// Fixed: the concrete leaf is `final`, so a call through it
// devirtualizes; the deliberately polymorphic seam is escaped.
struct Model
{
    virtual ~Model() = default;
    virtual int predict(int x) = 0;
};

struct Linear final : Model
{
    int predict(int x) override { return 2 * x; }
};

class Engine
{
  public:
    SIM_HOT int on_access(int x)
    {
        // Static type is final: devirtualizable, no finding.
        return fast_->predict(x) + slow_path(x);
    }

  private:
    int slow_path(int x)
    {
        // LINT_HOT_OK: the configurable model is this experiment's
        // configuration point; the indirection is the design.
        return configured_->predict(x);
    }

    Linear *fast_ = nullptr;
    Model *configured_ = nullptr;
};
