// A cache-line-sized record copied by value on every access.
struct DecisionContext
{
    unsigned long block = 0;
    unsigned long indexes[8] = {};
    unsigned long mask = 0;
};

class Filter
{
  public:
    SIM_HOT bool permit(DecisionContext ctx)
    {
        return ctx.block != 0 && ctx.indexes[0] != ctx.mask;
    }
};
