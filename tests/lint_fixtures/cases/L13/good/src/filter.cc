// Fixed: big records pass by const reference; a deliberate sink
// copy carries a justification.
struct DecisionContext
{
    unsigned long block = 0;
    unsigned long indexes[8] = {};
    unsigned long mask = 0;
};

class Filter
{
  public:
    SIM_HOT bool permit(const DecisionContext &ctx)
    {
        return ctx.block != 0 && ctx.indexes[0] != ctx.mask;
    }

    // LINT_HOT_OK: sink argument, moved into the pending slot; the
    // copy happens at most once per issued prefetch.
    SIM_HOT void stage(DecisionContext ctx) { pending_ = ctx; }

  private:
    DecisionContext pending_;
};

// Not hot-reachable: by-value is fine off the per-access path.
unsigned long
checksum(DecisionContext ctx)
{
    return ctx.block ^ ctx.mask;
}
