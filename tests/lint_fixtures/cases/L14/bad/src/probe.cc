#include <cstdio>
#include <string>

// Formatting and I/O on the per-access path: locale lookups and
// syscalls on a path budgeted in nanoseconds.
class Probe
{
  public:
    SIM_HOT void on_access(unsigned long addr)
    {
        if (addr == watch_) {
            std::printf("hit %lu\n", addr);
            last_ = std::to_string(addr);
        }
    }

  private:
    unsigned long watch_ = 0;
    std::string last_;
};
