#include <cstdio>
#include <cstdint>

// Fixed: the hot path records a counter; rendering happens behind a
// SIM_COLD boundary at report cadence.
class Probe
{
  public:
    SIM_HOT void on_access(unsigned long addr)
    {
        hits_ += (addr == watch_) ? 1 : 0;
    }

    SIM_COLD void report()
    {
        // Cold: the traversal stops here, formatting is fine.
        std::printf("hits %llu\n",
                    static_cast<unsigned long long>(hits_));
    }

  private:
    unsigned long watch_ = 0;
    std::uint64_t hits_ = 0;
};
