// L15 bad fixture: journal-path I/O with results dropped.
#include <cstdio>

void
publish(const char *tmp, const char *path, const void *buf, unsigned n)
{
    std::FILE *f = std::fopen(tmp, "wb");
    if (f == nullptr) {
        return;
    }
    std::fwrite(buf, 1, n, f);          // dropped: short write lost
    std::fflush(f);                      // dropped: ENOSPC lost
    fclose(f);                           // dropped: buffered tail lost
    std::rename(tmp, path);              // dropped: marker may not exist
}

void
conditional_close(std::FILE *f, bool noisy)
{
    if (noisy)
        std::fclose(f);  // statement position inside if-body: dropped
}
