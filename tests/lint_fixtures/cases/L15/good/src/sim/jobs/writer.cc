// L15 good fixture: every result checked, discarded with an
// annotation, or outside the rule's reach.
#include <cstdio>
#include <filesystem>

bool
publish(const char *tmp, const char *path, const void *buf, unsigned n)
{
    std::FILE *f = std::fopen(tmp, "wb");
    if (f == nullptr) {
        return false;
    }
    bool ok = std::fwrite(buf, 1, n, f) == n;
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        return false;
    }
    return std::rename(tmp, path) == 0;
}

void
read_side(std::FILE *in)
{
    // LINT_IO_OK: read-only stream; close failure cannot lose data.
    std::fclose(in);
}

int
close_as_return(std::FILE *f)
{
    return fclose(f);
}

void
not_the_libc_ones(const char *a, const char *b)
{
    // Qualified non-std rename (returns void) must not match.
    std::filesystem::rename(a, b);
}
