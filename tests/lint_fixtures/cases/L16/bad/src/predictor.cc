#include "predictor.h"

void
OutOfLineTable::save_state(SnapshotWriter &w) const
{
    for (std::uint64_t row : rows_) {
        InlinePredictor::put(w, row);  // lru_ forgotten
    }
}
