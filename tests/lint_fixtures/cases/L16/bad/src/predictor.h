#pragma once
#include <cstdint>
#include <vector>

class SnapshotWriter;
class SnapshotReader;

/** Seeded violations: `misses_` is missing from the inline
 *  save_state, and OutOfLineTable's `lru_` is missing from its
 *  out-of-line definition (predictor.cc). */
class InlinePredictor
{
  public:
    void save_state(SnapshotWriter &w) const
    {
        put(w, hits_);
    }

  private:
    static void put(SnapshotWriter &w, std::uint64_t v);

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

class OutOfLineTable
{
  public:
    void save_state(SnapshotWriter &w) const;

  private:
    std::vector<std::uint64_t> rows_;
    std::uint64_t lru_ = 0;
};
