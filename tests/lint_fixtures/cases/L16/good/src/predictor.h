#pragma once
#include <cstdint>
#include <vector>

class SnapshotWriter;
class SnapshotReader;

/** Clean: every member is serialized, delegated, or annotated. */
class InlinePredictor
{
  public:
    void save_state(SnapshotWriter &w) const
    {
        put(w, hits_);
        put(w, misses_);
    }

  private:
    static void put(SnapshotWriter &w, std::uint64_t v);

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

class OutOfLineTable
{
  public:
    void save_state(SnapshotWriter &w) const;

  private:
    std::vector<std::uint64_t> rows_;
    std::uint64_t lru_ = 0;
    // LINT_SNAPSHOT_OK: scratch rebuilt before every use
    std::vector<std::uint64_t> scratch_;
};

/** No save_state declared: L16 does not apply. */
class PlainCache
{
  private:
    std::uint64_t untracked_ = 0;
};
