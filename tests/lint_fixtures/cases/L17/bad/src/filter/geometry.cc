#include "common/types.h"

namespace moka {

// Raw page geometry in component code: every form L17 exists to stop.
Addr
vpn_of(Addr vaddr)
{
    return vaddr >> 12;  // should be page_number()
}

Addr
large_region_of(Addr vaddr)
{
    return vaddr >> kLargePageBits;  // named constant, flagged anywhere
}

Addr
rebuild(Addr vpn)
{
    return vpn << kPageBits;  // should be page_base_addr()
}

Addr
offset_of(Addr paddr)
{
    return paddr & 0xFFF;  // should be page_offset()
}

Addr
page_base_of(Addr paddr)
{
    return paddr & ~(kPageSize - 1);  // should be page_addr()
}

}  // namespace moka
