#include <iostream>

#include "common/types.h"

namespace moka {

// The compliant twin: typed helpers, the annotation escape, and the
// shift-lookalikes (stream ops, template closers, non-geometry
// shifts) that the disambiguation must not flag.
VirtPageNum
vpn_of(VirtAddr vaddr)
{
    return page_number(vaddr);
}

Addr
offset_of(PhysAddr paddr)
{
    return page_offset(paddr);
}

Addr
packed(Addr vaddr)
{
    // LINT_GEOM_OK: trace file format packs VPN and offset in one word
    return (vaddr >> 12) << 12;
}

std::uint16_t
signature(std::uint64_t sig, std::uint64_t delta)
{
    // 12-bit table hashing, not page geometry: no address operand.
    return static_cast<std::uint16_t>(((sig << 3) ^ delta) & 0xFFF);
}

void
report(std::ostream &os, VirtAddr vaddr)
{
    os << 12 << " pages near " << page_number(vaddr).raw() << "\n";
    std::cout << 21 << "\n";
}

std::vector<std::pair<int, std::vector<int>>>
nested_template_closer()
{
    return {};
}

}  // namespace moka
