#include "common/types.h"

namespace moka {

// Unannotated .raw() in component code: the typed world leaks.
Addr
leak(VirtAddr vaddr)
{
    return vaddr.raw();
}

bool
compare_across_spaces(VirtAddr v, PhysAddr p)
{
    // The exact bug class the types exist to prevent, smuggled back
    // in through the escape hatch.
    return v.raw() == p.raw();
}

}  // namespace moka
