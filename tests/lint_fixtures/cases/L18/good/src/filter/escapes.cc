#include "common/types.h"

namespace moka {

// Typed end to end: no escape hatch needed.
Addr
block_of(VirtAddr vaddr)
{
    return block_number(vaddr);
}

std::uint64_t
file_record(VirtAddr vaddr)
{
    return vaddr.raw();  // LINT_ADDR_OK: trace file format is untyped
}

}  // namespace moka
