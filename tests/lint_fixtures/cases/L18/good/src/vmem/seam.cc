#include "common/types.h"

namespace moka {

// vmem/ is a blessed seam: translation is where VA becomes PA, so
// unwrapping here is the point of the code.
PhysAddr
translate_identity(VirtAddr vaddr)
{
    return PhysAddr{vaddr.raw()};
}

}  // namespace moka
