#include <cstdint>
#include <vector>

// A direct-mapped table indexed with a runtime-divisor modulo on the
// per-access path, plus per-access flag reads through a vector<bool>
// bit proxy.
class RecentTable
{
  public:
    explicit RecentTable(std::size_t entries)
        : lines_(entries, 0), dirty_(entries, false)
    {
    }

    SIM_HOT bool contains(unsigned long line)
    {
        return lines_[line % lines_.size()] == line;
    }

    SIM_HOT void advance()
    {
        cursor_ = (cursor_ + 1) % count_;
        dirty_[cursor_] = true;
    }

  private:
    std::vector<unsigned long> lines_;
    std::vector<bool> dirty_;
    std::size_t cursor_ = 0;
    std::size_t count_ = 8;
};
