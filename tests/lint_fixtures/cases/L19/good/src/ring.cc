#include <cstdint>
#include <vector>

// Fixed: the pow2 table precomputes a mask at construction, the ring
// advance compare-wraps, flags live in one byte each, and the
// genuinely non-pow2 hash reduction keeps a justified escape.
class RecentTable
{
  public:
    explicit RecentTable(std::size_t entries)
        : mask_(entries - 1), lines_(entries, 0), dirty_(entries, 0)
    {
    }

    SIM_HOT bool contains(unsigned long line)
    {
        return lines_[line & mask_] == line;
    }

    SIM_HOT void advance()
    {
        if (++cursor_ == count_) {
            cursor_ = 0;
        }
        dirty_[cursor_] = 1;
    }

    SIM_HOT unsigned long scramble(unsigned long v)
    {
        // LINT_HOT_OK: semantic range reduction of a hash onto a
        // non-pow2 footprint; the modulo defines the workload.
        return (v * 0x9E3779B97F4A7C15ull) % footprint;
    }

  private:
    std::size_t mask_;
    std::vector<unsigned long> lines_;
    std::vector<std::uint8_t> dirty_;
    std::size_t cursor_ = 0;
    std::size_t count_ = 8;
    unsigned long footprint = 1000;
};

// % by a literal or a kConstant is strength-reduced by the compiler
// and stays unflagged.
class Sampler
{
  public:
    SIM_HOT bool sample(unsigned long n)
    {
        return n % 64 == 0 && n % kPeriod == 0;
    }

  private:
    static constexpr unsigned long kPeriod = 1024;
};
