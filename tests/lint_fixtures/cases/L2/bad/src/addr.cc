#include <cstdint>

std::uint32_t
truncate(std::uint64_t vaddr)
{
    return static_cast<std::uint32_t>(vaddr);
}

unsigned
truncate_c_style(std::uint64_t paddr)
{
    return (unsigned)(paddr);
}
