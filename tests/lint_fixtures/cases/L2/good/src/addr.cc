#include <cstdint>

std::uint32_t
page_offset(std::uint64_t vaddr)
{
    return static_cast<std::uint32_t>(vaddr & 0xfffULL);  // masked first
}

std::uint64_t
widen(std::uint64_t paddr)
{
    return static_cast<std::uint64_t>(paddr);  // full width is fine
}

std::uint32_t
set_index(std::uint64_t vaddr)
{
    return static_cast<std::uint32_t>(vaddr >> 6 & 0x3f);
}
