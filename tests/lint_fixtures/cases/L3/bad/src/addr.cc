#include <cstdint>

int
to_signed(std::uint64_t ppn)
{
    return static_cast<int>(ppn);
}
