#include <cstdint>

int
low_bits(std::uint64_t ppn)
{
    return static_cast<int>(ppn & 0x7f);  // masked below 32 bits first
}

std::int64_t
wide_signed(std::uint64_t count)
{
    return static_cast<std::int64_t>(count);  // not address-typed
}
