// Auditor that covers nothing: the stateful cache component from
// src/cache/victim.h is never mentioned here.
namespace moka {
void
run_audits()
{
}
}  // namespace moka
