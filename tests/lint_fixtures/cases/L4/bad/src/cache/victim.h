#pragma once
#include <cstdint>

class VictimBuffer {
 public:
    void insert(std::uint64_t tag);

 private:
    std::uint64_t last_tag_ = 0;  // stateful: needs audit coverage
};
