// LINT_AUDIT_EXEMPT: ScratchPad -- transient helper, no invariants.
namespace moka {
void
audit_victim_buffer()
{
    // VictimBuffer invariants checked here.
}
}  // namespace moka
