#pragma once
#include <cstdint>

class VictimBuffer {
 public:
    void insert(std::uint64_t tag);

 private:
    std::uint64_t last_tag_ = 0;  // covered: audit.cc names it
};

/** Pure interface: exempt without any registration. */
class ReplacementPolicy {
 public:
    virtual ~ReplacementPolicy() = default;
    virtual int pick_victim() = 0;
};

class ScratchPad {
 private:
    int tmp_ = 0;  // exempt via LINT_AUDIT_EXEMPT in audit.cc
};
