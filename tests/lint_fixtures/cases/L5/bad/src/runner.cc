void
run_one()
{
    try {
        // work
    } catch (...) {
        // swallowed: failure class is lost
    }
}
