void
run_one()
{
    try {
        // work
    } catch (...) {  // LINT_CATCH_OK: rethrown after cleanup below
        throw;
    }
}

void
run_two()
{
    try {
        // work
        // LINT_CATCH_OK: classified into JobErrorCode on the next line
    } catch (...) {
        // classify_current_exception();
    }
}
