#include <cstdio>
#include <iostream>

void
chatty(int pct)
{
    std::cout << "progress: " << pct << "\n";
    std::printf("done\n");
    std::fprintf(stderr, "note\n");
}
