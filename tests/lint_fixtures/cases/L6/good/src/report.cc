#include <cstdio>
#include <iostream>

void
report(int pct)
{
    std::cout << "final table\n";  // LINT_LOG_OK: the report surface
    // LINT_LOG_OK: usage error goes to the operator, not telemetry
    std::fprintf(stderr, "usage: report PCT\n");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", pct);  // not console output
    (void)buf;
}
