#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>

struct Row {
    int value;
};

std::unordered_map<std::string, Row> rows_;
std::map<Row *, int> by_ptr_;  // pointer key: address order

void
emit_csv()
{
    // Seeded violation: CSV row order follows libstdc++ hash order.
    for (const auto &kv : rows_) {
        std::cout << kv.first << "," << kv.second.value << "\n";
    }
}

unsigned
seed_from_clock()
{
    std::srand(static_cast<unsigned>(std::time(nullptr)));
    const auto t = std::chrono::steady_clock::now();
    return static_cast<unsigned>(t.time_since_epoch().count());
}
