#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

struct Row {
    int value;
};

std::unordered_map<std::string, Row> rows_;

void
emit_csv()
{
    // Sort into a vector before emitting: byte-identical across runs.
    std::vector<std::pair<std::string, int>> sorted_rows;
    sorted_rows.reserve(rows_.size());
    // LINT_ORDER_OK: collection into a vector that is sorted below.
    for (const auto &kv : rows_) {
        sorted_rows.emplace_back(kv.first, kv.second.value);
    }
    std::sort(sorted_rows.begin(), sorted_rows.end());
    for (const auto &row : sorted_rows) {
        std::cout << row.first << "," << row.second << "\n";
    }
}

long
trace_timestamp_us()
{
    // LINT_NONDET_OK: trace timestamps are wall-time by design and
    // never reach a result CSV.
    const auto t = std::chrono::steady_clock::now();
    return static_cast<long>(t.time_since_epoch().count());
}

int
total()
{
    int sum = 0;
    // LINT_ORDER_OK: commutative sum; order cannot affect the result.
    for (const auto &kv : rows_) {
        sum += kv.second.value;
    }
    return sum;
}
