#pragma once
#include <cstdint>

/** Seeded violations: `skips` is missing from operator- (epoch
 *  deltas carry stale values) and is never read by any report path;
 *  DropStats has no reset/delta path at all. */
struct ProbeStats {
    std::uint64_t hits = 0;
    std::uint64_t skips = 0;

    ProbeStats operator-(const ProbeStats &o) const
    {
        return {hits - o.hits};
    }
};

struct DropStats {
    std::uint64_t dropped = 0;
};
