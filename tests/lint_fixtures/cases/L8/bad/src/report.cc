#include <iostream>

#include "probe_stats.h"

void
report(const ProbeStats &s, const DropStats &d)
{
    std::cout << s.hits << "\n";      // hits is reported...
    std::cout << d.dropped << "\n";   // ...and dropped is reported,
    // but nothing ever reads skips, and DropStats has no reset path.
}
