#pragma once
#include <cstdint>

struct ProbeStats {
    std::uint64_t hits = 0;
    std::uint64_t skips = 0;
    // LINT_STATS_OK: scratch cursor for the sampler, not a counter.
    std::uint64_t scan_cursor = 0;

    ProbeStats operator-(const ProbeStats &o) const
    {
        return {hits - o.hits, skips - o.skips};
    }
};

struct DropStats {
    std::uint64_t dropped = 0;

    void reset() { dropped = 0; }
};
