#include <iostream>

#include "probe_stats.h"

void
report(const ProbeStats &s, const DropStats &d)
{
    std::cout << s.hits << "," << s.skips << "," << d.dropped << "\n";
}
