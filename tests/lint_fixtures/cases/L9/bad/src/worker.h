#pragma once
#include <mutex>

#include "common/thread_annotations.h"

class Worker {
 public:
    void bump()
    {
        std::lock_guard<std::mutex> lock(mu_);  // invisible to analysis
        ++count_;
    }

 private:
    std::mutex mu_;      // bare mutex: analysis cannot see it
    SimMutex lonely_;    // annotated type, but guards nothing
    int count_ = 0;
};
