#pragma once
#include "common/thread_annotations.h"

class Worker {
 public:
    void bump()
    {
        SimMutexLock lock(&mu_);
        ++count_;
    }

 private:
    mutable SimMutex mu_;
    int count_ SIM_GUARDED_BY(mu_) = 0;
};
