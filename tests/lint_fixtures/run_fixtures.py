#!/usr/bin/env python3
"""Fixture corpus runner for tools/simlint.

Every rule Lk has a pair of mini project trees under cases/Lk/:

  cases/Lk/bad/src/...   must produce >=1 Lk finding
  cases/Lk/good/src/...  must produce zero Lk findings

plus direct unit tests for the C++ lexer (raw strings, escaped
quotes, digit separators) and for `--fix`.  stdlib-only (unittest):
run as  python3 tests/lint_fixtures/run_fixtures.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO))

from tools.simlint import lint  # noqa: E402
from tools.simlint.api import _render_github, apply_fixes  # noqa: E402
from tools.simlint.cppparse import shift_sites  # noqa: E402
from tools.simlint.lexer import strip_code  # noqa: E402
from tools.simlint.registry import RULES  # noqa: E402

CASES = HERE / "cases"


class FixtureCorpus(unittest.TestCase):
    def case_dirs(self):
        dirs = sorted(p for p in CASES.iterdir() if p.is_dir())
        self.assertTrue(dirs, "no fixture cases found")
        return dirs

    def test_every_rule_has_fixtures(self):
        covered = {p.name for p in self.case_dirs()}
        self.assertEqual(covered, set(RULES), "each rule needs a cases/Lk dir")

    def test_fixture_trees_are_complete(self):
        # A cases/Lk dir with an empty (or missing) good/ or bad/
        # tree would vacuously pass the corpus tests; require at
        # least one source file on both sides of every rule.
        for rule_dir in self.case_dirs():
            for side in ("bad", "good"):
                with self.subTest(rule=rule_dir.name, side=side):
                    tree = rule_dir / side / "src"
                    files = (
                        sorted(tree.rglob("*.cc")) + sorted(tree.rglob("*.h"))
                        if tree.is_dir()
                        else []
                    )
                    self.assertTrue(
                        files,
                        f"{rule_dir.name}/{side}/src has no fixture sources",
                    )

    def test_bad_fixtures_flag(self):
        for rule_dir in self.case_dirs():
            rule = rule_dir.name
            with self.subTest(rule=rule):
                findings = lint(rule_dir / "bad", [rule])
                self.assertTrue(
                    findings, f"{rule}: bad fixture produced no findings"
                )
                self.assertTrue(
                    all(f.rule == rule for f in findings),
                    f"{rule}: stray rule ids in {findings}",
                )

    def test_good_fixtures_clean(self):
        for rule_dir in self.case_dirs():
            rule = rule_dir.name
            with self.subTest(rule=rule):
                findings = lint(rule_dir / "good", [rule])
                rendered = "\n".join(
                    f.render(rule_dir / "good") for f in findings
                )
                self.assertFalse(
                    findings, f"{rule}: good fixture flagged:\n{rendered}"
                )


class GithubFormat(unittest.TestCase):
    def test_findings_render_as_workflow_commands(self):
        root = CASES / "L1" / "bad"
        findings = lint(root, ["L1"])
        self.assertTrue(findings)
        for f in findings:
            cmd = _render_github(f, root)
            self.assertTrue(cmd.startswith("::error file="), cmd)
            self.assertIn(f",line={f.line},", cmd)
            self.assertIn("title=simlint L1::", cmd)
            # Workflow commands are single-line; payload newlines and
            # percents must arrive %-escaped.
            self.assertNotIn("\n", cmd)
            self.assertNotIn("\r", cmd)

    def test_payload_escaping(self):
        from tools.simlint.model import Finding

        f = Finding(
            rule="L1",
            path=Path("/tmp/x.cc"),
            line=3,
            message="100% broken\nsecond line",
        )
        cmd = _render_github(f, Path("/tmp"))
        self.assertIn("100%25 broken%0Asecond line", cmd)


class LexerRegression(unittest.TestCase):
    """The raw-string / escaped-quote bugs of the old line stripper."""

    def test_raw_string_contents_blanked(self):
        code = strip_code('f(R"(assert(x) // not code)");')
        self.assertNotIn("assert", code)
        self.assertNotIn("//", code)
        self.assertIn('R"(', code)  # literal markers survive

    def test_raw_string_with_embedded_quote(self):
        # The old stripper ended the literal at the embedded " and
        # exposed the tail as code.
        code = strip_code('x = R"(say " then assert(1))"; y = 2;')
        self.assertNotIn("assert", code)
        self.assertIn("y = 2;", code)

    def test_raw_string_custom_delimiter(self):
        code = strip_code('x = R"ab(inner )" quote assert(1))ab"; y();')
        self.assertNotIn("assert", code)
        self.assertIn("y();", code)

    def test_multiline_raw_string_keeps_line_count(self):
        raw = 'a = R"(one\ntwo assert(x)\nthree)";\nb();'
        code = strip_code(raw)
        self.assertEqual(code.count("\n"), raw.count("\n"))
        self.assertNotIn("assert", code)
        self.assertIn("b();", code)

    def test_escaped_quote_does_not_leak(self):
        code = strip_code('s = "a\\"b"; assert(x);')
        self.assertIn("assert(x);", code)  # code after the literal is kept
        self.assertNotIn("a", code.split(";")[0].replace("s = ", "").strip('" '))

    def test_digit_separator_is_not_char_literal(self):
        code = strip_code("n = 1'000'000; assert(n);")
        self.assertIn("assert(n);", code)
        self.assertIn("1'000'000", code)

    def test_char_literal_blanked(self):
        code = strip_code("c = ';'; next();")
        self.assertIn("next();", code)
        self.assertNotIn("';'", code.replace("' '", "''"))

    def test_encoding_prefixes(self):
        code = strip_code('s = u8"assert(x)"; t = L"assert(y)"; u();')
        self.assertNotIn("assert", code)
        self.assertIn("u();", code)

    def test_line_comment_continuation(self):
        code = strip_code("// comment continues \\\nassert(x)\nreal();")
        self.assertNotIn("assert", code)
        self.assertIn("real();", code)

    def test_block_comment_keeps_newlines(self):
        raw = "a();/* hide\nassert(x)\n*/b();"
        code = strip_code(raw)
        self.assertEqual(code.count("\n"), raw.count("\n"))
        self.assertNotIn("assert", code)
        self.assertIn("b();", code)


class ShiftDisambiguation(unittest.TestCase):
    """`<<`/`>>` as shift vs stream op vs template closer (L17)."""

    def ops(self, line):
        return [(op, rhs.strip()) for _, op, rhs in shift_sites(line)]

    def test_plain_shifts_are_sites(self):
        self.assertEqual(
            self.ops("vpn = vaddr >> 12;"), [(">>", "12;")]
        )
        self.assertEqual(
            self.ops("base = vpn << kPageBits;"), [("<<", "kPageBits;")]
        )

    def test_compound_shift_assign_is_a_site(self):
        self.assertEqual(self.ops("vaddr >>= 12;"), [(">>", "12;")])

    def test_std_stream_insertion_is_not_a_shift(self):
        self.assertEqual(self.ops("std::cout << 12;"), [])
        self.assertEqual(self.ops("std::cerr << 21 << x;"), [])

    def test_local_stream_names_are_not_shifts(self):
        self.assertEqual(self.ops("os << 12;"), [])
        self.assertEqual(self.ops("oss << 21;"), [])
        self.assertEqual(self.ops("my_stream << 12;"), [])

    def test_literal_adjacent_operators_are_stream_chains(self):
        # strip_code keeps the quotes, so the rhs/lhs checks see them.
        line = strip_code('out << "vpn " << 12 << " of " << vaddr;')
        got = [op for _, op, _ in shift_sites(line)]
        self.assertEqual(got, [])

    def test_template_closer_is_not_a_shift(self):
        self.assertEqual(
            self.ops("std::vector<std::pair<int, std::vector<int>>> x;"),
            [],
        )

    def test_shift_after_stream_chain_still_found(self):
        # A genuine shift whose lhs is a parenthesized expression.
        self.assertEqual(
            self.ops("x = (vaddr + off) >> kLargePageBits;"),
            [(">>", "kLargePageBits;")],
        )


class FixMode(unittest.TestCase):
    def test_l1_fix_rewrites_cassert_include(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            shutil.copytree(CASES / "L1" / "bad", root)
            findings = lint(root, ["L1"])
            self.assertTrue(any(f.replacement for f in findings))
            fixed = apply_fixes(findings)
            self.assertGreaterEqual(fixed, 1)
            after = lint(root, ["L1"])
            self.assertNotIn(
                "<cassert>",
                "\n".join(f.message for f in after),
                "--fix left a <cassert> include behind",
            )

    def test_fix_is_idempotent(self):
        # Fixing an already-fixed tree must be a no-op: a fixer whose
        # replacement still matches its own trigger would rewrite the
        # same lines forever (and ping-pong in CI).
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            shutil.copytree(CASES / "L1" / "bad", root)
            apply_fixes(lint(root, ["L1"]))
            snapshot = {
                p: p.read_text() for p in sorted(root.rglob("*.cc"))
            }
            second = [f for f in lint(root, ["L1"]) if f.replacement]
            self.assertFalse(
                second,
                "second --fix pass still proposes replacements: "
                + "\n".join(f.render(root) for f in second),
            )
            apply_fixes(lint(root, ["L1"]))
            for p, before in snapshot.items():
                self.assertEqual(
                    before, p.read_text(), f"{p} changed on second fix pass"
                )


if __name__ == "__main__":
    unittest.main(verbosity=2)
