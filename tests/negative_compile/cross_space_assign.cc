// Must FAIL: a virtual address never becomes physical by assignment;
// only the TLB/page-table seam may re-tag.

#include "common/types.h"

namespace moka {

PhysAddr
violation(VirtAddr vaddr)
{
    PhysAddr paddr = vaddr;  // error: different tags
    return paddr;
}

}  // namespace moka
