// Must FAIL: comparing a VA against a PA is the exact bug class the
// types exist to kill (aliasing checks must pick one space first).

#include "common/types.h"

namespace moka {

bool
violation(VirtAddr vaddr, PhysAddr paddr)
{
    return vaddr == paddr;  // error: no mixed-tag operator==
}

}  // namespace moka
