// Must FAIL: a byte distance between a VA and a PA is meaningless.

#include "common/types.h"

namespace moka {

std::int64_t
violation(VirtAddr vaddr, PhysAddr paddr)
{
    return vaddr - paddr;  // error: operands live in different spaces
}

}  // namespace moka
