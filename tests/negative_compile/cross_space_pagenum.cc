// Must FAIL: a VPN is not a PPN; table keys stay in one space.

#include "common/types.h"

namespace moka {

bool
violation(VirtAddr vaddr, PhysAddr paddr)
{
    return page_number(vaddr) == page_number(paddr);  // error: mixed tags
}

}  // namespace moka
