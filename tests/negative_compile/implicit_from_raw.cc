// Must FAIL: entering an address space is always explicit.

#include "common/types.h"

namespace moka {

VirtAddr
violation(Addr bits)
{
    VirtAddr vaddr = bits;  // error: ctor is explicit
    return vaddr;
}

}  // namespace moka
