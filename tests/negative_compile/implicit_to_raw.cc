// Must FAIL: leaving a space goes through .raw() (policed by L18),
// never through an implicit conversion.

#include "common/types.h"

namespace moka {

Addr
violation(PhysAddr paddr)
{
    return paddr;  // error: no conversion to Addr
}

}  // namespace moka
