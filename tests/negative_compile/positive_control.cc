// Must COMPILE. Exercises the same headers and flags as the negative
// cases so a harness misconfiguration (bad include path, missing
// C++20) shows up as this control failing, not as every negative
// case spuriously "passing".

#include "common/types.h"
#include "filter/update_buffer.h"
#include "vmem/tlb.h"

namespace moka {

Addr
control(VirtAddr vaddr, PhysAddr paddr, Tlb &tlb, Cycle now)
{
    tlb.fill(vaddr, page_addr(paddr), false, false);
    tlb.lookup(vaddr, now, true);
    VirtPageNum vpn = page_number(vaddr);
    PhysDecisionRecord rec =
        rekey_to_physical(VirtDecisionRecord{}, block_addr(paddr));
    return vpn.raw() + page_offset(vaddr) + block_number(rec.block);
}

}  // namespace moka
