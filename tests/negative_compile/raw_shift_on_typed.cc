// Must FAIL: no raw shift/mask geometry on a typed address — use the
// typed helpers (page_number, page_offset, ...) instead.

#include "common/types.h"

namespace moka {

Addr
violation(VirtAddr vaddr)
{
    return vaddr >> kPageBits;  // error: no operator>> on StrongAddr
}

}  // namespace moka
