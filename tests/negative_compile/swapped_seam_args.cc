// Must FAIL: the classic argument swap at a translation seam.
// Tlb::fill takes (VirtAddr tag, PhysAddr frame); passing them in
// the other order must not silently fill the TLB with garbage.

#include "common/types.h"
#include "vmem/tlb.h"

namespace moka {

void
violation(Tlb &tlb, VirtAddr vaddr, PhysAddr page_base)
{
    tlb.fill(page_base, vaddr, false, false);  // error: swapped spaces
}

}  // namespace moka
