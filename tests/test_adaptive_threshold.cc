/** @file Unit tests for the adaptive thresholding scheme. */
#include <gtest/gtest.h>

#include "filter/adaptive_threshold.h"

namespace moka {
namespace {

ThresholdConfig
adaptive_cfg()
{
    ThresholdConfig cfg;
    cfg.adaptive = true;
    return cfg;
}

TEST(AdaptiveThreshold, StaticModeNeverMoves)
{
    ThresholdConfig cfg;
    cfg.adaptive = false;
    cfg.t_static = 5;
    AdaptiveThreshold at(cfg);
    EXPECT_EQ(at.threshold(), 5);
    SystemSnapshot snap;
    snap.rob_occupancy = 1.0;
    snap.inflight_l1d_misses = 100;
    at.on_interval(snap);
    EpochInfo info;
    info.accuracy_valid = true;
    info.pgc_accuracy = 0.01;
    at.on_epoch(info);
    EXPECT_EQ(at.threshold(), 5);
    EXPECT_FALSE(at.pgc_disabled());
}

TEST(AdaptiveThreshold, StartsAggressive)
{
    AdaptiveThreshold at(adaptive_cfg());
    EXPECT_EQ(at.threshold(), adaptive_cfg().t_low);
}

TEST(AdaptiveThreshold, RobPressureForcesHigh)
{
    AdaptiveThreshold at(adaptive_cfg());
    SystemSnapshot snap;
    snap.rob_occupancy = 0.95;
    snap.inflight_l1d_misses = 20;
    at.on_interval(snap);
    EXPECT_EQ(at.threshold(), adaptive_cfg().t_high);
}

TEST(AdaptiveThreshold, LowAccuracyForcesHighIntraEpoch)
{
    AdaptiveThreshold at(adaptive_cfg());
    SystemSnapshot snap;
    snap.pgc_accuracy_valid = true;
    snap.pgc_accuracy = 0.1;
    at.on_interval(snap);
    EXPECT_EQ(at.threshold(), adaptive_cfg().t_high);
}

TEST(AdaptiveThreshold, L1iPressureForcesAtLeastMid)
{
    AdaptiveThreshold at(adaptive_cfg());
    SystemSnapshot snap;
    snap.l1i_mpki = 50.0;
    at.on_interval(snap);
    EXPECT_GE(at.threshold(), adaptive_cfg().t_mid);
}

TEST(AdaptiveThreshold, ExtremeLlcPressureDisablesPgc)
{
    AdaptiveThreshold at(adaptive_cfg());
    SystemSnapshot snap;
    snap.llc_miss_rate = 0.99;
    snap.llc_mpki = 500.0;
    at.on_interval(snap);
    EXPECT_TRUE(at.pgc_disabled());
    // Pressure subsides: re-enabled.
    snap.llc_mpki = 1.0;
    snap.llc_miss_rate = 0.1;
    at.on_interval(snap);
    EXPECT_FALSE(at.pgc_disabled());
}

TEST(AdaptiveThreshold, EpochAccuracyClamps)
{
    const ThresholdConfig cfg = adaptive_cfg();
    AdaptiveThreshold at(cfg);
    EpochInfo info;
    info.accuracy_valid = true;
    info.pgc_accuracy = (cfg.acc_low + cfg.acc_mid) / 2.0;
    at.on_epoch(info);
    EXPECT_GE(at.threshold(), cfg.t_mid);

    AdaptiveThreshold at2(cfg);
    info.pgc_accuracy = cfg.acc_low / 2.0;
    at2.on_epoch(info);
    EXPECT_GE(at2.threshold(), cfg.t_high);
}

TEST(AdaptiveThreshold, AccuracyTrendNudges)
{
    const ThresholdConfig cfg = adaptive_cfg();
    AdaptiveThreshold at(cfg);
    EpochInfo info;
    info.accuracy_valid = true;
    info.pgc_accuracy = 0.7;
    info.ipc = 1.0;
    at.on_epoch(info);
    const int before = at.threshold();
    // Accuracy improves: threshold relaxes (one step down).
    info.pgc_accuracy = 0.9;
    at.on_epoch(info);
    EXPECT_EQ(at.threshold(), std::max(before - 1, cfg.t_min));
}

TEST(AdaptiveThreshold, IpcDropForcesAtLeastMid)
{
    const ThresholdConfig cfg = adaptive_cfg();
    AdaptiveThreshold at(cfg);
    EpochInfo info;
    info.ipc = 2.0;
    at.on_epoch(info);
    info.ipc = 1.0;  // drop
    at.on_epoch(info);
    EXPECT_GE(at.threshold(), cfg.t_mid);
}

TEST(AdaptiveThreshold, ClampedToRange)
{
    const ThresholdConfig cfg = adaptive_cfg();
    AdaptiveThreshold at(cfg);
    EpochInfo info;
    info.accuracy_valid = true;
    info.ipc = 1.0;
    // Alternate accuracy drops for many epochs: T_a must stay <= t_max.
    double acc = 0.99;
    for (int i = 0; i < 50; ++i) {
        info.pgc_accuracy = acc;
        acc -= 0.01;
        at.on_epoch(info);
        EXPECT_LE(at.threshold(), cfg.t_max);
        EXPECT_GE(at.threshold(), cfg.t_min);
    }
}

}  // namespace
}  // namespace moka
