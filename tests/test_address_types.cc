// Positive half of the address-space type-safety contract: the
// strong wrappers behave exactly like the raw scalars they replace
// (same geometry results, same layout) while staying confined to one
// space.  The negative half — that *mixing* spaces fails to build —
// lives in tests/negative_compile/ as compile-failure ctest entries.

#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "filter/update_buffer.h"

namespace moka {
namespace {

// Layout guarantees: a vector<VirtAddr> and a snapshot of one must
// cost exactly what the raw integer costs.
static_assert(sizeof(VirtAddr) == sizeof(Addr));
static_assert(sizeof(PhysAddr) == sizeof(Addr));
static_assert(sizeof(VirtPageNum) == sizeof(Addr));
static_assert(sizeof(PhysPageNum) == sizeof(Addr));
static_assert(std::is_trivially_copyable_v<VirtAddr>);
static_assert(std::is_trivially_copyable_v<PhysPageNum>);

// Entering a space is explicit only; no raw integer sneaks in.
static_assert(!std::is_convertible_v<Addr, VirtAddr>);
static_assert(!std::is_convertible_v<Addr, PhysAddr>);
static_assert(!std::is_convertible_v<VirtAddr, Addr>);
static_assert(!std::is_convertible_v<Addr, VirtPageNum>);

// No bridge between the spaces outside the translation seams.
static_assert(!std::is_convertible_v<VirtAddr, PhysAddr>);
static_assert(!std::is_convertible_v<PhysAddr, VirtAddr>);
static_assert(!std::is_convertible_v<VirtPageNum, PhysPageNum>);

// The whole API is constexpr: geometry folds at compile time.
static_assert(page_index(VirtAddr{0x1234'5678}) == 0x12345);
static_assert(page_offset(VirtAddr{0x1234'5678}) == 0x678);
static_assert(crosses_page(VirtAddr{0xFFF}, VirtAddr{0x1000}));
static_assert(!crosses_page(PhysAddr{0x2000}, PhysAddr{0x2FFF}));

TEST(AddressTypes, ExplicitConstructionAndRaw)
{
    constexpr Addr bits = 0xDEAD'BEEF'1234ull;
    VirtAddr v{bits};
    PhysAddr p{bits};
    EXPECT_EQ(v.raw(), bits);
    EXPECT_EQ(p.raw(), bits);
    EXPECT_EQ(VirtAddr{}.raw(), 0u);
}

TEST(AddressTypes, SameSpaceComparisonAndOrdering)
{
    VirtAddr lo{0x1000};
    VirtAddr hi{0x2000};
    EXPECT_EQ(lo, VirtAddr{0x1000});
    EXPECT_NE(lo, hi);
    EXPECT_LT(lo, hi);
    EXPECT_GE(hi, lo);
}

TEST(AddressTypes, ByteOffsetArithmeticStaysInSpace)
{
    VirtAddr v{0x1000};
    EXPECT_EQ(v + 64, VirtAddr{0x1040});
    EXPECT_EQ(v + (-16), VirtAddr{0xFF0});
    EXPECT_EQ(v - 0x100, VirtAddr{0xF00});
    v += kBlockSize;
    EXPECT_EQ(v, VirtAddr{0x1040});

    // Same-space subtraction is the signed byte distance.
    EXPECT_EQ(VirtAddr{0x2000} - VirtAddr{0x1F80}, 0x80);
    EXPECT_EQ(VirtAddr{0x1F80} - VirtAddr{0x2000}, -0x80);
}

TEST(AddressTypes, PageNumArithmetic)
{
    PhysPageNum ppn{100};
    EXPECT_EQ(ppn + 3, PhysPageNum{103});
    EXPECT_EQ(ppn + (-1), PhysPageNum{99});
}

// Every typed geometry helper must agree bit-for-bit with the raw
// helper it shadows — the refactor moved call sites, not math.
TEST(AddressTypes, TypedGeometryMatchesRawGeometry)
{
    const Addr samples[] = {0x0,
                            0x7FF,
                            0x1000,
                            0x1FFFFF,
                            0x200000,
                            0x7FFF'FFFF'F123,
                            0xFFFF'FFFF'FFFF'FFFFull};
    for (Addr a : samples) {
        VirtAddr v{a};
        EXPECT_EQ(block_addr(v), VirtAddr{block_addr(a)});
        EXPECT_EQ(block_number(v), block_number(a));
        EXPECT_EQ(page_number(v), VirtPageNum{page_number(a)});
        EXPECT_EQ(page_index(v), page_number(a));
        EXPECT_EQ(page_addr(v), VirtAddr{page_addr(a)});
        EXPECT_EQ(large_page_number(v), VirtPageNum{large_page_number(a)});
        EXPECT_EQ(large_page_index(v), large_page_number(a));
        EXPECT_EQ(page_offset(v), page_offset(a));
        EXPECT_EQ(large_page_offset(v), large_page_offset(a));
        EXPECT_EQ(line_in_page(v), line_in_page(a));
    }
}

TEST(AddressTypes, PageBaseAddrRoundTrip)
{
    VirtAddr v{0xABCD'E123};
    EXPECT_EQ(page_base_addr(page_number(v)), page_addr(v));
    EXPECT_EQ(page_number(page_base_addr(VirtPageNum{0x42})),
              VirtPageNum{0x42});
}

TEST(AddressTypes, CrossesPagePredicates)
{
    // Last block of a 4KB page vs the first of the next.
    VirtAddr last{0x1FC0};
    VirtAddr next{0x2000};
    EXPECT_TRUE(crosses_page(last, next));
    EXPECT_FALSE(crosses_page(last, last + 8));

    // 2MB boundary: crossing a 4KB page is not crossing a large one.
    PhysAddr a{0x1F'F000};
    PhysAddr b{0x20'0000};
    EXPECT_TRUE(crosses_page(a, b));
    EXPECT_TRUE(crosses_large_page(a, b));
    EXPECT_TRUE(crosses_page(PhysAddr{0xFFF}, PhysAddr{0x1000}));
    EXPECT_FALSE(crosses_large_page(PhysAddr{0xFFF}, PhysAddr{0x1000}));
}

// The VA->PA seam of the update buffers: the learned payload carries
// over unchanged, only the key changes space.
TEST(AddressTypes, RekeyToPhysicalPreservesPayload)
{
    VirtDecisionRecord v;
    v.block = VirtAddr{0x7F00'1040};
    v.num_features = 3;
    v.indexes = {11, 22, 33, 0, 0, 0, 0, 0};
    v.system_mask = 0b101;

    PhysDecisionRecord p = rekey_to_physical(v, PhysAddr{0x1234'5040});
    EXPECT_EQ(p.block, PhysAddr{0x1234'5040});
    EXPECT_EQ(p.num_features, v.num_features);
    EXPECT_EQ(p.indexes, v.indexes);
    EXPECT_EQ(p.system_mask, v.system_mask);
}

// Default-constructed wrappers are zero-initialised, so containers
// of them start in a defined state (snapshot determinism relies on
// this).
TEST(AddressTypes, DefaultStateIsZero)
{
    std::vector<PhysAddr> frames(4);
    for (PhysAddr f : frames) {
        EXPECT_EQ(f, PhysAddr{0});
    }
    EXPECT_EQ(VirtPageNum{}.raw(), 0u);
}

}  // namespace
}  // namespace moka
