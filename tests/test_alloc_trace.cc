/** @file Allocation-trace interposer tests (hot-path rule L10).
 *
 * The first tests exercise the interposer itself with a fake hot
 * scope; the steady-state test is the enforcement end of the
 * hot-path contract: a warmed-up measured region must perform zero
 * heap allocations.  Every test skips in builds without
 * -DMOKASIM_ALLOC_TRACE=ON, where the interposer compiles away.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/alloc_trace.h"
#include "filter/policies.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {
namespace {

WorkloadSpec
pick(Family family)
{
    for (const WorkloadSpec &s : seen_workloads()) {
        if (s.family == family) {
            return s;
        }
    }
    ADD_FAILURE() << "family missing from roster";
    return seen_workloads().front();
}

TEST(AllocTrace, DisabledBuildReportsDisabled)
{
    if (alloc_trace::enabled()) {
        GTEST_SKIP() << "interposer active";
    }
    EXPECT_EQ(alloc_trace::total(), 0u);
    alloc_trace::arm("noop");
    auto p = std::make_unique<int>(7);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(alloc_trace::disarm(), 0u);
}

TEST(AllocTrace, FakeHotScopeTripsCounter)
{
    if (!alloc_trace::enabled()) {
        GTEST_SKIP() << "build without MOKASIM_ALLOC_TRACE";
    }
    const std::uint64_t before = alloc_trace::total();
    alloc_trace::arm("fake-hot-scope");
    EXPECT_STREQ(alloc_trace::window_label(), "fake-hot-scope");
    {
        // A "hot" loop that violates L10: per-iteration heap growth.
        std::vector<std::uint64_t> grower;
        for (std::uint64_t i = 0; i < 64; ++i) {
            grower.push_back(i);
        }
    }
    const std::uint64_t in_window = alloc_trace::disarm();
    EXPECT_GE(in_window, 1u);
    EXPECT_GT(alloc_trace::total(), before);
}

TEST(AllocTrace, QuietWindowCountsZero)
{
    if (!alloc_trace::enabled()) {
        GTEST_SKIP() << "build without MOKASIM_ALLOC_TRACE";
    }
    std::uint64_t in_window = 0;
    {
        alloc_trace::Window window("quiet", &in_window);
        std::uint64_t acc = 1;
        for (int i = 0; i < 1024; ++i) {
            acc = acc * 2862933555777941757ull + 3037000493ull;
        }
        // Keep the loop observable without allocating.
        EXPECT_NE(acc, 0u);
    }
    EXPECT_EQ(in_window, 0u);
}

TEST(AllocTrace, RearmResetsWindow)
{
    if (!alloc_trace::enabled()) {
        GTEST_SKIP() << "build without MOKASIM_ALLOC_TRACE";
    }
    alloc_trace::arm("first");
    auto p = std::make_unique<int>(1);
    EXPECT_NE(p, nullptr);
    alloc_trace::arm("second");
    EXPECT_EQ(alloc_trace::disarm(), 0u);
}

/**
 * The contract itself: after warmup has populated every pool, table
 * and reserve()d container, a fig19-class measured region must not
 * touch the heap at all.  One dripper (the paper's scheme) and one
 * baseline config, on a streaming and an irregular workload.
 */
TEST(AllocTrace, SteadyStateMeasuredRegionIsAllocationFree)
{
    if (!alloc_trace::enabled()) {
        GTEST_SKIP() << "build without MOKASIM_ALLOC_TRACE";
    }
    struct CasePoint
    {
        const char *name;
        MachineConfig cfg;
        Family family;
    };
    const CasePoint cases[] = {
        {"berti+dripper/stream",
         make_config(L1dPrefetcherKind::kBerti,
                     scheme_dripper(L1dPrefetcherKind::kBerti)),
         Family::kStream},
        {"berti+permit/csr",
         make_config(L1dPrefetcherKind::kBerti, scheme_permit()),
         Family::kCsr},
    };
    for (const CasePoint &c : cases) {
        SCOPED_TRACE(c.name);
        std::vector<WorkloadPtr> w;
        w.push_back(make_workload(pick(c.family)));
        Machine machine(c.cfg, std::move(w));
        machine.run(/*insts=*/200'000, /*hook=*/nullptr);
        machine.start_measurement();
        alloc_trace::arm(c.name);
        machine.run(/*insts=*/200'000, /*hook=*/nullptr);
        const std::uint64_t in_measure = alloc_trace::disarm();
        EXPECT_EQ(in_measure, 0u)
            << in_measure << " heap allocations in the measured "
            << "region of " << c.name
            << "; rule L10 requires steady-state code to live off "
            << "warmup-time reservations";
    }
}

}  // namespace
}  // namespace moka
