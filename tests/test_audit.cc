/**
 * @file
 * Tests for the invariant auditors (src/audit/): healthy structures
 * must audit silent, and each class of injected corruption — PCB bits
 * desynchronized from the pUB, perceptron weights pushed past their
 * rails, TLB entries desynchronized from the page table, and more —
 * must produce a finding. Corruption is injected through the
 * AuditAccess test window, never through public APIs, because the
 * public APIs are exactly what keeps these invariants true.
 */
#include <gtest/gtest.h>

#include "audit/access.h"
#include "audit/audit.h"
#include "filter/moka.h"
#include "filter/policies.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {
namespace {

VirtDecisionRecord
make_rec(Addr block_index)
{
    VirtDecisionRecord r;
    r.block = VirtAddr{block_index * kBlockSize};
    r.num_features = 1;
    r.indexes[0] = 0;
    return r;
}

MokaConfig
permissive_config()
{
    MokaConfig cfg;
    cfg.name = "test";
    cfg.program_features = {ProgramFeatureId::kDelta};
    cfg.system_features = {
        default_system_feature(SystemFeatureId::kStlbMpki)};
    cfg.threshold.adaptive = false;
    cfg.threshold.t_static = -4;  // cold weights (0) already permit
    return cfg;
}

// ---------------------------------------------------------------------------
// Failure handler plumbing
// ---------------------------------------------------------------------------

TEST(AuditReport, ForwardingRoutesToGlobalFailureCounter)
{
    const bool was_fatal = audit::fatal();
    audit::set_fatal(false);
    audit::reset_failures();

    AuditReport silent(/*forward=*/false);
    silent.fail("test", "not forwarded");
    EXPECT_EQ(audit::failure_count(), 0u);

    AuditReport forwarding(/*forward=*/true);
    forwarding.fail("test", "forwarded");
    EXPECT_EQ(audit::failure_count(), 1u);
    EXPECT_FALSE(forwarding.ok());
    EXPECT_NE(forwarding.to_string().find("forwarded"),
              std::string::npos);

    audit::reset_failures();
    audit::set_fatal(was_fatal);
}

TEST(AuditDeath, RequireViolationAborts)
{
    EXPECT_DEATH({ VirtUpdateBuffer buffer(0); },
                 "UpdateBuffer capacity must be positive");
}

// ---------------------------------------------------------------------------
// Update buffers
// ---------------------------------------------------------------------------

TEST(AuditUpdateBuffer, CleanBufferIsSilent)
{
    VirtUpdateBuffer buffer(4);
    buffer.insert(make_rec(1));
    buffer.insert(make_rec(2));
    VirtDecisionRecord out;
    ASSERT_TRUE(buffer.take(make_rec(1).block, out));

    AuditReport report;
    audit::audit_update_buffer(buffer, "ub", report);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditUpdateBuffer, DetectsPhantomFifoSlot)
{
    VirtUpdateBuffer buffer(4);
    buffer.insert(make_rec(1));
    AuditAccess::corrupt_ub_phantom_fifo_slot(buffer,
                                              VirtAddr{0x9999 * kBlockSize});

    AuditReport report;
    audit::audit_update_buffer(buffer, "ub", report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditUpdateBuffer, DetectsIllegalFeatureCount)
{
    VirtUpdateBuffer buffer(4);
    buffer.insert(make_rec(1));
    ASSERT_TRUE(AuditAccess::corrupt_ub_feature_count(buffer));

    AuditReport report;
    audit::audit_update_buffer(buffer, "ub", report);
    EXPECT_FALSE(report.ok());
}

/**
 * Regression: a record taken and later re-inserted must not be the
 * overflow victim in place of the true oldest record. The stale FIFO
 * slot left by take() carries the old sequence number, so eviction
 * must skip it rather than kill the re-inserted (younger) record.
 */
TEST(AuditUpdateBuffer, OverflowEvictsOldestLiveNotReinsertedRecord)
{
    VirtUpdateBuffer buffer(4);
    buffer.insert(make_rec(1));  // A, oldest slot
    VirtDecisionRecord out;
    ASSERT_TRUE(buffer.take(make_rec(1).block, out));  // stale A slot
    buffer.insert(make_rec(2));
    buffer.insert(make_rec(3));
    buffer.insert(make_rec(4));
    buffer.insert(make_rec(1));  // re-insert A; buffer full: 2,3,4,A
    ASSERT_EQ(buffer.size(), 4u);

    buffer.insert(make_rec(5));  // overflow: must evict 2, not A

    EXPECT_EQ(buffer.overflow_evictions(), 1u);
    EXPECT_FALSE(buffer.take(make_rec(2).block, out)) << "oldest "
        "live record should have been the overflow victim";
    EXPECT_TRUE(buffer.take(make_rec(1).block, out)) << "re-inserted "
        "record was evicted through its stale FIFO slot";

    AuditReport report;
    audit::audit_update_buffer(buffer, "ub", report);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

/** The FIFO must not grow without bound under insert/take churn. */
TEST(AuditUpdateBuffer, FifoStaysBoundedUnderChurn)
{
    VirtUpdateBuffer buffer(8);
    VirtDecisionRecord out;
    for (Addr i = 0; i < 10'000; ++i) {
        buffer.insert(make_rec(i));
        ASSERT_TRUE(buffer.take(make_rec(i).block, out));
    }
    EXPECT_LE(AuditAccess::ub_fifo_size(buffer), 2 * buffer.capacity());

    AuditReport report;
    audit::audit_update_buffer(buffer, "ub", report);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Perceptron weights / thresholds
// ---------------------------------------------------------------------------

TEST(AuditWeightTable, DetectsWeightPastSaturationRails)
{
    WeightTable table(16, 5);
    for (int i = 0; i < 40; ++i) {
        table.increment(3);  // saturates at +15
    }
    AuditReport clean;
    audit::audit_weight_table(table, "wt", clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    AuditAccess::corrupt_weight(table, 3, 99);
    AuditReport report;
    audit::audit_weight_table(table, "wt", report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditThreshold, DetectsEscapedAdaptiveThreshold)
{
    ThresholdConfig cfg;  // adaptive, clamp [-8, 14]
    AdaptiveThreshold threshold(cfg);
    AuditReport clean;
    audit::audit_threshold(threshold, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    AuditAccess::corrupt_threshold(threshold, 99);
    AuditReport report;
    audit::audit_threshold(threshold, report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditThreshold, DetectsDriftedStaticThreshold)
{
    ThresholdConfig cfg;
    cfg.adaptive = false;
    cfg.t_static = 2;
    AdaptiveThreshold threshold(cfg);

    AuditAccess::corrupt_threshold(threshold, 3);
    AuditReport report;
    audit::audit_threshold(threshold, report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditFilter, DetectsCorruptWeightThroughFullFilterAudit)
{
    MokaFilter filter(permissive_config());
    AuditReport clean;
    audit::audit_filter(filter, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    AuditAccess::corrupt_filter_weight(filter, 0, 0, -100);
    AuditReport report;
    audit::audit_filter(filter, report);
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// TLB vs page table
// ---------------------------------------------------------------------------

TEST(AuditTlb, DetectsTranslationDesyncFromPageTable)
{
    VmemConfig vmem;
    vmem.phys_bytes = Addr{1} << 30;
    PageTable table(vmem);
    Tlb tlb(TlbConfig{"dTLB", 16, 4, 1, 4, 1});

    const Addr va = 0x1234'5678'9000;
    const Translation tr = table.translate(VirtAddr{va});
    tlb.fill(VirtAddr{va}, page_addr(tr.paddr), false, false);

    AuditReport clean;
    audit::audit_tlb(tlb, table, clean);
    audit::audit_page_table(table, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    ASSERT_TRUE(AuditAccess::corrupt_tlb_page_base(tlb, kPageSize));
    AuditReport report;
    audit::audit_tlb(tlb, table, report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditTlb, DetectsEntryForUnmappedPage)
{
    VmemConfig vmem;
    vmem.phys_bytes = Addr{1} << 30;
    PageTable table(vmem);
    Tlb tlb(TlbConfig{"dTLB", 16, 4, 1, 4, 1});

    // Install a translation the page table never produced.
    tlb.fill(VirtAddr{0x4000'0000}, PhysAddr{0x1000}, false, false);

    AuditReport report;
    audit::audit_tlb(tlb, table, report);
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Walker PSCs
// ---------------------------------------------------------------------------

TEST(AuditWalker, DetectsDuplicatePscEntry)
{
    VmemConfig vmem;
    vmem.phys_bytes = Addr{1} << 30;
    PageTable table(vmem);
    Cache memory(CacheConfig{"L2C", 64, 8, 10, 32, false}, nullptr);
    PageWalker walker(WalkerConfig{}, &table, &memory);
    walker.walk(VirtAddr{0x7000'1000}, 0, /*speculative=*/false);

    AuditReport clean;
    audit::audit_walker(walker, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    AuditAccess::corrupt_psc_duplicate(walker);
    AuditReport report;
    audit::audit_walker(walker, report);
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Cache structure
// ---------------------------------------------------------------------------

TEST(AuditCache, DetectsDuplicateTagInSet)
{
    Cache cache(CacheConfig{"L1D", 16, 4, 4, 8, true}, nullptr);
    cache.access(PhysAddr{0x1000}, AccessType::kLoad, 0);
    cache.access(PhysAddr{0x2000}, AccessType::kLoad, 0);

    AuditReport clean;
    audit::audit_cache(cache, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    AuditAccess::corrupt_cache_duplicate_tag(cache, 0);
    AuditReport report;
    audit::audit_cache(cache, report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditCache, DetectsPcbOnNonPrefetchedBlock)
{
    Cache cache(CacheConfig{"L1D", 16, 4, 4, 8, true}, nullptr);
    cache.access(PhysAddr{0x1000}, AccessType::kLoad, 0);

    std::uint32_t set = 0;
    std::uint32_t way = 0;
    ASSERT_TRUE(AuditAccess::find_valid_block(cache, set, way));
    AuditAccess::corrupt_cache_pcb(cache, set, way, true);

    AuditReport report;
    audit::audit_cache(cache, report);
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// The PCB <-> pUB cross-structure invariant
// ---------------------------------------------------------------------------

TEST(AuditPcbPub, DetectsPcbFlippedUnderLivePubRecord)
{
    MokaFilter filter(permissive_config());
    Cache l1d(CacheConfig{"L1D", 16, 4, 4, 8, true}, nullptr);
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;  // deactivate the system feature

    const Addr target = 0x200000 + 5 * kBlockSize;
    ASSERT_TRUE(filter.permit(0x400100, VirtAddr{0x1ff000}, 5,
                              VirtAddr{target}, snap));
    l1d.access(PhysAddr{target}, AccessType::kPrefetch, 0,
               /*pgc_prefetch=*/true);
    filter.on_pgc_issued(VirtAddr{target}, PhysAddr{target});

    AuditReport clean;
    audit::audit_pcb_pub(l1d, filter, clean);
    EXPECT_TRUE(clean.ok()) << clean.to_string();

    // Corruption: clear the PCB while the pUB still holds the record.
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    ASSERT_TRUE(AuditAccess::find_valid_block(l1d, set, way));
    AuditAccess::corrupt_cache_pcb(l1d, set, way, false);

    AuditReport report;
    audit::audit_pcb_pub(l1d, filter, report);
    EXPECT_FALSE(report.ok());
}

TEST(AuditPcbPub, DetectsOrphanPubRecord)
{
    MokaFilter filter(permissive_config());
    Cache l1d(CacheConfig{"L1D", 16, 4, 4, 8, true}, nullptr);
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;

    // Insert a pUB record without ever filling the L1D block.
    const Addr target = 0x200000 + 7 * kBlockSize;
    ASSERT_TRUE(filter.permit(0x400100, VirtAddr{0x1ff000}, 7,
                              VirtAddr{target}, snap));
    filter.on_pgc_issued(VirtAddr{target}, PhysAddr{target});

    AuditReport report;
    audit::audit_pcb_pub(l1d, filter, report);
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Whole machine
// ---------------------------------------------------------------------------

WorkloadSpec
pick(Family family)
{
    for (const WorkloadSpec &s : seen_workloads()) {
        if (s.family == family) {
            return s;
        }
    }
    ADD_FAILURE() << "family missing from roster";
    return seen_workloads().front();
}

TEST(AuditMachine, CleanRunWithDripperIsAuditSilent)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti,
                    scheme_dripper(L1dPrefetcherKind::kBerti));
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(pick(Family::kStream)));
    Machine machine(cfg, std::move(w));
    machine.run(60'000);

    AuditReport report;
    machine.audit(report);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditMachine, DetectsCorruptionInjectedIntoRunningMachine)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti,
                    scheme_dripper(L1dPrefetcherKind::kBerti));
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(pick(Family::kStream)));
    Machine machine(cfg, std::move(w));
    machine.run(60'000);

    // Shift one dTLB translation by a page: metadata drift no
    // functional test would notice quickly (the simulator would just
    // fetch the neighbouring frame's data), but every subsequent
    // access through that entry reads the wrong physical page.
    Tlb &dtlb = AuditAccess::core_dtlb(machine.core(0));
    ASSERT_TRUE(AuditAccess::corrupt_tlb_page_base(dtlb, kPageSize))
        << "no dTLB entry resident after the run";

    AuditReport report;
    machine.audit(report);
    EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace moka
