/** @file Unit tests for the Berti prefetcher. */
#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/berti.h"

namespace moka {
namespace {

BertiConfig
quick_config()
{
    BertiConfig cfg;
    cfg.window_accesses = 32;
    cfg.timely_latency = 50;
    return cfg;
}

/** Feed a constant-stride stream, return candidates of the last access. */
std::vector<PrefetchRequest>
drive_stream(Berti &berti, Addr pc, Addr base, std::int64_t stride_blocks,
             unsigned count, Cycle gap)
{
    std::vector<PrefetchRequest> out;
    Cycle now = 0;
    for (unsigned i = 0; i < count; ++i) {
        out.clear();
        PrefetchContext ctx;
        ctx.pc = pc;
        ctx.vaddr = VirtAddr{base + Addr(i) * Addr(stride_blocks) * kBlockSize};
        ctx.now = now;
        ctx.hit = false;
        berti.on_access(ctx, out);
        now += gap;
    }
    return out;
}

TEST(Berti, LearnsTimelyStride)
{
    Berti berti(quick_config());
    const auto out =
        drive_stream(berti, 0x400100, 0x100000, 1, 200, /*gap=*/100);
    ASSERT_FALSE(out.empty());
    // All candidates carry positive deltas along the stream direction.
    for (const PrefetchRequest &r : out) {
        EXPECT_GT(r.delta, 0);
        EXPECT_EQ(r.trigger_pc, 0x400100u);
    }
}

TEST(Berti, PrefersLargerTimelyDeltas)
{
    Berti berti(quick_config());
    const auto out =
        drive_stream(berti, 0x400100, 0x100000, 1, 200, /*gap=*/100);
    ASSERT_FALSE(out.empty());
    // Tie-break favours larger deltas (lead time).
    std::int64_t max_delta = 0;
    for (const PrefetchRequest &r : out) {
        max_delta = std::max(max_delta, r.delta);
    }
    EXPECT_GE(max_delta, 8);
}

TEST(Berti, UntimelyDeltasNotSelected)
{
    // Back-to-back accesses (gap 1 cycle << timely_latency): no delta
    // is ever timely, so nothing should be selected.
    Berti berti(quick_config());
    const auto out =
        drive_stream(berti, 0x400100, 0x100000, 1, 200, /*gap=*/1);
    EXPECT_TRUE(out.empty());
}

TEST(Berti, RandomPatternStaysQuiet)
{
    Berti berti(quick_config());
    std::vector<PrefetchRequest> out;
    Cycle now = 0;
    std::uint64_t x = 12345;
    for (int i = 0; i < 500; ++i) {
        out.clear();
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        PrefetchContext ctx;
        ctx.pc = 0x400200;
        ctx.vaddr = VirtAddr{(x % (1u << 30)) & ~(kBlockSize - 1)};
        ctx.now = now;
        berti.on_access(ctx, out);
        now += 100;
    }
    // Random deltas never accumulate timely coverage.
    EXPECT_TRUE(out.empty());
}

TEST(Berti, EmitsPageCrossCandidatesNearBoundary)
{
    Berti berti(quick_config());
    // Warm up a +1 stride; then make the last access near a page end
    // and check that candidates cross into the next page.
    drive_stream(berti, 0x400100, 0x100000, 1, 199, 100);
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = 0x400100;
    ctx.vaddr = VirtAddr{0x200000 + kPageSize - kBlockSize};  // last line of page
    ctx.now = 1000000;
    berti.on_access(ctx, out);
    bool crossing = false;
    for (const PrefetchRequest &r : out) {
        if (crosses_page(ctx.vaddr, r.vaddr)) {
            crossing = true;
        }
    }
    EXPECT_TRUE(crossing);
}

TEST(Berti, PerIpIsolation)
{
    Berti berti(quick_config());
    // IP A streams; IP B is random-ish. B must not inherit A's deltas.
    drive_stream(berti, 0xA, 0x100000, 1, 200, 100);
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = 0xB;
    ctx.vaddr = VirtAddr{0x900000};
    ctx.now = 500000;
    berti.on_access(ctx, out);
    EXPECT_TRUE(out.empty());
}

TEST(Berti, DeltaBound)
{
    BertiConfig cfg = quick_config();
    cfg.max_delta = 16;
    Berti berti(cfg);
    const auto out = drive_stream(berti, 0x1, 0x100000, 1, 200, 100);
    for (const PrefetchRequest &r : out) {
        EXPECT_LE(std::abs(r.delta), 16);
    }
}

}  // namespace
}  // namespace moka
