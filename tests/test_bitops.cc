/** @file Unit tests for common/bitops.h. */
#include <gtest/gtest.h>

#include "common/bitops.h"

namespace moka {
namespace {

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1ull << 40));
    EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(2), 1u);
    EXPECT_EQ(log2_exact(4096), 12u);
    EXPECT_EQ(log2_exact(1ull << 63), 63u);
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(0xFF, 4, 64), 0xFull);
}

TEST(Bitops, FoldXorWidthBound)
{
    // Folding must always land inside [0, 2^width).
    for (unsigned width = 1; width < 32; ++width) {
        for (std::uint64_t v : {0ull, 1ull, 0xDEADBEEFull,
                                0xFFFFFFFFFFFFFFFFull, 0x123456789ABCDEFull}) {
            EXPECT_LT(fold_xor(v, width), 1ull << width)
                << "width=" << width << " v=" << v;
        }
    }
}

TEST(Bitops, FoldXorIdentityForWideWidths)
{
    EXPECT_EQ(fold_xor(0x1234, 0), 0x1234ull);
    EXPECT_EQ(fold_xor(0x1234, 64), 0x1234ull);
}

TEST(Bitops, FoldXorKnownValue)
{
    // 0b1011 folded to 2 bits: 0b10 ^ 0b11 = 0b01.
    EXPECT_EQ(fold_xor(0b1011, 2), 0b01ull);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(sign_extend(0x7F, 8), 127);
    EXPECT_EQ(sign_extend(0x80, 8), -128);
    EXPECT_EQ(sign_extend(0xFF, 8), -1);
    EXPECT_EQ(sign_extend(0x1F, 5), -1);
    EXPECT_EQ(sign_extend(0x0F, 5), 15);
}

/** Property sweep: fold_xor of x and x<<width differ only via fold. */
class FoldProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FoldProperty, XorOfChunksEqualsFold)
{
    const unsigned width = GetParam();
    const std::uint64_t v = 0x0F0F1234ABCD5678ull;
    std::uint64_t expect = 0;
    std::uint64_t rest = v;
    while (rest != 0) {
        expect ^= rest & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
        rest >>= width;
    }
    EXPECT_EQ(fold_xor(v, width), expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, FoldProperty,
                         ::testing::Values(1u, 3u, 5u, 8u, 9u, 12u, 16u,
                                           21u, 32u, 63u));

}  // namespace
}  // namespace moka
