/** @file Unit tests for the Best-Offset prefetcher. */
#include <gtest/gtest.h>

#include "prefetch/bop.h"

namespace moka {
namespace {

void
miss(Bop &bop, Addr vaddr, std::vector<PrefetchRequest> &out, Cycle now = 0)
{
    out.clear();
    PrefetchContext ctx;
    ctx.vaddr = VirtAddr{vaddr};
    ctx.pc = 0x400100;
    ctx.hit = false;
    ctx.now = now;
    bop.on_access(ctx, out);
}

TEST(Bop, StartsActiveWithOffsetOne)
{
    Bop bop(BopConfig{});
    EXPECT_EQ(bop.best_offset(), 1);
    std::vector<PrefetchRequest> out;
    miss(bop, 0x100000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].delta, 1);
}

TEST(Bop, LearnsStrideOffsetFromFillTiming)
{
    BopConfig cfg;
    cfg.round_max = 8;
    Bop bop(cfg);
    // Stream with stride 4 blocks, where fills complete immediately
    // (on_fill called right after each access): offsets that are
    // multiples of 4 score, others cannot.
    Addr a = 0x100000;
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 2000; ++i) {
        miss(bop, a, out);
        bop.on_fill(VirtAddr{a}, 0, /*was_prefetch=*/false);
        a += 4 * kBlockSize;
        if (bop.best_offset() % 4 == 0 && bop.best_offset() > 0) {
            break;  // converged
        }
    }
    EXPECT_EQ(bop.best_offset() % 4, 0) << "best=" << bop.best_offset();
}

TEST(Bop, GoesInactiveOnRandomPattern)
{
    BopConfig cfg;
    cfg.round_max = 4;
    Bop bop(cfg);
    std::vector<PrefetchRequest> out;
    std::uint64_t x = 99;
    for (int i = 0; i < 4000; ++i) {
        x = x * 6364136223846793005ull + 1;
        miss(bop, (x % (1u << 28)) & ~(kBlockSize - 1), out);
    }
    // After learning rounds with no scoring offset, prefetching stops.
    EXPECT_EQ(bop.best_offset(), 0);
    miss(bop, 0x100000, out);
    EXPECT_TRUE(out.empty());
}

TEST(Bop, PrefetchFillInsertsShiftedBase)
{
    // After a prefetch fill of Y with offset D, accessing Y must give
    // offset D a scoring opportunity (Y - D is in the RR table).
    BopConfig cfg;
    cfg.round_max = 4;
    cfg.bad_score = 1;  // any scoring offset keeps prefetching on
    Bop bop(cfg);
    std::vector<PrefetchRequest> out;
    Addr a = 0x200000;
    for (int i = 0; i < 800; ++i) {
        miss(bop, a, out);
        bop.on_fill(VirtAddr{a}, 0, /*was_prefetch=*/false);
        if (!out.empty()) {
            bop.on_fill(out[0].vaddr, 0, /*was_prefetch=*/true);
        }
        a += kBlockSize;
    }
    // The sequential stream keeps offset 1 (or a small positive) alive.
    EXPECT_GT(bop.best_offset(), 0);
}

TEST(Bop, CandidatesCrossPagesFreely)
{
    Bop bop(BopConfig{});
    std::vector<PrefetchRequest> out;
    miss(bop, 0x100000 + kPageSize - kBlockSize, out);
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(crosses_page(VirtAddr{0x100000 + kPageSize - kBlockSize},
                             out[0].vaddr));
}

}  // namespace
}  // namespace moka
