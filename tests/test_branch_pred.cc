/** @file Unit tests for the hashed-perceptron branch predictor. */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/branch_pred.h"

namespace moka {
namespace {

TEST(BranchPredictor, LearnsBiasedBranch)
{
    BranchPredictor bp(BranchPredConfig{});
    const Addr pc = 0x400100;
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, true);
    }
    EXPECT_TRUE(bp.predict(pc));
}

TEST(BranchPredictor, LearnsLoopPattern)
{
    // Taken 15x then not-taken once, repeating: perceptron with
    // history should get most of these right after warmup.
    BranchPredictor bp(BranchPredConfig{});
    const Addr pc = 0x400200;
    // Warmup.
    for (int i = 0; i < 64 * 16; ++i) {
        bp.update(pc, (i % 16) != 15);
    }
    unsigned correct = 0;
    const unsigned n = 16 * 64;
    for (unsigned i = 0; i < n; ++i) {
        const bool taken = (i % 16) != 15;
        if (bp.predict(pc) == taken) {
            ++correct;
        }
        bp.update(pc, taken);
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.90);
}

TEST(BranchPredictor, CountsMispredicts)
{
    BranchPredictor bp(BranchPredConfig{});
    const Addr pc = 0x400300;
    for (int i = 0; i < 100; ++i) {
        bp.update(pc, true);
    }
    const std::uint64_t before = bp.mispredicts();
    bp.update(pc, false);  // guaranteed surprise
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(BranchPredictor, RandomBranchNearChance)
{
    BranchPredictor bp(BranchPredConfig{});
    Rng rng(3);
    const Addr pc = 0x400400;
    unsigned correct = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        const bool taken = rng.chance(0.5);
        if (bp.predict(pc) == taken) {
            ++correct;
        }
        bp.update(pc, taken);
    }
    // No predictor beats a fair coin by much.
    EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.06);
}

TEST(BranchPredictor, DistinctPcsIndependent)
{
    BranchPredictor bp(BranchPredConfig{});
    for (int i = 0; i < 300; ++i) {
        bp.update(0x400500, true);
        bp.update(0x400504, false);
    }
    // Predict each branch at its own point in the interleaving: the
    // opposite biases must not bleed into each other.
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(0x400500) == true ? 1 : 0;
        bp.update(0x400500, true);
        correct += bp.predict(0x400504) == false ? 1 : 0;
        bp.update(0x400504, false);
    }
    EXPECT_GT(correct, 190u);
}

}  // namespace
}  // namespace moka
