/** @file Unit tests for the set-associative cache model. */
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.h"

namespace moka {
namespace {

CacheConfig
tiny_config(bool track_pgc = false)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sets = 4;
    cfg.ways = 2;
    cfg.latency = 2;
    cfg.mshr_entries = 4;
    cfg.track_pgc = track_pgc;
    return cfg;
}

/** Records L1D lifetime events for assertions. */
class RecordingListener : public CacheListener
{
  public:
    void
    on_pgc_first_use(PhysAddr block_paddr) override
    {
        first_uses.push_back(block_paddr);
    }

    void
    on_eviction(PhysAddr block_paddr, bool prefetched, bool pgc,
                bool used) override
    {
        evictions.push_back({block_paddr, prefetched, pgc, used});
    }

    struct Evt
    {
        PhysAddr addr;
        bool prefetched;
        bool pgc;
        bool used;
    };
    std::vector<PhysAddr> first_uses;
    std::vector<Evt> evictions;
};

TEST(Cache, MissThenHit)
{
    Cache c(tiny_config(), nullptr);
    const AccessResult miss = c.access(PhysAddr{0x1000}, AccessType::kLoad, 0);
    EXPECT_FALSE(miss.hit);
    const AccessResult hit = c.access(PhysAddr{0x1000}, AccessType::kLoad, miss.done);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(c.stats().demand.accesses, 2u);
    EXPECT_EQ(c.stats().demand.misses, 1u);
}

TEST(Cache, BlockGranularity)
{
    Cache c(tiny_config(), nullptr);
    const AccessResult m = c.access(PhysAddr{0x1000}, AccessType::kLoad, 0);
    // Different byte in the same 64B block: hit.
    EXPECT_TRUE(c.access(PhysAddr{0x103F}, AccessType::kLoad, m.done).hit);
    // Next block: miss.
    EXPECT_FALSE(c.access(PhysAddr{0x1040}, AccessType::kLoad, m.done).hit);
}

TEST(Cache, LruEviction)
{
    Cache c(tiny_config(), nullptr);
    // 3 blocks in the same set (sets=4 => stride 4 blocks).
    const Addr set_stride = 4 * kBlockSize;
    const PhysAddr a{0}, b{set_stride}, d{2 * set_stride};
    Cycle t = 1000;
    c.access(a, AccessType::kLoad, t);
    c.access(b, AccessType::kLoad, t + 1000);
    // Touch a again so b becomes LRU.
    c.access(a, AccessType::kLoad, t + 2000);
    c.access(d, AccessType::kLoad, t + 3000);  // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, MergeIntoInflightFill)
{
    // With no lower level the fill completes at lookup time, so give
    // the cache a slow lower level via a second cache + nullptr chain.
    CacheConfig lower_cfg = tiny_config();
    lower_cfg.latency = 500;
    Cache lower(lower_cfg, nullptr);
    Cache c(tiny_config(), &lower);
    const AccessResult first = c.access(PhysAddr{0x2000}, AccessType::kLoad, 0);
    EXPECT_FALSE(first.hit);
    // Immediately re-access: merges into the in-flight fill and
    // counts as a miss with the same completion time.
    const AccessResult second = c.access(PhysAddr{0x2000}, AccessType::kLoad, 10);
    EXPECT_FALSE(second.hit);
    EXPECT_TRUE(second.merged);
    EXPECT_EQ(second.done, first.done);
    EXPECT_EQ(c.stats().demand.misses, 2u);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    CacheConfig lower_cfg = tiny_config();
    Cache lower(lower_cfg, nullptr);
    Cache c(tiny_config(), &lower);
    const Addr set_stride = 4 * kBlockSize;
    Cycle t = 0;
    c.access(PhysAddr{0x0}, AccessType::kStore, t);            // dirty
    c.access(PhysAddr{set_stride}, AccessType::kLoad, t + 600);
    c.access(PhysAddr{2 * set_stride}, AccessType::kLoad, t + 1200);  // evicts 0x0
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, PrefetchUsefulnessAccounting)
{
    Cache c(tiny_config(true), nullptr);
    Cycle t = 0;
    // Prefetch fill, then demand hit: useful.
    c.access(PhysAddr{0x0}, AccessType::kPrefetch, t, /*pgc=*/true);
    EXPECT_EQ(c.stats().pf.issued, 1u);
    EXPECT_EQ(c.stats().pf.pgc_issued, 1u);
    c.access(PhysAddr{0x0}, AccessType::kLoad, t + 100);
    EXPECT_EQ(c.stats().pf.useful, 1u);
    EXPECT_EQ(c.stats().pf.pgc_useful, 1u);
    // Second hit must not double-count.
    c.access(PhysAddr{0x0}, AccessType::kLoad, t + 200);
    EXPECT_EQ(c.stats().pf.useful, 1u);
}

TEST(Cache, UselessPrefetchCountedAtEviction)
{
    Cache c(tiny_config(true), nullptr);
    const Addr set_stride = 4 * kBlockSize;
    Cycle t = 0;
    c.access(PhysAddr{0x0}, AccessType::kPrefetch, t, true);
    // Fill the set and evict the prefetched block without any use.
    c.access(PhysAddr{set_stride}, AccessType::kLoad, t + 600);
    c.access(PhysAddr{2 * set_stride}, AccessType::kLoad, t + 1200);
    EXPECT_EQ(c.stats().pf.useless, 1u);
    EXPECT_EQ(c.stats().pf.pgc_useless, 1u);
}

TEST(Cache, ListenerSeesPgcLifetime)
{
    RecordingListener listener;
    Cache c(tiny_config(true), nullptr);
    c.set_listener(&listener);
    const Addr set_stride = 4 * kBlockSize;

    // Useful PGC block: first-use event fires once.
    c.access(PhysAddr{0x0}, AccessType::kPrefetch, 0, true);
    c.access(PhysAddr{0x0}, AccessType::kLoad, 100);
    c.access(PhysAddr{0x0}, AccessType::kLoad, 200);
    ASSERT_EQ(listener.first_uses.size(), 1u);
    EXPECT_EQ(listener.first_uses[0], PhysAddr{0});

    // Unused PGC block evicted: eviction event carries pgc && !used.
    c.access(PhysAddr{set_stride}, AccessType::kPrefetch, 300, true);
    c.access(PhysAddr{2 * set_stride}, AccessType::kLoad, 900);
    c.access(PhysAddr{3 * set_stride}, AccessType::kLoad, 1500);
    bool saw_useless_pgc = false;
    for (const auto &e : listener.evictions) {
        if (e.addr == PhysAddr{set_stride}) {
            EXPECT_TRUE(e.prefetched);
            EXPECT_TRUE(e.pgc);
            EXPECT_FALSE(e.used);
            saw_useless_pgc = true;
        }
    }
    EXPECT_TRUE(saw_useless_pgc);
}

TEST(Cache, PgcBitRequiresTracking)
{
    Cache c(tiny_config(false), nullptr);  // track_pgc off (L2/LLC)
    c.access(PhysAddr{0x0}, AccessType::kPrefetch, 0, true);
    c.access(PhysAddr{0x0}, AccessType::kLoad, 100);
    EXPECT_EQ(c.stats().pf.useful, 1u);
    // Without PCB tracking the pgc-useful counter must stay zero.
    EXPECT_EQ(c.stats().pf.pgc_useful, 0u);
}

TEST(Cache, InflightMissesVisible)
{
    CacheConfig lower_cfg = tiny_config();
    lower_cfg.latency = 500;
    Cache lower(lower_cfg, nullptr);
    Cache c(tiny_config(), &lower);
    c.access(PhysAddr{0x0}, AccessType::kLoad, 0);
    c.access(PhysAddr{0x40 * 4}, AccessType::kLoad, 0);
    EXPECT_GE(c.inflight_misses(10), 2u);
    EXPECT_EQ(c.inflight_misses(100000), 0u);
}

TEST(Cache, MshrLimitDelaysOverflowingMiss)
{
    CacheConfig lower_cfg = tiny_config();
    lower_cfg.sets = 64;
    lower_cfg.ways = 8;
    lower_cfg.latency = 1000;
    Cache lower(lower_cfg, nullptr);
    CacheConfig cfg = tiny_config();
    cfg.sets = 64;
    cfg.mshr_entries = 2;
    Cache c(cfg, &lower);
    const AccessResult a = c.access(PhysAddr{0 * kBlockSize}, AccessType::kLoad, 0);
    const AccessResult b = c.access(PhysAddr{1 * kBlockSize}, AccessType::kLoad, 0);
    // Third miss must wait for an MSHR, so it completes clearly after
    // the first two despite arriving at the same time.
    const AccessResult d = c.access(PhysAddr{2 * kBlockSize}, AccessType::kLoad, 0);
    EXPECT_GT(d.done, a.done);
    EXPECT_GT(d.done, b.done - 2);
}

TEST(Cache, DemandMissMarksBlockUsed)
{
    RecordingListener listener;
    Cache c(tiny_config(true), nullptr);
    c.set_listener(&listener);
    const Addr set_stride = 4 * kBlockSize;
    c.access(PhysAddr{0x0}, AccessType::kLoad, 0);
    c.access(PhysAddr{set_stride}, AccessType::kLoad, 600);
    c.access(PhysAddr{2 * set_stride}, AccessType::kLoad, 1200);
    ASSERT_FALSE(listener.evictions.empty());
    EXPECT_TRUE(listener.evictions[0].used);
    EXPECT_FALSE(listener.evictions[0].prefetched);
}

}  // namespace
}  // namespace moka
