/**
 * @file
 * Model-checking tests: drive the Cache and Tlb with random traffic
 * and compare hit/miss outcomes against simple golden reference
 * models (a map-of-sets LRU). Catches indexing/tagging/replacement
 * regressions that example-based tests miss.
 */
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cache/cache.h"
#include "common/rng.h"
#include "vmem/tlb.h"

namespace moka {
namespace {

/** Golden fully-explicit LRU set-associative model. */
class GoldenCache
{
  public:
    GoldenCache(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), data_(sets)
    {
    }

    /** True when resident; touches LRU. Installs on miss. */
    bool
    access(Addr block)
    {
        auto &set = data_[block & (sets_ - 1)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.erase(it);
                set.push_front(block);
                return true;
            }
        }
        set.push_front(block);
        if (set.size() > ways_) {
            set.pop_back();
        }
        return false;
    }

  private:
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<std::list<Addr>> data_;
};

/** Cache geometry sweep parameter. */
struct Geometry
{
    std::uint32_t sets;
    std::uint32_t ways;
};

class CacheModelCheck : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheModelCheck, MatchesGoldenLru)
{
    const Geometry g = GetParam();
    CacheConfig cfg;
    cfg.sets = g.sets;
    cfg.ways = g.ways;
    cfg.latency = 1;
    cfg.mshr_entries = 64;
    Cache cache(cfg, nullptr);
    GoldenCache golden(g.sets, g.ways);

    Rng rng(g.sets * 1000 + g.ways);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        // Footprint ~4x the cache so hits and misses both occur.
        const Addr block = rng.below(std::uint64_t(g.sets) * g.ways * 4);
        const Addr paddr = block << kBlockBits;
        now += 10;  // fills complete before the next access
        const AccessResult r =
            cache.access(PhysAddr{paddr}, AccessType::kLoad, now);
        const bool golden_hit = golden.access(block);
        ASSERT_EQ(r.hit, golden_hit)
            << "divergence at step " << i << " block " << block;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelCheck,
    ::testing::Values(Geometry{1, 1}, Geometry{1, 4}, Geometry{4, 1},
                      Geometry{16, 2}, Geometry{64, 8},
                      Geometry{128, 12}));

class TlbModelCheck : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(TlbModelCheck, MatchesGoldenLru)
{
    const Geometry g = GetParam();
    TlbConfig cfg;
    cfg.sets = g.sets;
    cfg.ways = g.ways;
    cfg.large_sets = 1;
    cfg.large_ways = 1;
    Tlb tlb(cfg);
    GoldenCache golden(g.sets, g.ways);

    Rng rng(g.sets * 77 + g.ways);
    for (int i = 0; i < 20000; ++i) {
        const Addr vpn = rng.below(std::uint64_t(g.sets) * g.ways * 4);
        const Addr vaddr = vpn << kPageBits;
        const Tlb::Result r = tlb.lookup(VirtAddr{vaddr}, 0, true);
        const bool golden_hit = golden.access(vpn);
        ASSERT_EQ(r.hit, golden_hit)
            << "divergence at step " << i << " vpn " << vpn;
        if (!r.hit) {
            tlb.fill(VirtAddr{vaddr}, PhysAddr{vpn << kPageBits}, false,
                     false);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, TlbModelCheck,
                         ::testing::Values(Geometry{1, 2}, Geometry{4, 4},
                                           Geometry{16, 4},
                                           Geometry{128, 12}));

}  // namespace
}  // namespace moka
