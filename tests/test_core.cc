/** @file Unit tests for the ROB timing model. */
#include <gtest/gtest.h>

#include "core/core.h"

namespace moka {
namespace {

CoreConfig
tiny_core(unsigned rob = 4, unsigned width = 2)
{
    CoreConfig cfg;
    cfg.rob_entries = rob;
    cfg.width = width;
    return cfg;
}

TEST(Core, DispatchFollowsFetchWhenRobEmpty)
{
    Core core(tiny_core());
    EXPECT_EQ(core.dispatch(100), 100u);
}

TEST(Core, RetireIsInOrderAndMonotonic)
{
    Core core(tiny_core());
    core.dispatch(0);
    const Cycle r1 = core.retire(50);
    core.dispatch(0);
    // Completes earlier than the previous retire: still retires after.
    const Cycle r2 = core.retire(10);
    EXPECT_GE(r2, r1);
    EXPECT_EQ(core.retired(), 2u);
}

TEST(Core, RetireWidthLimitsPerCycle)
{
    Core core(tiny_core(16, 2));
    // 6 instructions all complete at cycle 10: at width 2 they retire
    // over >= 3 distinct cycles.
    Cycle last = 0;
    for (int i = 0; i < 6; ++i) {
        core.dispatch(0);
        last = core.retire(10);
    }
    EXPECT_GE(last, 13u);
}

TEST(Core, RobBlocksDispatch)
{
    Core core(tiny_core(4, 4));
    // Fill the ROB with slow instructions.
    for (int i = 0; i < 4; ++i) {
        core.dispatch(0);
        core.retire(1000 + i);
    }
    // The 5th instruction cannot dispatch before the 1st retired.
    const Cycle d = core.dispatch(0);
    EXPECT_GE(d, 1001u);
}

TEST(Core, RobPressureTracksStalls)
{
    Core core(tiny_core(2, 2));
    core.reset_pressure_window();
    // First two dispatches are free; afterwards every dispatch waits
    // on the ROB.
    for (int i = 0; i < 10; ++i) {
        const Cycle d = core.dispatch(0);
        core.retire(d + 500);
    }
    EXPECT_GT(core.rob_pressure(), 0.5);
    core.reset_pressure_window();
    EXPECT_DOUBLE_EQ(core.rob_pressure(), 0.0);
}

TEST(Core, IpcEmergesFromWidth)
{
    // With everything completing instantly, IPC == width.
    Core core(tiny_core(64, 4));
    for (int i = 0; i < 400; ++i) {
        const Cycle d = core.dispatch(0);
        core.retire(d);
    }
    const double ipc = 400.0 / static_cast<double>(core.last_retire());
    EXPECT_NEAR(ipc, 4.0, 0.2);
}

}  // namespace
}  // namespace moka
