/** @file Unit tests for the DRAM model. */
#include <gtest/gtest.h>

#include "dram/dram.h"

namespace moka {
namespace {

DramConfig
small_config()
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banks = 2;
    cfg.row_hit_latency = 90;
    cfg.row_miss_latency = 180;
    cfg.burst_cycles = 3;
    return cfg;
}

TEST(Dram, FirstAccessIsRowMiss)
{
    Dram dram(small_config());
    const AccessResult r = dram.access(PhysAddr{0x1000}, AccessType::kLoad, 100);
    EXPECT_EQ(r.done, 100 + 180);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(dram.row_hits(), 0u);
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(Dram, SameRowHitsAfterActivation)
{
    Dram dram(small_config());
    dram.access(PhysAddr{0x0}, AccessType::kLoad, 0);
    // +2 blocks returns to bank 0 within the same row (rows span
    // 2^column_bits blocks per bank).
    const AccessResult r = dram.access(PhysAddr{2 * kBlockSize}, AccessType::kLoad,
                                       10000);
    EXPECT_EQ(r.done, 10000 + 90);
    EXPECT_EQ(dram.row_hits(), 1u);
}

TEST(Dram, BankContentionSerializes)
{
    Dram dram(small_config());
    const AccessResult a = dram.access(PhysAddr{0x0}, AccessType::kLoad, 0);
    // Immediately reuse the same bank: the second access cannot start
    // before the bank frees.
    const AccessResult b = dram.access(PhysAddr{2 * kBlockSize}, AccessType::kLoad, 0);
    EXPECT_GT(b.done, a.done - 180 + 90);  // started after bank busy
    EXPECT_GE(b.done, 90u);
}

TEST(Dram, ChannelBusAddsBackToBackDelay)
{
    DramConfig cfg = small_config();
    cfg.banks = 64;  // avoid bank conflicts
    Dram dram(cfg);
    Cycle prev_done = 0;
    for (int i = 0; i < 8; ++i) {
        const AccessResult r =
            dram.access(PhysAddr{static_cast<Addr>(i) * kBlockSize},
                        AccessType::kLoad, 0);
        EXPECT_GE(r.done, prev_done == 0 ? 0 : cfg.burst_cycles);
        prev_done = r.done;
    }
    EXPECT_EQ(dram.accesses(), 8u);
}

TEST(Dram, TypeCountersSplit)
{
    Dram dram(small_config());
    dram.access(PhysAddr{0}, AccessType::kLoad, 0);
    dram.access(PhysAddr{64}, AccessType::kPrefetch, 0);
    dram.access(PhysAddr{128}, AccessType::kPageWalk, 0);
    EXPECT_EQ(dram.accesses(), 3u);
    EXPECT_EQ(dram.prefetch_accesses(), 1u);
    EXPECT_EQ(dram.walk_accesses(), 1u);
}

}  // namespace
}  // namespace moka
