/** @file Unit tests for the energy model. */
#include <gtest/gtest.h>

#include "sim/energy.h"

namespace moka {
namespace {

TEST(Energy, ZeroForEmptyRegion)
{
    const RunMetrics m;
    const EnergyEstimate e = estimate_energy(m);
    EXPECT_DOUBLE_EQ(e.total_nj, 0.0);
    EXPECT_DOUBLE_EQ(e.nj_per_kilo_inst, 0.0);
}

TEST(Energy, DramDominates)
{
    RunMetrics m;
    m.instructions = 1000;
    m.l1d = {1000, 100};
    m.dram_accesses = 100;
    const EnergyConfig cfg;
    const EnergyEstimate e = estimate_energy(m, cfg);
    const double dram_nj = cfg.dram_access_pj * 100 / 1000.0;
    EXPECT_GT(dram_nj / e.total_nj, 0.5);
}

TEST(Energy, WalkRefsCharged)
{
    RunMetrics base;
    base.instructions = 1000;
    RunMetrics with = base;
    with.walk_refs = 400;
    const EnergyConfig cfg;
    EXPECT_NEAR(estimate_energy(with, cfg).total_nj -
                    estimate_energy(base, cfg).total_nj,
                cfg.walk_ref_pj * 400 / 1000.0, 1e-9);
}

TEST(Energy, PerKiloInstructionScaling)
{
    RunMetrics m;
    m.instructions = 2000;
    m.dram_accesses = 10;
    const EnergyEstimate e = estimate_energy(m);
    EXPECT_NEAR(e.nj_per_kilo_inst, e.total_nj / 2.0, 1e-9);
}

TEST(Energy, UselessPrefetchPremiumVisible)
{
    // Two regions identical except one carries useless PGC traffic
    // (extra fills + walk refs + DRAM): it must cost more.
    RunMetrics clean;
    clean.instructions = 10000;
    clean.l1d = {3000, 300};
    clean.dram_accesses = 300;
    RunMetrics polluted = clean;
    polluted.pf_issued = 500;
    polluted.walk_refs = 2000;  // 4 refs x 500 speculative walks
    polluted.dram_accesses += 500;
    EXPECT_GT(estimate_energy(polluted).total_nj,
              estimate_energy(clean).total_nj * 1.2);
}

}  // namespace
}  // namespace moka
