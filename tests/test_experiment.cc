/** @file Unit tests for the experiment helpers. */
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace moka {
namespace {

TEST(Experiment, SpeedupRatio)
{
    RunMetrics a, b;
    a.instructions = 1000;
    a.cycles = 500;  // IPC 2.0
    b.instructions = 1000;
    b.cycles = 1000;  // IPC 1.0
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
}

TEST(Experiment, CoverageGain)
{
    RunMetrics m, base;
    base.l1d.misses = 100;
    m.l1d.misses = 60;
    EXPECT_DOUBLE_EQ(coverage_gain(m, base), 0.4);
    base.l1d.misses = 0;
    EXPECT_DOUBLE_EQ(coverage_gain(m, base), 0.0);
}

TEST(Experiment, BenchArgsDefaults)
{
    char prog[] = "bench";
    char *argv[] = {prog};
    const BenchArgs args = parse_bench_args(1, argv);
    EXPECT_FALSE(args.full);
    EXPECT_EQ(args.workloads, 24u);
    EXPECT_EQ(args.run.measure_insts, 800'000u);
}

TEST(Experiment, BenchArgsParsing)
{
    char prog[] = "bench";
    char f1[] = "--workloads";
    char v1[] = "7";
    char f2[] = "--insts";
    char v2[] = "12345";
    char f3[] = "--seed";
    char v3[] = "99";
    char *argv[] = {prog, f1, v1, f2, v2, f3, v3};
    const BenchArgs args = parse_bench_args(7, argv);
    EXPECT_EQ(args.workloads, 7u);
    EXPECT_EQ(args.run.measure_insts, 12'345u);
    EXPECT_EQ(args.seed, 99u);
}

TEST(Experiment, BenchArgsFullScales)
{
    char prog[] = "bench";
    char f1[] = "--full";
    char *argv[] = {prog, f1};
    const BenchArgs args = parse_bench_args(2, argv);
    EXPECT_TRUE(args.full);
    EXPECT_EQ(args.run.measure_insts, 4u * 800'000u);
    EXPECT_EQ(args.mixes, 300u);
}

TEST(Experiment, RunConfigScaled)
{
    RunConfig run;
    const RunConfig big = run.scaled(2.5);
    EXPECT_EQ(big.warmup_insts, 500'000u);
    EXPECT_EQ(big.measure_insts, 2'000'000u);
}

TEST(Experiment, SuiteAggregator)
{
    SuiteAggregator agg;
    agg.add("A", 1.1);
    agg.add("A", 1.1);
    agg.add("B", 0.9);
    EXPECT_NEAR(agg.suite_geomean("A"), 1.1, 1e-12);
    EXPECT_NEAR(agg.suite_geomean("B"), 0.9, 1e-12);
    EXPECT_DOUBLE_EQ(agg.suite_geomean("missing"), 1.0);
    EXPECT_EQ(agg.suites().size(), 2u);
    const double overall = agg.overall_geomean();
    EXPECT_GT(overall, 1.0);
    EXPECT_LT(overall, 1.1);
}

}  // namespace
}  // namespace moka
