// Pins the feature-hash values of the MOKA perceptron features to a
// golden digest captured BEFORE the strong-address-type refactor,
// when features.h still computed page terms with raw `VA >> 12`
// shifts.  The typed helpers (page_index, large_page_index,
// line_in_page, va_bits) must be bit-identical replacements: any
// drift here changes every learned weight and silently de-tunes the
// filter against the paper's numbers.
//
// The golden values were produced by evaluating every program
// feature plus the three specialized features over 256 deterministic
// mix64-derived inputs and folding each value into an FNV-1a digest.
// Regenerating them is only legitimate when a feature is
// *intentionally* added or redefined.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/hashing.h"
#include "filter/features.h"

namespace moka {
namespace {

FeatureInput
trial_input(std::uint64_t trial)
{
    FeatureInput in;
    in.pc = mix64(trial * 8 + 1);
    in.vaddr = VirtAddr{mix64(trial * 8 + 2)};
    in.va1 = VirtAddr{mix64(trial * 8 + 3)};
    in.va2 = VirtAddr{mix64(trial * 8 + 4)};
    in.pc1 = mix64(trial * 8 + 5);
    in.pc2 = mix64(trial * 8 + 6);
    in.delta = static_cast<std::int64_t>(mix64(trial * 8 + 7)) % 4096;
    in.first_page_access = mix64(trial * 8 + 8) % 64;
    in.meta = mix64(trial * 8 + 9);
    return in;
}

TEST(FeaturePinning, DigestMatchesPreRefactorGolden)
{
    std::uint64_t digest = kFnv1aOffset;
    for (std::uint64_t trial = 0; trial < 256; ++trial) {
        const FeatureInput in = trial_input(trial);
        for (ProgramFeatureId id : all_program_features()) {
            const std::uint64_t v = eval_feature(id, in);
            digest = fnv1a_64(&v, sizeof v, digest);
        }
        for (SpecializedFeatureId id :
             {SpecializedFeatureId::kMeta, SpecializedFeatureId::kMetaXorDelta,
              SpecializedFeatureId::kMetaXorPc}) {
            const std::uint64_t v = eval_specialized(id, in);
            digest = fnv1a_64(&v, sizeof v, digest);
        }
    }
    EXPECT_EQ(digest, 0x5468E5CA71AD447Dull);
}

// Spot values for the geometry-bearing features of trial 0, so a
// digest mismatch points at the shift that drifted instead of just
// "something changed".
TEST(FeaturePinning, SpotValuesMatchPreRefactorGolden)
{
    const FeatureInput in = trial_input(0);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVa, in),
              0xDBD238973A2B148Aull);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaP12, in),
              0x000DBD238973A2B1ull);  // VA >> 12 == page_index
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaP21, in),
              0x000006DE91C4B9D1ull);  // VA >> 21 == large_page_index
    EXPECT_EQ(eval_feature(ProgramFeatureId::kLineOffset, in),
              0x0000000000000012ull);  // (VA & 0xFFF) >> 6 == line_in_page
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcXorVpn, in),
              0x569FAB3E9978A754ull);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaPlusDelta, in),
              0xDBD238973A2B239Eull);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kTargetVpn, in),
              0x000DBD238973A2EDull);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVpnHist3, in),
              0x00072251756AD691ull);
}

}  // namespace
}  // namespace moka
