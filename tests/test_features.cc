/** @file Unit tests for the MOKA program-feature bouquet. */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "filter/features.h"

namespace moka {
namespace {

FeatureInput
sample_input()
{
    FeatureInput in;
    in.pc = 0x400ABC;
    in.vaddr = VirtAddr{0x7F12345678};
    in.va1 = VirtAddr{0x7F12340000};
    in.va2 = VirtAddr{0x7F1233F000};
    in.pc1 = 0x400AB0;
    in.pc2 = 0x400AA0;
    in.delta = -5;
    in.first_page_access = 13;
    return in;
}

TEST(Features, BouquetHasFiftyFive)
{
    EXPECT_EQ(program_feature_count(), 55u);
    EXPECT_EQ(all_program_features().size(), 55u);
}

TEST(Features, TableOneSubsetHasNineteen)
{
    EXPECT_EQ(table1_program_features().size(), 19u);
}

TEST(Features, NamesAreUnique)
{
    std::set<std::string> names;
    for (ProgramFeatureId id : all_program_features()) {
        EXPECT_TRUE(names.insert(feature_name(id)).second)
            << "duplicate name " << feature_name(id);
    }
}

TEST(Features, TableOneFormulas)
{
    const FeatureInput in = sample_input();
    const std::uint64_t d = static_cast<std::uint64_t>(in.delta);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVa, in), in.vaddr.raw());
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaP12, in), in.vaddr.raw() >> 12);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaP21, in), in.vaddr.raw() >> 21);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kLineOffset, in),
              line_in_page(in.vaddr));
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPc, in), in.pc);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcPlusOffset, in),
              in.pc + line_in_page(in.vaddr));
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaHist3, in),
              in.va2.raw() ^ in.va1.raw() ^ in.vaddr.raw());
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcHist3, in),
              in.pc2 ^ in.pc1 ^ in.pc);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcXorVa, in),
              in.pc ^ in.vaddr.raw());
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVaXorDelta, in),
              in.vaddr.raw() ^ d);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcXorDelta, in), in.pc ^ d);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kVpnXorDelta, in),
              (in.vaddr.raw() >> 12) ^ d);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kPcXorFpa, in),
              in.pc ^ in.first_page_access);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kDeltaPlusFpa, in),
              d + in.first_page_access);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kDelta, in), d);
    EXPECT_EQ(eval_feature(ProgramFeatureId::kAbsDelta, in), 5u);
}

/** Every feature must be a pure function of its input. */
class FeaturePurity : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FeaturePurity, DeterministicAndSensitive)
{
    const ProgramFeatureId id = all_program_features()[GetParam()];
    const FeatureInput in = sample_input();
    EXPECT_EQ(eval_feature(id, in), eval_feature(id, in));
    // Flipping every field at once must change the value for all
    // features (each feature uses at least one field).
    FeatureInput other = in;
    other.pc ^= 0xFFFF0000;
    other.vaddr = VirtAddr{other.vaddr.raw() ^ 0xABCD0000FC0};  // also flips the line offset
    other.va1 = VirtAddr{other.va1.raw() ^ 0x111111};
    other.va2 = VirtAddr{other.va2.raw() ^ 0x222222};
    other.pc1 ^= 0x333333;
    other.pc2 ^= 0x444444;
    other.delta = 17;
    other.first_page_access = 60;
    EXPECT_NE(eval_feature(id, in), eval_feature(id, other))
        << feature_name(id);
}

INSTANTIATE_TEST_SUITE_P(AllFeatures, FeaturePurity,
                         ::testing::Range<std::size_t>(0, 55));

TEST(FeatureExtractor, TracksHistory)
{
    FeatureExtractor fx;
    fx.on_demand_access(0x1, VirtAddr{0xA000});
    fx.on_demand_access(0x2, VirtAddr{0xB000});
    const FeatureInput in = fx.make_input(0x3, VirtAddr{0xC000}, 7);
    EXPECT_EQ(in.pc, 0x3u);
    EXPECT_EQ(in.vaddr, VirtAddr{0xC000});
    EXPECT_EQ(in.va1, VirtAddr{0xB000});
    EXPECT_EQ(in.va2, VirtAddr{0xA000});
    EXPECT_EQ(in.pc1, 0x2u);
    EXPECT_EQ(in.pc2, 0x1u);
    EXPECT_EQ(in.delta, 7);
}

TEST(FeatureExtractor, FirstPageAccessRemembered)
{
    FeatureExtractor fx;
    // First touch of the page lands at line 5.
    fx.on_demand_access(0x1, VirtAddr{0x40000000 + 5 * kBlockSize});
    fx.on_demand_access(0x1, VirtAddr{0x40000000 + 9 * kBlockSize});
    const FeatureInput in =
        fx.make_input(0x1, VirtAddr{0x40000000 + 20 * kBlockSize}, 1);
    EXPECT_EQ(in.first_page_access, 5u);
}

TEST(FeatureExtractor, UnknownPageGivesZeroFpa)
{
    FeatureExtractor fx;
    const FeatureInput in = fx.make_input(0x1, VirtAddr{0x9999000}, 1);
    EXPECT_EQ(in.first_page_access, 0u);
}

}  // namespace
}  // namespace moka
