/** @file Unit tests for the decoupled frontend. */
#include <gtest/gtest.h>

#include "core/frontend.h"
#include "vmem/page_table.h"

namespace moka {
namespace {

struct Fixture
{
    Fixture()
        : l2({"L2", 256, 8, 10, 32, false}, nullptr),
          l1i({"L1I", 16, 4, 2, 8, false}, &l2),
          itlb({"iTLB", 4, 4, 2, 2, 1}),
          stlb({"sTLB", 16, 4, 4, 4, 8}),
          table(VmemConfig{}),
          walker(WalkerConfig{}, &table, &l2),
          bp(BranchPredConfig{}),
          frontend(FrontendConfig{}, &l1i, &itlb, &stlb, &walker, &bp)
    {
    }

    Cache l2;
    Cache l1i;
    Tlb itlb;
    Tlb stlb;
    PageTable table;
    PageWalker walker;
    BranchPredictor bp;
    Frontend frontend;
};

TraceInst
alu_at(Addr pc)
{
    TraceInst inst;
    inst.pc = pc;
    inst.op = OpClass::kAlu;
    return inst;
}

TEST(Frontend, SameBlockFetchesBatchByWidth)
{
    Fixture f;
    // First instruction pays iTLB + L1I; the following 5 in the same
    // fetch group share the cycle.
    const auto first = f.frontend.fetch(alu_at(0x400000));
    Cycle prev = first.ready;
    for (int i = 1; i < 6; ++i) {
        const auto r = f.frontend.fetch(alu_at(0x400000 + i * 4));
        EXPECT_EQ(r.ready, prev);
    }
    // 7th instruction starts a new group: +1 cycle.
    const auto seventh = f.frontend.fetch(alu_at(0x400000 + 6 * 4));
    EXPECT_EQ(seventh.ready, prev + 1);
}

TEST(Frontend, NewBlockPaysInstructionCacheLatency)
{
    Fixture f;
    const auto a = f.frontend.fetch(alu_at(0x400000));
    const auto b = f.frontend.fetch(alu_at(0x400000 + kBlockSize));
    EXPECT_GT(b.ready, a.ready);
    EXPECT_GE(f.l1i.stats().demand.accesses, 2u);
}

TEST(Frontend, L1iHitsAfterWarmup)
{
    Fixture f;
    f.frontend.fetch(alu_at(0x400000));
    const auto misses = f.l1i.stats().demand.misses;
    // Loop back to the same block later: hit (no new miss).
    f.frontend.fetch(alu_at(0x401000));
    f.frontend.fetch(alu_at(0x400000));
    EXPECT_GE(f.l1i.stats().demand.misses, misses);
    EXPECT_TRUE(f.l1i.probe(
        f.table.translate(VirtAddr{0x400000}).paddr));
}

TEST(Frontend, MispredictDetection)
{
    Fixture f;
    TraceInst br;
    br.pc = 0x400800;
    br.op = OpClass::kBranch;
    br.taken = true;
    // Train the predictor on taken.
    for (int i = 0; i < 100; ++i) {
        f.frontend.fetch(br);
    }
    br.taken = false;
    const auto r = f.frontend.fetch(br);
    EXPECT_TRUE(r.mispredict);
}

TEST(Frontend, RedirectStallsFetch)
{
    Fixture f;
    const auto before = f.frontend.fetch(alu_at(0x400000));
    f.frontend.redirect(before.ready + 100);
    const auto after = f.frontend.fetch(alu_at(0x400004));
    // penalty = 12 by default
    EXPECT_GE(after.ready, before.ready + 100 + 12);
}

TEST(Frontend, NextLinePrefetchStaysInPage)
{
    Fixture f;
    // Fetch at the last block of a page: the instruction prefetcher
    // must not cross (no speculative I-side walks).
    const Addr pc = 0x400000 + kPageSize - kBlockSize;
    const auto walks_before = f.walker.demand_walks() +
                              f.walker.spec_walks();
    f.frontend.fetch(alu_at(pc));
    // Only the demand translation may have walked.
    EXPECT_LE(f.walker.demand_walks() + f.walker.spec_walks(),
              walks_before + 1);
    EXPECT_EQ(f.walker.spec_walks(), 0u);
}

}  // namespace
}  // namespace moka
