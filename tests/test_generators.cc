/** @file Unit tests for the synthetic workload generators. */
#include <gtest/gtest.h>

#include <map>

#include "trace/generators.h"

namespace moka {
namespace {

TEST(Generators, DeterministicStreams)
{
    StreamParams p;
    WorkloadPtr a = make_synthetic("a", make_stream_kernel(p),
                                   InterleaveParams{}, 42);
    WorkloadPtr b = make_synthetic("b", make_stream_kernel(p),
                                   InterleaveParams{}, 42);
    for (int i = 0; i < 5000; ++i) {
        const TraceInst x = a->next();
        const TraceInst y = b->next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.op), static_cast<int>(y.op));
        ASSERT_EQ(x.mem_addr, y.mem_addr);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(Generators, InterleaveRatiosApproximatelyHonored)
{
    InterleaveParams ip;
    ip.mem_ratio = 0.3;
    ip.branch_ratio = 0.1;
    WorkloadPtr w = make_synthetic("w", make_stream_kernel(StreamParams{}),
                                   ip, 7);
    std::map<OpClass, unsigned> counts;
    const unsigned n = 50000;
    for (unsigned i = 0; i < n; ++i) {
        ++counts[w->next().op];
    }
    const double mem =
        double(counts[OpClass::kLoad] + counts[OpClass::kStore]) / n;
    const double br = double(counts[OpClass::kBranch]) / n;
    EXPECT_NEAR(mem, 0.3, 0.02);
    EXPECT_NEAR(br, 0.1, 0.02);
}

TEST(Generators, StreamKernelIsSequentialPerStream)
{
    StreamParams p;
    p.streams = 1;
    p.stride = 64;
    p.store_frac = 0.0;
    KernelPtr k = make_stream_kernel(p);
    Rng rng(1);
    Addr prev = k->next(rng).addr;
    for (int i = 0; i < 1000; ++i) {
        const Addr cur = k->next(rng).addr;
        ASSERT_EQ(cur, prev + 64);
        prev = cur;
    }
}

TEST(Generators, TileKernelRowsAndPitch)
{
    TileParams p;
    p.row_bytes = 256;
    p.pitch = 1 << 20;
    p.rows = 4;
    p.stride = 64;
    KernelPtr k = make_tile_kernel(p);
    Rng rng(1);
    // First row: 4 sequential accesses; then jump by pitch.
    Addr first = k->next(rng).addr;
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(k->next(rng).addr, first + Addr(i) * 64);
    }
    EXPECT_EQ(k->next(rng).addr, first + (1 << 20));
}

TEST(Generators, PointerChaseIsDependent)
{
    PointerChaseParams p;
    KernelPtr k = make_pointer_chase_kernel(p);
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(k->next(rng).dependent);
    }
}

TEST(Generators, HashProbeStaysInFootprint)
{
    HashProbeParams p;
    p.footprint = 1 << 20;
    KernelPtr k = make_hash_probe_kernel(p);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = k->next(rng).addr;
        EXPECT_GE(a, p.base);
        // Probes may run a few lines past the last page.
        EXPECT_LT(a, p.base + p.footprint + kPageSize);
    }
}

TEST(Generators, DualStrideCrossingsAreDeltaSeparable)
{
    DualStrideParams p;
    p.hop_lines = 9;
    p.stream_burst = 64;
    p.runs_per_burst = 4;
    KernelPtr k = make_dual_stride_kernel(p);
    Rng rng(1);
    // Verify the two populations: +1-line steps within stream bursts
    // and +hop_lines steps within runs, both under a single PC.
    std::map<std::int64_t, unsigned> deltas;
    Addr prev = k->next(rng).addr;
    Addr pc = 0;
    for (int i = 0; i < 5000; ++i) {
        const AccessKernel::Access a = k->next(rng);
        const std::int64_t d =
            std::int64_t(block_number(a.addr)) -
            std::int64_t(block_number(prev));
        ++deltas[d];
        prev = a.addr;
        if (pc == 0) {
            pc = a.pc;
        } else {
            ASSERT_EQ(a.pc, pc) << "dual-stride must use a single PC";
        }
    }
    EXPECT_GT(deltas[1], 1000u);
    EXPECT_GT(deltas[9], 200u);
}

TEST(Generators, PhaseMixAlternatesChildren)
{
    StreamParams sp;
    sp.base = 0x1000000;
    TileParams tp;
    tp.base = 0x9000000;
    std::vector<KernelPtr> children;
    children.push_back(make_stream_kernel(sp));
    children.push_back(make_tile_kernel(tp));
    KernelPtr k = make_phase_mix_kernel(std::move(children), 10);
    Rng rng(1);
    bool saw_stream = false, saw_tile = false;
    for (int i = 0; i < 100; ++i) {
        const Addr a = k->next(rng).addr;
        saw_stream |= a < 0x9000000;
        saw_tile |= a >= 0x9000000;
    }
    EXPECT_TRUE(saw_stream);
    EXPECT_TRUE(saw_tile);
}

TEST(Generators, GatherMixesSequentialAndRandom)
{
    GatherParams p;
    p.gathers_per_index = 1;
    KernelPtr k = make_gather_kernel(p);
    Rng rng(1);
    unsigned index_side = 0, data_side = 0;
    for (int i = 0; i < 1000; ++i) {
        const AccessKernel::Access a = k->next(rng);
        if (a.addr >= p.data_base) {
            ++data_side;
            EXPECT_TRUE(a.dependent);
        } else {
            ++index_side;
        }
    }
    EXPECT_NEAR(double(index_side), double(data_side), 50.0);
}

}  // namespace
}  // namespace moka
