/** @file Unit tests for common/hashing.h. */
#include <gtest/gtest.h>

#include <set>

#include "common/hashing.h"

namespace moka {
namespace {

TEST(Hashing, Mix64Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Hashing, Mix64SpreadsLowBits)
{
    // Sequential inputs should produce well-spread low bits.
    std::set<std::uint64_t> low;
    for (std::uint64_t i = 0; i < 256; ++i) {
        low.insert(mix64(i) & 0xFF);
    }
    EXPECT_GT(low.size(), 150u);
}

TEST(Hashing, HashCombineOrderSensitive)
{
    EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hashing, TableIndexBounded)
{
    for (unsigned bits : {4u, 9u, 10u, 12u}) {
        for (std::uint64_t v : {0ull, 1ull, 0xFFFFull, 0xDEADBEEFCAFEull}) {
            EXPECT_LT(table_index(v, bits), 1u << bits);
        }
    }
}

TEST(Hashing, TableIndexDistribution)
{
    // Page-aligned addresses (typical feature values) must not
    // cluster into few table entries.
    std::set<std::uint32_t> idx;
    for (std::uint64_t page = 0; page < 512; ++page) {
        idx.insert(table_index(page << 12, 9));
    }
    EXPECT_GT(idx.size(), 300u);
}

}  // namespace
}  // namespace moka
