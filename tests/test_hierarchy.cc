/**
 * @file
 * Multi-level hierarchy integration tests: traffic conservation and
 * inclusion-style invariants across L1D -> L2 -> LLC -> DRAM.
 */
#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"
#include "dram/dram.h"

namespace moka {
namespace {

struct Stack
{
    Stack()
        : dram(DramConfig{}),
          llc({"LLC", 256, 8, 20, 64, false}, &dram),
          l2({"L2", 64, 8, 10, 32, false}, &llc),
          l1({"L1D", 16, 4, 4, 8, true}, &l2)
    {
    }

    Dram dram;
    Cache llc;
    Cache l2;
    Cache l1;
};

TEST(Hierarchy, MissesPropagateDownward)
{
    Stack s;
    Cycle now = 0;
    for (Addr b = 0; b < 100; ++b) {
        s.l1.access(PhysAddr{b << kBlockBits}, AccessType::kLoad, now);
        now += 1000;
    }
    // Cold stream: every L1 miss reaches L2, LLC and DRAM exactly once.
    EXPECT_EQ(s.l1.stats().demand.misses, 100u);
    EXPECT_EQ(s.l2.stats().demand.misses, 100u);
    EXPECT_EQ(s.llc.stats().demand.misses, 100u);
    EXPECT_EQ(s.dram.accesses(), 100u);
}

TEST(Hierarchy, L2AbsorbsL1Evictions)
{
    Stack s;
    Cycle now = 0;
    // Touch 256 blocks (4x L1 capacity, exactly L2-but-not capacity).
    for (Addr b = 0; b < 256; ++b) {
        s.l1.access(PhysAddr{b << kBlockBits}, AccessType::kLoad, now);
        now += 1000;
    }
    const auto dram_cold = s.dram.accesses();
    // Re-touch: L1 mostly misses, L2 serves everything, DRAM silent.
    for (Addr b = 0; b < 256; ++b) {
        s.l1.access(PhysAddr{b << kBlockBits}, AccessType::kLoad, now);
        now += 1000;
    }
    EXPECT_EQ(s.dram.accesses(), dram_cold);
    EXPECT_GT(s.l1.stats().demand.misses, 256u);
}

TEST(Hierarchy, DirtyDataReachesDramEventually)
{
    Stack s;
    Cycle now = 0;
    // Write a block, then stream far past every level's capacity so
    // the dirty line is forced out of LLC as a DRAM writeback.
    s.l1.access(PhysAddr{0}, AccessType::kStore, now);
    for (Addr b = 1; b < 4000; ++b) {
        now += 500;
        s.l1.access(PhysAddr{b << kBlockBits}, AccessType::kLoad, now);
    }
    EXPECT_GE(s.l1.stats().writebacks, 1u);
    EXPECT_GE(s.l2.stats().writebacks, 1u);
    EXPECT_GE(s.llc.stats().writebacks, 1u);
}

TEST(Hierarchy, PrefetchFillsAllLevels)
{
    Stack s;
    s.l1.access(PhysAddr{0x8000}, AccessType::kPrefetch, 0, /*pgc=*/true);
    // The prefetch pulled the block through every level.
    EXPECT_TRUE(s.l1.probe(PhysAddr{0x8000}));
    EXPECT_TRUE(s.l2.probe(PhysAddr{0x8000}));
    EXPECT_TRUE(s.llc.probe(PhysAddr{0x8000}));
    EXPECT_EQ(s.dram.prefetch_accesses(), 1u);
}

TEST(Hierarchy, LatencyOrderingAcrossLevels)
{
    Stack s;
    // Cold miss to DRAM.
    const AccessResult cold = s.l1.access(PhysAddr{0x4000}, AccessType::kLoad, 0);
    // L1 hit.
    const AccessResult hot =
        s.l1.access(PhysAddr{0x4000}, AccessType::kLoad, cold.done);
    // L2 hit (evict from L1 by conflict, then re-access).
    const Addr set_stride = 16 * kBlockSize;
    Cycle now = cold.done + 10000;
    for (int i = 1; i <= 4; ++i) {
        s.l1.access(PhysAddr{0x4000 + Addr(i) * set_stride},
                    AccessType::kLoad, now);
        now += 2000;
    }
    const AccessResult l2hit =
        s.l1.access(PhysAddr{0x4000}, AccessType::kLoad, now);
    const Cycle cold_lat = cold.done - 0;
    const Cycle hot_lat = hot.done - cold.done;
    const Cycle l2_lat = l2hit.done - now;
    EXPECT_LT(hot_lat, l2_lat);
    EXPECT_LT(l2_lat, cold_lat);
}

TEST(Hierarchy, RandomTrafficConservation)
{
    // Property: for demand loads, DRAM accesses == LLC demand misses
    // (no prefetchers, no dirty traffic).
    Stack s;
    Rng rng(5);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += 400;
        s.l1.access(PhysAddr{rng.below(1 << 14) << kBlockBits},
                    AccessType::kLoad, now);
    }
    EXPECT_EQ(s.dram.accesses(), s.llc.stats().demand.misses);
    EXPECT_GE(s.l2.stats().demand.accesses,
              s.l2.stats().demand.misses);
    // L2 sees exactly L1's misses as demand accesses.
    EXPECT_EQ(s.l2.stats().demand.accesses, s.l1.stats().demand.misses);
}

}  // namespace
}  // namespace moka
