/** @file Unit tests for the IPCP prefetcher. */
#include <gtest/gtest.h>

#include "prefetch/ipcp.h"

namespace moka {
namespace {

std::vector<PrefetchRequest>
access(Ipcp &ipcp, Addr pc, Addr vaddr, bool hit = false, Cycle now = 0)
{
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = pc;
    ctx.vaddr = VirtAddr{vaddr};
    ctx.hit = hit;
    ctx.now = now;
    ipcp.on_access(ctx, out);
    return out;
}

TEST(Ipcp, NextLineOnFreshIpMiss)
{
    Ipcp ipcp(IpcpConfig{});
    const auto out = access(ipcp, 0x400100, 0x100000, /*hit=*/false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].delta, 1);
    EXPECT_EQ(out[0].vaddr, VirtAddr{0x100000 + kBlockSize});
}

TEST(Ipcp, ConstantStrideClassified)
{
    Ipcp ipcp(IpcpConfig{});
    const std::int64_t stride = 3;
    std::vector<PrefetchRequest> out;
    // Spread the accesses across sparse regions so the GS detector
    // stays quiet and the CS class fires.
    for (int i = 0; i < 10; ++i) {
        out = access(ipcp, 0x400200,
                     0x100000 + Addr(i) * stride * kBlockSize);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].delta, stride);
    // Degree: multiples of the stride.
    for (std::size_t d = 0; d < out.size(); ++d) {
        EXPECT_EQ(out[d].delta, stride * std::int64_t(d + 1));
    }
}

TEST(Ipcp, GlobalStreamOnDenseRegion)
{
    IpcpConfig cfg;
    Ipcp ipcp(cfg);
    std::vector<PrefetchRequest> out;
    // Touch a 2KB region densely with one IP.
    for (unsigned i = 0; i < cfg.region_lines; ++i) {
        out = access(ipcp, 0x400300, 0x200000 + Addr(i) * kBlockSize);
    }
    ASSERT_GE(out.size(), cfg.gs_degree - 1);
    EXPECT_EQ(out[0].delta, 1);
}

TEST(Ipcp, NoPrefetchOnHitForFreshIp)
{
    Ipcp ipcp(IpcpConfig{});
    const auto out = access(ipcp, 0x400400, 0x100000, /*hit=*/true);
    EXPECT_TRUE(out.empty());
}

TEST(Ipcp, CandidatesCarryTriggerContext)
{
    Ipcp ipcp(IpcpConfig{});
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 12; ++i) {
        out = access(ipcp, 0x400500, 0x300000 + Addr(i) * 2 * kBlockSize);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].trigger_pc, 0x400500u);
    EXPECT_EQ(page_number(out[0].trigger_vaddr),
              page_number(VirtAddr{0x300000 + 11 * 2 * kBlockSize}));
}

TEST(Ipcp, StrideChangeRetrains)
{
    Ipcp ipcp(IpcpConfig{});
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 10; ++i) {
        out = access(ipcp, 0x400600, 0x400000 + Addr(i) * 2 * kBlockSize);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].delta, 2);
    // Switch to stride 5; after retraining the new stride wins.
    const Addr base = 0x400000 + 10 * 2 * kBlockSize;
    for (int i = 0; i < 12; ++i) {
        out = access(ipcp, 0x400600, base + Addr(i) * 5 * kBlockSize);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].delta, 5);
}

}  // namespace
}  // namespace moka
